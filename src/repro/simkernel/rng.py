"""Deterministic named random streams.

Every source of randomness in the simulator draws from a stream obtained
via :meth:`RngRegistry.stream`. Streams are derived from the experiment
seed and the stream name, so adding a new consumer of randomness does not
perturb the draws seen by existing consumers — runs stay reproducible and
comparable across code changes.
"""

import random
import zlib


class RngRegistry:
    """Factory of independent, deterministically seeded random streams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return the :class:`random.Random` for ``name``, creating it
        (seeded from the registry seed and the name) on first use."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self.seed * 0x9E3779B97F4A7C15 +
                       zlib.crc32(name.encode('utf-8'))) & 0xFFFFFFFFFFFFFFFF
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def uniform_ns(self, name, low_ns, high_ns):
        """Draw an integer duration uniformly from [low_ns, high_ns]."""
        if low_ns > high_ns:
            raise ValueError('empty range [%d, %d]' % (low_ns, high_ns))
        return self.stream(name).randint(low_ns, high_ns)

    def exponential_ns(self, name, mean_ns, cap_ns=None):
        """Draw an integer duration from Exp(mean), optionally capped.

        A cap keeps pathological tail draws from dominating short
        simulations while preserving the distribution body.
        """
        if mean_ns <= 0:
            raise ValueError('mean must be positive, got %r' % mean_ns)
        value = int(self.stream(name).expovariate(1.0 / mean_ns))
        value = max(1, value)
        if cap_ns is not None:
            value = min(value, cap_ns)
        return value

    def jittered_ns(self, name, base_ns, jitter_fraction=0.1):
        """Draw ``base_ns`` +/- a uniform jitter fraction (default 10%)."""
        if base_ns <= 0:
            raise ValueError('base must be positive, got %r' % base_ns)
        spread = int(base_ns * jitter_fraction)
        if spread == 0:
            return base_ns
        return base_ns + self.stream(name).randint(-spread, spread)
