"""Time units for the simulator.

All simulation time is expressed as integer nanoseconds. Using integers
keeps event ordering exact and runs reproducible: there is no floating
point drift when quanta are split by preemptions.
"""

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

# Short aliases used pervasively in scheduler code.
NS = NANOSECOND
US = MICROSECOND
MS = MILLISECOND
SEC = SECOND


def ns_to_ms(value_ns):
    """Convert integer nanoseconds to float milliseconds (for reporting)."""
    return value_ns / MILLISECOND


def ns_to_us(value_ns):
    """Convert integer nanoseconds to float microseconds (for reporting)."""
    return value_ns / MICROSECOND


def ns_to_sec(value_ns):
    """Convert integer nanoseconds to float seconds (for reporting)."""
    return value_ns / SECOND


def format_ns(value_ns):
    """Render a duration with a human-friendly unit.

    >>> format_ns(1500)
    '1.500us'
    >>> format_ns(30 * MILLISECOND)
    '30.000ms'
    """
    if value_ns >= SECOND:
        return '%.3fs' % (value_ns / SECOND)
    if value_ns >= MILLISECOND:
        return '%.3fms' % (value_ns / MILLISECOND)
    if value_ns >= MICROSECOND:
        return '%.3fus' % (value_ns / MICROSECOND)
    return '%dns' % value_ns
