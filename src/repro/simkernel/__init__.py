"""Discrete-event simulation substrate.

Provides the clock, cancellable event queue, deterministic random
streams, and tracing used by every other subsystem.
"""

from .events import Event, EventQueue
from .rng import RngRegistry
from .sanitizer import (
    Sanitizer,
    SanitizerError,
    Violation,
    install_sanitizer,
)
from .simulation import LivelockError, SimulationError, Simulator
from .tracing import TraceRecord, Tracer
from .units import MICROSECOND, MILLISECOND, MS, NS, SEC, SECOND, US, format_ns

__all__ = [
    'Event',
    'EventQueue',
    'MICROSECOND',
    'MILLISECOND',
    'MS',
    'NS',
    'LivelockError',
    'RngRegistry',
    'SEC',
    'Sanitizer',
    'SanitizerError',
    'SECOND',
    'SimulationError',
    'Simulator',
    'Violation',
    'install_sanitizer',
    'TraceRecord',
    'Tracer',
    'US',
    'format_ns',
]
