"""Discrete-event simulation substrate.

Provides the clock, cancellable event queue, deterministic random
streams, and tracing used by every other subsystem.
"""

from .events import Event, EventQueue
from .rng import RngRegistry
from .simulation import SimulationError, Simulator
from .tracing import TraceRecord, Tracer
from .units import MICROSECOND, MILLISECOND, MS, NS, SEC, SECOND, US, format_ns

__all__ = [
    'Event',
    'EventQueue',
    'MICROSECOND',
    'MILLISECOND',
    'MS',
    'NS',
    'RngRegistry',
    'SEC',
    'SECOND',
    'SimulationError',
    'Simulator',
    'TraceRecord',
    'Tracer',
    'US',
    'format_ns',
]
