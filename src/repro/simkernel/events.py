"""Cancellable event queue for discrete-event simulation.

The queue is a binary heap of ``(time, sequence, Event)`` entries. Events
are totally ordered: ties in time break on the monotonically increasing
sequence number, so two events scheduled for the same instant fire in the
order they were scheduled. Cancellation is lazy — a cancelled event stays
in the heap and is discarded when popped — which keeps both ``schedule``
and ``cancel`` O(log n) worst case and O(1) amortized for cancel.
"""

import heapq


class Event:
    """A scheduled callback. Returned by :meth:`EventQueue.schedule`.

    Instances are handles: hold one to :meth:`cancel` the event before it
    fires. An event fires at most once.
    """

    __slots__ = ('time', 'seq', 'callback', 'args', 'cancelled', 'fired',
                 '_queue')

    def __init__(self, time, seq, callback, args, queue=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._queue = queue

    def cancel(self):
        """Prevent the event from firing. Safe to call more than once,
        and safe to call on an event that already fired (a no-op)."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1

    @property
    def pending(self):
        """True while the event is scheduled and will still fire."""
        return not self.cancelled and not self.fired

    def __repr__(self):
        state = 'fired' if self.fired else (
            'cancelled' if self.cancelled else 'pending')
        name = getattr(self.callback, '__qualname__',
                       getattr(self.callback, '__name__', repr(self.callback)))
        return '<Event t=%d %s %s>' % (self.time, name, state)


class EventQueue:
    """Priority queue of :class:`Event` objects ordered by (time, seq)."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._live = 0

    def __len__(self):
        """Number of live (non-cancelled, unfired) events."""
        return self._live

    def __bool__(self):
        return self._live > 0

    def schedule(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``time``; return handle."""
        if time < 0:
            raise ValueError('event time must be non-negative, got %r' % time)
        self._seq += 1
        event = Event(time, self._seq, callback, args, queue=self)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._live += 1
        return event

    def peek_time(self):
        """Time of the earliest live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self):
        """Remove and return the earliest live event, or None if empty.

        The returned event is marked fired; the caller invokes its
        callback. Cancelled events are silently discarded.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return None
        __, __, event = heapq.heappop(self._heap)
        event.fired = True
        self._live -= 1
        return event

    def peek_events(self, n):
        """The next ``n`` live events in firing order, without popping.

        O(heap) — intended for diagnostics (livelock reports), not for
        the hot path.
        """
        upcoming = []
        for __, __, event in sorted(self._heap):
            if event.cancelled:
                continue
            upcoming.append(event)
            if len(upcoming) >= n:
                break
        return upcoming

    def _drop_cancelled_head(self):
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    def clear(self):
        """Drop every pending event."""
        for __, __, event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0
