"""The simulator: a clock plus an event queue plus shared services.

Every model object (hypervisor scheduler, guest kernel, workload program)
holds a reference to one :class:`Simulator` and advances exclusively by
scheduling callbacks on it. The simulator is single-threaded and
deterministic: given the same seed and model, two runs produce identical
event sequences.
"""

from .events import EventQueue
from .rng import RngRegistry
from .tracing import Tracer


class SimulationError(Exception):
    """Raised for structural errors in the simulation (e.g. time travel)."""


class LivelockError(SimulationError):
    """A run loop exhausted its ``max_events`` budget.

    Carries a structured summary of the still-pending events so a
    livelocking model (e.g. a fault campaign that keeps re-arming
    retries) can be debugged from the exception alone.

    Attributes:
        limit: the exhausted ``max_events`` budget.
        pending: number of live events left in the queue.
        next_events: up to :attr:`SUMMARY_DEPTH` upcoming events
            (firing order) as ``(time_ns, callback_name)`` pairs.
    """

    SUMMARY_DEPTH = 5

    def __init__(self, limit, context, queue, now):
        self.limit = limit
        self.pending = len(queue)
        self.next_events = [
            (event.time, _callback_name(event.callback))
            for event in queue.peek_events(self.SUMMARY_DEPTH)
        ]
        deadlines = ', '.join('t=%d %s' % pair for pair in self.next_events)
        super().__init__(
            'exceeded %d events %s (now=%d): %d events still pending'
            '%s' % (limit, context, now, self.pending,
                    '; next: ' + deadlines if deadlines else ''))


def _callback_name(callback):
    return getattr(callback, '__qualname__',
                   getattr(callback, '__name__', repr(callback)))


class Simulator:
    """Discrete-event simulation driver.

    Attributes:
        now: current simulation time in integer nanoseconds.
        rng: the :class:`RngRegistry` for all model randomness.
        trace: the :class:`Tracer` for counters and debug records.
        sanitizer: optional runtime invariant checker (see
            :mod:`repro.simkernel.sanitizer`); machines attach
            themselves to it on construction when present.
    """

    def __init__(self, seed=0, trace=False, trace_categories=None):
        self.now = 0
        self._queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = Tracer(enabled=trace, categories=trace_categories)
        self._stopped = False
        self._events_processed = 0
        self._post_event_hooks = []
        self._last_event = None
        self.sanitizer = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                'cannot schedule at %d, now is %d' % (time, self.now))
        return self._queue.schedule(time, callback, *args)

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError('negative delay %d' % delay)
        return self._queue.schedule(self.now + delay, callback, *args)

    def call_soon(self, callback, *args):
        """Schedule ``callback(*args)`` at the current time (after any
        event currently firing completes)."""
        return self._queue.schedule(self.now, callback, *args)

    # ------------------------------------------------------------------
    # Post-event hooks
    # ------------------------------------------------------------------

    def add_post_event_hook(self, hook):
        """Register ``hook(event)`` to run after every processed event.

        Used by the runtime sanitizer; hooks must not mutate model
        state. Returns the hook for symmetry with removal."""
        self._post_event_hooks.append(hook)
        return hook

    def remove_post_event_hook(self, hook):
        """Unregister a hook added with :meth:`add_post_event_hook`."""
        if hook in self._post_event_hooks:
            self._post_event_hooks.remove(hook)

    @property
    def last_event(self):
        """The most recently fired event (None before the first)."""
        return self._last_event

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def stop(self):
        """Make the current run loop return after the in-flight event."""
        self._stopped = True

    def step(self):
        """Process one event. Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                'event at %d in the past (now %d)' % (event.time, self.now))
        self.now = event.time
        self._events_processed += 1
        self._last_event = event
        event.callback(*event.args)
        if self._post_event_hooks:
            for hook in self._post_event_hooks:
                hook(event)
        return True

    def run_until(self, end_time, max_events=None):
        """Run until the clock passes ``end_time``, the queue drains, or
        ``stop()`` is called. Returns the number of events processed.

        ``max_events`` is a safety valve for tests: exceeding it raises
        :class:`LivelockError` with a summary of the pending events (it
        indicates a livelock in the model).
        """
        processed = 0
        self._stopped = False
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                self.now = max(self.now, end_time)
                break
            if not self.step():
                break
            processed += 1
            if max_events is not None and processed > max_events:
                raise LivelockError(max_events, 'before %d' % end_time,
                                    self._queue, self.now)
        return processed

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain (or ``stop()``). Returns event count.

        Exceeding ``max_events`` raises :class:`LivelockError` with the
        pending-event summary."""
        processed = 0
        self._stopped = False
        while not self._stopped and self.step():
            processed += 1
            if processed > max_events:
                raise LivelockError(max_events, 'while draining',
                                    self._queue, self.now)
        return processed

    @property
    def pending_events(self):
        """Number of live events in the queue."""
        return len(self._queue)

    @property
    def events_processed(self):
        """Total events processed since construction."""
        return self._events_processed
