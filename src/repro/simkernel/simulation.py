"""The simulator: a clock plus an event queue plus shared services.

Every model object (hypervisor scheduler, guest kernel, workload program)
holds a reference to one :class:`Simulator` and advances exclusively by
scheduling callbacks on it. The simulator is single-threaded and
deterministic: given the same seed and model, two runs produce identical
event sequences.
"""

from .events import EventQueue
from .rng import RngRegistry
from .tracing import Tracer


class SimulationError(Exception):
    """Raised for structural errors in the simulation (e.g. time travel)."""


class Simulator:
    """Discrete-event simulation driver.

    Attributes:
        now: current simulation time in integer nanoseconds.
        rng: the :class:`RngRegistry` for all model randomness.
        trace: the :class:`Tracer` for counters and debug records.
    """

    def __init__(self, seed=0, trace=False, trace_categories=None):
        self.now = 0
        self._queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = Tracer(enabled=trace, categories=trace_categories)
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                'cannot schedule at %d, now is %d' % (time, self.now))
        return self._queue.schedule(time, callback, *args)

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError('negative delay %d' % delay)
        return self._queue.schedule(self.now + delay, callback, *args)

    def call_soon(self, callback, *args):
        """Schedule ``callback(*args)`` at the current time (after any
        event currently firing completes)."""
        return self._queue.schedule(self.now, callback, *args)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def stop(self):
        """Make the current run loop return after the in-flight event."""
        self._stopped = True

    def step(self):
        """Process one event. Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                'event at %d in the past (now %d)' % (event.time, self.now))
        self.now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run_until(self, end_time, max_events=None):
        """Run until the clock passes ``end_time``, the queue drains, or
        ``stop()`` is called. Returns the number of events processed.

        ``max_events`` is a safety valve for tests: exceeding it raises
        :class:`SimulationError` (it indicates a livelock in the model).
        """
        processed = 0
        self._stopped = False
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                self.now = max(self.now, end_time)
                break
            if not self.step():
                break
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    'exceeded %d events before %d' % (max_events, end_time))
        return processed

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain (or ``stop()``). Returns event count."""
        processed = 0
        self._stopped = False
        while not self._stopped and self.step():
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    'exceeded %d events while draining' % max_events)
        return processed

    @property
    def pending_events(self):
        """Number of live events in the queue."""
        return len(self._queue)

    @property
    def events_processed(self):
        """Total events processed since construction."""
        return self._events_processed
