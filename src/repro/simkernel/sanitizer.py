"""Runtime scheduler sanitizer — always-on invariant checking.

An opt-in watchdog hooked into the simulator's event loop that asserts,
at a configurable event interval, the structural invariants of the
two-level scheduler:

* a pCPU runs at most one vCPU, and a vCPU is dispatched on at most one
  pCPU ("one-vCPU-per-pCPU");
* a task is current on at most one guest CPU and queued on at most one
  runqueue, and never both at once ("one-task-per-vCPU");
* no task is lost or duplicated across migrations: every spawned task
  is exactly one of current / queued / sleeping / migrating / exited;
* the clock is monotone;
* credits are conserved within the scheduler's clip band
  ``[-credit_cap, credit_cap]``.

vCPUs that carry an SA protocol object (``vcpu.sa_protocol``, created
by the IRS sender — see ``repro.core.protocol``) get three more:

* every protocol edge taken was legal ("sa_legal_transitions" — the
  state machine records illegal attempts instead of raising);
* the per-vCPU flags agree with the protocol state: the guest is inside
  the upcall handler iff the round is SWITCHING, a NOTIFIED offer
  implies ``sa_pending``, and a completed handshake (ACKED) implies it
  was cleared ("sa_flag_consistency");
* only IRS-capable VMs ever leave the idle state ("sa_capability").

When a cluster is attached (``attach_cluster``, called by
``Cluster.__init__``), three cluster-level invariants join the list:

* a VM is resident on at most one host ("single-residency") and never
  both resident and in-flight;
* every host's ``reserved_vcpus`` equals the vCPUs of the in-flight
  migrations targeting it — aborts and rollbacks must not leak
  reservations;
* the orphan ledger: every VM the cluster admitted is exactly one of
  resident / in-flight / pending-recovery / parked. Host crashes must
  not lose VMs.

Violations are reported as structured :class:`Violation` records naming
the event whose processing broke the invariant — which is what makes
fault campaigns debuggable: the report points at the injected fault (or
the defense bug) directly, not at a corrupted end state thousands of
events later.

Usage::

    sim = Simulator(seed=0)
    sanitizer = install_sanitizer(sim, interval=1, mode='raise')
    machine = Machine(sim, n_pcpus=4)   # attaches itself automatically
    ...
    sanitizer.assert_clean()

``mode='raise'`` raises :class:`SanitizerError` at the first violation;
``mode='collect'`` accumulates them in :attr:`Sanitizer.violations` so a
test can assert on the whole report.
"""

from .simulation import SimulationError

_TASK_STATES = ('running', 'ready', 'sleeping', 'migrating', 'exited')
# SA protocol states with an open activation round (mirrors
# ``repro.core.protocol.SA_ACTIVE_STATES``; duck-typed by name because
# the sanitizer sits below the core layer).
_SA_ACTIVE_STATES = ('notified', 'switching', 'limbo')


class Violation:
    """One invariant violation, tied to the event that exposed it."""

    __slots__ = ('time', 'invariant', 'message', 'event')

    def __init__(self, time, invariant, message, event):
        self.time = time
        self.invariant = invariant
        self.message = message
        self.event = repr(event) if event is not None else '<initial state>'

    def __repr__(self):
        return '<Violation t=%d %s: %s after %s>' % (
            self.time, self.invariant, self.message, self.event)

    def format(self):
        return ('[t=%d] invariant %r violated: %s\n'
                '        breaking event: %s'
                % (self.time, self.invariant, self.message, self.event))


class SanitizerError(SimulationError):
    """Raised in ``mode='raise'`` when an invariant check fails."""

    def __init__(self, violation):
        self.violation = violation
        super().__init__(violation.format())


class Sanitizer:
    """Event-loop-hooked invariant checker over machines and guests."""

    def __init__(self, sim, interval=1, mode='raise'):
        if interval < 1:
            raise ValueError('interval must be >= 1, got %r' % interval)
        if mode not in ('raise', 'collect'):
            raise ValueError("mode must be 'raise' or 'collect'")
        self.sim = sim
        self.interval = interval
        self.mode = mode
        self.machines = []
        self.clusters = []
        self.violations = []
        self.checks = 0
        # id(protocol) -> illegal-transition count already reported, so
        # each illegal SA edge is attributed to the first check after
        # the event that took it (not re-reported forever).
        self._sa_illegal_seen = {}
        self._countdown = interval
        self._last_now = sim.now
        self._hook = sim.add_post_event_hook(self._on_event)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_machine(self, machine):
        """Watch ``machine`` (and, transitively, every guest kernel
        attached to its VMs). Called by ``Machine.__init__`` when the
        simulator carries a sanitizer."""
        if machine not in self.machines:
            self.machines.append(machine)

    def attach_cluster(self, cluster):
        """Watch ``cluster``'s residency, reservation, and orphan
        ledgers. Called by ``Cluster.__init__`` when the simulator
        carries a sanitizer (host machines attach themselves through
        :meth:`attach_machine` as usual)."""
        if cluster not in self.clusters:
            self.clusters.append(cluster)

    def uninstall(self):
        """Detach from the simulator's event loop."""
        self.sim.remove_post_event_hook(self._hook)
        if self.sim.sanitizer is self:
            self.sim.sanitizer = None

    # ------------------------------------------------------------------
    # Event-loop hook
    # ------------------------------------------------------------------

    def _on_event(self, event):
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.interval
        self.check_now(event)

    def check_now(self, event=None):
        """Run every invariant immediately (also callable from tests)."""
        if event is None:
            event = self.sim.last_event
        self.checks += 1
        self._check_clock(event)
        for machine in self.machines:
            self._check_machine(machine, event)
        for cluster in self.clusters:
            self._check_cluster(cluster, event)
        self.sim.trace.count('sanitizer.checks')

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self):
        """Human-readable multi-line report of every violation."""
        if not self.violations:
            return ('sanitizer: %d checks, no violations' % self.checks)
        lines = ['sanitizer: %d checks, %d violation(s)'
                 % (self.checks, len(self.violations))]
        lines.extend(v.format() for v in self.violations)
        return '\n'.join(lines)

    def assert_clean(self):
        """Raise :class:`SanitizerError` if any violation was recorded."""
        if self.violations:
            raise SanitizerError(self.violations[0])

    def _fail(self, invariant, message, event):
        violation = Violation(self.sim.now, invariant, message, event)
        self.violations.append(violation)
        self.sim.trace.count('sanitizer.violations')
        if self.mode == 'raise':
            raise SanitizerError(violation)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def _check_clock(self, event):
        if self.sim.now < self._last_now:
            self._fail('clock_monotonic',
                       'clock moved backwards: %d -> %d'
                       % (self._last_now, self.sim.now), event)
        self._last_now = self.sim.now

    def _check_machine(self, machine, event):
        self._check_hypervisor(machine, event)
        cap = machine.scheduler.config.credit_cap
        for vm in machine.vms:
            for vcpu in vm.vcpus:
                if not -cap <= vcpu.credits <= cap:
                    self._fail('credit_conservation',
                               '%s credits %d outside [-%d, %d]'
                               % (vcpu.name, vcpu.credits, cap, cap), event)
                proto = getattr(vcpu, 'sa_protocol', None)
                if proto is not None:
                    self._check_sa_protocol(vcpu, proto, event)
            if vm.guest is not None:
                self._check_guest(vm.guest, event)

    def _check_hypervisor(self, machine, event):
        seen = set()
        for pcpu in machine.pcpus:
            current = pcpu.current
            if current is not None:
                if not (current.is_running or pcpu.preempt_deferred):
                    self._fail('one_vcpu_per_pcpu',
                               '%s dispatched on %s but runstate is %s'
                               % (current.name, pcpu.name,
                                  current.runstate), event)
                if current in pcpu.runq:
                    self._fail('one_vcpu_per_pcpu',
                               '%s both dispatched and queued on %s'
                               % (current.name, pcpu.name), event)
                if id(current) in seen:
                    self._fail('one_vcpu_per_pcpu',
                               '%s dispatched on two pCPUs'
                               % current.name, event)
                seen.add(id(current))
            for vcpu in pcpu.runq:
                if not vcpu.is_runnable:
                    self._fail('one_vcpu_per_pcpu',
                               '%s queued on %s but runstate is %s'
                               % (vcpu.name, pcpu.name, vcpu.runstate),
                               event)
                if id(vcpu) in seen:
                    self._fail('one_vcpu_per_pcpu',
                               '%s present in two places'
                               % vcpu.name, event)
                seen.add(id(vcpu))

    def _check_sa_protocol(self, vcpu, proto, event):
        """SA state-machine invariants (repro.core.protocol), checked
        between events so intra-event multi-edge sequences (upcall ->
        deschedule -> ack in one bottom half) are allowed to settle."""
        seen = self._sa_illegal_seen.get(id(proto), 0)
        if len(proto.illegal) > seen:
            self._sa_illegal_seen[id(proto)] = len(proto.illegal)
            bad = proto.illegal[-1]
            self._fail('sa_legal_transitions',
                       '%s attempted illegal SA edge %r in state %r '
                       '(round %d)' % (vcpu.name, bad.edge, bad.state,
                                       proto.round), event)
        state = proto.state
        gcpu = vcpu.gcpu
        in_handler = gcpu is not None and gcpu.in_sa_handler
        if in_handler != (state == 'switching'):
            self._fail('sa_flag_consistency',
                       '%s in_sa_handler=%s but SA state is %r (the '
                       'upcall-handler window must coincide with '
                       'SWITCHING)' % (vcpu.name, in_handler, state), event)
        # sa_pending is the *sender's* round flag; a lost ack can keep
        # it set after the guest/migrator closed the round, so only the
        # sharp directions are checkable: an offer in flight implies
        # the flag, a completed handshake implies its absence.
        if state == 'notified' and not vcpu.sa_pending:
            self._fail('sa_flag_consistency',
                       '%s SA state is NOTIFIED but sa_pending is clear '
                       '(offer in flight without the sender flag)'
                       % vcpu.name, event)
        if state == 'acked' and vcpu.sa_pending:
            self._fail('sa_flag_consistency',
                       '%s SA state is ACKED but sa_pending is still set '
                       '(handshake completed without clearing the offer)'
                       % vcpu.name, event)
        if state != 'idle' and not vcpu.vm.irs_capable:
            self._fail('sa_capability',
                       '%s has SA state %r but %s is not IRS-capable '
                       '(activation offered to a vanilla guest)'
                       % (vcpu.name, state, vcpu.vm.name), event)

    def _check_guest(self, kernel, event):
        current_tasks = set()
        queued_tasks = set()
        for gcpu in kernel.gcpus:
            task = gcpu.current
            if task is not None:
                if task.state != 'running':
                    self._fail('one_task_per_vcpu',
                               '%s current on %s but state is %s'
                               % (task.name, gcpu.name, task.state), event)
                if id(task) in current_tasks:
                    self._fail('one_task_per_vcpu',
                               '%s current on two guest CPUs (double '
                               'dispatch)' % task.name, event)
                current_tasks.add(id(task))
            for queued in gcpu.rq.tasks():
                if queued.state != 'ready':
                    self._fail('one_task_per_vcpu',
                               '%s queued on %s but state is %s'
                               % (queued.name, gcpu.name, queued.state),
                               event)
                if id(queued) in queued_tasks:
                    self._fail('no_lost_or_dup_tasks',
                               '%s queued on two runqueues (duplicated '
                               'across migration)' % queued.name, event)
                queued_tasks.add(id(queued))
                if id(queued) in current_tasks:
                    self._fail('no_task_queued_and_running',
                               '%s both queued and running'
                               % queued.name, event)
        for task in kernel.tasks:
            if task.state not in _TASK_STATES:
                self._fail('no_lost_or_dup_tasks',
                           '%s in unknown state %r'
                           % (task.name, task.state), event)
            elif task.state == 'running' and id(task) not in current_tasks:
                self._fail('no_lost_or_dup_tasks',
                           '%s claims to run but is current nowhere (lost '
                           'across migration)' % task.name, event)
            elif task.state == 'ready' and id(task) not in queued_tasks:
                self._fail('no_lost_or_dup_tasks',
                           '%s claims ready but is queued nowhere (lost '
                           'across migration)' % task.name, event)

    def _check_cluster(self, cluster, event):
        residency = {}               # vm -> [host names]
        for host in cluster.hosts:
            for vm in host.resident_vms:
                residency.setdefault(vm, []).append(host.name)
        for vm, hosts in residency.items():
            if len(hosts) > 1:
                self._fail('single_residency',
                           '%s resident on %d hosts (%s)'
                           % (vm.name, len(hosts), ', '.join(hosts)), event)
        in_flight = cluster.migration.in_flight
        reserved = {host: 0 for host in cluster.hosts}
        for vm, flight in in_flight.items():
            if vm in residency:
                self._fail('single_residency',
                           '%s both resident on %s and in-flight to %s'
                           % (vm.name, residency[vm][0],
                              flight.target.name), event)
            if flight.target in reserved:
                reserved[flight.target] += vm.n_vcpus
        for host in cluster.hosts:
            if host.reserved_vcpus != reserved[host]:
                self._fail('no_reservation_leak',
                           '%s reserves %d vcpus but in-flight migrations '
                           'account for %d (abort/rollback leaked a '
                           'reservation)'
                           % (host.name, host.reserved_vcpus,
                              reserved[host]), event)
        recovery = cluster.recovery
        parked = set(recovery.parked)
        for vm in cluster.kernels:
            places = ((vm in residency) + (vm in in_flight)
                      + (vm in recovery.pending) + (vm in parked))
            if places == 0:
                self._fail('orphan_ledger',
                           '%s is resident nowhere, not in flight, not '
                           'pending recovery, and not parked (lost by a '
                           'crash or abort)' % vm.name, event)
            elif places > 1:
                self._fail('orphan_ledger',
                           '%s tracked in %d places at once (resident=%s '
                           'in_flight=%s pending=%s parked=%s)'
                           % (vm.name, places, vm in residency,
                              vm in in_flight, vm in recovery.pending,
                              vm in parked), event)


def install_sanitizer(sim, interval=1, mode='raise', machines=()):
    """Create a :class:`Sanitizer`, hook it into ``sim``'s event loop,
    and publish it as ``sim.sanitizer`` so machines built afterwards
    attach themselves. Machines that already exist can be passed in
    ``machines``. An already-installed sanitizer is replaced (its
    watched machines and clusters carry over). Returns the sanitizer."""
    machines = list(machines)
    clusters = []
    previous = getattr(sim, 'sanitizer', None)
    if previous is not None:
        machines.extend(m for m in previous.machines if m not in machines)
        clusters.extend(previous.clusters)
        previous.uninstall()
    sanitizer = Sanitizer(sim, interval=interval, mode=mode)
    sim.sanitizer = sanitizer
    for machine in machines:
        sanitizer.attach_machine(machine)
    for cluster in clusters:
        sanitizer.attach_cluster(cluster)
    return sanitizer
