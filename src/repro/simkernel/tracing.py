"""Lightweight tracing and counters.

The tracer records structured events (time, category, payload) when
enabled and maintains named counters unconditionally. Counters are the
backbone of the metrics layer; the event trace exists for debugging and
for tests that assert on scheduler behaviour sequences.
"""

from collections import Counter


class TraceRecord:
    """One trace entry: what happened, when, and to whom."""

    __slots__ = ('time', 'category', 'detail')

    def __init__(self, time, category, detail):
        self.time = time
        self.category = category
        self.detail = detail

    def __repr__(self):
        return '<%d %s %r>' % (self.time, self.category, self.detail)


class Tracer:
    """Collects :class:`TraceRecord` entries and named counters."""

    def __init__(self, enabled=False, categories=None):
        self.enabled = enabled
        self.categories = set(categories) if categories else None
        self.records = []
        self.counters = Counter()

    def emit(self, time, category, **detail):
        """Record a trace event if tracing is on for this category."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, detail))

    def count(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def add_time(self, name, duration_ns):
        """Accumulate a duration (ns) under counter ``name``."""
        self.counters[name] += duration_ns

    def records_for(self, category):
        """All trace records of one category, in emission order."""
        return [r for r in self.records if r.category == category]

    def clear(self):
        """Drop all records and counters."""
        self.records.clear()
        self.counters.clear()
