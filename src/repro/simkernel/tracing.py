"""Lightweight tracing, counters, spans, and typed metrics.

The tracer records structured events (time, category, payload) when
enabled and maintains named counters unconditionally. Counters are the
backbone of the metrics layer; the event trace exists for debugging and
for tests that assert on scheduler behaviour sequences.

Two observability hooks ride on every tracer (see ``repro.obs``):

* :attr:`Tracer.spans` - a :class:`~repro.obs.spans.SpanRecorder` for
  begin/end phase spans (SA protocol probes). Disabled by default;
  every probe is a single-attribute-test no-op until enabled.
* :attr:`Tracer.metrics` - the :class:`~repro.obs.histograms.MetricsRegistry`
  holding typed counters/gauges/histograms. Span durations feed the
  histogram named after their phase automatically.

Event records are bounded: the ``max_records`` ring keeps the newest
records and counts evictions under ``trace.dropped``, so a long traced
run can no longer grow without limit.
"""

from collections import Counter

from ..obs.histograms import MetricsRegistry
from ..obs.spans import SpanRecorder

#: Default cap on retained trace records (the newest are kept).
DEFAULT_MAX_RECORDS = 100_000


class TraceRecord:
    """One trace entry: what happened, when, and to whom."""

    __slots__ = ('time', 'category', 'detail')

    def __init__(self, time, category, detail):
        self.time = time
        self.category = category
        self.detail = detail

    def __repr__(self):
        return '<%d %s %r>' % (self.time, self.category, self.detail)


class Tracer:
    """Collects :class:`TraceRecord` entries, counters, and spans."""

    def __init__(self, enabled=False, categories=None,
                 max_records=DEFAULT_MAX_RECORDS):
        if max_records is not None and max_records < 1:
            raise ValueError('max_records must be >= 1 (or None)')
        self.enabled = enabled
        self.categories = set(categories) if categories else None
        self.max_records = max_records
        self.counters = Counter()
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(registry=self.metrics)
        self.dropped = 0
        self._records = []
        self._head = 0              # ring start index once wrapped

    @property
    def records(self):
        """Retained trace records, oldest first."""
        if self._head == 0:
            return self._records
        return self._records[self._head:] + self._records[:self._head]

    def emit(self, time, category, **detail):
        """Record a trace event if tracing is on for this category.

        Storage is a ring of ``max_records``: once full, the oldest
        record is evicted and ``trace.dropped`` incremented."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time, category, detail)
        if (self.max_records is not None
                and len(self._records) >= self.max_records):
            self._records[self._head] = record
            self._head = (self._head + 1) % self.max_records
            self.dropped += 1
            self.counters['trace.dropped'] += 1
        else:
            self._records.append(record)

    def count(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def add_time(self, name, duration_ns):
        """Accumulate a duration (ns) under counter ``name``."""
        self.counters[name] += duration_ns

    def records_for(self, category):
        """All trace records of one category, in emission order."""
        return [r for r in self.records if r.category == category]

    def clear(self):
        """Drop all records, counters, spans, and metrics."""
        self._records = []
        self._head = 0
        self.dropped = 0
        self.counters.clear()
        self.spans.clear()
        self.metrics.clear()
