"""Guest CPU hotplug and online-mask bookkeeping.

The guest analogue of ``/sys/devices/system/cpu/cpuN/online``: taking a
CPU offline evacuates its tasks onto the remaining online CPUs
(stop-machine style — legal because the vCPU is under the guest's
control) and parks the vCPU; bringing it back online lets balancing
repopulate it via NOHZ kicks and periodic pulls.
"""

from .task import TASK_READY


class CpuHotplug:
    """Online/offline transitions for a kernel's guest CPUs."""

    def __init__(self, kernel):
        self.kernel = kernel

    def online_gcpus(self):
        return [g for g in self.kernel.gcpus if g.online]

    def offline(self, index):
        """Take a guest CPU offline: its tasks are migrated to the
        remaining online CPUs and the vCPU is parked."""
        kernel = self.kernel
        gcpu = kernel.gcpus[index]
        if not gcpu.online:
            return
        survivors = [g for g in kernel.gcpus if g is not gcpu and g.online]
        if not survivors:
            raise RuntimeError('cannot offline the last online CPU')
        gcpu.online = False
        kernel.sim.trace.count('guest.cpu_offline')
        # Evacuate queued tasks.
        for i, task in enumerate(gcpu.rq.tasks()):
            kernel.pull_task(task, survivors[i % len(survivors)])
        # Evacuate the current task (stop-machine style: we may do it
        # directly because the vCPU is under our control).
        task = gcpu.current
        if task is not None:
            kernel._checkpoint(gcpu)
            kernel.ticks.cancel_quantum(gcpu)
            if task.spinning:
                kernel.machine.notify_spin_stop(gcpu.vcpu)
            task.state = TASK_READY
            task.last_descheduled = kernel.sim.now
            gcpu.current = None
            gcpu.rq.enqueue(task)
            kernel.pull_task(task, survivors[0])
            target = survivors[0]
            if target.vcpu.is_blocked:
                kernel.machine.wake_vcpu(target.vcpu)
        # Park the vCPU if it is running.
        if gcpu.vcpu.is_running:
            kernel._go_idle(gcpu)

    def online(self, index):
        """Bring a guest CPU back online; balancing will repopulate it
        (NOHZ kicks / periodic pulls)."""
        gcpu = self.kernel.gcpus[index]
        if gcpu.online:
            return
        gcpu.online = True
        self.kernel.sim.trace.count('guest.cpu_online')
