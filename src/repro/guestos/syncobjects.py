"""Synchronization-object wait/grant engine.

The guest-side semantics of the workload sync primitives
(:mod:`repro.workloads.sync`): who blocks, who spins, who gets woken or
spin-granted when a lock/barrier/queue changes hands — plus the
delay-preemption notifications (Uhlig et al. baseline) that bracket
critical sections. Pure policy-free mechanics; the
:class:`~repro.guestos.kernel.GuestKernel` supplies block/wake/run and
the hypervisor spin notifications.

Handlers follow the one-shot action contract of
:mod:`repro.guestos.interp`: ``(gcpu, task, action) -> bool`` where
True means the action was consumed and the task may keep executing.
"""

from ..workloads import sync


class SyncEngine:
    """Wait-grant logic for locks, rwlocks, barriers and queues."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.sim = kernel.sim

    # ------------------------------------------------------------------
    # Mutex / spinlock
    # ------------------------------------------------------------------

    def do_acquire(self, gcpu, task, action):
        lock = action.lock
        if isinstance(lock, sync.SpinLock):
            status = lock.acquire(task)
            if status == sync.ACQUIRED:
                task.action = None
                self.notify_lock_acquired(gcpu)
                return True
            task.spinning = True
            self.kernel.machine.notify_spin_start(gcpu.vcpu)
            self.sim.trace.count('guest.spin_waits')
            return False
        status = lock.acquire(task)
        if status == sync.ACQUIRED:
            task.action = None
            self.notify_lock_acquired(gcpu)
            return True
        self.sim.trace.count('guest.block_waits')
        self.kernel._block_current(gcpu)
        return False

    def do_release(self, gcpu, task, action):
        lock = action.lock
        task.action = None
        self.notify_lock_released(gcpu)
        if isinstance(lock, sync.SpinLock):
            grantee = lock.release(task, self.actively_spinning)
            if grantee is not None:
                self.grant_spin(grantee)
                self.notify_grantee_lock(grantee)
        else:
            new_owner = lock.release(task)
            if new_owner is not None:
                new_owner.action = None
                self.notify_grantee_lock(new_owner)
                self.kernel.wake_task(new_owner)
        return True

    # ------------------------------------------------------------------
    # Reader-writer lock
    # ------------------------------------------------------------------

    def do_acquire_read(self, gcpu, task, action):
        return self._rw_acquire(gcpu, task, action.lock.acquire_read(task))

    def do_acquire_write(self, gcpu, task, action):
        return self._rw_acquire(gcpu, task, action.lock.acquire_write(task))

    def _rw_acquire(self, gcpu, task, status):
        if status == sync.ACQUIRED:
            task.action = None
            self.notify_lock_acquired(gcpu)
            return True
        self.sim.trace.count('guest.block_waits')
        self.kernel._block_current(gcpu)
        return False

    def do_release_read(self, gcpu, task, action):
        task.action = None
        self.notify_lock_released(gcpu)
        return self._rw_release(action.lock.release_read(task))

    def do_release_write(self, gcpu, task, action):
        task.action = None
        self.notify_lock_released(gcpu)
        return self._rw_release(action.lock.release_write(task))

    def _rw_release(self, woken):
        for other in woken:
            other.action = None
            self.notify_grantee_lock(other)
            self.kernel.wake_task(other)
        return True

    # ------------------------------------------------------------------
    # Delay-preemption notifications (critical-section bracketing)
    # ------------------------------------------------------------------

    def notify_lock_acquired(self, gcpu):
        if self.kernel.delay_preempt is not None:
            self.kernel.delay_preempt.lock_acquired(gcpu.current)

    def notify_lock_released(self, gcpu):
        if self.kernel.delay_preempt is not None:
            self.kernel.delay_preempt.lock_released(gcpu.current)

    def notify_grantee_lock(self, grantee):
        """Lock ownership passed directly to a waiter: it is now in a
        critical section wherever it runs."""
        if self.kernel.delay_preempt is not None:
            self.kernel.delay_preempt.lock_acquired(grantee)

    # ------------------------------------------------------------------
    # Spin-grant mechanics
    # ------------------------------------------------------------------

    def actively_spinning(self, task):
        """Predicate for unfair spinlocks: is this spinner's pause loop
        actually executing right now?"""
        gcpu = task.gcpu
        return (gcpu is not None and gcpu.current is task and
                gcpu.run_started_at is not None)

    def grant_spin(self, grantee):
        """A spinner won a lock: stop the pause loop and continue."""
        grantee.spinning = False
        grantee.action = None
        gcpu = grantee.gcpu
        if gcpu.current is grantee and gcpu.run_started_at is not None:
            self.kernel.machine.notify_spin_stop(gcpu.vcpu)
            self.kernel._run_current(gcpu)
        # Otherwise the grantee's vCPU is preempted: it now *holds* the
        # lock while frozen — lock-waiter turned lock-holder preemption.

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def do_barrier(self, gcpu, task, action):
        status, released = action.barrier.wait(task)
        if status == sync.PASS:
            task.action = None
            for other in released:
                if action.barrier.mode == 'block':
                    other.action = None
                    self.kernel.wake_task(other)
                else:
                    self.grant_spin(other)
            return True
        if status == sync.WAIT:
            self.sim.trace.count('guest.block_waits')
            self.kernel._block_current(gcpu)
            return False
        # status == SPIN
        task.spinning = True
        self.kernel.machine.notify_spin_start(gcpu.vcpu)
        self.sim.trace.count('guest.spin_waits')
        return False

    # ------------------------------------------------------------------
    # Bounded queue
    # ------------------------------------------------------------------

    def do_queue_put(self, gcpu, task, action):
        status, consumer = action.queue.put(task, action.item)
        if status == sync.PASS:
            task.action = None
            if consumer is not None:
                consumer.action = None
                self.kernel.wake_task(consumer)
            return True
        self.kernel._block_current(gcpu)
        return False

    def do_queue_get(self, gcpu, task, action):
        status, item, producer = action.queue.get(task)
        if status == sync.PASS:
            task.action = None
            task.mailbox = item
            if producer is not None:
                producer.action = None
                self.kernel.wake_task(producer)
            return True
        self.kernel._block_current(gcpu)
        return False
