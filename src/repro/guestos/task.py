"""Guest task (thread/process) model.

A task executes a *program* — an iterator of workload actions — under
the guest's CFS-like scheduler. The state machine matches what the paper
exploits:

* ``running`` — current on some guest CPU. Crucially this is *also* the
  state of a task whose vCPU was preempted by the hypervisor: the guest
  believes it is running (the semantic gap of Section 2.3), so the load
  balancer will not touch it.
* ``ready`` — enqueued on a runqueue.
* ``sleeping`` — blocked on a lock, barrier, queue, or timer.
* ``migrating`` — descheduled by the IRS context switcher and parked in
  migrator limbo (Section 3.2/3.3).
* ``exited`` — program finished.
"""

TASK_READY = 'ready'
TASK_RUNNING = 'running'
TASK_SLEEPING = 'sleeping'
TASK_MIGRATING = 'migrating'
TASK_EXITED = 'exited'

NICE_0_WEIGHT = 1024


class Task:
    """One schedulable guest thread."""

    _next_id = 0

    def __init__(self, name, program, weight=NICE_0_WEIGHT,
                 cache_footprint=1.0, on_exit=None):
        Task._next_id += 1
        self.tid = Task._next_id
        self.name = name
        self.program = iter(program)
        self._program_started = False
        self.weight = weight
        # Scales the cache-refill penalty paid on cross-vCPU migration;
        # memory-bound workloads set this above 1.
        self.cache_footprint = cache_footprint
        self.on_exit = on_exit

        # Execution state.
        self.state = TASK_SLEEPING
        self.action = None           # current Action, None = fetch next
        self.remaining_ns = 0        # outstanding Compute time
        self.spinning = False        # inside a pause loop on a lock
        self.mailbox = None          # item handed over by QueueGet

        # Scheduler bookkeeping.
        self.vruntime = 0
        self.gcpu = None             # gcpu where running/queued/last ran
        self.stint_ns = 0            # CPU consumed since last picked
        self.last_descheduled = 0
        self.irs_tag = False         # migrated by the IRS migrator

        # Accounting.
        self.cpu_ns = 0
        self.migrations = 0
        self.wakeups = 0
        self.started_at = None
        self.finished_at = None

    # ------------------------------------------------------------------
    # Program interaction
    # ------------------------------------------------------------------

    def next_action(self, send_value=None):
        """Fetch the next action, or None when the program is done.

        ``send_value`` is delivered into the generator (the result of a
        ``QueueGet``), so programs can write ``item = yield QueueGet(q)``.
        """
        try:
            if self._program_started and hasattr(self.program, 'send'):
                return self.program.send(send_value)
            self._program_started = True
            return next(self.program)
        except StopIteration:
            return None

    # ------------------------------------------------------------------
    # vruntime
    # ------------------------------------------------------------------

    def charge(self, delta_ns):
        """Charge ``delta_ns`` of CPU to the task's accounting. The
        kernel separately decrements ``remaining_ns`` for compute
        segments (spin time burns CPU without advancing the segment)."""
        self.cpu_ns += delta_ns
        self.stint_ns += delta_ns
        self.vruntime += delta_ns * NICE_0_WEIGHT // self.weight

    @property
    def runnable_like(self):
        """True for states the guest scheduler considers live work."""
        return self.state in (TASK_READY, TASK_RUNNING)

    def __repr__(self):
        return '<Task %s %s vrt=%d%s%s>' % (
            self.name, self.state, self.vruntime,
            ' spin' if self.spinning else '',
            ' tag' if self.irs_tag else '')
