"""CFS scheduling policy: slices, wakeup placement, preemption checks.

Parameter defaults follow Linux 3.18: 6 ms target latency (the "finer
grained time slices" the paper credits for IRS's win on spinning
workloads, Section 5.2), 0.75 ms minimum granularity, 1 ms wakeup
granularity.
"""

from ..simkernel.units import MS, US


class CfsConfig:
    """Tunables of the guest scheduler."""

    def __init__(self, tick_ns=1 * MS, sched_latency_ns=6 * MS,
                 min_granularity_ns=750 * US, wakeup_granularity_ns=1 * MS,
                 cache_hot_ns=500 * US, migration_penalty_ns=50 * US,
                 balance_interval_ticks=4):
        self.tick_ns = tick_ns
        self.sched_latency_ns = sched_latency_ns
        self.min_granularity_ns = min_granularity_ns
        self.wakeup_granularity_ns = wakeup_granularity_ns
        # Tasks descheduled more recently than this are "cache hot" and
        # skipped by periodic/idle balancing.
        self.cache_hot_ns = cache_hot_ns
        # Base compute-time penalty a migrated task pays re-warming
        # caches (scaled by the task's cache_footprint).
        self.migration_penalty_ns = migration_penalty_ns
        # Periodic (push-style) balancing runs every N guest ticks.
        self.balance_interval_ticks = balance_interval_ticks


class CfsPolicy:
    """Pure policy decisions, shared by every guest CPU."""

    def __init__(self, config=None):
        self.config = config or CfsConfig()

    def slice_ns(self, nr_running):
        """Ideal slice for one of ``nr_running`` tasks on a runqueue."""
        if nr_running <= 0:
            nr_running = 1
        return max(self.config.sched_latency_ns // nr_running,
                   self.config.min_granularity_ns)

    def place_waking_vruntime(self, task, rq):
        """vruntime a waking task should be (re)charged with: its own,
        floored near the runqueue's min so sleepers neither hoard nor
        forfeit fairness."""
        floor = rq.min_vruntime - self.config.sched_latency_ns
        return max(task.vruntime, floor)

    def should_preempt_on_wake(self, current, woken):
        """Wakeup preemption: the woken task preempts when sufficiently
        behind the current task in virtual time."""
        if current is None:
            return True
        gap = current.vruntime - woken.vruntime
        return gap > self.config.wakeup_granularity_ns

    def should_resched_at_tick(self, current, rq):
        """Tick preemption: slice exhausted, or the leftmost ready task
        is owed the CPU."""
        leftmost = rq.min_ready_vruntime()
        if leftmost is None:
            return False
        nr_running = rq.nr_ready + 1
        if current.stint_ns >= self.slice_ns(nr_running):
            return True
        return (current.vruntime - leftmost >
                self.config.wakeup_granularity_ns +
                self.slice_ns(nr_running))
