"""Per-vCPU load tracking: the ``rt_avg`` estimate.

Linux's ``rt_avg``-style metric, as the paper uses it (Section 3.3):
an exponentially decayed average of how busy a virtual CPU has been,
where "busy" includes **steal time** — intervals the vCPU was runnable
but held off the pCPU by hypervisor-level contention. Folding steal in
is what lets the guest prefer uncontended vCPUs when placing work.
"""

import math

from ..simkernel.units import MS

DEFAULT_TAU_NS = 20 * MS


class RtAvgTracker:
    """Decayed busy+steal fraction for one vCPU, lazily updated."""

    def __init__(self, vcpu, sim, tau_ns=DEFAULT_TAU_NS):
        self.vcpu = vcpu
        self.sim = sim
        self.tau_ns = tau_ns
        self.value = 0.0
        self._last_time = sim.now
        run, steal, __ = vcpu.snapshot_accounting(sim.now)
        self._last_run = run
        self._last_steal = steal

    def update(self):
        """Fold in everything since the last update; return the avg."""
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            return self.value
        run, steal, __ = self.vcpu.snapshot_accounting(now)
        busy = (run - self._last_run) + (steal - self._last_steal)
        fraction = busy / elapsed
        decay = math.exp(-elapsed / self.tau_ns)
        self.value = decay * self.value + (1.0 - decay) * fraction
        self._last_time = now
        self._last_run = run
        self._last_steal = steal
        return self.value
