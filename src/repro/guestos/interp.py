"""Workload-action execution engine.

Interprets the zero-time ("one-shot") actions of a task's program —
everything except ``Compute``, which the kernel's run loop charges as
CPU time. Dispatch is a per-action-type handler table (one dict lookup
on the concrete class) instead of an isinstance chain: this sits on the
kernel's hottest path, and a program step costs the same no matter
which action it is or how many action types exist.

Handlers have the signature ``handler(gcpu, task, action) -> bool``;
True means the action was consumed and the task may keep executing,
False that the task blocked, spun, yielded, or otherwise lost the CPU.
New action types register via :meth:`ActionInterpreter.register`
(subclasses of registered types resolve automatically).
"""

from ..workloads import actions as act

# Safety valve: a program may chain zero-cost actions (marks, lock ops),
# but an unbounded chain means a broken workload definition.
MAX_ZERO_TIME_ACTIONS = 100_000


class ActionInterpreter:
    """Table-dispatched executor for one-shot workload actions."""

    def __init__(self, kernel):
        self.kernel = kernel
        sync_engine = kernel.sync
        self._handlers = {
            act.Acquire: sync_engine.do_acquire,
            act.Release: sync_engine.do_release,
            act.AcquireRead: sync_engine.do_acquire_read,
            act.AcquireWrite: sync_engine.do_acquire_write,
            act.ReleaseRead: sync_engine.do_release_read,
            act.ReleaseWrite: sync_engine.do_release_write,
            act.BarrierWait: sync_engine.do_barrier,
            act.QueuePut: sync_engine.do_queue_put,
            act.QueueGet: sync_engine.do_queue_get,
            act.Sleep: self._do_sleep,
            act.Mark: self._do_mark,
            act.YieldCpu: self._do_yield,
        }

    def register(self, action_type, handler):
        """Bind ``handler(gcpu, task, action)`` to ``action_type``."""
        self._handlers[action_type] = handler

    def run(self, gcpu):
        """Drive ``gcpu``'s current task until it computes, spins,
        blocks, exits, or loses the CPU."""
        kernel = self.kernel
        guard = 0
        while True:
            task = gcpu.current
            if task is None or gcpu.run_started_at is None:
                return
            if task.spinning:
                kernel.machine.notify_spin_start(gcpu.vcpu)
                return
            action = task.action
            if action is None:
                action = task.next_action(task.mailbox)
                task.mailbox = None
                if action is None:
                    kernel._exit_current(gcpu)
                    return
                task.action = action
                if isinstance(action, act.Compute):
                    task.remaining_ns = action.duration_ns
            if isinstance(action, act.Compute):
                if task.remaining_ns <= 0:
                    task.action = None
                    continue
                kernel.ticks.arm_quantum(gcpu)
                return
            guard += 1
            if guard > MAX_ZERO_TIME_ACTIONS:
                raise RuntimeError(
                    '%s chained %d zero-time actions; add Compute steps'
                    % (task.name, guard))
            if not self.execute(gcpu, task, action):
                return
            if gcpu.current is not task:
                # A wakeup we triggered preempted us.
                return

    def execute(self, gcpu, task, action):
        """Run one one-shot action. Returns True when the task can
        continue executing (action consumed)."""
        handler = self._handlers.get(action.__class__)
        if handler is None:
            handler = self._resolve(action)
        return handler(gcpu, task, action)

    def _resolve(self, action):
        """Slow path: walk the MRO so subclasses of registered action
        types dispatch like their base, then cache the result."""
        for klass in action.__class__.__mro__[1:]:
            handler = self._handlers.get(klass)
            if handler is not None:
                self._handlers[action.__class__] = handler
                return handler
        raise TypeError('unknown action %r' % (action,))

    # ------------------------------------------------------------------
    # Non-sync one-shot actions
    # ------------------------------------------------------------------

    def _do_sleep(self, gcpu, task, action):
        # The sleep is complete once the timer fires; clear the
        # action now so the wakeup resumes at the next one.
        task.action = None
        self.kernel.timers.arm_sleep(task, action.duration_ns)
        self.kernel._block_current(gcpu)
        return False

    def _do_mark(self, gcpu, task, action):
        task.action = None
        action.callback(task, self.kernel.sim.now)
        return True

    def _do_yield(self, gcpu, task, action):
        task.action = None
        if gcpu.rq.nr_ready == 0:
            return True
        self.kernel._preempt_current(gcpu)
        return False
