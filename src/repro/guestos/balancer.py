"""Guest-level load balancing: wake placement, periodic and idle pulls.

Vanilla Linux behaviour, with the two semantic gaps the paper identifies
left intact:

1. hypervisor-level imbalance (a preempted vCPU) creates **no** guest
   imbalance signal, so nothing triggers;
2. only READY tasks can be pulled — the task frozen "running" on a
   preempted vCPU is untouchable.

The IRS modification (Section 3.3, Figure 4) changes only wake
placement: when the waking task's previous vCPU currently runs an
IRS-migrated (tagged) task, the waker stays home and preempts the tagged
task instead of being migrated out — killing the ping-pong pattern and
preserving locality.
"""


class GuestBalancer:
    """Load-balancing decisions for one guest kernel."""

    def __init__(self, kernel, policy, irs_wake_rule=False):
        self.kernel = kernel
        self.policy = policy
        # True when the IRS ping-pong avoidance is active.
        self.irs_wake_rule = irs_wake_rule

    # ------------------------------------------------------------------
    # Wake placement
    # ------------------------------------------------------------------

    def select_gcpu_for_wake(self, task):
        """Pick the guest CPU a waking task should be enqueued on.

        Returns ``(gcpu, preempt_in_place)``; the second element is True
        only under the IRS wake rule, when the waker should preempt the
        tagged task currently occupying its home CPU.
        """
        gcpus = self.kernel.online_gcpus()
        prev = task.gcpu if task.gcpu is not None else gcpus[0]
        if not prev.online:
            prev = gcpus[0]

        # Previous CPU idle: always best (cache locality, no preemption).
        if prev.is_guest_idle:
            return prev, False

        # IRS rule: a tagged occupant of the home CPU is an intruder
        # parked there by the migrator; wake in place and preempt it.
        if self.irs_wake_rule and prev.current is not None \
                and prev.current.irs_tag:
            return prev, True

        # Vanilla: prefer any guest-idle sibling.
        for gcpu in gcpus:
            if gcpu.is_guest_idle:
                return gcpu, False

        # Everyone is busy: pick the least-loaded CPU by rt_avg plus
        # queue depth (Linux folds steal time into rt_avg, which is how
        # the guest "senses" hypervisor contention — the ab discussion
        # in Section 5.3).
        best = min(gcpus, key=lambda g: g.load_metric())
        return best, False

    # ------------------------------------------------------------------
    # Pull balancing (periodic + idle)
    # ------------------------------------------------------------------

    def _pullable(self, task, now):
        """READY, not cache hot. Running tasks are invisible here —
        that is the semantic gap."""
        return (now - task.last_descheduled >=
                self.policy.config.cache_hot_ns)

    def find_pull_candidate(self, local, now, ignore_cache_hot=False):
        """A task worth pulling onto ``local`` from the busiest sibling
        runqueue, or None. Used by both periodic and idle balancing."""
        busiest = None
        busiest_ready = 0
        for gcpu in self.kernel.gcpus:
            if gcpu is local or not gcpu.online:
                continue
            ready = gcpu.rq.nr_ready
            if ready > busiest_ready:
                busiest, busiest_ready = gcpu, ready
        if busiest is None:
            return None
        local_load = local.rq.nr_ready + (1 if local.current else 0)
        if busiest_ready <= local_load:
            return None
        # Pull the coldest eligible task (scan from the right: largest
        # vruntime ran longest ago).
        for task in reversed(busiest.rq.tasks()):
            if ignore_cache_hot or self._pullable(task, now):
                return task
        return None

    def periodic_balance(self, gcpu, now):
        """Periodic pull toward ``gcpu``. Returns the migrated task."""
        task = self.find_pull_candidate(gcpu, now)
        if task is None:
            return None
        self.kernel.pull_task(task, gcpu)
        return task

    def idle_balance(self, gcpu, now):
        """A CPU about to idle tries harder: cache hotness is ignored
        (idle beats cold caches). Returns the migrated task."""
        task = self.find_pull_candidate(gcpu, now, ignore_cache_hot=True)
        if task is None:
            return None
        self.kernel.pull_task(task, gcpu)
        return task
