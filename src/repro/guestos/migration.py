"""Vanilla-Linux task migration (``migration_cpu_stop`` equivalent).

Migrating the *currently running* task of a CPU requires the stopper
thread to run **on that CPU**: it preempts the task, moves it, and kicks
the destination. When the host vCPU has been preempted by the
hypervisor, the stop work can only execute once the vCPU is scheduled
again — which is exactly why Figure 1(b)'s migration latency grows by
one Xen time slice per co-located VM.

This module also provides the measurement probe used to regenerate that
figure.
"""

from ..simkernel.units import MS, US
from .task import TASK_READY, TASK_RUNNING

# Cost of waking the stopper thread, two context switches, and runqueue
# lock handoff when the source vCPU is already running (the ~1 ms
# "alone" baseline of Figure 1(b)).
DEFAULT_STOPPER_LATENCY_NS = 1 * MS
# Extra cost once a previously preempted vCPU finally runs the stopper.
DEFAULT_RESUME_OVERHEAD_NS = 100 * US


class MigrationRequest:
    """One in-flight ``__migrate_task`` request."""

    def __init__(self, task, dest_gcpu, issued_at, on_complete):
        self.task = task
        self.dest_gcpu = dest_gcpu
        self.issued_at = issued_at
        self.on_complete = on_complete
        self.completed_at = None

    @property
    def latency_ns(self):
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


class MigrationStopper:
    """Executes migration requests with stock-Linux semantics."""

    def __init__(self, sim, kernel,
                 stopper_latency_ns=DEFAULT_STOPPER_LATENCY_NS,
                 resume_overhead_ns=DEFAULT_RESUME_OVERHEAD_NS):
        self.sim = sim
        self.kernel = kernel
        self.stopper_latency_ns = stopper_latency_ns
        self.resume_overhead_ns = resume_overhead_ns
        self.completed = []

    def request(self, task, dest_gcpu, on_complete=None):
        """Migrate ``task`` to ``dest_gcpu`` the way vanilla Linux would.
        Returns the :class:`MigrationRequest` (poll ``latency_ns``)."""
        request = MigrationRequest(task, dest_gcpu, self.sim.now, on_complete)
        source = task.gcpu
        if task.state == TASK_READY:
            # Fast path: a queued task moves without the stopper.
            self.sim.after(self.resume_overhead_ns,
                           self._finish_ready, request)
        elif task.state == TASK_RUNNING and source is not None:
            if source.run_started_at is not None:
                # The source vCPU is running: the stopper just needs to
                # be woken and switched to.
                self.sim.after(self.stopper_latency_ns,
                               self._run_stop_work, request)
            else:
                # The source vCPU is preempted. The stop work can only
                # run when the hypervisor schedules the vCPU again; it
                # is queued as dispatch-time pending work.
                source.pending_work.append(
                    lambda: self._stop_work_at_dispatch(request))
        else:
            raise RuntimeError('cannot migrate %s in state %s'
                               % (task.name, task.state))
        return request

    # ------------------------------------------------------------------

    def _finish_ready(self, request):
        task = request.task
        if task.state != TASK_READY:
            return  # it ran or slept meanwhile; treat as abandoned
        self.kernel.pull_task(task, request.dest_gcpu)
        self._complete(request)

    def _run_stop_work(self, request):
        """Stopper executing on a running source vCPU."""
        task = request.task
        source = task.gcpu
        if not (task.state == TASK_RUNNING and source is not None
                and source.current is task):
            return
        self._deschedule_and_move(request)

    def _stop_work_at_dispatch(self, request):
        """Deferred stop work, now running because the vCPU came back."""
        task = request.task
        source = task.gcpu
        if not (task.state == TASK_RUNNING and source is not None
                and source.current is task):
            return
        self.sim.after(self.resume_overhead_ns,
                       self._run_stop_work, request)

    def _deschedule_and_move(self, request):
        task = request.task
        source = task.gcpu
        kernel = self.kernel
        kernel._checkpoint(source)
        kernel.ticks.cancel_quantum(source)
        if task.spinning:
            kernel.machine.notify_spin_stop(source.vcpu)
        task.state = TASK_READY
        task.last_descheduled = self.sim.now
        source.current = None
        source.rq.enqueue(task)
        kernel.pull_task(task, request.dest_gcpu)
        # Kick the destination vCPU if it idles.
        dest_vcpu = request.dest_gcpu.vcpu
        if dest_vcpu.is_blocked:
            kernel.machine.wake_vcpu(dest_vcpu)
        self._complete(request)
        kernel._schedule(source)

    def _complete(self, request):
        request.completed_at = self.sim.now
        self.completed.append(request)
        self.sim.trace.count('guest.stopper_migrations')
        if request.on_complete is not None:
            request.on_complete(request)
