"""Per-vCPU guest CPU state.

A :class:`GuestCpu` is the guest kernel's view of one vCPU: runqueue,
current task, timer handles, load tracking, and the hotplug/SA flags
the rest of the guest layer keys off.
"""

from .loadavg import RtAvgTracker
from .runqueue import RunQueue


class GuestCpu:
    """Per-vCPU guest state: runqueue, current task, timers, load."""

    def __init__(self, kernel, vcpu, index):
        self.kernel = kernel
        self.vcpu = vcpu
        self.index = index
        self.name = '%s.cpu%d' % (kernel.vm.name, index)
        self.rq = RunQueue(self)
        self.current = None
        # Simulation time when the current task's live stint began;
        # None whenever the task is not actually consuming cycles.
        self.run_started_at = None
        self.quantum_event = None
        self.tick_event = None
        self.tick_count = 0
        self.rt = RtAvgTracker(vcpu, kernel.sim)
        # Stopper work (e.g. migration requests) run at next dispatch.
        self.pending_work = []
        self.in_sa_handler = False
        self.busy_ns = 0
        # Guest CPU hotplug state: offline CPUs take no tasks and are
        # skipped by balancing and by the IRS migrator (Algorithm 2
        # iterates *online* vCPUs).
        self.online = True

    @property
    def is_guest_idle(self):
        """Idle from the *guest's* point of view: nothing current and
        nothing queued. Says nothing about the hypervisor runstate."""
        return self.current is None and self.rq.nr_ready == 0

    def load_metric(self):
        """Busyness for placement decisions: decayed busy+steal fraction
        plus live task count."""
        return (self.rt.update() + self.rq.nr_ready +
                (1 if self.current is not None else 0))

    def __repr__(self):
        cur = self.current.name if self.current else 'idle'
        return '<GuestCpu %s cur=%s ready=%d>' % (
            self.name, cur, self.rq.nr_ready)
