"""The guest kernel: task execution, CFS scheduling, and the
paravirtual interface to the hypervisor.

One :class:`GuestKernel` per VM. Each vCPU gets a :class:`GuestCpu`
(runqueue + current task + timers). Execution is charged between events
in integer nanoseconds; when the hypervisor deschedules a vCPU the
guest's view simply freezes — its current task stays "running" and its
timer ticks stop — which is precisely the semantic gap IRS bridges.

The IRS guest components (``repro.core``) plug in through three hooks:
``sa_begin`` / ``sa_context_switch`` / ``sa_ack`` plus
``migrate_limbo_task`` for the migrator.
"""

from ..hypervisor.hypercalls import SCHEDOP_BLOCK, SCHEDOP_YIELD
from ..workloads import actions as act
from ..workloads import sync
from .balancer import GuestBalancer
from .cfs import CfsConfig, CfsPolicy
from .loadavg import RtAvgTracker
from .runqueue import RunQueue
from .task import (
    TASK_EXITED,
    TASK_MIGRATING,
    TASK_READY,
    TASK_RUNNING,
    TASK_SLEEPING,
    Task,
)
from .timers import TimerService

# Safety valve: a program may chain zero-cost actions (marks, lock ops),
# but an unbounded chain means a broken workload definition.
_MAX_ZERO_TIME_ACTIONS = 100_000


class GuestCpu:
    """Per-vCPU guest state: runqueue, current task, timers, load."""

    def __init__(self, kernel, vcpu, index):
        self.kernel = kernel
        self.vcpu = vcpu
        self.index = index
        self.name = '%s.cpu%d' % (kernel.vm.name, index)
        self.rq = RunQueue(self)
        self.current = None
        # Simulation time when the current task's live stint began;
        # None whenever the task is not actually consuming cycles.
        self.run_started_at = None
        self.quantum_event = None
        self.tick_event = None
        self.tick_count = 0
        self.rt = RtAvgTracker(vcpu, kernel.sim)
        # Stopper work (e.g. migration requests) run at next dispatch.
        self.pending_work = []
        self.in_sa_handler = False
        self.busy_ns = 0
        # Guest CPU hotplug state: offline CPUs take no tasks and are
        # skipped by balancing and by the IRS migrator (Algorithm 2
        # iterates *online* vCPUs).
        self.online = True

    @property
    def is_guest_idle(self):
        """Idle from the *guest's* point of view: nothing current and
        nothing queued. Says nothing about the hypervisor runstate."""
        return self.current is None and self.rq.nr_ready == 0

    def load_metric(self):
        """Busyness for placement decisions: decayed busy+steal fraction
        plus live task count."""
        return (self.rt.update() + self.rq.nr_ready +
                (1 if self.current is not None else 0))

    def __repr__(self):
        cur = self.current.name if self.current else 'idle'
        return '<GuestCpu %s cur=%s ready=%d>' % (
            self.name, cur, self.rq.nr_ready)


class GuestKernel:
    """A Linux-like kernel driving the tasks of one VM."""

    def __init__(self, sim, vm, machine, cfs_config=None):
        self.sim = sim
        self.vm = vm
        self.machine = machine
        self.hypercalls = machine.hypercalls
        self.policy = CfsPolicy(cfs_config or CfsConfig())
        self.gcpus = []
        for i, vcpu in enumerate(vm.vcpus):
            gcpu = GuestCpu(self, vcpu, i)
            vcpu.gcpu = gcpu
            self.gcpus.append(gcpu)
        self.balancer = GuestBalancer(self, self.policy)
        self.timers = TimerService(sim, self)
        self.tasks = []
        # IRS receiver, installed by repro.core.install_irs.
        self.sa_receiver = None
        # Pull-based IRS (Section 6 future work), installed by
        # repro.core.pull_irs.install_pull_irs.
        self.pull_migrator = None
        # Delay-preemption manager (Uhlig et al. baseline), installed
        # by repro.hypervisor.delayed_preempt.install_delayed_preemption.
        self.delay_preempt = None
        vm.attach_guest(self)

    # ==================================================================
    # Task lifecycle
    # ==================================================================

    def spawn(self, name, program, gcpu_index=None, weight=None,
              cache_footprint=1.0, on_exit=None):
        """Create a task and make it runnable on ``gcpu_index`` (or
        round-robin). Returns the :class:`Task`."""
        kwargs = {'cache_footprint': cache_footprint, 'on_exit': on_exit}
        if weight is not None:
            kwargs['weight'] = weight
        task = Task(name, program, **kwargs)
        self.tasks.append(task)
        if gcpu_index is None:
            gcpu_index = (len(self.tasks) - 1) % len(self.gcpus)
        target = self.gcpus[gcpu_index]
        task.gcpu = target
        self.wake_task(task, target=target)
        return task

    def wake_task(self, task, target=None, preempt_in_place=None):
        """Make a sleeping (or migrator-limbo) task runnable.

        Without an explicit ``target`` the wake balancer picks one.
        Returns True if the task was woken."""
        if task.state not in (TASK_SLEEPING, TASK_MIGRATING):
            return False
        if target is None:
            target, preempt = self.balancer.select_gcpu_for_wake(task)
        else:
            preempt = bool(preempt_in_place)
        task.wakeups += 1
        task.vruntime = self.policy.place_waking_vruntime(task, target.rq)
        task.state = TASK_READY
        task.gcpu = target
        target.rq.enqueue(task)
        self.sim.trace.count('guest.wakeups')

        vcpu = target.vcpu
        if vcpu.is_blocked:
            # Idle vCPU: kick it through the hypervisor (wake boosting
            # applies, so it typically preempts a CPU hog promptly).
            self.machine.wake_vcpu(vcpu)
        elif vcpu.is_running and not target.in_sa_handler:
            if target.current is None:
                self._schedule(target)
            elif preempt or self.policy.should_preempt_on_wake(
                    target.current, task):
                self._preempt_current(target)
        # else: the vCPU is runnable (preempted at the hypervisor). The
        # enqueue stands but the resched interrupt pends — the task
        # waits for the vCPU, a lock-waiter preemption in the making.
        return True

    def pull_task(self, task, dest):
        """Balancer pull of a READY task onto ``dest``."""
        src = task.gcpu
        src.rq.dequeue(task)
        self._apply_migration_penalty(task)
        task.migrations += 1
        task.gcpu = dest
        task.vruntime = self.policy.place_waking_vruntime(task, dest.rq)
        dest.rq.enqueue(task)
        self.sim.trace.count('guest.pulls')

    def _apply_migration_penalty(self, task):
        """Cold caches: extend the in-flight compute segment."""
        if isinstance(task.action, act.Compute) and task.remaining_ns > 0:
            penalty = int(self.policy.config.migration_penalty_ns *
                          task.cache_footprint)
            task.remaining_ns += penalty

    # ==================================================================
    # Hypervisor interface (called by the credit scheduler)
    # ==================================================================

    def vcpu_started_running(self, vcpu):
        """Our vCPU got a pCPU: run stopper work, then resume."""
        gcpu = vcpu.gcpu
        while gcpu.pending_work:
            work = gcpu.pending_work.pop(0)
            work()
        if gcpu.current is not None:
            gcpu.run_started_at = self.sim.now
            self._arm_tick(gcpu)
            self._run_current(gcpu)
        else:
            self._schedule(gcpu)

    def vcpu_stopped_running(self, vcpu):
        """Our vCPU lost its pCPU: checkpoint and freeze."""
        gcpu = vcpu.gcpu
        self._checkpoint(gcpu)
        self._cancel_quantum(gcpu)
        self._cancel_tick(gcpu)
        gcpu.run_started_at = None

    def deliver_virq(self, vcpu, virq):
        """A virtual interrupt arrived for ``vcpu``."""
        if self.sa_receiver is not None:
            self.sa_receiver.on_virq(vcpu.gcpu, virq)

    # ==================================================================
    # Core scheduling
    # ==================================================================

    def _schedule(self, gcpu):
        """Pick the next task on ``gcpu`` (vCPU must be running)."""
        next_task = gcpu.rq.pop_min()
        if next_task is None:
            pulled = self.balancer.idle_balance(gcpu, self.sim.now)
            if pulled is not None:
                next_task = gcpu.rq.pop_min()
        if next_task is None and self.pull_migrator is not None:
            # Pull-based IRS: steal the frozen current task of a
            # preempted sibling vCPU rather than going idle.
            pulled = self.pull_migrator.try_pull(gcpu)
            if pulled is not None:
                next_task = gcpu.rq.pop_min()
        if next_task is None:
            self._go_idle(gcpu)
            return
        next_task.state = TASK_RUNNING
        next_task.stint_ns = 0
        next_task.gcpu = gcpu
        if next_task.started_at is None:
            next_task.started_at = self.sim.now
        gcpu.current = next_task
        gcpu.run_started_at = self.sim.now
        self._arm_tick(gcpu)
        self._run_current(gcpu)

    def _go_idle(self, gcpu):
        """Nothing to run: block the vCPU at the hypervisor."""
        self._cancel_tick(gcpu)
        gcpu.run_started_at = None
        if self.pull_migrator is not None:
            self.pull_migrator.on_idle(gcpu)
        self.hypercalls.sched_op(gcpu.vcpu, SCHEDOP_BLOCK)

    def _run_current(self, gcpu):
        """Drive the current task until it computes, spins, blocks,
        exits, or loses the CPU."""
        guard = 0
        while True:
            task = gcpu.current
            if task is None or gcpu.run_started_at is None:
                return
            if task.spinning:
                self.machine.notify_spin_start(gcpu.vcpu)
                return
            action = task.action
            if action is None:
                action = task.next_action(task.mailbox)
                task.mailbox = None
                if action is None:
                    self._exit_current(gcpu)
                    return
                task.action = action
                if isinstance(action, act.Compute):
                    task.remaining_ns = action.duration_ns
            if isinstance(action, act.Compute):
                if task.remaining_ns <= 0:
                    task.action = None
                    continue
                self._arm_quantum(gcpu)
                return
            guard += 1
            if guard > _MAX_ZERO_TIME_ACTIONS:
                raise RuntimeError(
                    '%s chained %d zero-time actions; add Compute steps'
                    % (task.name, guard))
            if not self._do_oneshot(gcpu, task, action):
                return
            if gcpu.current is not task:
                # A wakeup we triggered preempted us.
                return

    def _exit_current(self, gcpu):
        task = gcpu.current
        self._checkpoint(gcpu)
        self._cancel_quantum(gcpu)
        task.state = TASK_EXITED
        task.finished_at = self.sim.now
        gcpu.current = None
        self.sim.trace.count('guest.task_exits')
        if task.on_exit is not None:
            task.on_exit(task, self.sim.now)
        self._schedule(gcpu)

    def _preempt_current(self, gcpu):
        """CFS-level preemption: current goes back to the runqueue."""
        task = gcpu.current
        if task is None:
            return
        self._checkpoint(gcpu)
        self._cancel_quantum(gcpu)
        if task.spinning:
            self.machine.notify_spin_stop(gcpu.vcpu)
        task.state = TASK_READY
        task.last_descheduled = self.sim.now
        gcpu.current = None
        gcpu.rq.enqueue(task)
        self._schedule(gcpu)

    def _block_current(self, gcpu):
        """Current task sleeps (lock/barrier/queue/timer wait)."""
        task = gcpu.current
        self._checkpoint(gcpu)
        self._cancel_quantum(gcpu)
        task.state = TASK_SLEEPING
        task.last_descheduled = self.sim.now
        gcpu.current = None
        self._schedule(gcpu)

    # ==================================================================
    # One-shot action interpretation
    # ==================================================================

    def _do_oneshot(self, gcpu, task, action):
        """Execute a zero-time action. Returns True when the task can
        continue executing (action consumed)."""
        if isinstance(action, act.Acquire):
            return self._do_acquire(gcpu, task, action.lock)
        if isinstance(action, act.Release):
            task.action = None
            self._do_release(gcpu, task, action.lock)
            return True
        if isinstance(action, (act.AcquireRead, act.AcquireWrite)):
            return self._do_rw_acquire(gcpu, task, action)
        if isinstance(action, (act.ReleaseRead, act.ReleaseWrite)):
            task.action = None
            self._do_rw_release(gcpu, task, action)
            return True
        if isinstance(action, act.BarrierWait):
            return self._do_barrier(gcpu, task, action.barrier)
        if isinstance(action, act.QueuePut):
            return self._do_queue_put(gcpu, task, action)
        if isinstance(action, act.QueueGet):
            return self._do_queue_get(gcpu, task, action.queue)
        if isinstance(action, act.Sleep):
            # The sleep is complete once the timer fires; clear the
            # action now so the wakeup resumes at the next one.
            task.action = None
            self.timers.arm_sleep(task, action.duration_ns)
            self._block_current(gcpu)
            return False
        if isinstance(action, act.Mark):
            task.action = None
            action.callback(task, self.sim.now)
            return True
        if isinstance(action, act.YieldCpu):
            task.action = None
            if gcpu.rq.nr_ready == 0:
                return True
            self._preempt_current(gcpu)
            return False
        raise TypeError('unknown action %r' % (action,))

    def _do_acquire(self, gcpu, task, lock):
        if isinstance(lock, sync.SpinLock):
            status = lock.acquire(task)
            if status == sync.ACQUIRED:
                task.action = None
                self._notify_lock_acquired(gcpu)
                return True
            task.spinning = True
            self.machine.notify_spin_start(gcpu.vcpu)
            self.sim.trace.count('guest.spin_waits')
            return False
        status = lock.acquire(task)
        if status == sync.ACQUIRED:
            task.action = None
            self._notify_lock_acquired(gcpu)
            return True
        self.sim.trace.count('guest.block_waits')
        self._block_current(gcpu)
        return False

    def _do_rw_acquire(self, gcpu, task, action):
        if isinstance(action, act.AcquireRead):
            status = action.lock.acquire_read(task)
        else:
            status = action.lock.acquire_write(task)
        if status == sync.ACQUIRED:
            task.action = None
            self._notify_lock_acquired(gcpu)
            return True
        self.sim.trace.count('guest.block_waits')
        self._block_current(gcpu)
        return False

    def _do_rw_release(self, gcpu, task, action):
        self._notify_lock_released(gcpu)
        if isinstance(action, act.ReleaseRead):
            woken = action.lock.release_read(task)
        else:
            woken = action.lock.release_write(task)
        for other in woken:
            other.action = None
            self._notify_grantee_lock(other)
            self.wake_task(other)

    def _notify_lock_acquired(self, gcpu):
        if self.delay_preempt is not None:
            self.delay_preempt.lock_acquired(gcpu.current)

    def _notify_lock_released(self, gcpu):
        if self.delay_preempt is not None:
            self.delay_preempt.lock_released(gcpu.current)

    def _do_release(self, gcpu, task, lock):
        self._notify_lock_released(gcpu)
        if isinstance(lock, sync.SpinLock):
            grantee = lock.release(task, self._actively_spinning)
            if grantee is not None:
                self._grant_spin(grantee)
                self._notify_grantee_lock(grantee)
        else:
            new_owner = lock.release(task)
            if new_owner is not None:
                new_owner.action = None
                self._notify_grantee_lock(new_owner)
                self.wake_task(new_owner)

    def _notify_grantee_lock(self, grantee):
        """Lock ownership passed directly to a waiter: it is now in a
        critical section wherever it runs."""
        if self.delay_preempt is not None:
            self.delay_preempt.lock_acquired(grantee)

    def _actively_spinning(self, task):
        """Predicate for unfair spinlocks: is this spinner's pause loop
        actually executing right now?"""
        gcpu = task.gcpu
        return (gcpu is not None and gcpu.current is task and
                gcpu.run_started_at is not None)

    def _grant_spin(self, grantee):
        """A spinner won a lock: stop the pause loop and continue."""
        grantee.spinning = False
        grantee.action = None
        gcpu = grantee.gcpu
        if gcpu.current is grantee and gcpu.run_started_at is not None:
            self.machine.notify_spin_stop(gcpu.vcpu)
            self._run_current(gcpu)
        # Otherwise the grantee's vCPU is preempted: it now *holds* the
        # lock while frozen — lock-waiter turned lock-holder preemption.

    def _do_barrier(self, gcpu, task, barrier):
        status, released = barrier.wait(task)
        if status == sync.PASS:
            task.action = None
            for other in released:
                if barrier.mode == 'block':
                    other.action = None
                    self.wake_task(other)
                else:
                    self._grant_spin(other)
            return True
        if status == sync.WAIT:
            self.sim.trace.count('guest.block_waits')
            self._block_current(gcpu)
            return False
        # status == SPIN
        task.spinning = True
        self.machine.notify_spin_start(gcpu.vcpu)
        self.sim.trace.count('guest.spin_waits')
        return False

    def _do_queue_put(self, gcpu, task, action):
        status, consumer = action.queue.put(task, action.item)
        if status == sync.PASS:
            task.action = None
            if consumer is not None:
                consumer.action = None
                self.wake_task(consumer)
            return True
        self._block_current(gcpu)
        return False

    def _do_queue_get(self, gcpu, task, queue):
        status, item, producer = queue.get(task)
        if status == sync.PASS:
            task.action = None
            task.mailbox = item
            if producer is not None:
                producer.action = None
                self.wake_task(producer)
            return True
        self._block_current(gcpu)
        return False

    # ==================================================================
    # Time accounting and periodic machinery
    # ==================================================================

    def _checkpoint(self, gcpu):
        """Charge the open execution interval to the current task."""
        task = gcpu.current
        if task is None or gcpu.run_started_at is None:
            return
        delta = self.sim.now - gcpu.run_started_at
        if delta > 0:
            task.charge(delta)
            if isinstance(task.action, act.Compute) and not task.spinning:
                task.remaining_ns = max(0, task.remaining_ns - delta)
            gcpu.busy_ns += delta
        gcpu.run_started_at = self.sim.now
        gcpu.rq.update_min_vruntime(task)

    def _arm_quantum(self, gcpu):
        self._cancel_quantum(gcpu)
        task = gcpu.current
        gcpu.quantum_event = self.sim.after(
            task.remaining_ns, self._on_quantum, gcpu)

    def _cancel_quantum(self, gcpu):
        if gcpu.quantum_event is not None:
            gcpu.quantum_event.cancel()
            gcpu.quantum_event = None

    def _on_quantum(self, gcpu):
        gcpu.quantum_event = None
        if gcpu.run_started_at is None or not gcpu.vcpu.is_running:
            return
        self._checkpoint(gcpu)
        task = gcpu.current
        if task is not None and isinstance(task.action, act.Compute) \
                and task.remaining_ns <= 0:
            task.action = None
        self._run_current(gcpu)

    def _arm_tick(self, gcpu):
        if gcpu.tick_event is None or not gcpu.tick_event.pending:
            gcpu.tick_event = self.sim.after(
                self.policy.config.tick_ns, self._on_tick, gcpu)

    def _cancel_tick(self, gcpu):
        if gcpu.tick_event is not None:
            gcpu.tick_event.cancel()
            gcpu.tick_event = None

    def _on_tick(self, gcpu):
        """Guest timer tick: accounting, balancing, CFS preemption."""
        gcpu.tick_event = None
        if not gcpu.vcpu.is_running or gcpu.in_sa_handler:
            return
        gcpu.tick_count += 1
        self._arm_tick(gcpu)
        gcpu.rt.update()
        task = gcpu.current
        if task is None:
            return
        self._checkpoint(gcpu)
        if gcpu.tick_count % self.policy.config.balance_interval_ticks == 0:
            self.balancer.periodic_balance(gcpu, self.sim.now)
            if gcpu.rq.nr_ready > 0:
                self._nohz_kick(gcpu)
        if gcpu.current is task and self.policy.should_resched_at_tick(
                task, gcpu.rq):
            self._preempt_current(gcpu)

    def _nohz_kick(self, busy_gcpu):
        """NOHZ idle balancing: a busy CPU with queued work kicks one
        guest-idle sibling so it can wake up and pull (Linux's
        ``nohz_balancer_kick``). Without this, a vCPU idled by an IRS
        evacuation — or by ordinary blocking — would never reclaim
        work, because idle CPUs take no ticks."""
        for gcpu in self.gcpus:
            if gcpu is busy_gcpu or not gcpu.online:
                continue
            if not gcpu.is_guest_idle:
                continue
            if gcpu.vcpu.is_blocked:
                self.sim.trace.count('guest.nohz_kicks')
                self.machine.wake_vcpu(gcpu.vcpu)
                return

    # ==================================================================
    # CPU hotplug
    # ==================================================================

    def offline_gcpu(self, index):
        """Take a guest CPU offline: its tasks are migrated to the
        remaining online CPUs and the vCPU is parked (like Linux
        ``echo 0 > /sys/devices/system/cpu/cpuN/online``)."""
        gcpu = self.gcpus[index]
        if not gcpu.online:
            return
        survivors = [g for g in self.gcpus if g is not gcpu and g.online]
        if not survivors:
            raise RuntimeError('cannot offline the last online CPU')
        gcpu.online = False
        self.sim.trace.count('guest.cpu_offline')
        # Evacuate queued tasks.
        for i, task in enumerate(gcpu.rq.tasks()):
            self.pull_task(task, survivors[i % len(survivors)])
        # Evacuate the current task (stop-machine style: we may do it
        # directly because the vCPU is under our control).
        task = gcpu.current
        if task is not None:
            self._checkpoint(gcpu)
            self._cancel_quantum(gcpu)
            if task.spinning:
                self.machine.notify_spin_stop(gcpu.vcpu)
            task.state = TASK_READY
            task.last_descheduled = self.sim.now
            gcpu.current = None
            gcpu.rq.enqueue(task)
            self.pull_task(task, survivors[0])
            target = survivors[0]
            if target.vcpu.is_blocked:
                self.machine.wake_vcpu(target.vcpu)
        # Park the vCPU if it is running.
        if gcpu.vcpu.is_running:
            self._go_idle(gcpu)

    def online_gcpu(self, index):
        """Bring a guest CPU back online; balancing will repopulate it
        (NOHZ kicks / periodic pulls)."""
        gcpu = self.gcpus[index]
        if gcpu.online:
            return
        gcpu.online = True
        self.sim.trace.count('guest.cpu_online')

    def online_gcpus(self):
        return [g for g in self.gcpus if g.online]

    # ==================================================================
    # IRS hooks (used by repro.core)
    # ==================================================================

    def sa_begin(self, gcpu):
        """SA upcall arrived: pause the current task's accounting while
        the handler runs (handler time is kernel time)."""
        self._checkpoint(gcpu)
        self._cancel_quantum(gcpu)
        if gcpu.current is not None and gcpu.current.spinning:
            self.machine.notify_spin_stop(gcpu.vcpu)
        gcpu.run_started_at = None
        gcpu.in_sa_handler = True

    def sa_context_switch(self, gcpu):
        """Deschedule the current task into migrator limbo. Returns
        ``(op, task)`` where op is the SCHEDOP to answer with."""
        task = gcpu.current
        if task is not None:
            task.state = TASK_MIGRATING
            task.irs_tag = True
            task.last_descheduled = self.sim.now
            gcpu.current = None
        op = SCHEDOP_YIELD if gcpu.rq.nr_ready > 0 else SCHEDOP_BLOCK
        return op, task

    def sa_ack(self, gcpu, op):
        """Return control to the hypervisor (Algorithm 1 line 15)."""
        gcpu.in_sa_handler = False
        self.hypercalls.sched_op(gcpu.vcpu, op)

    def migrate_limbo_task(self, task, target_gcpu, preempt_in_place=False):
        """Place a migrator-limbo task on ``target_gcpu``."""
        if task.state != TASK_MIGRATING:
            return False
        self._apply_migration_penalty(task)
        task.migrations += 1
        self.sim.trace.count('irs.migrations')
        return self.wake_task(task, target=target_gcpu,
                              preempt_in_place=preempt_in_place)

    # ==================================================================
    # Introspection helpers
    # ==================================================================

    def total_busy_ns(self):
        """CPU time consumed by this VM's tasks (open stints included)."""
        total = 0
        for gcpu in self.gcpus:
            total += gcpu.busy_ns
            if gcpu.current is not None and gcpu.run_started_at is not None:
                total += self.sim.now - gcpu.run_started_at
        return total

    def live_tasks(self):
        return [t for t in self.tasks if t.state != TASK_EXITED]
