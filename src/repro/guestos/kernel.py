"""The guest kernel: the lean scheduling core of one VM.

It owns task lifecycle and CFS dispatch (wake/schedule/preempt/block)
and composes the rest of the guest layer as cohesive engines:
:class:`~repro.guestos.interp.ActionInterpreter` (workload-action
execution, the hot path), :class:`~repro.guestos.syncobjects.SyncEngine`
(lock/barrier/queue wait-grant), :class:`~repro.guestos.timers.TickDriver`
(quantum/tick/NOHZ) and :class:`~repro.guestos.cpumask.CpuHotplug`.

Execution is charged between events in integer nanoseconds; when the
hypervisor deschedules a vCPU the guest's view simply freezes — its
current task stays "running" and its timer ticks stop — which is
precisely the semantic gap IRS bridges. Optional components plug in
through the typed attach points (:meth:`GuestKernel.attach_sa_receiver`,
:meth:`GuestKernel.attach_pull_migrator`,
:meth:`GuestKernel.attach_delay_preempt`) and the IRS hooks
``sa_begin`` / ``sa_context_switch`` / ``sa_ack`` /
``migrate_limbo_task``.
"""

from ..hypervisor.hypercalls import SCHEDOP_BLOCK, SCHEDOP_YIELD
from ..workloads import actions as act
from .balancer import GuestBalancer
from .cfs import CfsConfig, CfsPolicy
from .cpumask import CpuHotplug
from .gcpu import GuestCpu
from .interp import ActionInterpreter
from .syncobjects import SyncEngine
from .task import (TASK_EXITED, TASK_MIGRATING, TASK_READY, TASK_RUNNING,
                   TASK_SLEEPING, Task)
from .timers import TickDriver, TimerService


class GuestKernel:
    """A Linux-like kernel driving the tasks of one VM."""

    def __init__(self, sim, vm, machine, cfs_config=None):
        self.sim = sim
        self.vm = vm
        self.machine = machine
        self.hypercalls = machine.hypercalls
        self.policy = CfsPolicy(cfs_config or CfsConfig())
        self.gcpus = []
        for i, vcpu in enumerate(vm.vcpus):
            gcpu = GuestCpu(self, vcpu, i)
            vcpu.gcpu = gcpu
            self.gcpus.append(gcpu)
        self.balancer = GuestBalancer(self, self.policy)
        self.timers = TimerService(sim, self)
        self.ticks = TickDriver(self)
        self.sync = SyncEngine(self)
        self.interp = ActionInterpreter(self)
        self.hotplug = CpuHotplug(self)
        self.tasks = []
        # Optional components, wired via the attach points below.
        self.sa_receiver = None      # IRS receiver (repro.core)
        self.pull_migrator = None    # pull-based IRS (repro.core.pull_irs)
        self.delay_preempt = None    # delay-preemption baseline
        vm.attach_guest(self)

    # ==================================================================
    # Typed attach points (no setattr wiring from other layers)
    # ==================================================================

    def attach_sa_receiver(self, receiver, wake_rule=None):
        """Install the guest half of IRS: ``receiver`` handles
        ``VIRQ_SA_UPCALL`` and the VM advertises itself IRS-capable to
        the hypervisor. ``wake_rule`` (when not None) sets the
        balancer's tagged-wakeup preemption rule (Figure 4)."""
        self.sa_receiver = receiver
        self.vm.irs_capable = True
        if wake_rule is not None:
            self.balancer.irs_wake_rule = wake_rule
        return receiver

    def attach_pull_migrator(self, migrator):
        """Install pull-based IRS; idle polls are armed here because
        already-idle vCPUs never pass through the kernel's idle path."""
        self.pull_migrator = migrator
        for gcpu in self.gcpus:
            if gcpu.is_guest_idle:
                migrator.on_idle(gcpu)
        return migrator

    def attach_delay_preempt(self, manager):
        """Install the delay-preemption manager (Uhlig et al.
        baseline); the sync engine brackets critical sections with its
        ``lock_acquired``/``lock_released`` notifications."""
        self.delay_preempt = manager
        return manager

    # ==================================================================
    # Task lifecycle
    # ==================================================================

    def spawn(self, name, program, gcpu_index=None, weight=None,
              cache_footprint=1.0, on_exit=None):
        """Create a task and make it runnable on ``gcpu_index`` (or
        round-robin). Returns the :class:`Task`."""
        kwargs = {'cache_footprint': cache_footprint, 'on_exit': on_exit}
        if weight is not None:
            kwargs['weight'] = weight
        task = Task(name, program, **kwargs)
        self.tasks.append(task)
        if gcpu_index is None:
            gcpu_index = (len(self.tasks) - 1) % len(self.gcpus)
        target = self.gcpus[gcpu_index]
        task.gcpu = target
        self.wake_task(task, target=target)
        return task

    def wake_task(self, task, target=None, preempt_in_place=None):
        """Make a sleeping (or migrator-limbo) task runnable.

        Without an explicit ``target`` the wake balancer picks one.
        Returns True if the task was woken."""
        if task.state not in (TASK_SLEEPING, TASK_MIGRATING):
            return False
        if target is None:
            target, preempt = self.balancer.select_gcpu_for_wake(task)
        else:
            preempt = bool(preempt_in_place)
        task.wakeups += 1
        task.vruntime = self.policy.place_waking_vruntime(task, target.rq)
        task.state = TASK_READY
        task.gcpu = target
        target.rq.enqueue(task)
        self.sim.trace.count('guest.wakeups')

        vcpu = target.vcpu
        if vcpu.is_blocked:
            # Idle vCPU: kick it through the hypervisor (wake boosting
            # applies, so it typically preempts a CPU hog promptly).
            self.machine.wake_vcpu(vcpu)
        elif vcpu.is_running and not target.in_sa_handler:
            if target.current is None:
                self._schedule(target)
            elif preempt or self.policy.should_preempt_on_wake(
                    target.current, task):
                self._preempt_current(target)
        # else: the vCPU is runnable (preempted at the hypervisor). The
        # enqueue stands but the resched interrupt pends — the task
        # waits for the vCPU, a lock-waiter preemption in the making.
        return True

    def pull_task(self, task, dest):
        """Balancer pull of a READY task onto ``dest``."""
        src = task.gcpu
        src.rq.dequeue(task)
        self._apply_migration_penalty(task)
        task.migrations += 1
        task.gcpu = dest
        task.vruntime = self.policy.place_waking_vruntime(task, dest.rq)
        dest.rq.enqueue(task)
        self.sim.trace.count('guest.pulls')

    def _apply_migration_penalty(self, task):
        """Cold caches: extend the in-flight compute segment."""
        if isinstance(task.action, act.Compute) and task.remaining_ns > 0:
            penalty = int(self.policy.config.migration_penalty_ns *
                          task.cache_footprint)
            task.remaining_ns += penalty

    # ==================================================================
    # Hypervisor interface (called by the credit scheduler)
    # ==================================================================

    def vcpu_started_running(self, vcpu):
        """Our vCPU got a pCPU: run stopper work, then resume."""
        gcpu = vcpu.gcpu
        while gcpu.pending_work:
            work = gcpu.pending_work.pop(0)
            work()
        if gcpu.current is not None:
            gcpu.run_started_at = self.sim.now
            self.ticks.arm_tick(gcpu)
            self._run_current(gcpu)
        else:
            self._schedule(gcpu)

    def vcpu_stopped_running(self, vcpu):
        """Our vCPU lost its pCPU: checkpoint and freeze."""
        gcpu = vcpu.gcpu
        self._checkpoint(gcpu)
        self.ticks.cancel_quantum(gcpu)
        self.ticks.cancel_tick(gcpu)
        gcpu.run_started_at = None

    def deliver_virq(self, vcpu, virq):
        """A virtual interrupt arrived for ``vcpu``."""
        if self.sa_receiver is not None:
            self.sa_receiver.on_virq(vcpu.gcpu, virq)

    # ==================================================================
    # Core scheduling
    # ==================================================================

    def _schedule(self, gcpu):
        """Pick the next task on ``gcpu`` (vCPU must be running)."""
        next_task = gcpu.rq.pop_min()
        if next_task is None:
            pulled = self.balancer.idle_balance(gcpu, self.sim.now)
            if pulled is not None:
                next_task = gcpu.rq.pop_min()
        if next_task is None and self.pull_migrator is not None:
            # Pull-based IRS: steal the frozen current task of a
            # preempted sibling vCPU rather than going idle.
            pulled = self.pull_migrator.try_pull(gcpu)
            if pulled is not None:
                next_task = gcpu.rq.pop_min()
        if next_task is None:
            self._go_idle(gcpu)
            return
        next_task.state = TASK_RUNNING
        next_task.stint_ns = 0
        next_task.gcpu = gcpu
        if next_task.started_at is None:
            next_task.started_at = self.sim.now
        gcpu.current = next_task
        gcpu.run_started_at = self.sim.now
        self.ticks.arm_tick(gcpu)
        self._run_current(gcpu)

    def _go_idle(self, gcpu):
        """Nothing to run: block the vCPU at the hypervisor."""
        self.ticks.cancel_tick(gcpu)
        gcpu.run_started_at = None
        if self.pull_migrator is not None:
            self.pull_migrator.on_idle(gcpu)
        self.hypercalls.sched_op(gcpu.vcpu, SCHEDOP_BLOCK)

    def _run_current(self, gcpu):
        """Drive the current task until it computes, spins, blocks,
        exits, or loses the CPU (the interpreter's run loop)."""
        self.interp.run(gcpu)

    def _exit_current(self, gcpu):
        task = gcpu.current
        self._checkpoint(gcpu)
        self.ticks.cancel_quantum(gcpu)
        task.state = TASK_EXITED
        task.finished_at = self.sim.now
        gcpu.current = None
        self.sim.trace.count('guest.task_exits')
        if task.on_exit is not None:
            task.on_exit(task, self.sim.now)
        self._schedule(gcpu)

    def _preempt_current(self, gcpu):
        """CFS-level preemption: current goes back to the runqueue."""
        task = gcpu.current
        if task is None:
            return
        self._checkpoint(gcpu)
        self.ticks.cancel_quantum(gcpu)
        if task.spinning:
            self.machine.notify_spin_stop(gcpu.vcpu)
        task.state = TASK_READY
        task.last_descheduled = self.sim.now
        gcpu.current = None
        gcpu.rq.enqueue(task)
        self._schedule(gcpu)

    def _block_current(self, gcpu):
        """Current task sleeps (lock/barrier/queue/timer wait)."""
        task = gcpu.current
        self._checkpoint(gcpu)
        self.ticks.cancel_quantum(gcpu)
        task.state = TASK_SLEEPING
        task.last_descheduled = self.sim.now
        gcpu.current = None
        self._schedule(gcpu)

    def _checkpoint(self, gcpu):
        """Charge the open execution interval to the current task."""
        task = gcpu.current
        if task is None or gcpu.run_started_at is None:
            return
        delta = self.sim.now - gcpu.run_started_at
        if delta > 0:
            task.charge(delta)
            if isinstance(task.action, act.Compute) and not task.spinning:
                task.remaining_ns = max(0, task.remaining_ns - delta)
            gcpu.busy_ns += delta
        gcpu.run_started_at = self.sim.now
        gcpu.rq.update_min_vruntime(task)

    # CPU hotplug (delegates to the CpuHotplug engine).

    def offline_gcpu(self, index):
        self.hotplug.offline(index)

    def online_gcpu(self, index):
        self.hotplug.online(index)

    def online_gcpus(self):
        return self.hotplug.online_gcpus()

    # ==================================================================
    # IRS hooks (used by repro.core)
    # ==================================================================

    def sa_begin(self, gcpu):
        """SA upcall arrived: pause the current task's accounting while
        the handler runs (handler time is kernel time)."""
        self._checkpoint(gcpu)
        self.ticks.cancel_quantum(gcpu)
        if gcpu.current is not None and gcpu.current.spinning:
            self.machine.notify_spin_stop(gcpu.vcpu)
        gcpu.run_started_at = None
        gcpu.in_sa_handler = True

    def sa_context_switch(self, gcpu):
        """Deschedule the current task into migrator limbo. Returns
        ``(op, task)`` where op is the SCHEDOP to answer with."""
        task = gcpu.current
        if task is not None:
            task.state = TASK_MIGRATING
            task.irs_tag = True
            task.last_descheduled = self.sim.now
            gcpu.current = None
        op = SCHEDOP_YIELD if gcpu.rq.nr_ready > 0 else SCHEDOP_BLOCK
        return op, task

    def sa_ack(self, gcpu, op):
        """Return control to the hypervisor (Algorithm 1 line 15)."""
        gcpu.in_sa_handler = False
        self.hypercalls.sched_op(gcpu.vcpu, op)

    def migrate_limbo_task(self, task, target_gcpu, preempt_in_place=False):
        """Place a migrator-limbo task on ``target_gcpu``."""
        if task.state != TASK_MIGRATING:
            return False
        self._apply_migration_penalty(task)
        task.migrations += 1
        self.sim.trace.count('irs.migrations')
        return self.wake_task(task, target=target_gcpu,
                              preempt_in_place=preempt_in_place)

    def total_busy_ns(self):
        """CPU time consumed by this VM's tasks (open stints included)."""
        total = 0
        for gcpu in self.gcpus:
            total += gcpu.busy_ns
            if gcpu.current is not None and gcpu.run_started_at is not None:
                total += self.sim.now - gcpu.run_started_at
        return total

    def live_tasks(self):
        return [t for t in self.tasks if t.state != TASK_EXITED]
