"""Linux-like guest kernel substrate.

Tasks, per-vCPU CFS runqueues, load tracking with steal time, guest
load balancing, timers, and the migration stopper.
"""

from .balancer import GuestBalancer
from .cfs import CfsConfig, CfsPolicy
from .kernel import GuestCpu, GuestKernel
from .loadavg import RtAvgTracker
from .migration import MigrationRequest, MigrationStopper
from .runqueue import RunQueue
from .task import (
    NICE_0_WEIGHT,
    TASK_EXITED,
    TASK_MIGRATING,
    TASK_READY,
    TASK_RUNNING,
    TASK_SLEEPING,
    Task,
)
from .timers import TimerService

__all__ = [
    'CfsConfig',
    'CfsPolicy',
    'GuestBalancer',
    'GuestCpu',
    'GuestKernel',
    'MigrationRequest',
    'MigrationStopper',
    'NICE_0_WEIGHT',
    'RtAvgTracker',
    'RunQueue',
    'Task',
    'TASK_EXITED',
    'TASK_MIGRATING',
    'TASK_READY',
    'TASK_RUNNING',
    'TASK_SLEEPING',
    'TimerService',
]
