"""Linux-like guest kernel substrate.

Tasks, per-vCPU CFS runqueues, load tracking with steal time, guest
load balancing, timers, and the migration stopper.
"""

from .balancer import GuestBalancer
from .cfs import CfsConfig, CfsPolicy
from .cpumask import CpuHotplug
from .gcpu import GuestCpu
from .interp import ActionInterpreter
from .kernel import GuestKernel
from .loadavg import RtAvgTracker
from .migration import MigrationRequest, MigrationStopper
from .runqueue import RunQueue
from .syncobjects import SyncEngine
from .task import (
    NICE_0_WEIGHT,
    TASK_EXITED,
    TASK_MIGRATING,
    TASK_READY,
    TASK_RUNNING,
    TASK_SLEEPING,
    Task,
)
from .timers import TickDriver, TimerService

__all__ = [
    'ActionInterpreter',
    'CfsConfig',
    'CfsPolicy',
    'CpuHotplug',
    'GuestBalancer',
    'GuestCpu',
    'GuestKernel',
    'SyncEngine',
    'MigrationRequest',
    'MigrationStopper',
    'NICE_0_WEIGHT',
    'RtAvgTracker',
    'RunQueue',
    'Task',
    'TASK_EXITED',
    'TASK_MIGRATING',
    'TASK_READY',
    'TASK_RUNNING',
    'TASK_SLEEPING',
    'TickDriver',
    'TimerService',
]
