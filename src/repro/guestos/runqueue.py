"""Per-vCPU CFS runqueue: ready tasks ordered by virtual runtime."""

from bisect import insort

from .task import TASK_READY


class RunQueue:
    """Holds READY tasks, sorted by (vruntime, tid).

    The currently running task is *not* in the queue — it is
    ``gcpu.current``. That mirrors Linux and matters for the paper's
    second semantic gap: balancing code that scans runqueues simply
    never sees the "running" task of a preempted vCPU.
    """

    def __init__(self, gcpu):
        self.gcpu = gcpu
        self._entries = []           # sorted (vruntime, tid, task)
        self.min_vruntime = 0

    def __len__(self):
        return len(self._entries)

    @property
    def nr_ready(self):
        return len(self._entries)

    def enqueue(self, task):
        """Add a READY task."""
        if task.state != TASK_READY:
            raise RuntimeError('enqueue of %s in state %s'
                               % (task.name, task.state))
        insort(self._entries, (task.vruntime, task.tid, task))

    def dequeue(self, task):
        """Remove a specific task (it must be present)."""
        for i, (__, __, candidate) in enumerate(self._entries):
            if candidate is task:
                del self._entries[i]
                return
        raise RuntimeError('%s not on runqueue of %s'
                           % (task.name, self.gcpu.name))

    def peek_min(self):
        """The ready task with the smallest vruntime, or None."""
        return self._entries[0][2] if self._entries else None

    def pop_min(self):
        """Remove and return the smallest-vruntime task, or None."""
        if not self._entries:
            return None
        __, __, task = self._entries.pop(0)
        return task

    def min_ready_vruntime(self):
        """vruntime of the leftmost ready task, or None."""
        return self._entries[0][0] if self._entries else None

    def tasks(self):
        """Snapshot list of queued tasks, leftmost first."""
        return [task for (__, __, task) in self._entries]

    def update_min_vruntime(self, current):
        """Advance the monotonic ``min_vruntime`` floor (used to place
        waking tasks fairly)."""
        candidates = []
        if current is not None:
            candidates.append(current.vruntime)
        if self._entries:
            candidates.append(self._entries[0][0])
        if candidates:
            self.min_vruntime = max(self.min_vruntime, min(candidates))
