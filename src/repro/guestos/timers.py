"""Guest timer service.

Sleep timers are backed by hypervisor one-shot timers (a paravirtual
guest programs the hypervisor's timer and gets an event-channel kick),
so a timer can wake a task whose VM has every vCPU blocked. The wakeup
then flows through the ordinary ``wake_task`` path, including wake
balancing.
"""


class TimerService:
    """Arms one-shot wakeups for sleeping tasks."""

    def __init__(self, sim, kernel):
        self.sim = sim
        self.kernel = kernel
        self._armed = {}             # task -> Event

    def arm_sleep(self, task, duration_ns):
        """Wake ``task`` after ``duration_ns`` of simulated time."""
        if task in self._armed:
            raise RuntimeError('%s already has a timer armed' % task.name)
        self._armed[task] = self.sim.after(duration_ns, self._fire, task)

    def cancel(self, task):
        """Disarm a pending timer, if any."""
        event = self._armed.pop(task, None)
        if event is not None:
            event.cancel()

    def _fire(self, task):
        self._armed.pop(task, None)
        self.kernel.wake_task(task)

    @property
    def pending(self):
        """Number of armed timers."""
        return len(self._armed)
