"""Guest timer services.

:class:`TimerService` backs task sleeps with hypervisor one-shot timers
(a paravirtual guest programs the hypervisor's timer and gets an
event-channel kick), so a timer can wake a task whose VM has every vCPU
blocked. The wakeup then flows through the ordinary ``wake_task`` path,
including wake balancing.

:class:`TickDriver` owns the per-gCPU periodic machinery: the compute
quantum (the one-shot that fires when the current compute segment
drains), the scheduler tick (accounting, periodic balancing, CFS
preemption), and the NOHZ idle kick. Ticks freeze with the vCPU — when
the hypervisor deschedules it, the guest's timers simply stop, which is
the semantic gap IRS exists to bridge.
"""

from ..workloads import actions as act


class TimerService:
    """Arms one-shot wakeups for sleeping tasks."""

    def __init__(self, sim, kernel):
        self.sim = sim
        self.kernel = kernel
        self._armed = {}             # task -> Event

    def arm_sleep(self, task, duration_ns):
        """Wake ``task`` after ``duration_ns`` of simulated time."""
        if task in self._armed:
            raise RuntimeError('%s already has a timer armed' % task.name)
        self._armed[task] = self.sim.after(duration_ns, self._fire, task)

    def cancel(self, task):
        """Disarm a pending timer, if any."""
        event = self._armed.pop(task, None)
        if event is not None:
            event.cancel()

    def _fire(self, task):
        self._armed.pop(task, None)
        self.kernel.wake_task(task)

    @property
    def pending(self):
        """Number of armed timers."""
        return len(self._armed)


class TickDriver:
    """Quantum, scheduler-tick and NOHZ-kick machinery of one kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.sim = kernel.sim

    # ------------------------------------------------------------------
    # Compute quantum (fires when the running segment drains)
    # ------------------------------------------------------------------

    def arm_quantum(self, gcpu):
        self.cancel_quantum(gcpu)
        task = gcpu.current
        gcpu.quantum_event = self.sim.after(
            task.remaining_ns, self._on_quantum, gcpu)

    def cancel_quantum(self, gcpu):
        if gcpu.quantum_event is not None:
            gcpu.quantum_event.cancel()
            gcpu.quantum_event = None

    def _on_quantum(self, gcpu):
        gcpu.quantum_event = None
        if gcpu.run_started_at is None or not gcpu.vcpu.is_running:
            return
        kernel = self.kernel
        kernel._checkpoint(gcpu)
        task = gcpu.current
        if task is not None and isinstance(task.action, act.Compute) \
                and task.remaining_ns <= 0:
            task.action = None
        kernel._run_current(gcpu)

    # ------------------------------------------------------------------
    # Scheduler tick
    # ------------------------------------------------------------------

    def arm_tick(self, gcpu):
        if gcpu.tick_event is None or not gcpu.tick_event.pending:
            gcpu.tick_event = self.sim.after(
                self.kernel.policy.config.tick_ns, self._on_tick, gcpu)

    def cancel_tick(self, gcpu):
        if gcpu.tick_event is not None:
            gcpu.tick_event.cancel()
            gcpu.tick_event = None

    def _on_tick(self, gcpu):
        """Guest timer tick: accounting, balancing, CFS preemption."""
        gcpu.tick_event = None
        if not gcpu.vcpu.is_running or gcpu.in_sa_handler:
            return
        kernel = self.kernel
        gcpu.tick_count += 1
        self.arm_tick(gcpu)
        gcpu.rt.update()
        task = gcpu.current
        if task is None:
            return
        kernel._checkpoint(gcpu)
        interval = kernel.policy.config.balance_interval_ticks
        if gcpu.tick_count % interval == 0:
            kernel.balancer.periodic_balance(gcpu, self.sim.now)
            if gcpu.rq.nr_ready > 0:
                self.nohz_kick(gcpu)
        if gcpu.current is task and kernel.policy.should_resched_at_tick(
                task, gcpu.rq):
            kernel._preempt_current(gcpu)

    def nohz_kick(self, busy_gcpu):
        """NOHZ idle balancing: a busy CPU with queued work kicks one
        guest-idle sibling so it can wake up and pull (Linux's
        ``nohz_balancer_kick``). Without this, a vCPU idled by an IRS
        evacuation — or by ordinary blocking — would never reclaim
        work, because idle CPUs take no ticks."""
        kernel = self.kernel
        for gcpu in kernel.gcpus:
            if gcpu is busy_gcpu or not gcpu.online:
                continue
            if not gcpu.is_guest_idle:
                continue
            if gcpu.vcpu.is_blocked:
                self.sim.trace.count('guest.nohz_kicks')
                kernel.machine.wake_vcpu(gcpu.vcpu)
                return
