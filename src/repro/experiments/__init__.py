"""Experiment harness: topologies, strategies, runners, figure drivers.

The run pipeline has three explicit stages:

* :mod:`~repro.experiments.spec` — frozen :class:`RunSpec` values that
  fully determine a run, and the serializable :class:`RunOutcome`;
* :mod:`~repro.experiments.executor` — pluggable executors
  (:class:`SerialExecutor`, :class:`ParallelRunner`) mapping spec
  batches to outcomes, fronted by :func:`run_specs`;
* :mod:`~repro.experiments.cache` — the determinism-keyed on-disk
  :class:`ResultCache` (spec + code fingerprint).
"""

from .cache import ResultCache, code_fingerprint, pipeline_counters
from .executor import (
    ParallelRunner,
    RunError,
    SerialExecutor,
    execute_spec,
    run_spec,
    run_spec_file,
    run_specs,
    set_default_cache,
    set_default_executor,
)
from .figures import ALL_FIGURES
from .harness import (
    ParallelRunResult,
    run_migration_probe,
    run_parallel,
    run_server,
    ServerRunResult,
)
from .reporting import FigureResult, format_table
from .spec import (
    ClusterSpec,
    RunOutcome,
    RunSpec,
    SpecError,
    cluster_spec,
    parallel_spec,
    parse_spec,
    probe_spec,
    server_spec,
    spec_from_dict,
    TrafficSpec,
    traffic_spec,
)
from .sweeps import Sweep, SweepPoint
from .strategies import (
    ALL_STRATEGIES,
    apply_strategy,
    COMPARISON_STRATEGIES,
    IRS,
    PLE,
    RELAXED_CO,
    VANILLA,
)
from .topology import (
    build_scenario,
    InterferenceSpec,
    NO_INTERFERENCE,
    Scenario,
)

__all__ = [
    'ALL_FIGURES',
    'ALL_STRATEGIES', 'apply_strategy', 'build_scenario',
    'ClusterSpec', 'cluster_spec',
    'code_fingerprint', 'COMPARISON_STRATEGIES', 'execute_spec',
    'FigureResult', 'format_table', 'InterferenceSpec', 'IRS',
    'NO_INTERFERENCE', 'ParallelRunner', 'ParallelRunResult',
    'parallel_spec', 'parse_spec', 'pipeline_counters', 'PLE',
    'probe_spec', 'RELAXED_CO', 'ResultCache', 'RunError', 'RunOutcome',
    'RunSpec', 'run_migration_probe', 'run_parallel', 'run_server',
    'run_spec', 'run_spec_file', 'run_specs', 'Scenario',
    'ServerRunResult', 'server_spec', 'set_default_cache',
    'set_default_executor', 'SpecError', 'spec_from_dict', 'Sweep',
    'SweepPoint', 'TrafficSpec', 'traffic_spec', 'VANILLA',
]
