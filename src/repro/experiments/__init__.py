"""Experiment harness: topologies, strategies, runners, figure drivers."""

from .figures import ALL_FIGURES
from .harness import (
    ParallelRunResult,
    run_migration_probe,
    run_parallel,
    run_server,
    ServerRunResult,
)
from .reporting import FigureResult, format_table
from .spec import SpecError, parse_spec, run_spec, run_spec_file
from .sweeps import Sweep, SweepPoint
from .strategies import (
    ALL_STRATEGIES,
    apply_strategy,
    COMPARISON_STRATEGIES,
    IRS,
    PLE,
    RELAXED_CO,
    VANILLA,
)
from .topology import (
    build_scenario,
    InterferenceSpec,
    NO_INTERFERENCE,
    Scenario,
)

__all__ = [
    'ALL_FIGURES',
    'ALL_STRATEGIES', 'apply_strategy', 'build_scenario',
    'COMPARISON_STRATEGIES', 'FigureResult', 'format_table',
    'InterferenceSpec', 'IRS', 'NO_INTERFERENCE', 'ParallelRunResult',
    'PLE', 'RELAXED_CO', 'run_migration_probe', 'run_parallel',
    'run_server', 'run_spec', 'run_spec_file', 'parse_spec', 'Scenario',
    'ServerRunResult', 'SpecError', 'Sweep', 'SweepPoint', 'VANILLA',
]
