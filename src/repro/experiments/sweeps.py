"""Generic parameter sweeps over the experiment harness.

A :class:`Sweep` varies one dimension of a :func:`run_parallel`
configuration — strategy, interference kind/width/depth, seed, scale,
vCPU count, IRS config — and collects makespan/utilization series with
optional vanilla-relative improvements. The per-figure drivers cover
the paper's grids; sweeps are for exploring beyond them.

Sweeps ride the same declarative pipeline as the figures: every point
whose configuration is expressible as a
:class:`~repro.experiments.spec.RunSpec` is executed through
:func:`~repro.experiments.executor.run_specs` (one batch per sweep, so
``--jobs`` parallelism and the result cache apply). Configurations
carrying live objects the spec dialect cannot name — a ``profile=``
instance, an ``irs_config=`` object — fall back to direct in-process
:func:`run_parallel` calls.

Example::

    sweep = Sweep('streamcluster', base=dict(scale=0.5))
    result = sweep.over('width', [1, 2, 3, 4],
                        apply=lambda kw, w: kw.update(
                            interference=InterferenceSpec('hogs', w)))
    print(result.table())
"""

import statistics

from ..simkernel.units import MS
from .executor import run_specs
from .harness import run_parallel
from .reporting import FigureResult
from .spec import parallel_spec
from .strategies import VANILLA
from .topology import NO_INTERFERENCE

#: run_parallel kwargs the declarative RunSpec dialect can express.
_SPEC_KWARGS = frozenset((
    'strategy', 'interference', 'scale', 'n_pcpus', 'fg_vcpus', 'pinned',
    'n_threads', 'timeout_ns', 'profile_mode', 'irs', 'faults', 'spans',
    'timeline'))


class SweepPoint:
    """One configuration's aggregated measurements."""

    def __init__(self, label, makespans_ns, utilizations):
        self.label = label
        self.makespans_ns = makespans_ns
        self.utilizations = utilizations

    @property
    def makespan_ns(self):
        done = [m for m in self.makespans_ns if m is not None]
        return statistics.fmean(done) if done else None

    @property
    def utilization(self):
        done = [u for u in self.utilizations if u is not None]
        return statistics.fmean(done) if done else None

    def improvement_over(self, other):
        if self.makespan_ns is None or other.makespan_ns is None:
            return None
        return (other.makespan_ns / self.makespan_ns - 1.0) * 100.0


class Sweep:
    """Sweeps one dimension of a parallel-workload run."""

    def __init__(self, app, base=None, seeds=(0,)):
        self.app = app
        self.base = dict(base or {})
        self.base.setdefault('interference', NO_INTERFERENCE)
        self.seeds = tuple(seeds)

    def _point_specs(self, kwargs):
        """RunSpecs for one point, or None when ``kwargs`` carries
        something the spec dialect cannot express."""
        if set(kwargs) - _SPEC_KWARGS:
            return None
        return [parallel_spec(self.app, seed=seed, **kwargs)
                for seed in self.seeds]

    def _run_points(self, kwargs_list):
        """Results per point, batching every spec-able point through
        one :func:`run_specs` call."""
        per_point = [self._point_specs(kwargs) for kwargs in kwargs_list]
        batch = [spec for specs in per_point if specs is not None
                 for spec in specs]
        batched = iter(run_specs(batch)) if batch else iter(())
        results = []
        for kwargs, specs in zip(kwargs_list, per_point):
            if specs is not None:
                results.append([next(batched) for __ in specs])
            else:
                results.append([run_parallel(self.app, seed=seed, **kwargs)
                                for seed in self.seeds])
        return results

    def over(self, dimension, values, apply=None, baseline=None,
             title=None):
        """Run one configuration per value.

        ``apply(kwargs, value)`` mutates the run kwargs for each value;
        by default the value is assigned to ``kwargs[dimension]``.
        ``baseline`` names a value whose point the others are compared
        against (improvement column); defaults to the first value.
        Returns a :class:`FigureResult`.
        """
        kwargs_list = []
        for value in values:
            kwargs = dict(self.base)
            if apply is not None:
                apply(kwargs, value)
            else:
                kwargs[dimension] = value
            kwargs_list.append(kwargs)
        points = {}
        for value, results in zip(values, self._run_points(kwargs_list)):
            points[value] = SweepPoint(str(value),
                                       [r.makespan_ns for r in results],
                                       [r.utilization for r in results])

        baseline_value = values[0] if baseline is None else baseline
        base_point = points[baseline_value]
        rows = []
        notes = {}
        for value in values:
            point = points[value]
            improvement = point.improvement_over(base_point)
            rows.append([
                str(value),
                ('%.1f' % (point.makespan_ns / MS)
                 if point.makespan_ns is not None else 'TIMEOUT'),
                ('%.3f' % point.utilization
                 if point.utilization is not None else '--'),
                ('%+.1f%%' % improvement
                 if improvement is not None and value != baseline_value
                 else '--'),
            ])
            notes[value] = point
        headers = [dimension, 'makespan (ms)', 'util/fair-share',
                   'vs %s' % baseline_value]
        title = title or 'Sweep: %s over %s' % (self.app, dimension)
        return FigureResult(title, headers, rows, notes)

    def strategies(self, strategies=('vanilla', 'ple', 'relaxed_co',
                                     'irs'), title=None):
        """Convenience: sweep the scheduling strategy, vanilla-based."""
        return self.over('strategy', list(strategies), baseline=VANILLA,
                         title=title)
