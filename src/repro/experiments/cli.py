"""Command-line entry point for the reproduction harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5
    python -m repro.experiments fig6 --full
    python -m repro.experiments all --out results.txt
    python -m repro.experiments my_experiment.json     # declarative spec
"""

import argparse
import inspect
import sys
import time

from ..faults import CAMPAIGNS, parse_fault_plan
from .figures import ALL_FIGURES
from .harness import (
    ObservabilityConfig,
    set_default_fault_plan,
    set_default_observability,
)
from .reporting import format_table
from .spec import run_spec_file
from .strategies import ALL_STRATEGIES, EXTENSION_STRATEGIES


def _run_one(name, quick, stream, strategy=None):
    figure_fn = ALL_FIGURES[name]
    kwargs = {'quick': quick}
    if (strategy is not None
            and 'strategy' in inspect.signature(figure_fn).parameters):
        kwargs['strategy'] = strategy
    started = time.time()
    result = figure_fn(**kwargs)
    elapsed = time.time() - started
    print(result.table(), file=stream)
    print('(%s: %d rows in %.1fs wall)' % (name, len(result.rows), elapsed),
          file=stream)
    print(file=stream)
    return result


def _run_specs(path):
    rows = []
    for spec, result in run_spec_file(path):
        rows.append([
            spec.get('name', spec['app']),
            result.strategy,
            ('%.1f' % (result.makespan_ns / 1e6)
             if result.completed else 'TIMEOUT'),
            '%.3f' % result.utilization,
        ])
    print(format_table(
        ['experiment', 'strategy', 'makespan (ms)', 'util/fair-share'],
        rows, title='Spec results: %s' % path))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog='python -m repro.experiments',
        description='Regenerate the evaluation figures of "Scheduler '
                    'Activations for Interference-Resilient SMP Virtual '
                    'Machine Scheduling" (Middleware 2017).')
    parser.add_argument('figure', nargs='?',
                        help="figure name (e.g. fig5), 'all', 'list', or "
                             'a path to a JSON experiment spec')
    parser.add_argument('--full', action='store_true',
                        help='3 seeds at full workload scale (slow); '
                             'default is 1 seed at reduced scale')
    parser.add_argument('--out', metavar='FILE',
                        help='append tables to FILE instead of stdout')
    parser.add_argument('--trace-out', metavar='FILE', dest='trace_out',
                        help='export a Chrome trace-event JSON timeline '
                             '(open at https://ui.perfetto.dev or '
                             'chrome://tracing) to FILE; enables span '
                             'probes and timeline sampling. The file is '
                             'rewritten per run, so for multi-run figures '
                             'the last run wins')
    parser.add_argument('--strategy', metavar='NAME',
                        help='scheduling strategy for drivers that take '
                             "one (e.g. sa-latency): %s"
                             % ', '.join(ALL_STRATEGIES
                                         + EXTENSION_STRATEGIES))
    parser.add_argument('--faults', metavar='CAMPAIGN',
                        help='run every experiment under a named fault '
                             "campaign (comma-separated to combine, e.g. "
                             "'sa-loss-30' or 'sa-loss-10,flaky-migrator-20'"
                             "); 'list' prints the registry")
    args = parser.parse_args(argv)

    if args.faults == 'list':
        for name, factory in sorted(CAMPAIGNS.items()):
            print('%-18s %s' % (name, factory().description))
        return 0
    if args.faults:
        try:
            set_default_fault_plan(parse_fault_plan(args.faults))
        except ValueError as exc:
            parser.error('%s; --faults=list shows the registry' % exc)
    if args.trace_out:
        try:
            # Fail fast with a clean parser error (permissions, missing
            # directory) instead of a traceback after minutes of runs.
            with open(args.trace_out, 'a'):
                pass
        except OSError as exc:
            parser.error('cannot write --trace-out file: %s' % exc)
        set_default_observability(ObservabilityConfig(
            trace_out=args.trace_out))
    if args.strategy is not None:
        known = ALL_STRATEGIES + EXTENSION_STRATEGIES
        if args.strategy not in known:
            parser.error('unknown strategy %r (want one of %s)'
                         % (args.strategy, ', '.join(known)))
    if args.figure is None:
        parser.error('the following arguments are required: figure')

    if args.figure == 'list':
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or '').strip().splitlines()[0]
            print('%-15s %s' % (name, doc))
        return 0

    if args.figure.endswith('.json'):
        return _run_specs(args.figure)

    # Accept dashed aliases (sa-latency == sa_latency).
    figure = args.figure.replace('-', '_')
    names = list(ALL_FIGURES) if figure == 'all' else [figure]
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error('unknown figure %s; try: %s'
                     % (', '.join(unknown), ', '.join(ALL_FIGURES)))

    stream = sys.stdout
    handle = None
    if args.out:
        handle = open(args.out, 'a')
        stream = handle
    try:
        for name in names:
            _run_one(name, quick=not args.full, stream=stream,
                     strategy=args.strategy)
    finally:
        if handle is not None:
            handle.close()
    return 0


if __name__ == '__main__':
    sys.exit(main())
