"""Command-line entry point for the reproduction harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5
    python -m repro.experiments fig6 --full
    python -m repro.experiments all --out results.txt --jobs 4
    python -m repro.experiments fig5 --no-cache
    python -m repro.experiments my_experiment.json     # declarative spec
"""

import argparse
import inspect
import os
import sys
import time

from ..faults import CAMPAIGNS, parse_fault_plan
from .cache import DEFAULT_CACHE_DIR, ResultCache, pipeline_counters
from .executor import (
    ParallelRunner,
    run_spec_file,
    set_default_cache,
    set_default_executor,
)
from .figures import ALL_FIGURES
from .harness import (
    ObservabilityConfig,
    set_default_fault_plan,
    set_default_observability,
)
from .reporting import format_table
from .strategies import ALL_STRATEGIES, EXTENSION_STRATEGIES


def _run_one(name, quick, stream, strategy=None, arrivals=None,
             rate_rps=None, slo_p99_ms=None):
    figure_fn = ALL_FIGURES[name]
    accepted = inspect.signature(figure_fn).parameters
    kwargs = {'quick': quick}
    # Axis flags apply only where the driver takes them ('all' runs
    # mixed batches, so unknown kwargs are skipped, not errors).
    for key, value in (('strategy', strategy), ('arrivals', arrivals),
                       ('rate_rps', rate_rps), ('slo_p99_ms', slo_p99_ms)):
        if value is not None and key in accepted:
            kwargs[key] = value
    # Wall-clock elapsed display for the operator; never feeds
    # simulation state.  # replint: disable=determinism
    started = time.time()
    result = figure_fn(**kwargs)
    elapsed = time.time() - started  # replint: disable=determinism
    print(result.table(), file=stream)
    for warning in getattr(result, 'warnings', ()):
        print(warning, file=stream)
    print('(%s: %d rows in %.1fs wall)' % (name, len(result.rows), elapsed),
          file=stream)
    print(file=stream)
    return result


def _run_specs(path):
    rows = []
    for spec, outcome in run_spec_file(path):
        rows.append([
            spec.get('name', spec['app']),
            outcome.strategy,
            ('%.1f' % (outcome.makespan_ns / 1e6)
             if outcome.completed else 'TIMEOUT'),
            '%.3f' % outcome.utilization,
        ])
    print(format_table(
        ['experiment', 'strategy', 'makespan (ms)', 'util/fair-share'],
        rows, title='Spec results: %s' % path))
    return 0


def _resolve_jobs(args, parser):
    """--jobs, falling back to the REPRO_JOBS environment variable."""
    jobs = args.jobs
    source = '--jobs'
    if jobs is None:
        env = os.environ.get('REPRO_JOBS', '').strip()
        if env:
            source = 'REPRO_JOBS'
            try:
                jobs = int(env)
            except ValueError:
                parser.error('REPRO_JOBS must be an integer, got %r' % env)
    if jobs is None:
        return 1
    if jobs < 1:
        parser.error('%s must be >= 1, got %d' % (source, jobs))
    for flag, value in (('--trace-out', args.trace_out),
                        ('--events-out', args.events_out),
                        ('--metrics-out', args.metrics_out)):
        if jobs > 1 and value:
            parser.error(
                '%s=%d cannot be combined with %s: observability rings '
                'live in each worker process, so the exported file would '
                'be empty; rerun serially (--jobs 1) to capture it'
                % (source, jobs, flag))
    return jobs


def _list_experiments():
    """The ``list`` subcommand: every runnable figure, plus the axes
    (strategies, placement policies, fault campaigns) runs vary over."""
    from ..cluster import PLACEMENT_POLICIES

    def first_doc_line(obj):
        return (obj.__doc__ or '').strip().splitlines()[0]

    print('figures (python -m repro.experiments <name>):')
    for name, fn in ALL_FIGURES.items():
        print('  %-22s %s' % (name, first_doc_line(fn)))
    print()
    print('strategies (--strategy):')
    for name in ALL_STRATEGIES + EXTENSION_STRATEGIES:
        print('  %s' % name)
    print()
    print('cluster placement policies (cluster-consolidation):')
    for name, policy in sorted(PLACEMENT_POLICIES.items()):
        print('  %-22s %s' % (name, first_doc_line(policy)))
    print()
    print('fault campaigns (--faults):')
    for name, factory in sorted(CAMPAIGNS.items()):
        print('  %-22s %s' % (name, factory().description))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog='python -m repro.experiments',
        description='Regenerate the evaluation figures of "Scheduler '
                    'Activations for Interference-Resilient SMP Virtual '
                    'Machine Scheduling" (Middleware 2017).')
    parser.add_argument('figure', nargs='?',
                        help="figure name (e.g. fig5), 'all', 'list', or "
                             'a path to a JSON experiment spec')
    parser.add_argument('--full', action='store_true',
                        help='3 seeds at full workload scale (slow); '
                             'default is 1 seed at reduced scale')
    parser.add_argument('--quick', action='store_true',
                        help='1 seed at reduced scale (the default, '
                             'spelled out for scripts and CI steps)')
    parser.add_argument('--out', metavar='FILE',
                        help='append tables to FILE instead of stdout')
    parser.add_argument('--jobs', type=int, metavar='N',
                        help='run simulations across N worker processes '
                             '(deterministic: results are ordered and '
                             'bit-identical to --jobs 1); defaults to '
                             'the REPRO_JOBS environment variable, else 1')
    parser.add_argument('--wall-timeout', type=float, metavar='SECONDS',
                        dest='wall_timeout',
                        help='kill and retry (once) any single run whose '
                             'worker produces no result within SECONDS of '
                             'real time; a second timeout fails the batch '
                             'naming the hung spec. Implies worker '
                             'processes even with --jobs 1')
    parser.add_argument('--cache', action=argparse.BooleanOptionalAction,
                        default=True,
                        help='reuse cached run results from %s, keyed by '
                             'spec + source fingerprint (default: '
                             'enabled; --no-cache forces fresh runs)'
                             % DEFAULT_CACHE_DIR)
    parser.add_argument('--trace-out', metavar='FILE', dest='trace_out',
                        help='export a Chrome trace-event JSON timeline '
                             '(open at https://ui.perfetto.dev or '
                             'chrome://tracing) to FILE; enables span '
                             'probes and timeline sampling. The file is '
                             'rewritten per run, so for multi-run figures '
                             'the last run wins. Serial only (--jobs 1)')
    parser.add_argument('--events-out', metavar='FILE', dest='events_out',
                        help='export the cluster health event log as '
                             'JSONL to FILE (cluster figures only; the '
                             'cluster-health report can be rebuilt from '
                             'this file alone). Rewritten per run, so '
                             'for multi-run figures the last run wins. '
                             'Serial only (--jobs 1)')
    parser.add_argument('--metrics-out', metavar='FILE', dest='metrics_out',
                        help='export a Prometheus-style text exposition '
                             'snapshot of the run metrics to FILE. '
                             'Rewritten per run, so for multi-run '
                             'figures the last run wins. Serial only '
                             '(--jobs 1)')
    parser.add_argument('--strategy', metavar='NAME',
                        help='scheduling strategy for drivers that take '
                             "one (e.g. sa-latency): %s"
                             % ', '.join(ALL_STRATEGIES
                                         + EXTENSION_STRATEGIES))
    parser.add_argument('--arrivals', metavar='KIND',
                        help='arrival process for the traffic-slo figure '
                             '(poisson, bursty, diurnal)')
    parser.add_argument('--rps', type=int, metavar='N', dest='rate_rps',
                        help='offered load in requests/second for the '
                             'traffic-slo figure (default 4000)')
    parser.add_argument('--slo-p99', type=float, metavar='MS',
                        dest='slo_p99_ms',
                        help='p99 latency target in milliseconds for the '
                             'traffic-slo figure (default 20)')
    parser.add_argument('--faults', metavar='CAMPAIGN',
                        help='run every experiment under a named fault '
                             "campaign (comma-separated to combine, e.g. "
                             "'sa-loss-30' or 'sa-loss-10,flaky-migrator-20'"
                             "); 'list' prints the registry")
    args = parser.parse_args(argv)

    if args.quick and args.full:
        parser.error('--quick and --full are mutually exclusive')
    if args.faults == 'list':
        for name, factory in sorted(CAMPAIGNS.items()):
            print('%-18s %s' % (name, factory().description))
        return 0
    if args.faults:
        try:
            set_default_fault_plan(parse_fault_plan(args.faults),
                                   text=args.faults)
        except ValueError as exc:
            parser.error('%s; --faults=list shows the registry' % exc)
    jobs = _resolve_jobs(args, parser)
    exports = (('--trace-out', args.trace_out),
               ('--events-out', args.events_out),
               ('--metrics-out', args.metrics_out))
    for flag, path in exports:
        if not path:
            continue
        try:
            # Fail fast with a clean parser error (permissions, missing
            # directory) instead of a traceback after minutes of runs.
            with open(path, 'a'):
                pass
        except OSError as exc:
            parser.error('cannot write %s file: %s' % (flag, exc))
    if any(path for __, path in exports):
        set_default_observability(ObservabilityConfig(
            trace_out=args.trace_out,
            events_out=args.events_out,
            metrics_out=args.metrics_out))
    if args.strategy is not None:
        known = ALL_STRATEGIES + EXTENSION_STRATEGIES
        if args.strategy not in known:
            parser.error('unknown strategy %r (want one of %s)'
                         % (args.strategy, ', '.join(known)))
    if args.arrivals is not None:
        from ..traffic.arrivals import ARRIVAL_KINDS
        if args.arrivals not in ARRIVAL_KINDS:
            parser.error('unknown arrival process %r (want one of %s)'
                         % (args.arrivals, ', '.join(ARRIVAL_KINDS)))
    if args.rate_rps is not None and args.rate_rps < 1:
        parser.error('--rps must be >= 1, got %d' % args.rate_rps)
    if args.slo_p99_ms is not None and args.slo_p99_ms <= 0:
        parser.error('--slo-p99 must be positive, got %g'
                     % args.slo_p99_ms)
    if args.figure is None:
        parser.error('the following arguments are required: figure')
    if args.wall_timeout is not None and args.wall_timeout <= 0:
        parser.error('--wall-timeout must be positive, got %g'
                     % args.wall_timeout)

    if args.figure == 'list':
        return _list_experiments()

    executor = None
    if jobs > 1 or args.wall_timeout is not None:
        executor = ParallelRunner(jobs=jobs,
                                  wall_timeout=args.wall_timeout)
    previous_executor = set_default_executor(executor)
    previous_cache = set_default_cache(ResultCache() if args.cache
                                       else None)
    try:
        if args.figure.endswith('.json'):
            return _run_specs(args.figure)

        # Accept dashed aliases (sa-latency == sa_latency).
        figure = args.figure.replace('-', '_')
        names = list(ALL_FIGURES) if figure == 'all' else [figure]
        unknown = [n for n in names if n not in ALL_FIGURES]
        if unknown:
            parser.error('unknown figure %s; try: %s'
                         % (', '.join(unknown), ', '.join(ALL_FIGURES)))

        stream = sys.stdout
        handle = None
        if args.out:
            handle = open(args.out, 'a')
            stream = handle
        try:
            for name in names:
                _run_one(name, quick=not args.full, stream=stream,
                         strategy=args.strategy, arrivals=args.arrivals,
                         rate_rps=args.rate_rps,
                         slo_p99_ms=args.slo_p99_ms)
            if args.cache:
                counters = pipeline_counters()
                print('(runcache: %d hits, %d misses)'
                      % (counters.get('runcache.hit', 0),
                         counters.get('runcache.miss', 0)), file=stream)
        finally:
            if handle is not None:
                handle.close()
        return 0
    finally:
        set_default_executor(previous_executor)
        set_default_cache(previous_cache)


if __name__ == '__main__':
    sys.exit(main())
