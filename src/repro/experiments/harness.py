"""Experiment runners: one configuration in, measurements out.

These are the building blocks the per-figure drivers compose. Each run
builds a fresh simulator (fully deterministic in the seed), wires a
strategy, installs workloads, and executes to completion or to a fixed
duration.
"""

from ..core import IRSConfig
from ..metrics import RunMetrics, TimelineRecorder, utilization_vs_fair_share
from ..obs.exporters import write_chrome_trace
from ..obs.exposition import write_exposition
from ..simkernel.units import MS, SEC
from ..workloads import (
    ApacheBenchWorkload,
    ParallelWorkload,
    SpecJbbWorkload,
    get_profile,
)
from ..guestos.migration import MigrationStopper
from ..workloads.program import cpu_hog
from .strategies import DELAY_PREEMPT, IRS, apply_strategy
from .topology import NO_INTERFERENCE, InterferenceSpec, build_scenario

DEFAULT_TIMEOUT_NS = 240 * SEC
_RUN_CHUNK_NS = 50 * MS

# Fault plan applied to every run that does not pass ``fault_plan``
# explicitly; set from the CLI's ``--faults`` flag. None = reliable
# machine, the bit-identical reproduction path.
_default_fault_plan = None
_default_fault_text = None


def set_default_fault_plan(plan, text=None):
    """Install ``plan`` (a :class:`repro.faults.FaultPlan` or None) as
    the campaign for every subsequent run. ``text`` is the campaign
    string the plan was parsed from (``--faults`` dialect); the
    executor folds it into run specs so cached/parallel runs key on it.
    Returns the previous plan."""
    global _default_fault_plan, _default_fault_text
    previous = _default_fault_plan
    _default_fault_plan = plan
    _default_fault_text = text if plan is not None else None
    return previous


def default_fault_plan():
    """The currently installed default fault plan (or None)."""
    return _default_fault_plan


def default_fault_text():
    """The campaign string behind the default fault plan, when it was
    installed with one (or None)."""
    return _default_fault_text


class ObservabilityConfig:
    """What a run should capture and where to export it.

    ``trace_out`` names a Chrome trace-event JSON file (Perfetto /
    ``chrome://tracing``); when a figure driver makes several runs the
    file is rewritten per run, so the last run wins. ``spans`` enables
    the SA-protocol span probes; ``timeline`` attaches a
    :class:`~repro.metrics.TimelineRecorder` sampling every
    ``timeline_period_ns``.

    Cluster runs additionally honour ``events_out`` (the structured
    health event log as JSONL) and ``metrics_out`` (a Prometheus-style
    text exposition snapshot of the run's metric registry); both are
    rewritten per run like ``trace_out``.
    """

    def __init__(self, trace_out=None, spans=True, timeline=True,
                 timeline_period_ns=1 * MS, events_out=None,
                 metrics_out=None):
        self.trace_out = trace_out
        self.spans = spans
        self.timeline = timeline
        self.timeline_period_ns = timeline_period_ns
        self.events_out = events_out
        self.metrics_out = metrics_out


# Observability applied to every run that does not pass ``observe``
# explicitly; set from the CLI's ``--trace-out`` flag. None = no
# capture, the zero-overhead path.
_default_obs = None


def set_default_observability(config):
    """Install ``config`` (an :class:`ObservabilityConfig` or None) for
    every subsequent run. Returns the previous config."""
    global _default_obs
    previous = _default_obs
    _default_obs = config
    return previous


def default_observability():
    """The currently installed default observability config (or None)."""
    return _default_obs


class _ObsSession:
    """One run's armed observability: stops sampling and exports."""

    def __init__(self, config, scenario, timeline):
        self.config = config
        self.scenario = scenario
        self.timeline = timeline

    def finish(self):
        if self.timeline is not None:
            self.timeline.stop()
        if self.config.trace_out:
            write_chrome_trace(self.config.trace_out,
                               machine=self.scenario.machine,
                               timeline=self.timeline,
                               spans=self.scenario.sim.trace.spans,
                               now_ns=self.scenario.sim.now)
        if self.config.metrics_out:
            write_exposition(self.config.metrics_out,
                             self.scenario.sim.trace.metrics)


def _arm_observability(scenario, observe):
    """Enable span probes / timeline sampling on a fresh scenario.
    ``observe`` may be an :class:`ObservabilityConfig`, True (defaults),
    or None to fall back to the CLI-installed default."""
    config = observe if observe is not None else _default_obs
    if config is None:
        return None
    if config is True:
        config = ObservabilityConfig()
    if config.spans:
        scenario.sim.trace.spans.enabled = True
    timeline = None
    if config.timeline:
        timeline = TimelineRecorder(
            scenario.sim, scenario.machine,
            period_ns=config.timeline_period_ns).start()
    return _ObsSession(config, scenario, timeline)


def _arm_faults(scenario, fault_plan, strategy, irs_config):
    """Attach the fault plan (explicit or default) to a freshly built
    scenario. Returns the effective ``(injector, irs_config)`` — when a
    campaign is active and the caller did not pin an IRS config, the
    graceful-degradation defenses are switched on, since measuring an
    unreliable channel with the defenses off is an ablation, not the
    default."""
    plan = fault_plan if fault_plan is not None else _default_fault_plan
    if plan is None:
        return None, irs_config
    injector = plan.build(scenario.sim).attach(scenario.machine)
    if irs_config is None and strategy in (IRS, DELAY_PREEMPT):
        irs_config = IRSConfig(degradation_enabled=True)
    return injector, irs_config


class ParallelRunResult:
    """Outcome of one parallel-workload run."""

    def __init__(self, app, strategy, makespan_ns, utilization, bg_rates,
                 metrics, workload, scenario, timeline=None):
        self.app = app
        self.strategy = strategy
        self.makespan_ns = makespan_ns
        self.utilization = utilization
        self.bg_rates = bg_rates
        self.metrics = metrics
        self.workload = workload
        self.scenario = scenario
        self.timeline = timeline

    @property
    def completed(self):
        return self.makespan_ns is not None

    def __repr__(self):
        span = ('%.1fms' % (self.makespan_ns / MS)
                if self.completed else 'TIMEOUT')
        return '<Run %s/%s %s>' % (self.app, self.strategy, span)


def run_parallel(app, strategy='vanilla', interference=NO_INTERFERENCE,
                 seed=0, n_pcpus=4, fg_vcpus=4, n_threads=None, pinned=True,
                 scale=1.0, timeout_ns=DEFAULT_TIMEOUT_NS, irs_config=None,
                 profile=None, fault_plan=None, observe=None):
    """Run one parallel benchmark under one strategy and interference
    level; measure makespan, utilization, and background progress.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) subjects the run
    to a deterministic fault campaign; when omitted, the CLI-installed
    default plan (``--faults``) applies, and with neither the machine
    is perfectly reliable.

    ``observe`` (an :class:`ObservabilityConfig`, or True for the
    defaults) turns on span probes and timeline sampling; when omitted,
    the CLI-installed default (``--trace-out``) applies."""
    scenario = build_scenario(seed=seed, n_pcpus=n_pcpus, fg_vcpus=fg_vcpus,
                              interference=interference, pinned=pinned,
                              scale=scale)
    obs = _arm_observability(scenario, observe)
    __, irs_config = _arm_faults(scenario, fault_plan, strategy, irs_config)
    irs_kernels = ([scenario.fg_kernel]
                   if strategy in (IRS, DELAY_PREEMPT) else ())
    apply_strategy(scenario.machine, strategy, irs_kernels=irs_kernels,
                   irs_config=irs_config)
    if profile is None:
        profile = get_profile(app)
    workload = ParallelWorkload(scenario.sim, scenario.fg_kernel, profile,
                                n_threads=n_threads, scale=scale,
                                prefix='fg.%s' % app)
    workload.install()

    sim = scenario.sim
    deadline = sim.now + timeout_ns
    while not workload.is_done and sim.now < deadline:
        sim.run_until(min(sim.now + _RUN_CHUNK_NS, deadline))

    makespan = workload.makespan_ns()
    elapsed = (makespan if makespan is not None
               else sim.now - workload.started_at)
    utilization = (utilization_vs_fair_share(scenario.fg_vm,
                                             scenario.machine, elapsed)
                   if elapsed > 0 else 0.0)
    bg_rates = [bg.progress_rate() for bg in scenario.bg_workloads
                if isinstance(bg, ParallelWorkload)]
    metrics = RunMetrics(scenario.machine, scenario.all_kernels, elapsed)
    if obs is not None:
        obs.finish()
    return ParallelRunResult(app, strategy, makespan, utilization, bg_rates,
                             metrics, workload, scenario,
                             timeline=obs.timeline if obs else None)


class ServerRunResult:
    """Outcome of one server-benchmark run."""

    def __init__(self, kind, strategy, throughput, latency_summary,
                 metrics, timeline=None):
        self.kind = kind
        self.strategy = strategy
        self.throughput = throughput
        self.latency_summary = latency_summary
        self.metrics = metrics
        self.timeline = timeline

    def __repr__(self):
        return '<ServerRun %s/%s %.0f req/s p99=%.2fms>' % (
            self.kind, self.strategy, self.throughput,
            self.latency_summary['p99'] / MS)


def run_server(kind, strategy='vanilla', n_hogs=1, seed=0, n_pcpus=4,
               fg_vcpus=4, warmup_ns=300 * MS, measure_ns=2 * SEC,
               irs_config=None, fault_plan=None, observe=None,
               **server_kwargs):
    """Run a server workload (``'specjbb'`` or ``'ab'``) against N CPU
    hogs; measure steady-state throughput and latency."""
    interference = (InterferenceSpec('hogs', width=n_hogs) if n_hogs > 0
                    else NO_INTERFERENCE)
    scenario = build_scenario(seed=seed, n_pcpus=n_pcpus,
                              fg_vcpus=fg_vcpus, interference=interference)
    obs = _arm_observability(scenario, observe)
    __, irs_config = _arm_faults(scenario, fault_plan, strategy, irs_config)
    irs_kernels = ([scenario.fg_kernel]
                   if strategy in (IRS, DELAY_PREEMPT) else ())
    apply_strategy(scenario.machine, strategy, irs_kernels=irs_kernels,
                   irs_config=irs_config)
    if kind == 'specjbb':
        server = SpecJbbWorkload(scenario.sim, scenario.fg_kernel,
                                 **server_kwargs)
    elif kind == 'ab':
        server = ApacheBenchWorkload(scenario.sim, scenario.fg_kernel,
                                     **server_kwargs)
    else:
        raise ValueError("server kind must be 'specjbb' or 'ab'")
    server.install()

    sim = scenario.sim
    sim.run_until(sim.now + warmup_ns)
    # Reset for steady-state measurement.
    server.latency.reset()
    server.completed = 0
    server.started_at = sim.now
    sim.run_until(sim.now + measure_ns)

    metrics = RunMetrics(scenario.machine, scenario.all_kernels, measure_ns)
    if obs is not None:
        obs.finish()
    return ServerRunResult(kind, strategy, server.throughput(),
                           server.latency.summary(), metrics,
                           timeline=obs.timeline if obs else None)


def run_migration_probe(n_inter_vms, seed=0, warmup_ns=None,
                        trigger='preemption', stopper_kwargs=None):
    """One Figure 1(b) trial: measure the latency of migrating a
    running process off a vCPU contended by ``n_inter_vms`` CPU-hog VMs.

    ``trigger='preemption'`` issues the migration right after the source
    vCPU is involuntarily preempted — the instant guest load balancing
    *would* want to react, and the scenario the paper measures.
    ``trigger='random'`` issues it at a random phase instead. Returns
    the observed latency in ns (None if the probe never fired).
    """
    interference = (InterferenceSpec('hogs', width=1, n_vms=n_inter_vms)
                    if n_inter_vms > 0 else NO_INTERFERENCE)
    scenario = build_scenario(seed=seed, n_pcpus=2, fg_vcpus=2,
                              interference=interference)
    sim = scenario.sim
    kernel = scenario.fg_kernel
    task = kernel.spawn('probe.target', cpu_hog(10 * MS), gcpu_index=0)
    stopper = MigrationStopper(sim, kernel, **(stopper_kwargs or {}))

    if warmup_ns is None:
        warmup_ns = sim.rng.uniform_ns('probe.offset', 150 * MS, 450 * MS)
    sim.run_until(sim.now + warmup_ns)

    result = {}

    def on_complete(request):
        result['latency'] = request.latency_ns
        sim.stop()

    source_vcpu = kernel.gcpus[0].vcpu

    def issue():
        stopper.request(task, kernel.gcpus[1], on_complete=on_complete)

    if trigger == 'preemption' and n_inter_vms > 0:
        poll_ns = 200_000  # 0.2 ms

        def wait_for_preemption():
            if source_vcpu.is_runnable:
                issue()
            else:
                sim.after(poll_ns, wait_for_preemption)

        wait_for_preemption()
    else:
        issue()
    sim.run_until(sim.now + 20 * SEC)
    return result.get('latency')
