"""Determinism-keyed on-disk result cache.

Because a :class:`~repro.experiments.spec.RunSpec` fully determines its
outcome (the simulator is bit-deterministic in its inputs), a cached
:class:`~repro.experiments.spec.RunOutcome` is indistinguishable from a
fresh one — *as long as the code that produced it is the same code*.
The cache key is therefore content-addressed twice over::

    key = sha256(spec.cache_token() + code_fingerprint())

where the code fingerprint hashes every ``.py`` file of the installed
:mod:`repro` package. Edit any source file and the whole cache
invalidates; change any spec field and only that entry misses.

Entries live under ``.benchmarks/runcache/`` as pickled envelopes (the
outcome embeds a :class:`~repro.metrics.collector.RunMetrics`, which is
not JSON-shaped). Unreadable or mismatched entries are treated as
misses and removed. Hit/miss/store counters are surfaced through a
module-level :class:`~repro.obs.histograms.MetricsRegistry`
(:data:`METRICS`) so the CLI and tests can assert on them.

When NOT to trust the cache: any determinism input that is *not* part
of the spec. Today that is (a) an ambient
:class:`~repro.experiments.harness.ObservabilityConfig` with a
``trace_out`` export (a side effect a cache hit would skip) and (b) an
ambient fault plan installed without its campaign text (unkeyable).
:func:`~repro.experiments.executor.run_specs` detects both and bypasses
the cache rather than serving wrong entries.
"""

import hashlib
import os
import pickle
import time

from ..obs import eventlog
from ..obs.eventlog import EventLog
from ..obs.histograms import MetricsRegistry
from .spec import RunOutcome, RunSpec  # noqa: F401  (re-export for users)

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join('.benchmarks', 'runcache')

#: Envelope format version; bump on incompatible layout changes.
CACHE_FORMAT = 1

#: Shared pipeline metrics: runcache.* here, executor.* from the
#: executor module. One registry so a single snapshot shows the whole
#: pipeline's counters.
METRICS = MetricsRegistry()

#: Shared pipeline profiling log: per-spec dispatch/done/retry events
#: from the executors and hit/miss/store events from the cache, in one
#: bounded :class:`~repro.obs.eventlog.EventLog`. Timestamps are
#: wall-clock ``time.monotonic_ns()`` — this is host-side profiling,
#: deliberately outside the simulated (and cached) world, which is why
#: these events never appear in outcomes or cache entries.
PROFILE_LOG = EventLog()


def _profile(kind, **detail):
    # Wall-clock by design: profiles the pipeline itself, never the
    # simulated world.  # replint: disable=determinism
    PROFILE_LOG.append(time.monotonic_ns(), kind, **detail)


def profile_events():
    """The pipeline profiling events recorded so far (oldest first)."""
    return PROFILE_LOG.events

_fingerprint_memo = {}


def _hash_tree(root):
    """sha256 over every ``.py`` file under ``root`` (path + content),
    in a fully deterministic walk order. Hidden and ``__pycache__``
    directories are pruned — bytecode churn must not invalidate (or,
    worse, *fail* to invalidate) the cache."""
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != '__pycache__' and not d.startswith('.'))
        for filename in sorted(filenames):
            if not filename.endswith('.py'):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, 'rb') as handle:
                digest.update(hashlib.sha256(handle.read()).digest())
    return digest.hexdigest()


def code_fingerprint(package_root=None):
    """Stable hash of every ``.py`` source file under ``package_root``
    (default: the installed :mod:`repro` package), subpackages
    included — ``repro.cluster`` and anything added later is covered by
    the walk, not by an allowlist.

    Only the *default* root is memoized (the installed package does not
    change under a running process); an explicit root is re-hashed on
    every call, so tests and tools pointing at a scratch tree observe
    their own edits instead of a stale memo.
    """
    if package_root is None:
        import repro
        root = os.path.abspath(os.path.dirname(repro.__file__))
        memo = _fingerprint_memo.get(root)
        if memo is None:
            memo = _fingerprint_memo[root] = _hash_tree(root)
        return memo
    return _hash_tree(os.path.abspath(package_root))


class ResultCache:
    """Content-addressed store of RunSpec -> RunOutcome.

    ``root`` is created lazily on the first store. ``fingerprint``
    defaults to :func:`code_fingerprint`; tests pin it to exercise
    invalidation.
    """

    def __init__(self, root=DEFAULT_CACHE_DIR, fingerprint=None):
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()

    def key(self, spec):
        """Hex cache key of ``spec`` under the current code."""
        token = spec.cache_token() + '\n' + self.fingerprint
        return hashlib.sha256(token.encode()).hexdigest()

    def _path(self, key):
        return os.path.join(self.root, key + '.pkl')

    def load(self, spec):
        """The cached outcome for ``spec``, or None. Counts
        ``runcache.hit`` / ``runcache.miss``; drops corrupt entries."""
        path = self._path(self.key(spec))
        try:
            with open(path, 'rb') as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            METRICS.counter('runcache.miss').inc()
            _profile(eventlog.EVENT_CACHE_MISS, spec=spec.describe())
            return None
        except Exception:
            # Torn write, stale pickle protocol, garbage: a miss, and
            # the entry is gone so it cannot keep failing.
            self._evict(path)
            METRICS.counter('runcache.miss').inc()
            _profile(eventlog.EVENT_CACHE_MISS, spec=spec.describe(),
                     reason='corrupt')
            return None
        if (not isinstance(envelope, dict)
                or envelope.get('format') != CACHE_FORMAT
                or envelope.get('token') != spec.cache_token()):
            self._evict(path)
            METRICS.counter('runcache.miss').inc()
            _profile(eventlog.EVENT_CACHE_MISS, spec=spec.describe(),
                     reason='stale')
            return None
        METRICS.counter('runcache.hit').inc()
        _profile(eventlog.EVENT_CACHE_HIT, spec=spec.describe())
        return envelope['outcome']

    def store(self, spec, outcome):
        """Persist ``outcome`` under ``spec``'s key (atomic replace)."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(self.key(spec))
        envelope = {'format': CACHE_FORMAT, 'token': spec.cache_token(),
                    'outcome': outcome}
        tmp = path + '.tmp.%d' % os.getpid()
        with open(tmp, 'wb') as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        METRICS.counter('runcache.store').inc()
        _profile(eventlog.EVENT_CACHE_STORE, spec=spec.describe())

    @staticmethod
    def _evict(path):
        try:
            os.remove(path)
        except OSError:
            pass

    def __len__(self):
        try:
            return sum(1 for name in os.listdir(self.root)
                       if name.endswith('.pkl'))
        except OSError:
            return 0


def pipeline_counters():
    """Snapshot of the pipeline's counters (runcache.* and executor.*),
    for tests and the CLI summary line."""
    return METRICS.counter_values()
