"""Plain-text table rendering for benchmark harness output."""


def format_table(headers, rows, title=None):
    """Render an aligned text table. Cells are stringified; floats get
    two decimals unless already strings."""
    def cell(value):
        if isinstance(value, float):
            return '%.2f' % value
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values):
        return '  '.join(v.rjust(w) for v, w in zip(values, widths))

    out = []
    if title:
        out.append(title)
        out.append('=' * len(title))
    out.append(line(headers))
    out.append(line(['-' * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return '\n'.join(out)


def format_percent(value):
    """Signed percent string, or '--' for missing."""
    if value is None:
        return '--'
    return '%+.1f%%' % value


class FigureResult:
    """Structured output of one figure driver: headers + rows + the
    rendered table, plus a free-form dict for assertions in tests.

    ``warnings`` carries data-quality caveats (e.g. saturated
    observability rings) the CLI prints after the table so a truncated
    window never masquerades as a complete one.
    """

    def __init__(self, figure, headers, rows, notes=None, warnings=()):
        self.figure = figure
        self.headers = headers
        self.rows = rows
        self.notes = notes or {}
        self.warnings = tuple(warnings)

    def table(self):
        return format_table(self.headers, self.rows, title=self.figure)

    def __repr__(self):
        return '<FigureResult %s rows=%d>' % (self.figure, len(self.rows))
