"""Declarative run specs: the frozen description of one simulation.

A :class:`RunSpec` captures *everything* that determines a run —
workload, strategy, interference, seed, machine shape, IRS tunables,
fault campaign, observability flags — as a frozen, hashable, picklable
value. Because the simulator is bit-deterministic in its inputs
(DESIGN.md §5), a RunSpec fully determines its
:class:`RunOutcome`; that equivalence is what makes parallel execution
(:class:`~repro.experiments.executor.ParallelRunner`) and result
caching (:class:`~repro.experiments.cache.ResultCache`) provably
interchangeable with a serial in-process loop.

The JSON spec-file dialect predates RunSpec and is kept as the
user-facing surface::

    {
      "app": "streamcluster",
      "strategy": "irs",
      "seed": 3,
      "machine": {"n_pcpus": 4, "fg_vcpus": 4, "pinned": true},
      "interference": {"kind": "hogs", "width": 2, "n_vms": 1},
      "workload": {"scale": 0.5, "n_threads": 4}
    }

:func:`parse_spec` validates a dict of that shape and
:func:`spec_from_dict` lifts it into a RunSpec. Execution lives in
:mod:`repro.experiments.executor` (`run_spec` / `run_spec_file` are
re-exported from there for compatibility).
"""

import dataclasses
import json

from ..simkernel.units import MS
from .strategies import ALL_STRATEGIES, EXTENSION_STRATEGIES
from .topology import NO_INTERFERENCE, InterferenceSpec

_KNOWN_STRATEGIES = tuple(ALL_STRATEGIES) + tuple(EXTENSION_STRATEGIES)
_TOP_LEVEL_KEYS = {'app', 'strategy', 'seed', 'machine', 'interference',
                   'workload', 'name'}
_MACHINE_KEYS = {'n_pcpus', 'fg_vcpus', 'pinned'}
_INTERFERENCE_KEYS = {'kind', 'width', 'n_vms'}
_WORKLOAD_KEYS = {'scale', 'n_threads', 'timeout_s'}

#: The run kinds the executor knows how to map to harness entry points.
PARALLEL, SERVER, PROBE, CLUSTER = 'parallel', 'server', 'probe', 'cluster'
TRAFFIC = 'traffic'
RUN_KINDS = (PARALLEL, SERVER, PROBE, CLUSTER, TRAFFIC)

SERVER_KINDS = ('specjbb', 'ab')


class SpecError(ValueError):
    """A malformed experiment spec."""


def _interference_tuple(interference):
    """Normalize an :class:`InterferenceSpec` (or a raw 3-tuple) to the
    hashable ``(kind, width, n_vms)`` form RunSpec stores."""
    if isinstance(interference, InterferenceSpec):
        return (interference.kind, interference.width, interference.n_vms)
    kind, width, n_vms = interference
    return (str(kind), int(width), int(n_vms))


def _irs_tuple(irs):
    """Normalize IRSConfig keyword overrides (dict or pair-tuple) to a
    sorted, hashable ``((key, value), ...)`` tuple."""
    if irs is None:
        return None
    pairs = irs.items() if isinstance(irs, dict) else irs
    return tuple(sorted((str(k), v) for k, v in pairs))


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Frozen description of one simulation run.

    ``interference`` is ``(kind, width, n_vms)``; ``irs`` is a sorted
    tuple of ``(field, value)`` IRSConfig overrides; ``faults`` names a
    fault campaign in the :data:`repro.faults.CAMPAIGNS` dialect (the
    ``--faults`` string). ``None`` fields mean "the harness default".

    Server runs (``kind='server'``) reuse ``app`` for the server kind
    (``'specjbb'``/``'ab'``) and ``interference`` width for the hog
    count; migration probes (``kind='probe'``) use ``interference``
    n_vms for the interfering-VM count and ``trigger`` for the probe
    phase.
    """

    app: str
    strategy: str = 'vanilla'
    kind: str = PARALLEL
    interference: tuple = ('hogs', 0, 1)
    seed: int = 0
    scale: float = 1.0
    n_pcpus: int = 4
    fg_vcpus: int = 4
    pinned: bool = True
    n_threads: int = None
    timeout_ns: int = None
    profile_mode: str = None
    irs: tuple = None
    faults: str = None
    spans: bool = False
    timeline: bool = False
    # Server-only knobs (None = run_server defaults).
    warmup_ns: int = None
    measure_ns: int = None
    # Probe-only knob.
    trigger: str = 'preemption'

    def __post_init__(self):
        if self.kind not in RUN_KINDS:
            raise SpecError('unknown run kind %r (want one of %s)'
                            % (self.kind, ', '.join(RUN_KINDS)))
        if self.strategy not in _KNOWN_STRATEGIES:
            raise SpecError('unknown strategy %r (known: %s)'
                            % (self.strategy, ', '.join(_KNOWN_STRATEGIES)))
        if self.kind == SERVER and self.app not in SERVER_KINDS:
            raise SpecError("server spec app must be one of %s, got %r"
                            % (', '.join(SERVER_KINDS), self.app))
        if self.kind == CLUSTER and not hasattr(self, 'n_hosts'):
            raise SpecError("kind='cluster' requires a ClusterSpec "
                            "(use cluster_spec())")
        if self.kind == TRAFFIC and not hasattr(self, 'open_loop'):
            raise SpecError("kind='traffic' requires a TrafficSpec "
                            "(use traffic_spec())")
        inter = self.interference
        if (not isinstance(inter, tuple) or len(inter) != 3):
            raise SpecError('interference must be (kind, width, n_vms), '
                            'got %r' % (inter,))
        if inter[1] < 0 or (inter[2] < 1 and inter[1] > 0):
            raise SpecError('bad interference shape %r' % (inter,))

    @property
    def interference_spec(self):
        """The :class:`InterferenceSpec` this run installs."""
        kind, width, n_vms = self.interference
        if width == 0:
            return NO_INTERFERENCE
        return InterferenceSpec(kind, width, n_vms=max(1, n_vms))

    def replace(self, **changes):
        """A copy with ``changes`` applied (fields are frozen)."""
        return dataclasses.replace(self, **changes)

    def canonical(self):
        """JSON-friendly dict of every field, suitable for hashing and
        for humans reading cache entries."""
        return dataclasses.asdict(self)

    def cache_token(self):
        """Stable canonical string: equal specs produce equal tokens,
        and any field change produces a different one."""
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(',', ':'), default=repr)

    def describe(self):
        """Short human label for error messages and logs."""
        kind, width, n_vms = self.interference
        inter = ('none' if width == 0 else
                 '%s x%d%s' % (kind, width,
                               ('(%dvm)' % n_vms) if n_vms > 1 else ''))
        return '%s %s/%s inter=%s seed=%d' % (
            self.kind, self.app, self.strategy, inter, self.seed)


def parallel_spec(app, strategy='vanilla', interference=NO_INTERFERENCE,
                  seed=0, scale=1.0, n_pcpus=4, fg_vcpus=4, pinned=True,
                  n_threads=None, timeout_ns=None, profile_mode=None,
                  irs=None, faults=None, spans=False, timeline=False):
    """Spec for one :func:`~repro.experiments.harness.run_parallel`
    run. Mirrors its signature, but declaratively: ``profile_mode``
    replaces ad-hoc ``profile=`` objects (it is applied through
    :func:`repro.workloads.profile_variant`), ``irs`` is a dict of
    IRSConfig overrides, ``faults`` a campaign string."""
    return RunSpec(app=app, strategy=strategy, kind=PARALLEL,
                   interference=_interference_tuple(interference),
                   seed=seed, scale=scale, n_pcpus=n_pcpus,
                   fg_vcpus=fg_vcpus, pinned=pinned, n_threads=n_threads,
                   timeout_ns=timeout_ns, profile_mode=profile_mode,
                   irs=_irs_tuple(irs), faults=faults, spans=spans,
                   timeline=timeline)


def server_spec(kind, strategy='vanilla', n_hogs=1, seed=0, n_pcpus=4,
                fg_vcpus=4, warmup_ns=None, measure_ns=None, irs=None,
                faults=None, spans=False, timeline=False):
    """Spec for one :func:`~repro.experiments.harness.run_server` run
    (``kind`` is ``'specjbb'`` or ``'ab'``)."""
    interference = ('hogs', n_hogs, 1) if n_hogs > 0 else ('hogs', 0, 1)
    return RunSpec(app=kind, strategy=strategy, kind=SERVER,
                   interference=interference, seed=seed, n_pcpus=n_pcpus,
                   fg_vcpus=fg_vcpus, warmup_ns=warmup_ns,
                   measure_ns=measure_ns, irs=_irs_tuple(irs),
                   faults=faults, spans=spans, timeline=timeline)


@dataclasses.dataclass(frozen=True)
class ClusterSpec(RunSpec):
    """Frozen description of one multi-host cluster run.

    Extends :class:`RunSpec` so the executor, cache, and parallel
    runner handle cluster runs unchanged — the extra fields flow into
    ``canonical()``/``cache_token()`` through ``dataclasses.asdict``.
    Field reuse: ``n_pcpus`` is the per-host pCPU count and
    ``fg_vcpus`` the per-server-VM vCPU count; ``strategy`` is the
    hypervisor strategy every host runs (guests opt into IRS when it is
    ``'irs'``).
    """

    n_hosts: int = 4
    placement: str = 'first_fit'
    rebalance: bool = True
    n_hog_vms: int = 4
    hog_vcpus: int = 2
    n_server_vms: int = 4
    capacity_vcpus: int = None
    arrivals_per_sec: int = 400

    def __post_init__(self):
        super().__post_init__()
        from ..cluster.placement import PLACEMENT_POLICIES
        if self.placement not in PLACEMENT_POLICIES:
            raise SpecError('unknown placement %r (want one of %s)'
                            % (self.placement,
                               ', '.join(sorted(PLACEMENT_POLICIES))))
        if self.n_hosts < 1:
            raise SpecError('a cluster needs at least one host')

    def describe(self):
        return 'cluster %s/%s %dhosts seed=%d' % (
            self.placement, self.strategy, self.n_hosts, self.seed)


def cluster_spec(strategy='vanilla', placement='first_fit', seed=0,
                 n_hosts=4, n_pcpus=4, capacity_vcpus=None, n_hog_vms=4,
                 hog_vcpus=2, n_server_vms=4, server_vcpus=2,
                 arrivals_per_sec=400, rebalance=True, warmup_ns=None,
                 measure_ns=None, faults=None, spans=False):
    """Spec for one :func:`repro.cluster.run_consolidation` run.
    ``faults`` names a chaos campaign (``'cluster-chaos'``,
    ``'host-flap-15'``, ...) from :data:`repro.faults.CAMPAIGNS`;
    ``spans`` turns on the cluster trace probes (placement instants,
    migration flows, health transitions)."""
    return ClusterSpec(app='cluster-consolidation', strategy=strategy,
                       kind=CLUSTER, seed=seed, n_pcpus=n_pcpus,
                       fg_vcpus=server_vcpus, n_hosts=n_hosts,
                       placement=placement, rebalance=rebalance,
                       n_hog_vms=n_hog_vms, hog_vcpus=hog_vcpus,
                       n_server_vms=n_server_vms,
                       capacity_vcpus=capacity_vcpus,
                       arrivals_per_sec=arrivals_per_sec,
                       warmup_ns=warmup_ns, measure_ns=measure_ns,
                       faults=faults, spans=spans)


@dataclasses.dataclass(frozen=True)
class TrafficSpec(ClusterSpec):
    """Frozen description of one open-loop traffic & serving run.

    Extends :class:`ClusterSpec` (so the executor, cache, and parallel
    runner handle it unchanged) with the traffic plane's knobs. Field
    reuse follows the cluster convention: ``n_server_vms`` is the
    baseline replica count and ``fg_vcpus`` the per-replica vCPU count.
    ``arrivals`` names a process in
    :data:`repro.traffic.arrivals.ARRIVALS`; ``router`` a policy in
    :data:`repro.traffic.router.ROUTER_POLICIES`.
    """

    open_loop: bool = True
    arrivals: str = 'poisson'
    rate_rps: int = 4000
    slo_p99_ms: float = 20.0
    router: str = 'least_queue'
    autoscale: bool = False
    max_replicas: int = 8
    queue_capacity: int = 256

    def __post_init__(self):
        super().__post_init__()
        from ..traffic.arrivals import ARRIVAL_KINDS
        from ..traffic.router import ROUTER_POLICIES
        if self.arrivals not in ARRIVAL_KINDS:
            raise SpecError('unknown arrival process %r (want one of %s)'
                            % (self.arrivals, ', '.join(ARRIVAL_KINDS)))
        if self.router not in ROUTER_POLICIES:
            raise SpecError('unknown router policy %r (want one of %s)'
                            % (self.router, ', '.join(ROUTER_POLICIES)))
        if self.rate_rps <= 0:
            raise SpecError('rate_rps must be positive')
        if self.slo_p99_ms <= 0:
            raise SpecError('slo_p99_ms must be positive')
        if self.max_replicas < self.n_server_vms:
            raise SpecError('max_replicas must cover the baseline fleet')
        if self.queue_capacity < 1:
            raise SpecError('queue_capacity must be >= 1')

    def describe(self):
        return 'traffic %s/%s %s@%drps seed=%d' % (
            'open' if self.open_loop else 'closed', self.strategy,
            self.arrivals, self.rate_rps, self.seed)


def traffic_spec(strategy='vanilla', placement='first_fit', seed=0,
                 open_loop=True, arrivals='poisson', rate_rps=4000,
                 slo_p99_ms=20.0, router='least_queue', autoscale=False,
                 max_replicas=8, queue_capacity=256, n_hosts=4, n_pcpus=4,
                 capacity_vcpus=6, n_hog_vms=4, hog_vcpus=2,
                 n_server_vms=4, server_vcpus=4, rebalance=True,
                 warmup_ns=None, measure_ns=None, faults=None, spans=False):
    """Spec for one :func:`repro.traffic.run_traffic` run. Defaults
    match the ``traffic-slo`` figure's consolidated topology: one hog
    tenant paired with one 4-vCPU replica per capacity-limited host."""
    return TrafficSpec(app='traffic-slo', strategy=strategy, kind=TRAFFIC,
                       seed=seed, n_pcpus=n_pcpus, fg_vcpus=server_vcpus,
                       n_hosts=n_hosts, placement=placement,
                       rebalance=rebalance, n_hog_vms=n_hog_vms,
                       hog_vcpus=hog_vcpus, n_server_vms=n_server_vms,
                       capacity_vcpus=capacity_vcpus, open_loop=open_loop,
                       arrivals=arrivals, rate_rps=rate_rps,
                       slo_p99_ms=slo_p99_ms, router=router,
                       autoscale=autoscale, max_replicas=max_replicas,
                       queue_capacity=queue_capacity, warmup_ns=warmup_ns,
                       measure_ns=measure_ns, faults=faults, spans=spans)


def probe_spec(n_inter_vms, seed=0, trigger='preemption'):
    """Spec for one Figure 1(b) migration-latency probe."""
    interference = (('hogs', 1, n_inter_vms) if n_inter_vms > 0
                    else ('hogs', 0, 1))
    return RunSpec(app='migration-probe', strategy='vanilla', kind=PROBE,
                   interference=interference, seed=seed, trigger=trigger)


class RunOutcome:
    """Serializable result of executing one :class:`RunSpec`.

    Unlike the harness's live result objects, an outcome carries no
    simulator, machine, or workload references — only derived values —
    so it survives a trip through a worker process or the on-disk
    cache. ``metrics`` is the picklable
    :class:`~repro.metrics.collector.RunMetrics` snapshot (None for
    probes); ``sa_delay_ns`` are the SA sender's processing-delay
    samples (empty when the strategy never attached a sender).
    """

    def __init__(self, spec, makespan_ns=None, utilization=None,
                 bg_rates=(), throughput=None, latency_summary=None,
                 probe_latency_ns=None, sa_delay_ns=(), metrics=None,
                 cluster=None):
        self.spec = spec
        self.makespan_ns = makespan_ns
        self.utilization = utilization
        self.bg_rates = tuple(bg_rates)
        self.throughput = throughput
        self.latency_summary = latency_summary
        self.probe_latency_ns = probe_latency_ns
        self.sa_delay_ns = tuple(sa_delay_ns)
        self.metrics = metrics
        # Cluster runs: the ClusterRunResult.summary() dict (placements,
        # migration/rejection counts, merged latency).
        self.cluster = cluster

    @property
    def app(self):
        return self.spec.app

    @property
    def strategy(self):
        return self.spec.strategy

    @property
    def completed(self):
        return self.makespan_ns is not None

    def __repr__(self):
        if self.spec.kind in (SERVER, CLUSTER):
            detail = '%.0f req/s' % (self.throughput or 0.0)
        elif self.spec.kind == PROBE:
            detail = ('%.1fms' % (self.probe_latency_ns / MS)
                      if self.probe_latency_ns is not None else 'no-fire')
        else:
            detail = ('%.1fms' % (self.makespan_ns / MS)
                      if self.completed else 'TIMEOUT')
        return '<Outcome %s/%s %s>' % (self.app, self.strategy, detail)


def _check_keys(section, mapping, allowed):
    unknown = set(mapping) - allowed
    if unknown:
        raise SpecError('unknown %s keys: %s (allowed: %s)'
                        % (section, ', '.join(sorted(unknown)),
                           ', '.join(sorted(allowed))))


def parse_spec(spec):
    """Validate a JSON-dialect spec dict and normalize it to
    :func:`~repro.experiments.harness.run_parallel` kwargs. Returns
    ``(app, kwargs)``."""
    if not isinstance(spec, dict):
        raise SpecError('spec must be a dict, got %r' % type(spec).__name__)
    _check_keys('top-level', spec, _TOP_LEVEL_KEYS)
    try:
        app = spec['app']
    except KeyError:
        raise SpecError("spec needs an 'app'")
    strategy = spec.get('strategy', 'vanilla')
    if strategy not in _KNOWN_STRATEGIES:
        raise SpecError('unknown strategy %r (known: %s)'
                        % (strategy, ', '.join(_KNOWN_STRATEGIES)))

    kwargs = {'strategy': strategy, 'seed': int(spec.get('seed', 0))}

    machine = spec.get('machine', {})
    _check_keys('machine', machine, _MACHINE_KEYS)
    kwargs['n_pcpus'] = int(machine.get('n_pcpus', 4))
    kwargs['fg_vcpus'] = int(machine.get('fg_vcpus', 4))
    kwargs['pinned'] = bool(machine.get('pinned', True))

    interference = spec.get('interference')
    if interference:
        _check_keys('interference', interference, _INTERFERENCE_KEYS)
        kwargs['interference'] = InterferenceSpec(
            interference.get('kind', 'hogs'),
            int(interference.get('width', 1)),
            n_vms=int(interference.get('n_vms', 1)))
    else:
        kwargs['interference'] = NO_INTERFERENCE

    workload = spec.get('workload', {})
    _check_keys('workload', workload, _WORKLOAD_KEYS)
    kwargs['scale'] = float(workload.get('scale', 1.0))
    if 'n_threads' in workload:
        kwargs['n_threads'] = int(workload['n_threads'])
    if 'timeout_s' in workload:
        kwargs['timeout_ns'] = int(float(workload['timeout_s']) * 10**9)
    return app, kwargs


def spec_from_dict(spec):
    """Lift a JSON-dialect spec dict into a :class:`RunSpec`."""
    app, kwargs = parse_spec(spec)
    return parallel_spec(app, **kwargs)
