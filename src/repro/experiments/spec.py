"""Declarative experiment specs.

A spec is a plain dict (JSON-friendly) describing one run — machine
shape, strategy, interference, workload — so experiments can live in
config files and be replayed exactly:

    {
      "app": "streamcluster",
      "strategy": "irs",
      "seed": 3,
      "machine": {"n_pcpus": 4, "fg_vcpus": 4, "pinned": true},
      "interference": {"kind": "hogs", "width": 2, "n_vms": 1},
      "workload": {"scale": 0.5, "n_threads": 4}
    }

:func:`run_spec` validates and executes one spec; :func:`run_spec_file`
reads a JSON file holding a spec or a list of specs.
"""

import json

from .harness import run_parallel
from .strategies import ALL_STRATEGIES, EXTENSION_STRATEGIES
from .topology import NO_INTERFERENCE, InterferenceSpec

_KNOWN_STRATEGIES = tuple(ALL_STRATEGIES) + tuple(EXTENSION_STRATEGIES)
_TOP_LEVEL_KEYS = {'app', 'strategy', 'seed', 'machine', 'interference',
                   'workload', 'name'}
_MACHINE_KEYS = {'n_pcpus', 'fg_vcpus', 'pinned'}
_INTERFERENCE_KEYS = {'kind', 'width', 'n_vms'}
_WORKLOAD_KEYS = {'scale', 'n_threads', 'timeout_s'}


class SpecError(ValueError):
    """A malformed experiment spec."""


def _check_keys(section, mapping, allowed):
    unknown = set(mapping) - allowed
    if unknown:
        raise SpecError('unknown %s keys: %s (allowed: %s)'
                        % (section, ', '.join(sorted(unknown)),
                           ', '.join(sorted(allowed))))


def parse_spec(spec):
    """Validate a spec dict and normalize it to run_parallel kwargs.
    Returns ``(app, kwargs)``."""
    if not isinstance(spec, dict):
        raise SpecError('spec must be a dict, got %r' % type(spec).__name__)
    _check_keys('top-level', spec, _TOP_LEVEL_KEYS)
    try:
        app = spec['app']
    except KeyError:
        raise SpecError("spec needs an 'app'")
    strategy = spec.get('strategy', 'vanilla')
    if strategy not in _KNOWN_STRATEGIES:
        raise SpecError('unknown strategy %r (known: %s)'
                        % (strategy, ', '.join(_KNOWN_STRATEGIES)))

    kwargs = {'strategy': strategy, 'seed': int(spec.get('seed', 0))}

    machine = spec.get('machine', {})
    _check_keys('machine', machine, _MACHINE_KEYS)
    kwargs['n_pcpus'] = int(machine.get('n_pcpus', 4))
    kwargs['fg_vcpus'] = int(machine.get('fg_vcpus', 4))
    kwargs['pinned'] = bool(machine.get('pinned', True))

    interference = spec.get('interference')
    if interference:
        _check_keys('interference', interference, _INTERFERENCE_KEYS)
        kwargs['interference'] = InterferenceSpec(
            interference.get('kind', 'hogs'),
            int(interference.get('width', 1)),
            n_vms=int(interference.get('n_vms', 1)))
    else:
        kwargs['interference'] = NO_INTERFERENCE

    workload = spec.get('workload', {})
    _check_keys('workload', workload, _WORKLOAD_KEYS)
    kwargs['scale'] = float(workload.get('scale', 1.0))
    if 'n_threads' in workload:
        kwargs['n_threads'] = int(workload['n_threads'])
    if 'timeout_s' in workload:
        kwargs['timeout_ns'] = int(float(workload['timeout_s']) * 10**9)
    return app, kwargs


def run_spec(spec):
    """Execute one spec; returns the
    :class:`~repro.experiments.harness.ParallelRunResult`."""
    app, kwargs = parse_spec(spec)
    return run_parallel(app, **kwargs)


def run_spec_file(path):
    """Run the spec (or list of specs) in a JSON file. Returns a list
    of ``(spec, result)`` pairs."""
    with open(path) as handle:
        loaded = json.load(handle)
    specs = loaded if isinstance(loaded, list) else [loaded]
    results = []
    for spec in specs:
        results.append((spec, run_spec(spec)))
    return results
