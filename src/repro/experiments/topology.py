"""Scenario construction: machines, VMs, pinning, interference.

Encodes the paper's experimental settings (Section 5.1):

* the foreground VM's vCPUs are pinned one per pCPU (except in the
  CPU-stacking experiments, where everything floats);
* ``k``-inter means an interfering VM with ``k`` vCPUs pinned to pCPUs
  0..k-1, running either ``k`` CPU hogs or a ``k``-thread real
  application;
* stacking ``n_vms`` interfering VMs (Figure 11) multiplies contention
  on each interfered pCPU.
"""

from ..guestos import GuestKernel
from ..hypervisor import Machine, VM
from ..simkernel import Simulator
from ..workloads import HogWorkload, ParallelWorkload, get_profile


class InterferenceSpec:
    """What competes with the foreground VM.

    ``kind`` is ``'hogs'`` for the synthetic micro-benchmark or a
    benchmark profile name (e.g. ``'streamcluster'``) for real
    application interference. ``width`` is the number of interfered
    foreground vCPUs (the paper's 1-inter./2-inter./4-inter.);
    ``n_vms`` stacks several interfering VMs on the same pCPUs.
    """

    def __init__(self, kind='hogs', width=1, n_vms=1):
        if width < 0:
            raise ValueError('width must be >= 0')
        if n_vms < 1:
            raise ValueError('n_vms must be >= 1')
        self.kind = kind
        self.width = width
        self.n_vms = n_vms

    def __repr__(self):
        return '<Interference %s width=%d vms=%d>' % (
            self.kind, self.width, self.n_vms)


NO_INTERFERENCE = InterferenceSpec(width=0)


class Scenario:
    """A built experiment: simulator, machine, kernels, workloads."""

    def __init__(self, sim, machine, fg_vm, fg_kernel, bg_kernels,
                 bg_workloads):
        self.sim = sim
        self.machine = machine
        self.fg_vm = fg_vm
        self.fg_kernel = fg_kernel
        self.bg_kernels = bg_kernels
        self.bg_workloads = bg_workloads

    @property
    def all_kernels(self):
        return [self.fg_kernel] + list(self.bg_kernels)


def build_scenario(seed=0, n_pcpus=4, fg_vcpus=4,
                   interference=NO_INTERFERENCE, pinned=True, scale=1.0,
                   trace=False):
    """Construct the machine and VMs for one run. The foreground VM is
    created with its guest kernel but no workload yet; interference is
    fully installed. Returns a :class:`Scenario`."""
    sim = Simulator(seed=seed, trace=trace)
    machine = Machine(sim, n_pcpus=n_pcpus)
    if not pinned:
        machine.enable_unpinned_balancing()

    fg_vm = VM('fg', fg_vcpus, sim)
    fg_pinning = list(range(fg_vcpus)) if pinned else None
    machine.add_vm(fg_vm, pinning=fg_pinning)
    fg_kernel = GuestKernel(sim, fg_vm, machine)

    bg_kernels = []
    bg_workloads = []
    width = interference.width
    if width > 0:
        for v in range(interference.n_vms):
            vm = VM('bg%d' % v, width, sim)
            bg_pinning = list(range(width)) if pinned else None
            machine.add_vm(vm, pinning=bg_pinning)
            kernel = GuestKernel(sim, vm, machine)
            bg_kernels.append(kernel)
            if interference.kind == 'hogs':
                workload = HogWorkload(sim, kernel, count=width,
                                       name='bg%d.hog' % v)
            else:
                profile = get_profile(interference.kind)
                workload = ParallelWorkload(
                    sim, kernel, profile, n_threads=width, repeat=True,
                    scale=scale, prefix='bg%d.%s' % (v, profile.name))
            bg_workloads.append(workload)

    machine.start()
    for workload in bg_workloads:
        workload.install()
    return Scenario(sim, machine, fg_vm, fg_kernel, bg_kernels,
                    bg_workloads)
