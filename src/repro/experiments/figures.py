"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation. Each returns a
:class:`~repro.experiments.reporting.FigureResult` whose rows mirror the
series the paper plots; ``result.table()`` renders them. Absolute
numbers come from our simulated substrate, so only the *shape* (winner,
rough factors, crossovers) is expected to match the testbed results.

Every driver is two passes over the same grid: pass one builds the
figure's full batch of declarative
:class:`~repro.experiments.spec.RunSpec` values, pass two aggregates
the :class:`~repro.experiments.spec.RunOutcome` of each spec into rows.
The batch goes through :func:`~repro.experiments.executor.run_specs`
exactly once, so the active executor (``--jobs``) can fan the whole
grid out and the result cache (``--cache``) can skip any run it has
seen — with identical tables either way, because a spec fully
determines its outcome.

``quick=True`` (the default) runs one seed at reduced workload scale;
``quick=False`` averages several seeds at full scale.
"""

import statistics

from ..obs.eventlog import format_residency, residency_timeline, vm_names
from ..obs.report import drop_warnings, explain_empty, sa_latency_rows
from ..simkernel.units import MS, SEC, US
from ..workloads import NPB, PARSEC, get_profile
from .executor import run_specs
from .reporting import FigureResult
from .spec import (cluster_spec, parallel_spec, probe_spec, server_spec,
                   traffic_spec)
from .strategies import COMPARISON_STRATEGIES, IRS, PLE, RELAXED_CO, VANILLA
from .topology import NO_INTERFERENCE, InterferenceSpec

# The paper's interference grids.
PARSEC_INTERFERERS = ('hogs', 'streamcluster', 'fluidanimate')
NPB_INTERFERERS = ('hogs', 'UA', 'LU')
INTERFERENCE_WIDTHS = (1, 2, 4)

# NPB subset shown in Figure 2 (blocking build, OMP passive).
FIG2_NPB = ('CG', 'MG', 'FT', 'SP', 'UA')


def _settings(quick):
    if quick:
        return {'seeds': (0,), 'scale': 0.5}
    return {'seeds': (0, 1, 2), 'scale': 1.0}


def _mean(values):
    values = [v for v in values if v is not None]
    if not values:
        return None
    return statistics.fmean(values)


def _seed_specs(app, strategy, interference, seeds, scale, **kwargs):
    """One parallel-run spec per seed (the unit the figures average)."""
    return [parallel_spec(app, strategy, interference, seed=seed,
                          scale=scale, **kwargs) for seed in seeds]


def _outcomes(specs):
    """Execute the batch once; returns ``{spec: outcome}``. Duplicate
    specs are fine — determinism makes their outcomes equal."""
    return dict(zip(specs, run_specs(specs)))


def _mean_span(out, specs):
    return _mean([out[s].makespan_ns for s in specs])


def _mean_rate(out, specs):
    rates = []
    for spec in specs:
        outcome = out[spec]
        if outcome.bg_rates:
            rates.append(_mean(outcome.bg_rates))
    return _mean(rates)


def _improvement(base_ns, strat_ns):
    if base_ns is None or strat_ns is None or strat_ns <= 0:
        return None
    return (base_ns / strat_ns - 1.0) * 100.0


# ======================================================================
# Figure 1 — motivation
# ======================================================================

def fig1a(quick=True):
    """Slowdown of fluidanimate (blocking), UA (spinning), raytrace
    (user-level work stealing) under one interfering VM."""
    cfg = _settings(quick)
    apps = ('fluidanimate', 'UA', 'raytrace')
    plan = {}
    batch = []
    for app in apps:
        alone = _seed_specs(app, VANILLA, NO_INTERFERENCE,
                            cfg['seeds'], cfg['scale'])
        inter = _seed_specs(app, VANILLA, InterferenceSpec('hogs', 1),
                            cfg['seeds'], cfg['scale'])
        plan[app] = (alone, inter)
        batch += alone + inter
    out = _outcomes(batch)

    rows = []
    notes = {}
    for app in apps:
        alone_specs, inter_specs = plan[app]
        alone = _mean_span(out, alone_specs)
        inter = _mean_span(out, inter_specs)
        slowdown = inter / alone if alone and inter else None
        rows.append([app, '%.0f' % (alone / MS), '%.0f' % (inter / MS),
                     '%.2fx' % slowdown if slowdown else '--'])
        notes[app] = slowdown
    return FigureResult(
        'Figure 1(a): slowdown under interference (vanilla)',
        ['app', 'alone (ms)', '1 interferer (ms)', 'slowdown'], rows, notes)


def fig1b(quick=True, trials=None):
    """Process-migration latency vs number of interfering VMs."""
    trials = trials or (10 if quick else 30)
    levels = (0, 1, 2, 3)
    plan = {n_vms: [probe_spec(n_vms, seed=s) for s in range(trials)]
            for n_vms in levels}
    out = _outcomes([spec for specs in plan.values() for spec in specs])

    rows = []
    notes = {}
    for n_vms in levels:
        lats = [out[s].probe_latency_ns for s in plan[n_vms]]
        lats = [l for l in lats if l is not None]
        mean_ms = _mean(lats) / MS if lats else None
        label = 'alone' if n_vms == 0 else '%dVM' % n_vms
        rows.append([label, '%.1f' % mean_ms if mean_ms else '--'])
        notes[label] = mean_ms
    return FigureResult(
        'Figure 1(b): migration latency off a contended vCPU',
        ['interference', 'latency (ms)'], rows, notes)


# ======================================================================
# Figure 2 — utilization relative to fair share
# ======================================================================

def fig2(quick=True):
    """CPU utilization of the parallel VM relative to its fair share
    under one interfering hog (vanilla). Blocking builds throughout;
    raytrace's work stealing keeps utilization near the share."""
    cfg = _settings(quick)
    apps = [a for a in PARSEC if a != 'raytrace']
    apps += list(FIG2_NPB) + ['raytrace']
    plan = {}
    batch = []
    for app in apps:
        # NPB profiles are spinning by default; Figure 2 uses the
        # blocking build (OMP passive).
        mode = 'block' if get_profile(app).suite == 'npb' else None
        specs = _seed_specs(app, VANILLA, InterferenceSpec('hogs', 1),
                            cfg['seeds'], cfg['scale'], profile_mode=mode)
        plan[app] = specs
        batch += specs
    out = _outcomes(batch)

    rows = []
    notes = {}
    for app in apps:
        value = _mean([out[s].utilization for s in plan[app]])
        rows.append([app, '%.2f' % value])
        notes[app] = value
    return FigureResult(
        'Figure 2: CPU utilization relative to fair share (vanilla, 1 hog)',
        ['app', 'utilization/fair-share'], rows, notes)


# ======================================================================
# Figures 5 & 6 — strategy comparison grids
# ======================================================================

def _improvement_grid(apps, interferers, quick, figure_name,
                      widths=INTERFERENCE_WIDTHS,
                      strategies=COMPARISON_STRATEGIES):
    cfg = _settings(quick)
    plan = []
    batch = []
    for interferer in interferers:
        for app in apps:
            for width in widths:
                spec = InterferenceSpec(interferer, width)
                base = _seed_specs(app, VANILLA, spec, cfg['seeds'],
                                   cfg['scale'])
                per_strategy = {
                    strategy: _seed_specs(app, strategy, spec,
                                          cfg['seeds'], cfg['scale'])
                    for strategy in strategies}
                plan.append((interferer, app, width, base, per_strategy))
                batch += base + sum(per_strategy.values(), [])
    out = _outcomes(batch)

    rows = []
    notes = {}
    for interferer, app, width, base_specs, per_strategy in plan:
        base = _mean_span(out, base_specs)
        row = [interferer, app, '%d-inter' % width]
        for strategy in strategies:
            strat = _mean_span(out, per_strategy[strategy])
            imp = _improvement(base, strat)
            row.append('%+.1f%%' % imp if imp is not None else '--')
            notes[(interferer, app, width, strategy)] = imp
        rows.append(row)
    headers = ['interferer', 'app', 'level'] + list(strategies)
    return FigureResult(figure_name, headers, rows, notes)


def fig5(quick=True, apps=None, interferers=None):
    """PARSEC improvement over vanilla (blocking synchronization)."""
    apps = apps or list(PARSEC)
    interferers = interferers or PARSEC_INTERFERERS
    return _improvement_grid(
        apps, interferers, quick,
        'Figure 5: PARSEC improvement over vanilla (blocking)')


def fig6(quick=True, apps=None, interferers=None):
    """NPB improvement over vanilla (spinning synchronization)."""
    apps = apps or list(NPB)
    interferers = interferers or NPB_INTERFERERS
    return _improvement_grid(
        apps, interferers, quick,
        'Figure 6: NPB improvement over vanilla (spinning)')


# ======================================================================
# Figures 7 & 9 — weighted speedup
# ======================================================================

def _weighted_grid(apps, backgrounds, quick, figure_name,
                   widths=INTERFERENCE_WIDTHS,
                   strategies=COMPARISON_STRATEGIES):
    cfg = _settings(quick)
    plan = []
    batch = []
    for background in backgrounds:
        for app in apps:
            for width in widths:
                spec = InterferenceSpec(background, width)
                base = _seed_specs(app, VANILLA, spec, cfg['seeds'],
                                   cfg['scale'])
                per_strategy = {
                    strategy: _seed_specs(app, strategy, spec,
                                          cfg['seeds'], cfg['scale'])
                    for strategy in strategies}
                plan.append((background, app, width, base, per_strategy))
                batch += base + sum(per_strategy.values(), [])
    out = _outcomes(batch)

    rows = []
    notes = {}
    for background, app, width, base_specs, per_strategy in plan:
        base_span = _mean_span(out, base_specs)
        base_rate = _mean_rate(out, base_specs)
        row = [background, app, '%d-inter' % width]
        for strategy in strategies:
            span = _mean_span(out, per_strategy[strategy])
            rate = _mean_rate(out, per_strategy[strategy])
            value = None
            if (base_span and span and base_rate and rate
                    and base_rate > 0):
                fg_speedup = base_span / span
                bg_speedup = rate / base_rate
                value = (fg_speedup + bg_speedup) / 2.0 * 100.0
            row.append('%.0f%%' % value if value else '--')
            notes[(background, app, width, strategy)] = value
        rows.append(row)
    headers = ['background', 'app', 'level'] + list(strategies)
    return FigureResult(figure_name, headers, rows, notes)


def fig7(quick=True, apps=None, backgrounds=('fluidanimate',
                                             'streamcluster')):
    """Weighted speedup of co-located PARSEC pairs (higher is better;
    100% = vanilla parity)."""
    apps = apps or list(PARSEC)
    return _weighted_grid(
        apps, backgrounds, quick,
        'Figure 7: weighted speedup, PARSEC pairs (blocking)')


def fig9(quick=True, apps=None, backgrounds=('LU', 'UA')):
    """Weighted speedup of co-located NPB pairs."""
    apps = apps or list(NPB)
    return _weighted_grid(
        apps, backgrounds, quick,
        'Figure 9: weighted speedup, NPB pairs (spinning)')


# ======================================================================
# Figure 8 — server throughput and latency
# ======================================================================

def fig8(quick=True):
    """SPECjbb / ab throughput and latency improvement due to IRS.

    The paper reports the average new-order latency for SPECjbb and the
    99th percentile for ab. In our substrate the SPECjbb effect lives in
    the stall tail (transactions hit by a vCPU preemption), so the p99
    is the comparable series; the mean is dominated by unstalled 5 ms
    transactions and barely moves (recorded in EXPERIMENTS.md).
    """
    measure_ns = 2 * SEC if quick else 4 * SEC
    grid = [(kind, latency_key, n_hogs)
            for kind, latency_key in (('specjbb', 'p99'), ('ab', 'p99'))
            for n_hogs in (1, 2, 3, 4)]
    plan = {}
    batch = []
    for kind, __, n_hogs in grid:
        pair = (server_spec(kind, VANILLA, n_hogs=n_hogs,
                            measure_ns=measure_ns),
                server_spec(kind, IRS, n_hogs=n_hogs,
                            measure_ns=measure_ns))
        plan[(kind, n_hogs)] = pair
        batch += list(pair)
    out = _outcomes(batch)

    rows = []
    notes = {}
    for kind, latency_key, n_hogs in grid:
        base_spec, irs_spec = plan[(kind, n_hogs)]
        base, irs = out[base_spec], out[irs_spec]
        thr_imp = ((irs.throughput / base.throughput - 1.0) * 100.0
                   if base.throughput > 0 else None)
        base_lat = base.latency_summary[latency_key]
        irs_lat = irs.latency_summary[latency_key]
        lat_imp = ((1.0 - irs_lat / base_lat) * 100.0
                   if base_lat > 0 else None)
        rows.append([kind, '%d-inter' % n_hogs,
                     '%+.1f%%' % thr_imp if thr_imp is not None else '--',
                     '%+.1f%%' % lat_imp if lat_imp is not None else '--',
                     latency_key])
        notes[(kind, n_hogs)] = (thr_imp, lat_imp)
    return FigureResult(
        'Figure 8: server throughput / latency improvement (IRS)',
        ['server', 'level', 'throughput', 'latency', 'latency metric'],
        rows, notes)


# ======================================================================
# Figures 10 & 11 — scalability and interference depth
# ======================================================================

FIG10_APPS = ('x264', 'blackscholes', 'EP', 'MG')


def fig10(quick=True, apps=FIG10_APPS):
    """IRS gain vs number of interfered vCPUs, 8-vCPU VMs over 8 pCPUs,
    for three interference types per app."""
    cfg = _settings(quick)
    widths = (1, 2, 4, 8) if quick else (1, 2, 3, 4, 5, 6, 7, 8)
    plan = []
    batch = []
    for app in apps:
        interferers = (NPB_INTERFERERS if get_profile(app).suite == 'npb'
                       else PARSEC_INTERFERERS)
        for interferer in interferers:
            cells = []
            for width in widths:
                spec = InterferenceSpec(interferer, width)
                base = _seed_specs(app, VANILLA, spec, cfg['seeds'],
                                   cfg['scale'], n_pcpus=8, fg_vcpus=8)
                strat = _seed_specs(app, IRS, spec, cfg['seeds'],
                                    cfg['scale'], n_pcpus=8, fg_vcpus=8)
                cells.append((width, base, strat))
                batch += base + strat
            plan.append((app, interferer, cells))
    out = _outcomes(batch)

    rows = []
    notes = {}
    for app, interferer, cells in plan:
        row = [app, interferer]
        for width, base_specs, strat_specs in cells:
            imp = _improvement(_mean_span(out, base_specs),
                               _mean_span(out, strat_specs))
            row.append('%+.0f%%' % imp if imp is not None else '--')
            notes[(app, interferer, width)] = imp
        rows.append(row)
    headers = ['app', 'interferer'] + ['%d-inter' % w for w in widths]
    return FigureResult(
        'Figure 10: IRS gain vs # of interfered vCPUs (8-vCPU VM)',
        headers, rows, notes)


def fig11(quick=True, apps=FIG10_APPS):
    """IRS gain vs the number of interfering VMs stacked per pCPU."""
    cfg = _settings(quick)
    depths = (1, 2, 3)
    plan = []
    batch = []
    for app in apps:
        for width in INTERFERENCE_WIDTHS:
            cells = []
            for n_vms in depths:
                spec = InterferenceSpec('hogs', width, n_vms=n_vms)
                base = _seed_specs(app, VANILLA, spec, cfg['seeds'],
                                   cfg['scale'])
                strat = _seed_specs(app, IRS, spec, cfg['seeds'],
                                    cfg['scale'])
                cells.append((n_vms, base, strat))
                batch += base + strat
            plan.append((app, width, cells))
    out = _outcomes(batch)

    rows = []
    notes = {}
    for app, width, cells in plan:
        row = [app, '%d-inter' % width]
        for n_vms, base_specs, strat_specs in cells:
            imp = _improvement(_mean_span(out, base_specs),
                               _mean_span(out, strat_specs))
            row.append('%+.0f%%' % imp if imp is not None else '--')
            notes[(app, width, n_vms)] = imp
        rows.append(row)
    return FigureResult(
        'Figure 11: IRS gain vs degree of contention (1-3 interfering VMs)',
        ['app', 'level', '1 VM', '2 VMs', '3 VMs'], rows, notes)


# ======================================================================
# Figures 12 & 13 — CPU stacking (unpinned vCPUs)
# ======================================================================

def _stacking_grid(apps, interferers, quick, figure_name):
    cfg = _settings(quick)
    scale = cfg['scale'] * 0.6      # stacked runs are slow; trim work
    plan = []
    batch = []
    for interferer in interferers:
        for app in apps:
            spec = InterferenceSpec(interferer, 4)
            base = _seed_specs(app, VANILLA, spec, cfg['seeds'], scale,
                               pinned=False)
            per_strategy = {
                strategy: _seed_specs(app, strategy, spec, cfg['seeds'],
                                      scale, pinned=False)
                for strategy in COMPARISON_STRATEGIES}
            plan.append((interferer, app, base, per_strategy))
            batch += base + sum(per_strategy.values(), [])
    out = _outcomes(batch)

    rows = []
    notes = {}
    for interferer, app, base_specs, per_strategy in plan:
        base = _mean_span(out, base_specs)
        row = [interferer, app]
        for strategy in COMPARISON_STRATEGIES:
            imp = _improvement(base, _mean_span(out, per_strategy[strategy]))
            row.append('%+.0f%%' % imp if imp is not None else '--')
            notes[(interferer, app, strategy)] = imp
        rows.append(row)
    headers = ['interferer', 'app'] + list(COMPARISON_STRATEGIES)
    return FigureResult(figure_name, headers, rows, notes)


def fig12(quick=True, apps=None, interferers=NPB_INTERFERERS):
    """NPB under CPU stacking (all vCPUs unpinned, 4-inter)."""
    apps = apps or list(NPB)
    return _stacking_grid(
        apps, interferers, quick,
        'Figure 12: NPB improvement under CPU stacking (unpinned)')


def fig13(quick=True, apps=None, interferers=PARSEC_INTERFERERS):
    """PARSEC under CPU stacking: deceptive idleness territory."""
    apps = apps or list(PARSEC)
    return _stacking_grid(
        apps, interferers, quick,
        'Figure 13: PARSEC improvement under CPU stacking (unpinned)')


# ======================================================================
# Section 3.1 / 5.4 — SA overhead and fairness
# ======================================================================

def sa_overhead(quick=True):
    """Profile the SA processing delay the hypervisor incurs
    (Section 3.1 reports 20-26 us)."""
    cfg = _settings(quick)
    spec = parallel_spec('streamcluster', IRS, InterferenceSpec('hogs', 2),
                         seed=cfg['seeds'][0], scale=cfg['scale'])
    samples = _outcomes([spec])[spec].sa_delay_ns
    rows = []
    notes = {}
    if samples:
        mean_us = _mean(samples) / US
        lo_us = min(samples) / US
        hi_us = max(samples) / US
        rows.append(['SA preemption delay',
                     '%.1f' % lo_us, '%.1f' % mean_us, '%.1f' % hi_us,
                     '%d' % len(samples)])
        notes['mean_us'] = mean_us
        notes['min_us'] = lo_us
        notes['max_us'] = hi_us
        notes['count'] = len(samples)
    return FigureResult(
        'Section 3.1: SA processing delay profile',
        ['metric', 'min (us)', 'mean (us)', 'max (us)', 'samples'],
        rows, notes)


def sa_latency(quick=True, strategy=IRS):
    """Per-phase SA-protocol latency percentiles from the span probes
    (offer, vIRQ, upcall, deschedule, ack, preempt-fire, migrate)."""
    cfg = _settings(quick)
    # spans=True arms the SA-protocol probes; a CLI-installed
    # --trace-out default supersedes it in the executor so the run is
    # also exported.
    spec = parallel_spec('streamcluster', strategy,
                         InterferenceSpec('hogs', 2),
                         seed=cfg['seeds'][0], scale=cfg['scale'],
                         spans=True)
    outcome = _outcomes([spec])[spec]
    headers, rows, notes = sa_latency_rows(outcome.metrics.registry)
    title = ('Section 3.1: SA-protocol phase latency (strategy=%s)'
             % strategy)
    if not rows:
        # Explain the empty table instead of printing zeros.
        reason = explain_empty(strategy, spans_enabled=True)
        notes['empty_reason'] = reason
        rows = [['(none)', '0', '--', '--', '--', '--', reason]]
    return FigureResult(title, headers, rows, notes,
                        warnings=drop_warnings(outcome.metrics.registry))


def fairness_check(quick=True, apps=('streamcluster', 'UA')):
    """Section 5.4: IRS improves the foreground VM's utilization but
    never pushes it past the fair share."""
    cfg = _settings(quick)
    grid = [(app, strategy) for app in apps
            for strategy in (VANILLA, IRS)]
    plan = {cell: parallel_spec(cell[0], cell[1],
                                InterferenceSpec('hogs', 4),
                                seed=cfg['seeds'][0], scale=cfg['scale'])
            for cell in grid}
    out = _outcomes(list(plan.values()))

    rows = []
    notes = {}
    for app, strategy in grid:
        utilization = out[plan[(app, strategy)]].utilization
        rows.append([app, strategy, '%.3f' % utilization])
        notes[(app, strategy)] = utilization
    return FigureResult(
        'Section 5.4: utilization vs fair share (4 hogs)',
        ['app', 'strategy', 'utilization/fair-share'], rows, notes)


def cluster_consolidation(quick=True):
    """Cluster extension: {vanilla, IRS} x {first_fit,
    interference_aware} placement on a 4-host cluster.

    Hog VMs land first, then latency-sensitive server VMs; the
    rebalance daemon live-migrates VMs off hot-spot hosts. The grid
    separates the two defenses: IRS makes guests resilient to the
    interference they get, interference-aware placement avoids handing
    it to them in the first place.
    """
    cfg = _settings(quick)
    measure_ns = 1 * SEC if quick else 2 * SEC
    grid = [(strategy, placement)
            for strategy in (VANILLA, IRS)
            for placement in ('first_fit', 'interference_aware')]
    plan = {cell: [cluster_spec(strategy=cell[0], placement=cell[1],
                                seed=seed, measure_ns=measure_ns)
                   for seed in cfg['seeds']]
            for cell in grid}
    out = _outcomes([spec for specs in plan.values() for spec in specs])

    rows = []
    notes = {}
    for strategy, placement in grid:
        specs = plan[(strategy, placement)]
        throughput = _mean([out[s].throughput for s in specs])
        p99_ms = _mean([out[s].latency_summary['p99'] for s in specs]) / MS
        migrations = _mean([out[s].cluster['migrations'] for s in specs])
        rejections = _mean([out[s].cluster['rejections'] for s in specs])
        rows.append([strategy, placement, '%.0f' % throughput,
                     '%.2f' % p99_ms, '%.1f' % migrations,
                     '%.1f' % rejections])
        notes[(strategy, placement)] = {
            'throughput': throughput, 'p99_ms': p99_ms,
            'migrations': migrations, 'rejections': rejections}
    return FigureResult(
        'Cluster extension: consolidation under placement policies'
        ' (4 hosts)',
        ['strategy', 'placement', 'req/s', 'p99 (ms)', 'migrations',
         'rejections'],
        rows, notes)


def cluster_resilience(quick=True):
    """Cluster fault-tolerance figure: how consolidation degrades under
    chaos campaigns, per placement policy.

    Rows are {no-faults, host-flap, cluster-chaos} x {first_fit,
    interference_aware} on IRS hosts. The fault-free rows are the
    baseline; the chaos rows show what the recovery controller,
    migration rollback, and quarantine plane preserve: throughput and
    tail latency degrade, but every orphaned VM is either re-placed
    (``recovered``) or explicitly parked — never lost.
    """
    cfg = _settings(quick)
    measure_ns = 1 * SEC if quick else 2 * SEC
    campaigns = (None, 'host-flap-15', 'cluster-chaos')
    placements = ('first_fit', 'interference_aware')
    grid = [(faults, placement) for faults in campaigns
            for placement in placements]
    plan = {cell: [cluster_spec(strategy=IRS, placement=cell[1],
                                seed=seed, measure_ns=measure_ns,
                                faults=cell[0])
                   for seed in cfg['seeds']]
            for cell in grid}
    out = _outcomes([spec for specs in plan.values() for spec in specs])

    rows = []
    notes = {}
    for faults, placement in grid:
        specs = plan[(faults, placement)]
        throughput = _mean([out[s].throughput for s in specs])
        p99_ms = _mean([out[s].latency_summary['p99'] for s in specs]) / MS
        crashes = _mean([out[s].cluster['host_crashes'] for s in specs])
        aborted = _mean([out[s].cluster['aborted_migrations']
                         for s in specs])
        recovered = _mean([out[s].cluster['recovered'] for s in specs])
        parked = _mean([out[s].cluster['parked'] for s in specs])
        label = faults or 'none'
        rows.append([label, placement, '%.0f' % throughput,
                     '%.2f' % p99_ms, '%.1f' % crashes, '%.1f' % aborted,
                     '%.1f' % recovered, '%.1f' % parked])
        notes[(label, placement)] = {
            'throughput': throughput, 'p99_ms': p99_ms,
            'host_crashes': crashes, 'aborted_migrations': aborted,
            'recovered': recovered, 'parked': parked}
    return FigureResult(
        'Cluster extension: resilience under chaos campaigns'
        ' (IRS hosts)',
        ['faults', 'placement', 'req/s', 'p99 (ms)', 'crashes',
         'aborts', 'recovered', 'parked'],
        rows, notes)


def _cluster_drop_warnings(summary):
    """Warning lines for a cluster run's saturated observability rings
    (the cluster summary carries the counts; there is no registry to
    hand to :func:`~repro.obs.report.drop_warnings`)."""
    warnings = []
    for key, what in (('span_drops', 'span ring overflowed'),
                      ('trace_drops', 'trace-record ring overflowed')):
        count = summary.get(key, 0)
        if count:
            warnings.append(
                'warning: %s — %d oldest entries dropped; counters are '
                'complete, but exported windows are truncated (raise '
                'the ring capacity to keep them)' % (what, count))
    return warnings


def cluster_health(quick=True, faults='cluster-chaos', seed=None):
    """Cluster health report: each VM's residency timeline (place ->
    crash -> orphan -> re-place / park), reconstructed from the
    structured health event log of one seeded chaos run.

    This is the event log demonstrating its design goal: the table is
    built *only* from the JSONL-shaped events — no scenario counters,
    no metrics — so the same reconstruction works offline on a file
    written with ``--events-out``. ``faults=None`` shows the quiet
    baseline (every VM a single ``place`` step).
    """
    cfg = _settings(quick)
    if seed is None:
        seed = cfg['seeds'][0]
    measure_ns = 1 * SEC if quick else 2 * SEC
    spec = cluster_spec(strategy=IRS, placement='first_fit', seed=seed,
                        measure_ns=measure_ns, faults=faults, spans=True)
    outcome = _outcomes([spec])[spec]
    summary = outcome.cluster
    events = summary['events']

    rows = []
    notes = {'event_counts': dict(summary['event_counts']),
             'host_crashes': summary['host_crashes'],
             'seed': seed, 'faults': faults}
    for vm in vm_names(events):
        steps = residency_timeline(events, vm)
        rows.append([vm, '%d' % len(steps), format_residency(steps)])
        notes[vm] = steps
    if not rows:
        rows = [['(none)', '0', 'no VM lifecycle events recorded']]
    return FigureResult(
        'Cluster extension: per-VM residency timelines'
        ' (faults=%s, seed=%d)' % (faults or 'none', seed),
        ['vm', 'steps', 'residency'], rows, notes,
        warnings=_cluster_drop_warnings(summary))


def traffic_slo(quick=True, arrivals='poisson', rate_rps=None,
                slo_p99_ms=None):
    """Traffic extension: {vanilla, IRS} x {closed, open-loop} serving
    on a consolidated cluster (every host shares its replica with a
    batch hog tenant).

    The grid's point is measurement methodology as much as scheduling:
    closed-loop request threads self-throttle when vCPUs stall, so the
    'req/s' column overstates healthy capacity while thread-per-vCPU
    leaves no queue for IRS to drain — both closed rows miss the SLO.
    Open loop offers the same load regardless (arrivals keep coming,
    full queues shed), splitting latency into queueing + service; there
    scheduler activations move work off preempted vCPUs and IRS holds
    p99 attainment where vanilla burns through its error budget.
    """
    cfg = _settings(quick)
    measure_ns = 1 * SEC if quick else 2 * SEC
    kwargs = {}
    if rate_rps is not None:
        kwargs['rate_rps'] = rate_rps
    if slo_p99_ms is not None:
        kwargs['slo_p99_ms'] = slo_p99_ms
    grid = [(strategy, open_loop)
            for strategy in (VANILLA, IRS)
            for open_loop in (False, True)]
    plan = {cell: [traffic_spec(strategy=cell[0], open_loop=cell[1],
                                arrivals=arrivals, seed=seed,
                                measure_ns=measure_ns, **kwargs)
                   for seed in cfg['seeds']]
            for cell in grid}
    out = _outcomes([spec for specs in plan.values() for spec in specs])

    rows = []
    notes = {'arrivals': arrivals}
    for strategy, open_loop in grid:
        specs = plan[(strategy, open_loop)]
        loop = 'open' if open_loop else 'closed'
        throughput = _mean([out[s].throughput for s in specs])
        p99_ms = _mean([out[s].latency_summary['p99'] for s in specs]) / MS
        attainment = _mean([out[s].cluster['slo']['attainment']
                            for s in specs])
        shed = _mean([out[s].cluster['shed'] for s in specs])
        meets = all(out[s].cluster['slo']['meets_slo'] for s in specs)
        rows.append([strategy, loop, '%.0f' % throughput,
                     '%.2f' % p99_ms, '%.4f' % attainment,
                     '%.1f' % shed, 'yes' if meets else 'NO'])
        notes[(strategy, loop)] = {
            'throughput': throughput, 'p99_ms': p99_ms,
            'attainment': attainment, 'shed': shed, 'meets_slo': meets}
    return FigureResult(
        'Traffic extension: SLO attainment under consolidation'
        ' ({closed, open}-loop serving)',
        ['strategy', 'loop', 'req/s', 'p99 (ms)', 'attainment', 'shed',
         'meets SLO'],
        rows, notes)


ALL_FIGURES = {
    'fig1a': fig1a,
    'fig1b': fig1b,
    'fig2': fig2,
    'fig5': fig5,
    'fig6': fig6,
    'fig7': fig7,
    'fig8': fig8,
    'fig9': fig9,
    'fig10': fig10,
    'fig11': fig11,
    'fig12': fig12,
    'fig13': fig13,
    'sa_overhead': sa_overhead,
    'sa_latency': sa_latency,
    'fairness_check': fairness_check,
    'cluster_consolidation': cluster_consolidation,
    'cluster_resilience': cluster_resilience,
    'cluster_health': cluster_health,
    'traffic_slo': traffic_slo,
}
