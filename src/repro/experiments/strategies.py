"""The four scheduling strategies compared in the evaluation.

* ``vanilla`` — stock Xen credit scheduler + stock Linux guest;
* ``ple`` — pause-loop exiting enabled (HVM-style spin detection);
* ``relaxed_co`` — VMware-style relaxed co-scheduling re-implemented in
  the credit scheduler, as the authors did;
* ``irs`` — the paper's scheduler-activation approach. Only the
  *foreground* kernels get the guest-side components; background VMs run
  vanilla kernels and ignore activations (Section 5.4, footnote 1).
"""

from ..core import IRSConfig, install_irs
from ..hypervisor.delayed_preempt import install_delayed_preemption
from ..hypervisor.machine import StrategyDescriptor

VANILLA = 'vanilla'
PLE = 'ple'
RELAXED_CO = 'relaxed_co'
IRS = 'irs'
# Extension baselines beyond the paper's evaluated set.
DELAY_PREEMPT = 'delay_preempt'
BALANCE_SCHED = 'balance_sched'

ALL_STRATEGIES = (VANILLA, PLE, RELAXED_CO, IRS)
COMPARISON_STRATEGIES = (PLE, RELAXED_CO, IRS)
EXTENSION_STRATEGIES = (DELAY_PREEMPT, BALANCE_SCHED)


def apply_strategy(machine, strategy, irs_kernels=(), irs_config=None):
    """Wire ``strategy`` into a freshly built machine.

    ``irs_kernels`` are the guest kernels that implement the SA handler
    when the strategy is IRS (usually just the foreground VM's kernel).
    """
    if strategy == VANILLA:
        return None
    if strategy == PLE:
        machine.attach_strategies(StrategyDescriptor(ple=True))
        return machine.ple
    if strategy == RELAXED_CO:
        machine.attach_strategies(StrategyDescriptor(relaxed_co=True))
        return machine.relaxed_co
    if strategy == IRS:
        if not irs_kernels:
            raise ValueError('IRS requires at least one capable guest')
        return install_irs(machine, irs_kernels,
                           irs_config or IRSConfig())
    if strategy == DELAY_PREEMPT:
        if not irs_kernels:
            raise ValueError('delay-preemption requires at least one '
                             'cooperating guest')
        return install_delayed_preemption(machine, irs_kernels)
    if strategy == BALANCE_SCHED:
        # Only meaningful for unpinned vCPUs (placement-based scheme).
        machine.attach_strategies(StrategyDescriptor(balance_sched=True))
        return machine.hv_balancer
    raise ValueError('unknown strategy %r (want one of %s)'
                     % (strategy, ', '.join(ALL_STRATEGIES)))
