"""``python -m repro.experiments`` — regenerate paper figures."""

import sys

from .cli import main

sys.exit(main())
