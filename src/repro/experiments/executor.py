"""Pluggable executors: map RunSpec batches to RunOutcomes.

This is the middle stage of the experiments pipeline
(spec -> executor -> cache). :func:`execute_spec` turns one
:class:`~repro.experiments.spec.RunSpec` into a serializable
:class:`~repro.experiments.spec.RunOutcome` by dispatching to the
matching harness entry point. Two executors map batches:

* :class:`SerialExecutor` — the in-process loop, bit-identical to the
  historical per-figure loops;
* :class:`ParallelRunner` — a ``ProcessPoolExecutor`` fan-out with
  deterministic result ordering (submission order, not completion
  order) and per-run crash isolation: a failing worker raises
  :class:`RunError` naming the offending spec, and the remaining
  futures are cancelled instead of left to hang the pool.

:func:`run_specs` is the front door the figure drivers, sweeps, and the
CLI use: it deduplicates a batch, consults the active
:class:`~repro.experiments.cache.ResultCache`, dispatches only the
misses, and reassembles outcomes in input order. Determinism (same
spec -> same outcome) is what makes all of that invisible to callers.
"""

import concurrent.futures
import os
import time

from ..core import IRSConfig
from ..faults import parse_fault_plan
from ..obs import eventlog
from ..workloads import get_profile, profile_variant
from .cache import (  # noqa: F401  (ResultCache re-export)
    METRICS,
    PROFILE_LOG,
    ResultCache,
)
from .harness import (
    ObservabilityConfig,
    default_fault_plan,
    default_fault_text,
    default_observability,
    run_migration_probe,
    run_parallel,
    run_server,
    set_default_fault_plan,
    set_default_observability,
)
from .spec import (CLUSTER, PARALLEL, PROBE, SERVER, TRAFFIC, RunOutcome,
                   spec_from_dict)


class RunError(RuntimeError):
    """A spec failed to execute. ``spec`` names the failing run so a
    crashed worker surfaces *which* configuration died rather than a
    bare pool traceback."""

    def __init__(self, spec, cause):
        super().__init__('run failed for [%s]: %s: %s'
                         % (spec.describe(), type(cause).__name__, cause))
        self.spec = spec


def _observability_for(spec):
    """The observe= argument for one spec: the ambient CLI default
    (``--trace-out``) wins so exports still happen on the serial path;
    otherwise the spec's own flags decide."""
    if default_observability() is not None:
        return None                      # fall through to the default
    if spec.spans or spec.timeline:
        return ObservabilityConfig(trace_out=None, spans=spec.spans,
                                   timeline=spec.timeline)
    return None


def execute_spec(spec):
    """Execute one spec in-process; returns its :class:`RunOutcome`.

    Everything that determines the run is taken from the spec itself
    (fault campaign text, IRS overrides, observability flags), so the
    result is identical whether this runs in the parent or a worker.
    """
    METRICS.counter('executor.runs').inc()
    observe = _observability_for(spec)
    fault_plan = parse_fault_plan(spec.faults) if spec.faults else None
    irs_config = IRSConfig(**dict(spec.irs)) if spec.irs else None

    if spec.kind == CLUSTER:
        # Lazy import: the cluster layer is optional for the classic
        # single-machine pipeline and pulls in the whole guest stack.
        from ..cluster.scenario import run_consolidation
        kwargs = {}
        if spec.warmup_ns is not None:
            kwargs['warmup_ns'] = spec.warmup_ns
        if spec.measure_ns is not None:
            kwargs['measure_ns'] = spec.measure_ns
        result = run_consolidation(
            strategy=spec.strategy, placement=spec.placement,
            seed=spec.seed, n_hosts=spec.n_hosts, host_pcpus=spec.n_pcpus,
            capacity_vcpus=spec.capacity_vcpus, n_hog_vms=spec.n_hog_vms,
            hog_vcpus=spec.hog_vcpus, n_server_vms=spec.n_server_vms,
            server_vcpus=spec.fg_vcpus,
            arrivals_per_sec=spec.arrivals_per_sec,
            rebalance=spec.rebalance, faults=spec.faults,
            observe=observe, **kwargs)
        return RunOutcome(spec, throughput=result.throughput,
                          latency_summary=result.latency_summary,
                          cluster=result.summary())

    if spec.kind == TRAFFIC:
        # Lazy import for the same reason as the cluster branch: the
        # traffic plane sits above the cluster layer.
        from ..traffic.scenario import run_traffic
        kwargs = {}
        if spec.warmup_ns is not None:
            kwargs['warmup_ns'] = spec.warmup_ns
        if spec.measure_ns is not None:
            kwargs['measure_ns'] = spec.measure_ns
        result = run_traffic(
            strategy=spec.strategy, placement=spec.placement,
            seed=spec.seed, open_loop=spec.open_loop,
            arrivals=spec.arrivals, rate_rps=spec.rate_rps,
            slo_p99_ms=spec.slo_p99_ms, router=spec.router,
            autoscale=spec.autoscale, max_replicas=spec.max_replicas,
            n_hosts=spec.n_hosts, host_pcpus=spec.n_pcpus,
            capacity_vcpus=spec.capacity_vcpus, n_hog_vms=spec.n_hog_vms,
            hog_vcpus=spec.hog_vcpus, n_server_vms=spec.n_server_vms,
            server_vcpus=spec.fg_vcpus, queue_capacity=spec.queue_capacity,
            rebalance=spec.rebalance, faults=spec.faults,
            observe=observe, **kwargs)
        return RunOutcome(spec, throughput=result.throughput,
                          latency_summary=result.latency_summary,
                          cluster=result.summary())

    if spec.kind == PROBE:
        kind, width, n_vms = spec.interference
        latency = run_migration_probe(n_vms if width else 0,
                                      seed=spec.seed, trigger=spec.trigger)
        return RunOutcome(spec, probe_latency_ns=latency)

    if spec.kind == SERVER:
        kwargs = {}
        if spec.warmup_ns is not None:
            kwargs['warmup_ns'] = spec.warmup_ns
        if spec.measure_ns is not None:
            kwargs['measure_ns'] = spec.measure_ns
        result = run_server(spec.app, spec.strategy,
                            n_hogs=spec.interference[1], seed=spec.seed,
                            n_pcpus=spec.n_pcpus, fg_vcpus=spec.fg_vcpus,
                            irs_config=irs_config, fault_plan=fault_plan,
                            observe=observe, **kwargs)
        return RunOutcome(spec, throughput=result.throughput,
                          latency_summary=result.latency_summary,
                          metrics=result.metrics)

    kwargs = {}
    if spec.n_threads is not None:
        kwargs['n_threads'] = spec.n_threads
    if spec.timeout_ns is not None:
        kwargs['timeout_ns'] = spec.timeout_ns
    if spec.profile_mode is not None:
        kwargs['profile'] = profile_variant(get_profile(spec.app),
                                            mode=spec.profile_mode)
    result = run_parallel(spec.app, spec.strategy, spec.interference_spec,
                          seed=spec.seed, scale=spec.scale,
                          n_pcpus=spec.n_pcpus, fg_vcpus=spec.fg_vcpus,
                          pinned=spec.pinned, irs_config=irs_config,
                          fault_plan=fault_plan, observe=observe, **kwargs)
    sender = result.scenario.machine.sa_sender
    return RunOutcome(spec, makespan_ns=result.makespan_ns,
                      utilization=result.utilization,
                      bg_rates=result.bg_rates,
                      sa_delay_ns=(sender.delay_samples_ns
                                   if sender is not None else ()),
                      metrics=result.metrics)


def _execute_in_worker(spec):
    """Worker-process entry: clear any fork-inherited ambient defaults
    so the spec alone determines the run, then execute."""
    set_default_fault_plan(None)
    set_default_observability(None)
    return execute_spec(spec)


class SerialExecutor:
    """Run a batch in-process, in order."""

    jobs = 1

    def map(self, specs):
        outcomes = []
        for spec in specs:
            METRICS.counter('executor.dispatched').inc()
            started = time.monotonic_ns()  # replint: disable=determinism
            PROFILE_LOG.append(started, eventlog.EVENT_SPEC_DISPATCH,
                               spec=spec.describe(), jobs=1)
            try:
                outcomes.append(execute_spec(spec))
            except Exception as exc:
                raise RunError(spec, exc) from exc
            finished = time.monotonic_ns()  # replint: disable=determinism
            wall_ns = finished - started
            METRICS.histogram('executor.run_wall_ns').record(wall_ns)
            PROFILE_LOG.append(finished, eventlog.EVENT_SPEC_DONE,
                               spec=spec.describe(), wall_ns=wall_ns)
        return outcomes

    def __repr__(self):
        return '<SerialExecutor>'


class ParallelRunner:
    """Run a batch across worker processes.

    Results come back in submission order regardless of completion
    order, so a parallel batch is byte-identical to a serial one. A
    batch of one (or ``jobs=1``) short-circuits to the serial path —
    no pool, no pickling.

    ``wall_timeout`` (seconds, real time) arms a watchdog against hung
    workers: a spec whose result does not arrive within the window has
    its worker processes terminated and the pool rebuilt, the batch's
    uncollected specs are resubmitted, and the timed-out spec itself is
    retried **once** — a second timeout raises :class:`RunError` naming
    it. The watchdog needs real processes to kill, so an armed runner
    never short-circuits to the serial path.
    """

    def __init__(self, jobs=None, wall_timeout=None):
        if jobs is not None and jobs < 1:
            raise ValueError('jobs must be >= 1')
        if wall_timeout is not None and wall_timeout <= 0:
            raise ValueError('wall_timeout must be positive')
        self.jobs = jobs or os.cpu_count() or 1
        self.wall_timeout = wall_timeout
        # The worker entry point, swappable by tests that need a
        # controllable (e.g. deliberately hanging) workload.
        self._worker = _execute_in_worker

    def map(self, specs):
        specs = list(specs)
        if ((self.jobs == 1 or len(specs) <= 1)
                and self.wall_timeout is None):
            return SerialExecutor().map(specs)
        workers = max(1, min(self.jobs, len(specs)))
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        try:
            futures, submitted = self._submit(pool, specs)
            outcomes = [None] * len(specs)
            retried = set()
            i = 0
            while i < len(specs):
                spec = specs[i]
                try:
                    outcomes[i] = futures[i].result(
                        timeout=self.wall_timeout)
                except concurrent.futures.TimeoutError as exc:
                    METRICS.counter('executor.wall_timeouts').inc()
                    self._kill_pool(pool)
                    if i in retried:
                        raise RunError(spec, TimeoutError(
                            'no result within %.1fs wall time (twice)'
                            % self.wall_timeout)) from exc
                    retried.add(i)
                    METRICS.counter('executor.timeout_retries').inc()
                    PROFILE_LOG.append(time.monotonic_ns(),  # replint: disable=determinism
                                       eventlog.EVENT_SPEC_RETRY,
                                       spec=spec.describe())
                    # Every uncollected spec's worker died with the old
                    # pool; resubmit them all (determinism makes the
                    # redone work exact, just wasted).
                    pool = concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers)
                    futures[i:], submitted[i:] = self._submit(
                        pool, specs[i:])
                    continue
                except Exception as exc:
                    for pending in futures:
                        pending.cancel()
                    raise RunError(spec, exc) from exc
                finished = time.monotonic_ns()  # replint: disable=determinism
                # Wall time as seen from the parent: queue wait plus
                # the worker's run (the parent cannot see inside).
                wall_ns = finished - submitted[i]
                METRICS.histogram('executor.run_wall_ns').record(wall_ns)
                PROFILE_LOG.append(finished, eventlog.EVENT_SPEC_DONE,
                                   spec=spec.describe(), wall_ns=wall_ns)
                i += 1
            return outcomes
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _submit(self, pool, specs):
        futures = []
        submitted = []
        for spec in specs:
            METRICS.counter('executor.dispatched').inc()
            now = time.monotonic_ns()  # replint: disable=determinism
            submitted.append(now)
            PROFILE_LOG.append(now, eventlog.EVENT_SPEC_DISPATCH,
                               spec=spec.describe(), jobs=self.jobs)
            futures.append(pool.submit(self._worker, spec))
        return futures, submitted

    @staticmethod
    def _kill_pool(pool):
        """Terminate a pool whose worker hung: SIGTERM every worker
        process (a hung simulation never reaches a cooperative
        shutdown), then reap the executor without waiting."""
        processes = getattr(pool, '_processes', None) or {}
        for proc in list(processes.values()):
            proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def __repr__(self):
        if self.wall_timeout is not None:
            return ('<ParallelRunner jobs=%d wall_timeout=%.1fs>'
                    % (self.jobs, self.wall_timeout))
        return '<ParallelRunner jobs=%d>' % self.jobs


# Executor / cache applied to every batch that does not pass one
# explicitly; set from the CLI's --jobs / --cache flags. None means
# "serial, uncached" — the historical behavior.
_default_executor = None
_default_cache = None

_UNSET = object()


def set_default_executor(executor):
    """Install ``executor`` for every subsequent batch (None restores
    the serial default). Returns the previous executor."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


def default_executor():
    """The currently installed default executor (or None = serial)."""
    return _default_executor


def set_default_cache(cache):
    """Install ``cache`` (a :class:`ResultCache` or None) for every
    subsequent batch. Returns the previous cache."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def default_cache():
    """The currently installed default result cache (or None)."""
    return _default_cache


def _normalize(spec):
    """Fold ambient CLI defaults that affect determinism into the spec
    itself, so cache keys and worker processes see them."""
    if spec.faults is None and default_fault_text() is not None:
        return spec.replace(faults=default_fault_text())
    return spec


def _cache_is_safe():
    """Whether the ambient harness state is fully captured by spec
    normalization — if not, serving cached outcomes would be wrong."""
    obs = default_observability()
    if obs is not None and (getattr(obs, 'trace_out', None)
                            or getattr(obs, 'events_out', None)
                            or getattr(obs, 'metrics_out', None)):
        return False            # cache hits would skip the exports
    if default_fault_plan() is not None and default_fault_text() is None:
        return False            # plan installed without keyable text
    return True


def run_specs(specs, executor=None, cache=_UNSET):
    """Execute a batch of specs; returns outcomes in input order.

    Duplicated specs are executed once (determinism makes the shared
    outcome exact). ``executor`` defaults to the CLI-installed one
    (:func:`set_default_executor`), else serial; ``cache`` likewise
    (pass ``None`` to force uncached execution). Cached entries are
    bypassed entirely whenever ambient harness state (an installed
    ``--trace-out`` export, an unkeyable fault plan) is not captured by
    the specs themselves.
    """
    specs = [_normalize(spec) for spec in specs]
    if executor is None:
        executor = _default_executor or SerialExecutor()
    if cache is _UNSET:
        cache = _default_cache
    if cache is not None and not _cache_is_safe():
        cache = None

    unique = []
    index = {}
    for spec in specs:
        if spec not in index:
            index[spec] = len(unique)
            unique.append(spec)

    outcomes = [None] * len(unique)
    misses = []
    for i, spec in enumerate(unique):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            outcomes[i] = cached
        else:
            misses.append(i)

    if misses:
        fresh = executor.map([unique[i] for i in misses])
        for i, outcome in zip(misses, fresh):
            outcomes[i] = outcome
            if cache is not None:
                cache.store(unique[i], outcome)

    return [outcomes[index[spec]] for spec in specs]


def run_spec(spec):
    """Execute one JSON-dialect spec dict (or a :class:`RunSpec`);
    returns its :class:`RunOutcome`."""
    if isinstance(spec, dict):
        spec = spec_from_dict(spec)
    return run_specs([spec])[0]


def run_spec_file(path):
    """Run the spec (or list of specs) in a JSON file as one batch
    (parallel/cached under the active defaults). Returns a list of
    ``(spec_dict, outcome)`` pairs."""
    import json
    with open(path) as handle:
        loaded = json.load(handle)
    spec_dicts = loaded if isinstance(loaded, list) else [loaded]
    outcomes = run_specs([spec_from_dict(d) for d in spec_dicts])
    return list(zip(spec_dicts, outcomes))
