"""The ``cluster-consolidation`` scenario: hogs first, servers second.

The story mirrors the paper's consolidation setting lifted to a
cluster: batch VMs full of CPU hogs arrive first and spread across the
hosts, then latency-sensitive server VMs arrive. Under ``first_fit``
the servers pack onto the lowest-indexed hosts — exactly the ones the
hogs already saturated — so every server request eats steal time and
LHP-style preemption. ``interference_aware`` reads the monitors and
routes the servers to the quiet hosts. The rebalance daemon then tells
the second half of the story: under a bad initial placement it churns
(migrations, each with a real downtime cost) trying to repair it, while
a good placement stays quiet.
"""

from ..faults import FaultPlan, parse_fault_plan
from ..metrics import LatencyRecorder
from ..obs.exporters import write_chrome_trace
from ..obs.exposition import write_exposition
from ..simkernel import Simulator
from ..simkernel.units import MS, SEC
from .cluster import Cluster, RebalanceDaemon, VmRequest
from .host import HOST_STRATEGIES, HostSpec

# Trace-counter prefixes surfaced in ClusterRunResult.counters — the
# fault/recovery ledger the resilience figure and the determinism gate
# read (parked VMs, rollbacks, leaked-reservation-free aborts, ...).
CLUSTER_COUNTER_PREFIXES = ('cluster.', 'faults.')


class ClusterRunResult:
    """Everything the figure needs from one cluster run."""

    def __init__(self, strategy, placement, seed, throughput,
                 latency_summary, migrations, rejections, dropped,
                 placements, rebalance_trips, faults=None, counters=None,
                 recovered=0, parked=0, aborted_migrations=0,
                 host_crashes=0, events=None, event_counts=None,
                 span_drops=0, trace_drops=0):
        self.strategy = strategy
        self.placement = placement
        self.seed = seed
        self.throughput = throughput
        self.latency_summary = latency_summary
        self.migrations = migrations
        self.rejections = rejections
        self.dropped = dropped
        self.placements = placements
        self.rebalance_trips = rebalance_trips
        self.faults = faults
        self.counters = dict(counters or {})
        self.recovered = recovered
        self.parked = parked
        self.aborted_migrations = aborted_migrations
        self.host_crashes = host_crashes
        # Health event log (JSON-simple dicts, sim order) plus its
        # per-kind tally; ring-drop counters close the loop so reports
        # can warn when a window was truncated.
        self.events = list(events or [])
        self.event_counts = dict(event_counts or {})
        self.span_drops = span_drops
        self.trace_drops = trace_drops

    def summary(self):
        """JSON-simple dict (what the pipeline caches)."""
        return {
            'strategy': self.strategy,
            'placement': self.placement,
            'seed': self.seed,
            'throughput': self.throughput,
            'latency': self.latency_summary,
            'migrations': self.migrations,
            'rejections': self.rejections,
            'dropped': self.dropped,
            'placements': self.placements,
            'rebalance_trips': self.rebalance_trips,
            'faults': self.faults,
            'counters': self.counters,
            'recovered': self.recovered,
            'parked': self.parked,
            'aborted_migrations': self.aborted_migrations,
            'host_crashes': self.host_crashes,
            'events': self.events,
            'event_counts': self.event_counts,
            'span_drops': self.span_drops,
            'trace_drops': self.trace_drops,
        }


def run_consolidation(strategy='vanilla', placement='first_fit', seed=0,
                      n_hosts=4, host_pcpus=4, capacity_vcpus=None,
                      n_hog_vms=4, hog_vcpus=2, n_server_vms=4,
                      server_vcpus=2, arrivals_per_sec=400,
                      service_ns=2 * MS, rebalance=True,
                      warmup_ns=600 * MS, measure_ns=1 * SEC,
                      faults=None, observe=None):
    """Run one consolidation experiment and return a
    :class:`ClusterRunResult`.

    ``strategy`` is the per-host hypervisor strategy (every host gets
    the same one); server guests opt into IRS when the strategy is
    ``'irs'``. Hog VMs are always vanilla guests — they model opaque
    batch tenants. ``faults`` selects a chaos campaign: a campaign
    name (see :data:`repro.faults.CAMPAIGNS`), a
    :class:`~repro.faults.FaultPlan`, or ``None`` for a reliable
    cluster.

    ``observe`` (an :class:`~repro.experiments.harness.
    ObservabilityConfig`, True for defaults, or None for the
    CLI-installed default) enables the cluster span probes and, at the
    end of the run, exports the Perfetto trace (``trace_out``), the
    health event log as JSONL (``events_out``), and the Prometheus
    text exposition (``metrics_out``). The health event log itself is
    always recorded — it is a low-rate control-plane ledger, like the
    admission ledger — only the exports and the span probes are opt-in.
    """
    if strategy not in HOST_STRATEGIES:
        raise ValueError('unknown strategy %r' % strategy)
    # Lazy import: repro.experiments imports this module (through the
    # executor); the harness never imports the cluster layer at import
    # time, but going through it here keeps that the only direction.
    from ..experiments.harness import (ObservabilityConfig,
                                       default_observability)
    obs_config = observe if observe is not None else default_observability()
    if obs_config is True:
        obs_config = ObservabilityConfig()
    fault_plan = None
    fault_name = None
    if faults is not None:
        if isinstance(faults, FaultPlan):
            fault_plan = faults
        else:
            fault_plan = parse_fault_plan(faults)
        fault_name = fault_plan.name if fault_plan is not None else None
    sim = Simulator(seed=seed)
    if obs_config is not None and obs_config.spans:
        sim.trace.spans.enabled = True
    specs = [HostSpec('host%d' % i, n_pcpus=host_pcpus, strategy=strategy,
                      capacity_vcpus=capacity_vcpus)
             for i in range(n_hosts)]
    daemon = RebalanceDaemon() if rebalance else None
    cluster = Cluster(sim, specs, policy=placement, rebalance=daemon,
                      fault_plan=fault_plan)

    # Hogs arrive first, staggered so each lands on live monitor data.
    for i in range(n_hog_vms):
        request = VmRequest('hog%d' % i, n_vcpus=hog_vcpus,
                            workload='hogs', working_set_mb=256)
        sim.at(10 * MS + i * 30 * MS, cluster.submit, request)

    # Servers arrive once the hogs have been profiled for a few monitor
    # windows; they opt into IRS when the hosts offer it.
    is_irs = strategy == 'irs'
    server_t0 = 10 * MS + n_hog_vms * 30 * MS + 60 * MS
    for i in range(n_server_vms):
        request = VmRequest(
            'srv%d' % i, n_vcpus=server_vcpus, workload='server',
            irs=is_irs, working_set_mb=64,
            workload_kwargs={'arrivals_per_sec': arrivals_per_sec,
                             'service_ns': service_ns})
        sim.at(server_t0 + i * 40 * MS, cluster.submit, request)

    cluster.start()
    sim.run_until(warmup_ns)
    for server in cluster.servers:
        server.reset_measurement()
    sim.run_until(warmup_ns + measure_ns)

    merged = LatencyRecorder('cluster.latency')
    throughput = 0.0
    dropped = 0
    for server in cluster.servers:
        merged.extend(server.latency.samples)
        throughput += server.throughput()
        dropped += server.dropped
    counters = {name: count
                for name, count in sorted(sim.trace.counters.items())
                if name.startswith(CLUSTER_COUNTER_PREFIXES)}
    if obs_config is not None:
        if obs_config.trace_out:
            write_chrome_trace(obs_config.trace_out,
                               spans=sim.trace.spans, now_ns=sim.now)
        if obs_config.events_out:
            cluster.events.write_jsonl(obs_config.events_out)
        if obs_config.metrics_out:
            write_exposition(obs_config.metrics_out, sim.trace.metrics)
    return ClusterRunResult(
        strategy=strategy,
        placement=placement,
        seed=seed,
        throughput=throughput,
        latency_summary=merged.summary(),
        migrations=len(cluster.migration.records),
        rejections=cluster.admission.rejected,
        dropped=dropped,
        placements=list(cluster.placements),
        rebalance_trips=sim.trace.counters['cluster.rebalance_trips'],
        faults=fault_name,
        counters=counters,
        recovered=cluster.recovery.replaced,
        parked=len(cluster.recovery.parked),
        aborted_migrations=len(cluster.migration.aborted),
        host_crashes=sum(host.crashes for host in cluster.hosts),
        events=cluster.events.to_dicts(),
        event_counts=cluster.events.counts(),
        span_drops=sim.trace.spans.dropped,
        trace_drops=sim.trace.counters.get('trace.dropped', 0),
    )
