"""Pluggable VM placement policies.

Every policy answers one question — *which admissible host should this
VM land on?* — deterministically: candidates arrive in host-index
order, scores are pure functions of monitor state, and every
comparison tie-breaks on the lowest host index. Same cluster state,
same choice, every run.

* ``first_fit`` — the classic packing baseline: the lowest-indexed
  host with capacity. Blind to load and interference.
* ``least_loaded`` — lowest committed-vCPU ratio. Spreads load but
  cannot tell a host full of CPU hogs from one full of mostly-idle
  servers.
* ``interference_aware`` — scores hosts by the composite interference
  profile (steal pressure, run pressure, preemption and SA rates) the
  monitor maintains, plus the load the newcomer itself would add. This
  is the operator-side complement to IRS: the guest tolerates
  interference, the placer avoids creating it.
"""


class PlacementPolicy:
    """Base class; subclasses implement :meth:`choose` and
    :meth:`score`."""

    name = None

    def choose(self, candidates, request):
        """Pick one host from ``candidates`` (non-empty, admission
        filtered, in host-index order) for ``request``."""
        raise NotImplementedError

    def score(self, host, request):
        """This policy's ranking value for ``host`` (lower = better).
        Purely informational for policies that do not rank."""
        raise NotImplementedError

    def scores(self, candidates, request):
        """``{host-name: score}`` for every candidate — the evidence
        the health event log attaches to each placement decision."""
        return {host.name: round(self.score(host, request), 6)
                for host in candidates}

    def __repr__(self):
        return '<PlacementPolicy %s>' % self.name


class FirstFitPolicy(PlacementPolicy):
    """The lowest-indexed host with room."""

    name = 'first_fit'

    def choose(self, candidates, request):
        return candidates[0]

    def score(self, host, request):
        # First-fit ranks by position alone; the index is the score.
        return float(host.index)


class LeastLoadedPolicy(PlacementPolicy):
    """The host with the lowest committed-vCPU ratio."""

    name = 'least_loaded'

    def score(self, host, request):
        return host.used_vcpus / host.spec.n_pcpus

    def choose(self, candidates, request):
        return min(candidates,
                   key=lambda h: (h.used_vcpus / h.spec.n_pcpus, h.index))


class InterferenceAwarePolicy(PlacementPolicy):
    """The host where the newcomer would suffer (and cause) the least
    interference, by composite profile score."""

    name = 'interference_aware'

    #: Weight of the projected load the request itself adds; small, so
    #: it spreads ties but never outvotes an observed-interference gap.
    LOAD_WEIGHT = 0.05

    def score(self, host, request):
        projected = (host.used_vcpus + request.n_vcpus) / host.spec.n_pcpus
        return host.interference_score() + self.LOAD_WEIGHT * projected

    def choose(self, candidates, request):
        return min(candidates,
                   key=lambda h: (self.score(h, request), h.index))


PLACEMENT_POLICIES = {
    policy.name: policy
    for policy in (FirstFitPolicy, LeastLoadedPolicy,
                   InterferenceAwarePolicy)
}


def make_policy(policy):
    """Normalize a policy name or instance to an instance."""
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return PLACEMENT_POLICIES[policy]()
    except KeyError:
        raise ValueError('unknown placement policy %r (want one of %s)'
                         % (policy, ', '.join(sorted(PLACEMENT_POLICIES))))
