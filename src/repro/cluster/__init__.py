"""Cluster layer: multi-host simulation on one clock.

Hosts wrap :class:`~repro.hypervisor.machine.Machine` with capacity and
strategy descriptors; the :class:`Cluster` coordinator routes VM
requests through admission control and a pluggable placement policy
(first-fit, least-loaded, or interference-aware scoring over per-VM
interference profiles); a :class:`LiveMigrationEngine` moves VMs
between hosts with a deterministic dirty-state cost model; and the
:class:`RebalanceDaemon` evicts VMs from hot-spot hosts with
hysteresis. The entire layer rides the one simulator event queue, so
cluster runs are exactly as reproducible as single-machine runs.

The fault-tolerance half lives in :mod:`repro.cluster.recovery`: a
:class:`RecoveryController` re-homes VMs orphaned by host crashes
(with bounded retries, backoff, and an explicit *parked* state), a
:class:`HostWatchdog` quarantines degraded hosts, and a
:class:`ClusterFaultDriver` applies ``host_crash`` / ``host_degrade``
faults from a deterministic :class:`~repro.faults.FaultPlan`.
"""

from .admission import AdmissionController
from .cluster import Cluster, RebalanceDaemon, VmRequest
from .host import (
    HOST_DEGRADED,
    HOST_FAILED,
    HOST_STRATEGIES,
    HOST_UP,
    Host,
    HostSpec,
)
from .migration import LiveMigrationEngine, MigrationCostModel, MigrationRecord
from .placement import (
    PLACEMENT_POLICIES,
    FirstFitPolicy,
    InterferenceAwarePolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    make_policy,
)
from .profiles import HostInterferenceMonitor, VmInterferenceProfile
from .recovery import ClusterFaultDriver, HostWatchdog, RecoveryController
from .scenario import ClusterRunResult, run_consolidation

__all__ = [
    'AdmissionController',
    'Cluster',
    'ClusterFaultDriver',
    'ClusterRunResult',
    'FirstFitPolicy',
    'Host',
    'HostInterferenceMonitor',
    'HostSpec',
    'HostWatchdog',
    'HOST_DEGRADED',
    'HOST_FAILED',
    'HOST_STRATEGIES',
    'HOST_UP',
    'RecoveryController',
    'InterferenceAwarePolicy',
    'LeastLoadedPolicy',
    'LiveMigrationEngine',
    'MigrationCostModel',
    'MigrationRecord',
    'make_policy',
    'PLACEMENT_POLICIES',
    'PlacementPolicy',
    'RebalanceDaemon',
    'run_consolidation',
    'VmInterferenceProfile',
    'VmRequest',
]
