"""Cluster layer: multi-host simulation on one clock.

Hosts wrap :class:`~repro.hypervisor.machine.Machine` with capacity and
strategy descriptors; the :class:`Cluster` coordinator routes VM
requests through admission control and a pluggable placement policy
(first-fit, least-loaded, or interference-aware scoring over per-VM
interference profiles); a :class:`LiveMigrationEngine` moves VMs
between hosts with a deterministic dirty-state cost model; and the
:class:`RebalanceDaemon` evicts VMs from hot-spot hosts with
hysteresis. The entire layer rides the one simulator event queue, so
cluster runs are exactly as reproducible as single-machine runs.
"""

from .admission import AdmissionController
from .cluster import Cluster, RebalanceDaemon, VmRequest
from .host import HOST_STRATEGIES, Host, HostSpec
from .migration import LiveMigrationEngine, MigrationCostModel, MigrationRecord
from .placement import (
    PLACEMENT_POLICIES,
    FirstFitPolicy,
    InterferenceAwarePolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    make_policy,
)
from .profiles import HostInterferenceMonitor, VmInterferenceProfile
from .scenario import ClusterRunResult, run_consolidation

__all__ = [
    'AdmissionController',
    'Cluster',
    'ClusterRunResult',
    'FirstFitPolicy',
    'Host',
    'HostInterferenceMonitor',
    'HostSpec',
    'HOST_STRATEGIES',
    'InterferenceAwarePolicy',
    'LeastLoadedPolicy',
    'LiveMigrationEngine',
    'MigrationCostModel',
    'MigrationRecord',
    'make_policy',
    'PLACEMENT_POLICIES',
    'PlacementPolicy',
    'RebalanceDaemon',
    'run_consolidation',
    'VmInterferenceProfile',
    'VmRequest',
]
