"""A cluster host: one :class:`~repro.hypervisor.machine.Machine` plus
the capacity and strategy descriptor the cluster layer schedules
against.

A :class:`HostSpec` is the declarative half (shape, strategy, capacity)
and a :class:`Host` the live half: it builds the machine, attaches the
strategy components through ``Machine.attach_strategies``, and tracks
VM residency, capacity reservations, and the interference monitor the
placement policies read.
"""

from ..core import IRSConfig, SaReceiver
from ..core.sender import SaSender
from ..hypervisor import Machine, StrategyDescriptor
from ..obs import eventlog

VANILLA = 'vanilla'
PLE = 'ple'
RELAXED_CO = 'relaxed_co'
IRS = 'irs'

HOST_STRATEGIES = (VANILLA, PLE, RELAXED_CO, IRS)

# Host health states (repro.cluster.recovery drives the transitions).
HOST_UP = 'up'
HOST_DEGRADED = 'degraded'
HOST_FAILED = 'failed'


class HostSpec:
    """Declarative description of one host.

    ``capacity_vcpus`` is the admission ceiling (default: 2x the pCPU
    count, a conventional consolidation ratio). ``strategy`` selects
    the hypervisor-side components; guests opt into IRS per VM at
    placement time.
    """

    def __init__(self, name, n_pcpus=4, strategy=VANILLA,
                 capacity_vcpus=None, ple_window_ns=None,
                 relaxed_co_skew_ns=None):
        if n_pcpus < 1:
            raise ValueError('need at least one pCPU')
        if strategy not in HOST_STRATEGIES:
            raise ValueError('unknown host strategy %r (want one of %s)'
                             % (strategy, ', '.join(HOST_STRATEGIES)))
        self.name = name
        self.n_pcpus = n_pcpus
        self.strategy = strategy
        self.capacity_vcpus = (capacity_vcpus if capacity_vcpus is not None
                               else 2 * n_pcpus)
        self.ple_window_ns = ple_window_ns
        self.relaxed_co_skew_ns = relaxed_co_skew_ns

    def __repr__(self):
        return '<HostSpec %s %dpcpu/%dvcpu %s>' % (
            self.name, self.n_pcpus, self.capacity_vcpus, self.strategy)


class Host:
    """One live host of a :class:`~repro.cluster.cluster.Cluster`."""

    def __init__(self, sim, spec, index, irs_config=None):
        self.sim = sim
        self.spec = spec
        self.index = index
        self.name = spec.name
        self.machine = Machine(sim, n_pcpus=spec.n_pcpus)
        self.irs_config = irs_config or IRSConfig()
        self.machine.attach_strategies(self._descriptor())
        # Per-host metric scope: everything this host (and its monitor)
        # records lives under ``host.<name>.`` in the shared registry,
        # carrying a ``host`` label for the Prometheus exposition.
        # Distinct prefixes make cross-host contamination impossible by
        # construction — the fix for the global-counter limitation the
        # profiles module used to work around.
        self.metrics = sim.trace.metrics.scoped('host.%s.' % spec.name,
                                                host=spec.name)
        self.resident_vms = []
        # vCPUs held for in-flight migrations targeting this host.
        self.reserved_vcpus = 0
        # Round-robin origin for per-VM pinning maps.
        self._next_pcpu = 0
        # HostInterferenceMonitor, installed by the cluster.
        self.monitor = None
        # Health plane (repro.cluster.recovery drives the transitions).
        self.state = HOST_UP
        # Quarantined hosts take no new placements and are drained by
        # the rebalance daemon; set/cleared by the HostWatchdog.
        self.quarantined = False
        self.crashes = 0

    def _descriptor(self):
        strategy = self.spec.strategy
        if strategy == PLE:
            return StrategyDescriptor(ple=True,
                                      ple_window_ns=self.spec.ple_window_ns)
        if strategy == RELAXED_CO:
            return StrategyDescriptor(
                relaxed_co=True,
                relaxed_co_skew_ns=self.spec.relaxed_co_skew_ns)
        if strategy == IRS:
            sender = SaSender(self.sim, self.machine, self.irs_config)
            return StrategyDescriptor(sa_sender=sender)
        return StrategyDescriptor()

    def start(self):
        self.machine.start()

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def used_vcpus(self):
        return (sum(vm.n_vcpus for vm in self.resident_vms)
                + self.reserved_vcpus)

    def has_capacity(self, n_vcpus):
        return self.used_vcpus + n_vcpus <= self.spec.capacity_vcpus

    @property
    def accepting(self):
        """May new VMs be placed (or migrated onto) this host?"""
        return self.state == HOST_UP and not self.quarantined

    # ------------------------------------------------------------------
    # Health transitions (driven by repro.cluster.recovery)
    # ------------------------------------------------------------------

    def fail(self):
        """Crash this host: every resident VM is evicted (vCPUs
        OFFLINE, schedulers deregistered) and returned as the orphan
        list the recovery controller must re-home. In-flight
        migrations involving this host are the cluster's problem —
        abort them *before* calling this."""
        orphans = list(self.resident_vms)
        for vm in orphans:
            self.evict_vm(vm)
        self.state = HOST_FAILED
        self.crashes += 1
        self.metrics.counter('crashes').inc()
        self._health_mark(eventlog.EVENT_HOST_CRASH,
                  orphans=len(orphans))
        return orphans

    def degrade(self):
        """Mark this host unhealthy; the watchdog quarantines it."""
        self.state = HOST_DEGRADED
        self.metrics.counter('degrades').inc()
        self._health_mark(eventlog.EVENT_HOST_DEGRADE)

    def recover(self):
        """Return the host to service (empty after a crash; still
        populated after a degradation). Monitor history is stale after
        an outage, so profiles restart from a fresh window."""
        self.state = HOST_UP
        self.metrics.counter('recoveries').inc()
        self._health_mark(eventlog.EVENT_HOST_RECOVER)
        if self.monitor is not None:
            self.monitor.profiles = {}
            for vm in self.resident_vms:
                self.monitor.track(vm)

    def _health_mark(self, phase, **detail):
        """Health-state transitions as instants on this host's trace
        track (one attribute test when spans are disabled)."""
        self.sim.trace.spans.instant(self.sim.now, phase,
                                     'cluster/%s/health' % self.name,
                                     **detail)

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def pinning_for(self, n_vcpus):
        """Deterministic round-robin pinning map: consecutive VMs start
        on consecutive pCPUs so load spreads inside the host."""
        start = self._next_pcpu
        self._next_pcpu = (start + n_vcpus) % self.spec.n_pcpus
        return [(start + i) % self.spec.n_pcpus for i in range(n_vcpus)]

    def place_vm(self, vm):
        """Register a freshly created VM on this host's machine."""
        self.machine.add_vm(vm, pinning=self.pinning_for(vm.n_vcpus))
        self.resident_vms.append(vm)
        self.metrics.counter('placements').inc()
        if self.monitor is not None:
            self.monitor.track(vm)

    def enable_irs_guest(self, kernel):
        """Give ``kernel`` the guest half of IRS (receiver + context
        switcher + migrator), against this host's config. A no-op on a
        host without a sender: the guest would never see activations."""
        if self.machine.sa_sender is None:
            return None
        return kernel.attach_sa_receiver(
            SaReceiver(self.sim, kernel, self.irs_config),
            wake_rule=self.irs_config.wakeup_preempt_tagged)

    def evict_vm(self, vm):
        """Live-migration pause: pull ``vm`` off this host. The VM
        belongs to no host until a target adopts it."""
        if self.monitor is not None:
            self.monitor.forget(vm)
        self.machine.detach_vm(vm)
        self.resident_vms.remove(vm)
        self.metrics.counter('evictions').inc()

    def adopt_vm(self, vm):
        """Live-migration resume: accept a detached VM, repoint its
        guest kernel at this machine, and wake every vCPU with pending
        guest work."""
        self.machine.adopt_vm(vm, pinning=self.pinning_for(vm.n_vcpus))
        self.resident_vms.append(vm)
        self.metrics.counter('adoptions').inc()
        kernel = vm.guest
        if kernel is not None:
            # The kernel captured the source machine (and its hypercall
            # facade) at construction; repoint both, plus the IRS
            # migrator's facade, or hypercalls would land on the old
            # host.
            kernel.machine = self.machine
            kernel.hypercalls = self.machine.hypercalls
            if kernel.sa_receiver is not None:
                kernel.sa_receiver.migrator.hypercalls = \
                    self.machine.hypercalls
            for gcpu in kernel.gcpus:
                if not gcpu.is_guest_idle:
                    self.machine.wake_vcpu(gcpu.vcpu)
        if self.monitor is not None:
            self.monitor.track(vm)

    # ------------------------------------------------------------------
    # Scores (read by placement policies and the rebalance daemon)
    # ------------------------------------------------------------------

    def steal_pressure(self):
        """Observed contention: aggregate steal fraction per pCPU over
        the last monitor window (0 when no window has elapsed)."""
        if self.monitor is None:
            return 0.0
        return self.monitor.steal_pressure

    def interference_score(self):
        """Composite placement score; see
        :meth:`HostInterferenceMonitor.host_score`."""
        if self.monitor is None:
            return 0.0
        return self.monitor.host_score()

    def __repr__(self):
        health = '' if self.state == HOST_UP else ' ' + self.state
        if self.quarantined:
            health += ' quarantined'
        return '<Host %s vms=%d used=%d/%d%s>' % (
            self.name, len(self.resident_vms), self.used_vcpus,
            self.spec.capacity_vcpus, health)
