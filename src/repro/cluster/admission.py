"""Admission control: capacity gating in front of placement.

A request is admissible on a host when the host's committed vCPUs
(resident plus reserved for in-flight migrations) leave room for the
request under the host's ``capacity_vcpus`` ceiling. A request no host
can take is rejected outright — the cluster never overcommits past the
declared ratio, and never queues (arrival processes in the evaluation
are open-loop; a queued VM would just shift the rejection later).
"""

#: Default rejection-ledger capacity. Rejections are low-rate control-
#: plane outcomes, but an autoscaler probing a full cluster (or a chaos
#: campaign crashing hosts under load) can grind one out per check
#: period indefinitely — the ledger is a ring, like the event log, so
#: a long run cannot grow it without bound.
DEFAULT_MAX_REJECTIONS = 1024


class AdmissionController:
    """Capacity gate; also the rejection ledger.

    ``rejections`` holds the most recent ``max_rejections`` rejected
    request names (oldest first); older entries are evicted and counted
    in ``rejections_dropped`` — the same ring discipline as
    :class:`~repro.obs.eventlog.EventLog`. ``rejected`` is the complete
    count regardless of eviction.
    """

    def __init__(self, max_rejections=DEFAULT_MAX_REJECTIONS):
        if max_rejections < 1:
            raise ValueError('max_rejections must be >= 1')
        self.admitted = 0
        self.rejected = 0
        self.max_rejections = max_rejections
        self.rejections_dropped = 0
        self._ring = []              # request names, in arrival order
        self._head = 0               # ring start once wrapped

    @property
    def rejections(self):
        """Retained rejected request names, oldest first."""
        if self._head == 0:
            return list(self._ring)
        return self._ring[self._head:] + self._ring[:self._head]

    def admissible_hosts(self, hosts, request):
        """The subset of ``hosts`` (order preserved) that are accepting
        placements (up, not quarantined) with room for ``request``."""
        return [host for host in hosts
                if host.accepting and host.has_capacity(request.n_vcpus)]

    def admit(self, request, host):
        self.admitted += 1
        host.sim.trace.count('cluster.admitted')

    def reject(self, request, sim):
        self.rejected += 1
        if len(self._ring) < self.max_rejections:
            self._ring.append(request.name)
        else:
            self._ring[self._head] = request.name
            self._head = (self._head + 1) % self.max_rejections
            self.rejections_dropped += 1
        sim.trace.count('cluster.rejected')
