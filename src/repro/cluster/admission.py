"""Admission control: capacity gating in front of placement.

A request is admissible on a host when the host's committed vCPUs
(resident plus reserved for in-flight migrations) leave room for the
request under the host's ``capacity_vcpus`` ceiling. A request no host
can take is rejected outright — the cluster never overcommits past the
declared ratio, and never queues (arrival processes in the evaluation
are open-loop; a queued VM would just shift the rejection later).
"""


class AdmissionController:
    """Capacity gate; also the rejection ledger."""

    def __init__(self):
        self.admitted = 0
        self.rejected = 0
        self.rejections = []         # request names, in arrival order

    def admissible_hosts(self, hosts, request):
        """The subset of ``hosts`` (order preserved) that are accepting
        placements (up, not quarantined) with room for ``request``."""
        return [host for host in hosts
                if host.accepting and host.has_capacity(request.n_vcpus)]

    def admit(self, request, host):
        self.admitted += 1
        host.sim.trace.count('cluster.admitted')

    def reject(self, request, sim):
        self.rejected += 1
        self.rejections.append(request.name)
        sim.trace.count('cluster.rejected')
