"""Per-VM interference profiles and the per-host monitor.

The placement policies and the rebalance daemon need *per-host*
signals, and the simulator's tracer counters are global to the
simulation — every host shares one ``hv.preemptions`` stream. The
monitor therefore reads the per-object counters the substrate already
keeps (vCPU runstate accounting, per-vCPU involuntary-preemption and
SA-offer counts) and differentiates them over a fixed sampling window,
yielding one :class:`VmInterferenceProfile` per resident VM per window.

Each sample also publishes the host's aggregate pressures into the
host's *own* metric scope (``Host.metrics``, prefix ``host.<name>.``):
two hosts can never write each other's gauges, so per-host dashboards
and the Prometheus exposition read clean, uncontaminated streams — the
per-host counter isolation the global tracer could not provide.

Determinism: sampling happens on the cluster's monitor timer (one sim
event), snapshots are plain integer reads, and VMs are visited in
residency order — the same inputs always produce the same profiles.
"""


class VmInterferenceProfile:
    """One VM's interference signature over one sampling window.

    * ``run_frac`` / ``steal_frac`` — CPU consumed / CPU wanted-but-
      denied, as a fraction of the window per vCPU summed over vCPUs
      (a 2-vCPU VM fully stalled contributes 2.0 steal);
    * ``preempt_per_sec`` — involuntary preemptions (the LHP/LWP
      trigger events);
    * ``sa_per_sec`` — scheduler-activation offers targeted at the VM
      (nonzero only under IRS hosts).
    """

    __slots__ = ('vm_name', 'run_frac', 'steal_frac', 'preempt_per_sec',
                 'sa_per_sec')

    def __init__(self, vm_name, run_frac, steal_frac, preempt_per_sec,
                 sa_per_sec):
        self.vm_name = vm_name
        self.run_frac = run_frac
        self.steal_frac = steal_frac
        self.preempt_per_sec = preempt_per_sec
        self.sa_per_sec = sa_per_sec

    def __repr__(self):
        return ('<Profile %s run=%.2f steal=%.2f preempt/s=%.0f sa/s=%.0f>'
                % (self.vm_name, self.run_frac, self.steal_frac,
                   self.preempt_per_sec, self.sa_per_sec))


def _vm_counters(vm, now):
    """Cumulative (run_ns, steal_ns, preemptions, sa_offers) of ``vm``,
    including the open runstate interval."""
    run = steal = preempts = offers = 0
    for vcpu in vm.vcpus:
        r, s, __ = vcpu.snapshot_accounting(now)
        run += r
        steal += s
        preempts += vcpu.preemptions
        offers += vcpu.sa_offers
    return run, steal, preempts, offers


class HostInterferenceMonitor:
    """Window-differentiated interference profiles for one host.

    ``track``/``forget`` follow VM residency (a VM migrating in starts
    a fresh baseline — its history on the previous host does not leak
    into this host's score). ``sample`` is called by the cluster on its
    monitor timer.
    """

    # Composite-score weights. Steal is the direct contention signal;
    # run pressure predicts contention a newcomer would suffer on a
    # fully-committed host even when nobody steals *yet*; the protocol
    # rates are tie-breaking refinements (they spike on LHP-style
    # preemption churn before steal accumulates).
    STEAL_WEIGHT = 3.0
    RUN_WEIGHT = 1.0
    PREEMPT_WEIGHT = 0.001
    SA_WEIGHT = 0.001

    def __init__(self, host):
        self.host = host
        self._baseline = {}          # vm -> cumulative counters
        self._last_sample_at = host.sim.now
        self.profiles = {}           # vm -> VmInterferenceProfile
        self.windows = 0

    def track(self, vm):
        """Start profiling ``vm`` (placement or migration arrival)."""
        self._baseline[vm] = _vm_counters(vm, self.host.sim.now)

    def forget(self, vm):
        """Stop profiling ``vm`` (eviction)."""
        self._baseline.pop(vm, None)
        self.profiles.pop(vm, None)

    def sample(self, now):
        """Close the current window: rebuild ``profiles`` from the
        counter deltas since the previous sample."""
        elapsed = now - self._last_sample_at
        self._last_sample_at = now
        if elapsed <= 0:
            return
        seconds = elapsed / 1e9
        profiles = {}
        for vm in self.host.resident_vms:
            baseline = self._baseline.get(vm)
            counters = _vm_counters(vm, now)
            self._baseline[vm] = counters
            if baseline is None:
                continue
            run_d = counters[0] - baseline[0]
            steal_d = counters[1] - baseline[1]
            profiles[vm] = VmInterferenceProfile(
                vm.name,
                run_frac=run_d / elapsed,
                steal_frac=steal_d / elapsed,
                preempt_per_sec=(counters[2] - baseline[2]) / seconds,
                sa_per_sec=(counters[3] - baseline[3]) / seconds)
        self.profiles = profiles
        self.windows += 1
        # Publish the aggregate signals into the host's isolated metric
        # scope (its prefix guarantees no cross-host contamination).
        metrics = self.host.metrics
        metrics.counter('monitor_windows').inc()
        metrics.gauge('steal_pressure').set(round(self.steal_pressure, 6))
        metrics.gauge('run_pressure').set(round(self.run_pressure, 6))
        metrics.gauge('resident_vms').set(len(self.host.resident_vms))

    # ------------------------------------------------------------------
    # Aggregate scores
    # ------------------------------------------------------------------

    @property
    def steal_pressure(self):
        """Total steal fraction normalized per pCPU: 0 = nobody waits,
        1.0 = one full pCPU's worth of runnable-but-denied demand per
        pCPU."""
        n_pcpus = self.host.spec.n_pcpus
        return sum(p.steal_frac for p in self.profiles.values()) / n_pcpus

    @property
    def run_pressure(self):
        """Total run fraction normalized per pCPU (1.0 = fully busy)."""
        n_pcpus = self.host.spec.n_pcpus
        return sum(p.run_frac for p in self.profiles.values()) / n_pcpus

    @property
    def preempt_per_sec(self):
        return sum(p.preempt_per_sec for p in self.profiles.values())

    @property
    def sa_per_sec(self):
        return sum(p.sa_per_sec for p in self.profiles.values())

    def host_score(self):
        """Composite interference score of this host (higher = a worse
        home for a latency-sensitive newcomer)."""
        return (self.STEAL_WEIGHT * self.steal_pressure
                + self.RUN_WEIGHT * self.run_pressure
                + self.PREEMPT_WEIGHT * self.preempt_per_sec
                + self.SA_WEIGHT * self.sa_per_sec)
