"""The cluster coordinator: N hosts under one simulated clock.

``Cluster`` glues the layer together: it builds the hosts from their
specs, runs one shared monitor timer that samples every host's
interference profiles, routes VM requests through admission and the
placement policy, and (optionally) runs the :class:`RebalanceDaemon`
that live-migrates VMs off hot-spot hosts.

Everything is driven by the one underlying :class:`Simulator`, so a
four-host cluster is exactly as deterministic as a single machine: the
monitor tick, the daemon tick, and every migration completion are
ordinary events on the one queue.
"""

import itertools

from ..faults import HOST_FAULT_KINDS
from ..guestos import GuestKernel
from ..hypervisor import VM
from ..obs import eventlog
from ..obs.eventlog import EventLog
from ..simkernel.units import MS
from ..workloads import HogWorkload, OpenLoopServerWorkload
from .admission import AdmissionController
from .host import HOST_FAILED, Host
from .migration import LiveMigrationEngine
from .placement import make_policy
from .profiles import HostInterferenceMonitor
from .recovery import ClusterFaultDriver, HostWatchdog, RecoveryController

WORKLOAD_SERVER = 'server'
WORKLOAD_HOGS = 'hogs'
WORKLOAD_NONE = 'none'


class VmRequest:
    """One VM the cluster is asked to run.

    ``workload`` selects the guest's task mix (``'server'`` installs an
    open-loop request server, ``'hogs'`` one CPU hog per vCPU,
    ``'none'`` boots an idle guest whose tasks the caller installs —
    the traffic layer's serving replicas use this); ``irs`` opts the
    guest into scheduler activations (effective only on an IRS host);
    ``working_set_mb`` feeds the migration cost model.
    """

    def __init__(self, name, n_vcpus=2, workload=WORKLOAD_SERVER,
                 irs=False, weight=256, working_set_mb=128,
                 workload_kwargs=None):
        if workload not in (WORKLOAD_SERVER, WORKLOAD_HOGS,
                            WORKLOAD_NONE):
            raise ValueError('unknown workload %r' % workload)
        self.name = name
        self.n_vcpus = n_vcpus
        self.workload = workload
        self.irs = irs
        self.weight = weight
        self.working_set_mb = working_set_mb
        self.workload_kwargs = dict(workload_kwargs or {})

    def __repr__(self):
        return '<VmRequest %s %dvcpu %s%s>' % (
            self.name, self.n_vcpus, self.workload,
            ' irs' if self.irs else '')


class Cluster:
    """N hosts, one clock, one placement policy."""

    def __init__(self, sim, host_specs, policy='first_fit', irs_config=None,
                 cost_model=None, monitor_window_ns=50 * MS, rebalance=None,
                 fault_plan=None):
        if not host_specs:
            raise ValueError('a cluster needs at least one host')
        self.sim = sim
        self.hosts = []
        for index, spec in enumerate(host_specs):
            host = Host(sim, spec, index, irs_config=irs_config)
            host.monitor = HostInterferenceMonitor(host)
            self.hosts.append(host)
        self.policy = make_policy(policy)
        self.admission = AdmissionController()
        # Observability plane: the structured health event log (always
        # on — it records low-rate control-plane decisions, like the
        # admission ledger) and the allocator of the flow ids that
        # stitch cross-host trace spans together.
        self.events = EventLog()
        self.flow_ids = itertools.count(1)
        # Fault plane: one injector shared by every host machine (the
        # vIRQ/runstate/migrator hooks) and by the cluster-level driver
        # (host faults, migration aborts). None = reliable everything.
        self.injector = fault_plan.build(sim) if fault_plan else None
        if self.injector is not None:
            for host in self.hosts:
                host.machine.attach_fault_injector(self.injector)
        self.migration = LiveMigrationEngine(sim, cost_model=cost_model,
                                             injector=self.injector)
        self.migration.events = self.events
        self.migration.flow_ids = self.flow_ids
        self.monitor_window_ns = monitor_window_ns
        self.daemon = rebalance
        if self.daemon is not None:
            self.daemon.bind(self)
        self.recovery = RecoveryController(self)
        self.migration.on_orphan = self.recovery.recover_vm
        self.watchdog = HostWatchdog(self)
        self.fault_driver = None
        if self.injector is not None and any(
                spec.kind in HOST_FAULT_KINDS
                for spec in self.injector.specs):
            self.fault_driver = ClusterFaultDriver(self, self.injector)
        self.kernels = {}            # vm -> GuestKernel
        self.servers = []            # OpenLoopServerWorkload instances
        self.placements = []         # (vm_name, host_name) decisions
        self._names = set()          # every VM name ever admitted
        if sim.sanitizer is not None:
            sim.sanitizer.attach_cluster(self)

    def _event(self, kind, **detail):
        """Append one entry to the health event log at the current
        simulated time."""
        self.events.append(self.sim.now, kind, **detail)

    def start(self):
        """Boot every host and arm the periodic timers."""
        for host in self.hosts:
            host.start()
        self.sim.after(self.monitor_window_ns, self._sample_monitors)
        if self.daemon is not None:
            self.daemon.start()
        self.watchdog.start()
        if self.fault_driver is not None:
            self.fault_driver.start()

    def _sample_monitors(self):
        now = self.sim.now
        for host in self.hosts:
            host.monitor.sample(now)
        self.sim.after(self.monitor_window_ns, self._sample_monitors)

    # ------------------------------------------------------------------
    # VM intake
    # ------------------------------------------------------------------

    def submit(self, request):
        """Admit, place, and boot one VM. Returns the chosen
        :class:`Host`, or ``None`` on rejection. A request reusing a
        VM name the cluster already knows (resident, in flight, or
        parked) is rejected outright — a double-submit must not
        corrupt host state."""
        if request.name in self._names:
            self.sim.trace.count('cluster.duplicate_submits')
            self.admission.reject(request, self.sim)
            self._event(eventlog.EVENT_REJECT, vm=request.name,
                        reason='duplicate')
            return None
        candidates = self.admission.admissible_hosts(self.hosts, request)
        if not candidates:
            self.admission.reject(request, self.sim)
            self._event(eventlog.EVENT_REJECT, vm=request.name,
                        reason='capacity')
            return None
        host = self.policy.choose(candidates, request)
        self.admission.admit(request, host)
        self.placements.append((request.name, host.name))
        self._event(eventlog.EVENT_PLACE, vm=request.name, host=host.name,
                    policy=self.policy.name,
                    scores=self.policy.scores(candidates, request))
        self.sim.trace.spans.instant(
            self.sim.now, eventlog.EVENT_PLACE, 'cluster/%s/placement' % host.name,
            vm=request.name)

        vm = VM(request.name, n_vcpus=request.n_vcpus, sim=self.sim,
                weight=request.weight)
        vm.working_set_mb = request.working_set_mb
        host.place_vm(vm)
        kernel = GuestKernel(self.sim, vm, host.machine)
        if request.irs:
            host.enable_irs_guest(kernel)
        self._install_workload(kernel, request)
        self.migration.note_placed(vm)
        self.kernels[vm] = kernel
        self._names.add(request.name)
        return host

    def _install_workload(self, kernel, request):
        if request.workload == WORKLOAD_NONE:
            return
        if request.workload == WORKLOAD_HOGS:
            HogWorkload(self.sim, kernel, count=request.n_vcpus,
                        name='%s.hog' % request.name,
                        **request.workload_kwargs).install()
        else:
            server = OpenLoopServerWorkload(self.sim, kernel,
                                            name='%s.srv' % request.name,
                                            **request.workload_kwargs)
            server.install()
            self.servers.append(server)

    # ------------------------------------------------------------------
    # VM retirement (the autoscaler's scale-down path)
    # ------------------------------------------------------------------

    def retire_vm(self, vm):
        """Permanently remove ``vm`` from service: evict it from its
        host and drop it from the kernel ledger. Returns True on
        success; False while the VM is in flight or not resident
        anywhere (mid-recovery) — callers retry on a later tick. The
        name stays burned in ``_names``: retirement is forever, a
        resubmit under the same name would corrupt the event history.
        """
        if vm in self.migration.in_flight:
            return False
        host = self.host_of(vm)
        if host is None:
            return False
        host.evict_vm(vm)
        self.kernels.pop(vm, None)
        self.sim.trace.count('cluster.retired')
        self._event(eventlog.EVENT_VM_RETIRE, vm=vm.name, host=host.name)
        return True

    # ------------------------------------------------------------------
    # Host faults (called by the ClusterFaultDriver, or directly by
    # tests and bespoke scenarios)
    # ------------------------------------------------------------------

    def crash_host(self, host, down_ns=250 * MS):
        """Crash ``host``: in-flight migrations *to* it roll back to
        their sources, its resident VMs are orphaned into the recovery
        controller, and the host reboots empty after ``down_ns``.
        Migrations *from* it keep flying — the hand-off already
        happened — and adopt normally on their targets."""
        if host.state == HOST_FAILED:
            return
        self.sim.trace.count('cluster.host_crashes')
        self._event(eventlog.EVENT_HOST_CRASH, host=host.name,
                    down_ns=down_ns)
        # Order matters: rolling back inbound flights releases the
        # doomed host's reservations while its state is still sane.
        self.migration.abort_targeting(host)
        orphans = host.fail()
        self.recovery.on_host_crash(host, orphans)
        self.sim.after(down_ns, self.recovery.on_host_recovered, host)

    def degrade_host(self, host, down_ns=250 * MS):
        """Degrade ``host``'s health: the watchdog quarantines it (no
        new placements; the rebalance daemon drains it) until it
        recovers after ``down_ns``."""
        if host.state != 'up':
            return
        self.sim.trace.count('cluster.host_degrades')
        self._event(eventlog.EVENT_HOST_DEGRADE, host=host.name,
                    down_ns=down_ns)
        host.degrade()
        self.sim.after(down_ns, self.recovery.on_host_recovered, host)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def host_of(self, vm):
        """The host a VM currently resides on, or ``None`` while it is
        in flight."""
        for host in self.hosts:
            if vm in host.resident_vms:
                return host
        return None

    def vm_named(self, name):
        """The live VM called ``name`` (resident or in flight), or
        ``None`` — retired VMs left the kernel ledger for good."""
        for vm in self.kernels:
            if vm.name == name:
                return vm
        return None

    def __repr__(self):
        return '<Cluster %d hosts policy=%s>' % (
            len(self.hosts), self.policy.name)


class RebalanceDaemon:
    """Evict VMs from hot-spot hosts, with hysteresis.

    A host *trips* when its observed steal pressure crosses
    ``high_threshold``; a tripped host sheds one VM per check period
    until pressure drops below ``low_threshold``, where it re-arms.
    The trigger is steal pressure alone — a host whose VMs exactly fill
    its pCPUs runs at run-pressure 1.0 with zero contention and must
    not churn. Target choice *does* use the composite score, and a move
    only happens when it buys at least ``min_gain`` of score — the
    hysteresis plus the gain bar plus a per-VM cooldown keep the daemon
    from ping-ponging a VM between two warm hosts.
    """

    def __init__(self, high_threshold=0.35, low_threshold=0.15,
                 check_period_ns=100 * MS, vm_cooldown_ns=500 * MS,
                 min_gain=0.2):
        if low_threshold > high_threshold:
            raise ValueError('low_threshold must not exceed high_threshold')
        self.high_threshold = high_threshold
        self.low_threshold = low_threshold
        self.check_period_ns = check_period_ns
        self.vm_cooldown_ns = vm_cooldown_ns
        self.min_gain = min_gain
        self.cluster = None
        self.tripped = set()         # host indexes over-threshold
        self._last_moved = {}        # vm -> sim time of last migration

    def bind(self, cluster):
        self.cluster = cluster

    def start(self):
        self.cluster.sim.after(self.check_period_ns, self._check)

    def _check(self):
        sim = self.cluster.sim
        self._prune_cooldowns(sim.now)
        for host in self.cluster.hosts:
            if host.state == HOST_FAILED:
                # A dead host has nothing to shed; drop its trip state
                # so it re-arms cleanly when it reboots empty.
                self.tripped.discard(host.index)
                continue
            if host.quarantined:
                # Drain: one VM per period off a quarantined host,
                # regardless of pressure.
                self._evict_one(host, drain=True)
                continue
            pressure = host.steal_pressure()
            if host.index in self.tripped:
                if pressure < self.low_threshold:
                    self.tripped.discard(host.index)
                    sim.trace.count('cluster.rebalance_rearms')
                else:
                    self._evict_one(host)
            elif pressure > self.high_threshold:
                self.tripped.add(host.index)
                sim.trace.count('cluster.rebalance_trips')
                self._evict_one(host)
        sim.after(self.check_period_ns, self._check)

    def _prune_cooldowns(self, now):
        """Cooldown bookkeeping stays bounded across long chaos runs:
        drop entries whose cooldown has expired (they can never block a
        move again) — which also covers VMs that left the cluster
        (migrated away, crashed, or parked) once their window lapses."""
        expired = [vm for vm, moved in self._last_moved.items()
                   if now - moved >= self.vm_cooldown_ns]
        for vm in expired:
            del self._last_moved[vm]

    def _evict_one(self, host, drain=False):
        victim = self._pick_victim(host, drain=drain)
        if victim is None:
            return
        target = self._pick_target(host, victim, drain=drain)
        if target is None:
            return
        reason = 'drain' if drain else 'rebalance'
        record = self.cluster.migration.migrate(victim, host, target,
                                                reason=reason)
        if record is not None:
            self._last_moved[victim] = self.cluster.sim.now
            if drain:
                self.cluster.sim.trace.count('cluster.drain_migrations')

    def _pick_victim(self, host, drain=False):
        """The resident VM suffering the most steal (it gains the most
        from leaving), skipping in-flight and cooling-down VMs. When
        draining a quarantined host, cooldowns and missing profiles do
        not block eviction — everything must leave."""
        now = self.cluster.sim.now
        best = None
        best_steal = -1.0
        for vm in host.resident_vms:
            if vm in self.cluster.migration.in_flight:
                continue
            if self.cluster.migration.breaker_open(vm):
                continue
            if not drain:
                moved = self._last_moved.get(vm)
                if moved is not None and now - moved < self.vm_cooldown_ns:
                    continue
            profile = host.monitor.profiles.get(vm)
            steal = profile.steal_frac if profile is not None else 0.0
            if profile is None and not drain:
                continue
            if steal > best_steal:
                best = vm
                best_steal = steal
        return best

    def _pick_target(self, source, vm, drain=False):
        """The least-interfered accepting host with room. A rebalance
        move must buy at least ``min_gain`` of score over staying; a
        drain off a quarantined host takes any accepting host — the
        point is to leave, not to profit."""
        source_score = source.interference_score()
        best = None
        best_score = None
        for host in self.cluster.hosts:
            if host is source or not host.accepting:
                continue
            if not host.has_capacity(vm.n_vcpus):
                continue
            score = host.interference_score()
            if not drain and score > source_score - self.min_gain:
                continue
            if best_score is None or score < best_score:
                best = host
                best_score = score
        return best
