"""Cluster fault tolerance: crash recovery, parking, quarantine, and
the deterministic chaos driver.

Three cooperating components, all driven by ordinary events on the one
simulator queue so chaos campaigns are exactly as reproducible as
fault-free runs:

* :class:`ClusterFaultDriver` — the cluster-side consumer of the fault
  plane (:mod:`repro.faults`). On a fixed tick it polls the injector
  for ``host_crash`` / ``host_degrade`` faults per host (hosts visited
  in index order, one dedicated RNG stream per spec — same seed, same
  timeline) and applies them through the cluster.
* :class:`RecoveryController` — re-homes orphaned VMs. A crashed
  host's VMs re-enter placement through the admission filter and the
  cluster's policy, with bounded retries and exponential backoff;
  when capacity is exhausted the VM is *parked* (vCPUs stay OFFLINE,
  explicitly accounted) and re-tried when a host returns to service.
* :class:`HostWatchdog` — the host-level mirror of the per-VM
  :class:`~repro.core.sender.SaHealthWatchdog`: degraded hosts are
  quarantined (no new placements; the rebalance daemon drains them)
  and re-armed once they recover.

The orphan ledger invariant the sanitizer enforces: every VM the
cluster ever admitted is, at every event boundary, exactly one of
resident-on-one-host, in-flight-migration, pending-recovery, or
parked.
"""

from ..obs import eventlog
from ..simkernel.units import MS


class RecoveryController:
    """Re-places orphaned VMs; parks them when the cluster is full.

    ``max_attempts`` bounds the placement retries per orphan episode;
    attempt *n* backs off ``backoff_ns << (n-1)``. A parked VM is not
    forgotten: every host recovery triggers one fresh re-placement
    attempt for the whole parking lot (in parking order).
    """

    def __init__(self, cluster, max_attempts=4, backoff_ns=25 * MS):
        if max_attempts < 1:
            raise ValueError('max_attempts must be >= 1')
        self.cluster = cluster
        self.sim = cluster.sim
        self.max_attempts = max_attempts
        self.backoff_ns = backoff_ns
        self.pending = {}            # vm -> attempts so far
        self.parked = []             # VMs with nowhere to go, in order
        self.replaced = 0            # orphans successfully re-homed
        self.parks = 0               # park transitions (a VM can repeat)
        self._flows = {}             # vm -> open recovery flow id

    def _event(self, kind, **detail):
        self.cluster.events.append(self.sim.now, kind, **detail)

    # ------------------------------------------------------------------
    # Crash / recovery entry points (called by the cluster)
    # ------------------------------------------------------------------

    def on_host_crash(self, host, orphans):
        """Start re-placing every VM ``host`` dropped."""
        for vm in orphans:
            self.recover_vm(vm, cause='host_crash', host=host)

    def on_host_recovered(self, host):
        """``host`` is back in service; give every parked VM a fresh
        chance (new attempt budget — capacity just appeared)."""
        host.recover()
        self.sim.trace.count('cluster.host_recoveries')
        self._event(eventlog.EVENT_HOST_RECOVER, host=host.name)
        for vm in list(self.parked):
            self.parked.remove(vm)
            self.sim.trace.count('cluster.unparked')
            self._event(eventlog.EVENT_UNPARKED, vm=vm.name,
                        trigger=host.name)
            self.recover_vm(vm, cause='unpark')

    def recover_vm(self, vm, cause='orphan', host=None):
        """Begin a recovery episode for a detached VM (crash orphan, a
        migration rollback whose source died, or an unparked VM).

        When the losing ``host`` is known (the crash path) the episode
        opens a trace flow there, so the eventual re-placement draws an
        arrow from the dead host's track to the adopting host's."""
        flow_id = None
        if host is not None and self.cluster.flow_ids is not None:
            flow_id = next(self.cluster.flow_ids)
            self.sim.trace.spans.instant(
                self.sim.now, eventlog.EVENT_ORPHANED,
                'cluster/%s/recovery' % host.name, flow='start',
                flow_id=flow_id, vm=vm.name, cause=cause)
        self._flows[vm] = flow_id
        self._event(eventlog.EVENT_ORPHANED, vm=vm.name, cause=cause,
                    host=host.name if host is not None else None,
                    flow=flow_id)
        self.pending[vm] = 0
        self._try_place(vm)

    # ------------------------------------------------------------------
    # Placement loop
    # ------------------------------------------------------------------

    def _try_place(self, vm):
        if vm not in self.pending:
            return
        attempts = self.pending[vm] + 1
        self.pending[vm] = attempts
        candidates = [h for h in self.cluster.hosts
                      if h.accepting and h.has_capacity(vm.n_vcpus)]
        if candidates:
            # The VM re-enters through the same policy as a fresh
            # placement; policies only read n_vcpus off the request,
            # which the VM itself carries.
            host = self.cluster.policy.choose(candidates, vm)
            del self.pending[vm]
            host.adopt_vm(vm)
            self.cluster.migration.note_placed(vm)
            self.replaced += 1
            self.sim.trace.count('cluster.recoveries')
            flow_id = self._flows.pop(vm, None)
            detail = {'vm': vm.name, 'host': host.name}
            if flow_id is not None:
                detail.update(flow='end', flow_id=flow_id)
            self.sim.trace.spans.instant(
                self.sim.now, eventlog.EVENT_RECOVERED,
                'cluster/%s/recovery' % host.name, **detail)
            self._event(eventlog.EVENT_RECOVERED, vm=vm.name,
                        host=host.name, attempts=attempts, flow=flow_id)
            return
        if attempts >= self.max_attempts:
            del self.pending[vm]
            self.parked.append(vm)
            self.parks += 1
            self.sim.trace.count('cluster.parked')
            self._event(eventlog.EVENT_PARKED, vm=vm.name,
                        attempts=attempts, flow=self._flows.pop(vm, None))
            return
        self.sim.trace.count('cluster.recovery_retries')
        backoff = self.backoff_ns << (attempts - 1)
        self.sim.after(backoff, self._try_place, vm)


class HostWatchdog:
    """Quarantines degraded hosts, re-arms recovered ones.

    The per-host mirror of the SA health watchdog: a degraded host is
    pulled out of the placement pool (``host.quarantined``) so the
    admission controller skips it and the rebalance daemon drains it;
    once the health plane reports the host UP again the quarantine
    lifts on the next check.
    """

    def __init__(self, cluster, check_period_ns=50 * MS):
        self.cluster = cluster
        self.sim = cluster.sim
        self.check_period_ns = check_period_ns
        self.quarantines = 0
        self.rearms = 0

    def start(self):
        self.sim.after(self.check_period_ns, self._check)

    def _check(self):
        for host in self.cluster.hosts:
            if host.state == 'degraded' and not host.quarantined:
                host.quarantined = True
                self.quarantines += 1
                self.sim.trace.count('cluster.quarantines')
                self.cluster.events.append(
                    self.sim.now, eventlog.EVENT_QUARANTINE,
                    host=host.name)
                self.sim.trace.spans.instant(
                    self.sim.now, eventlog.EVENT_QUARANTINE,
                    'cluster/%s/health' % host.name)
            elif host.state == 'up' and host.quarantined:
                host.quarantined = False
                self.rearms += 1
                self.sim.trace.count('cluster.quarantine_rearms')
                self.cluster.events.append(
                    self.sim.now, eventlog.EVENT_REARM, host=host.name)
                self.sim.trace.spans.instant(
                    self.sim.now, eventlog.EVENT_REARM,
                    'cluster/%s/health' % host.name)
        self.sim.after(self.check_period_ns, self._check)


class ClusterFaultDriver:
    """Applies host-level faults from a :class:`FaultInjector` on a
    fixed tick.

    Hosts are visited in index order and only healthy hosts roll — a
    host that is already down cannot crash again, which keeps the
    number of RNG draws (and therefore the whole timeline) a pure
    function of seed + plan.
    """

    def __init__(self, cluster, injector, tick_ns=100 * MS):
        self.cluster = cluster
        self.sim = cluster.sim
        self.injector = injector
        self.tick_ns = tick_ns

    def start(self):
        self.sim.after(self.tick_ns, self._tick)

    def _tick(self):
        for host in self.cluster.hosts:
            if host.state != 'up':
                continue
            spec = self.injector.host_fault(host.name)
            if spec is None:
                continue
            if spec.kind == 'host_crash':
                self.cluster.crash_host(host, down_ns=spec.down_ns)
            else:
                self.cluster.degrade_host(host, down_ns=spec.down_ns)
        self.sim.after(self.tick_ns, self._tick)
