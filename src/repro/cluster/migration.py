"""Live inter-host VM migration with a deterministic dirty-state cost
model.

The model is pre-copy-shaped but collapsed to its deterministic core:
the transfer pays for the VM's declared working set plus the pages its
recent CPU activity dirtied, over a fixed-rate migration link, plus a
constant switch-over downtime. Everything is integer nanosecond
arithmetic on counters the simulation already keeps — two runs with the
same history produce byte-identical migration records.

While in flight the VM exists on *no* host: the source evicted it
(every vCPU OFFLINE, deregistered from the source scheduler) and the
target only holds a capacity reservation. Guest timers that fire during
the blackout try to wake OFFLINE vCPUs and no-op; the backlog drains at
resume, which is exactly the downtime cost the figures measure.
"""

from ..simkernel.units import MS, SEC


class MigrationCostModel:
    """Deterministic transfer-time model.

    ``transfer = base_downtime + (working_set_mb + dirtied_mb) / link``
    where ``dirtied_mb`` is proportional to the CPU time the VM burned
    since it was last (re)placed, capped at one ``dirty_window_ns`` per
    vCPU — long-running VMs redirty the same pages, they do not dirty
    unboundedly many.
    """

    def __init__(self, base_downtime_ns=2 * MS, link_mb_per_s=10_000,
                 dirty_mb_per_cpu_s=64, dirty_window_ns=1 * SEC):
        self.base_downtime_ns = base_downtime_ns
        self.link_mb_per_s = link_mb_per_s
        self.dirty_mb_per_cpu_s = dirty_mb_per_cpu_s
        self.dirty_window_ns = dirty_window_ns

    def dirtied_mb(self, dirty_run_ns, n_vcpus):
        capped = min(dirty_run_ns, n_vcpus * self.dirty_window_ns)
        return capped * self.dirty_mb_per_cpu_s // SEC

    def transfer_ns(self, working_set_mb, dirty_run_ns, n_vcpus):
        total_mb = working_set_mb + self.dirtied_mb(dirty_run_ns, n_vcpus)
        return self.base_downtime_ns + total_mb * SEC // self.link_mb_per_s


class MigrationRecord:
    """The ledger entry for one migration (in-flight until
    ``completed_ns`` is set)."""

    __slots__ = ('vm_name', 'source', 'target', 'reason', 'started_ns',
                 'transfer_ns', 'completed_ns')

    def __init__(self, vm_name, source, target, reason, started_ns,
                 transfer_ns):
        self.vm_name = vm_name
        self.source = source
        self.target = target
        self.reason = reason
        self.started_ns = started_ns
        self.transfer_ns = transfer_ns
        self.completed_ns = None

    def as_dict(self):
        return {
            'vm': self.vm_name,
            'source': self.source,
            'target': self.target,
            'reason': self.reason,
            'started_ns': self.started_ns,
            'transfer_ns': self.transfer_ns,
            'completed_ns': self.completed_ns,
        }

    def __repr__(self):
        state = ('done@%d' % self.completed_ns
                 if self.completed_ns is not None else 'in-flight')
        return '<Migration %s %s->%s %s %s>' % (
            self.vm_name, self.source, self.target, self.reason, state)


class LiveMigrationEngine:
    """Pause -> transfer -> resume, one migration per VM at a time.

    The engine owns the only code path that moves a VM between hosts,
    so the invariant the sanitizer (and the cluster tests) lean on is
    local: between ``migrate`` and ``_resume`` the VM is resident
    nowhere and runnable nowhere.
    """

    def __init__(self, sim, cost_model=None):
        self.sim = sim
        self.cost_model = cost_model or MigrationCostModel()
        self.records = []
        self.in_flight = {}          # vm -> MigrationRecord
        # vm -> cumulative run_ns at placement / last resume; the delta
        # against this is the dirtying run time the cost model charges.
        self._run_checkpoint = {}

    def note_placed(self, vm):
        """Checkpoint a VM's run counters at (re)placement so later
        migrations only pay for CPU burned since."""
        self._run_checkpoint[vm] = self._run_ns(vm)

    def _run_ns(self, vm):
        now = self.sim.now
        return sum(vcpu.snapshot_accounting(now)[0] for vcpu in vm.vcpus)

    def migrate(self, vm, source, target, reason='rebalance'):
        """Start migrating ``vm`` from ``source`` to ``target``.

        Returns the :class:`MigrationRecord`, or ``None`` when the move
        is refused (already in flight, degenerate source==target, or
        the target lacks capacity once its reservations are counted).
        """
        if vm in self.in_flight or source is target:
            return None
        if not target.has_capacity(vm.n_vcpus):
            return None
        dirty_run_ns = self._run_ns(vm) - self._run_checkpoint.get(vm, 0)
        transfer = self.cost_model.transfer_ns(
            getattr(vm, 'working_set_mb', 0), dirty_run_ns, vm.n_vcpus)
        record = MigrationRecord(vm.name, source.name, target.name, reason,
                                 self.sim.now, transfer)
        source.evict_vm(vm)
        target.reserved_vcpus += vm.n_vcpus
        self.in_flight[vm] = record
        self.records.append(record)
        self.sim.trace.count('cluster.migrations')
        self.sim.after(transfer, self._resume, vm, target)
        return record

    def _resume(self, vm, target):
        record = self.in_flight.pop(vm)
        target.reserved_vcpus -= vm.n_vcpus
        target.adopt_vm(vm)
        # Re-checkpoint: the transfer shipped the dirty pages, so the
        # next migration starts from a clean slate.
        self._run_checkpoint[vm] = self._run_ns(vm)
        record.completed_ns = self.sim.now
        self.sim.trace.count('cluster.migrations_done')

    @property
    def completed(self):
        return [r for r in self.records if r.completed_ns is not None]
