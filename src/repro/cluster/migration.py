"""Live inter-host VM migration with a deterministic dirty-state cost
model.

The model is pre-copy-shaped but collapsed to its deterministic core:
the transfer pays for the VM's declared working set plus the pages its
recent CPU activity dirtied, over a fixed-rate migration link, plus a
constant switch-over downtime. Everything is integer nanosecond
arithmetic on counters the simulation already keeps — two runs with the
same history produce byte-identical migration records.

While in flight the VM exists on *no* host: the source evicted it
(every vCPU OFFLINE, deregistered from the source scheduler) and the
target only holds a capacity reservation. Guest timers that fire during
the blackout try to wake OFFLINE vCPUs and no-op; the backlog drains at
resume, which is exactly the downtime cost the figures measure.
"""

from ..obs import eventlog
from ..obs.phases import (PHASE_CL_MIGRATE, PHASE_CL_MIGRATE_IN,
                          PHASE_CL_MIGRATE_ROLLBACK)
from ..simkernel.units import MS, SEC


class MigrationCostModel:
    """Deterministic transfer-time model.

    ``transfer = base_downtime + (working_set_mb + dirtied_mb) / link``
    where ``dirtied_mb`` is proportional to the CPU time the VM burned
    since it was last (re)placed, capped at one ``dirty_window_ns`` per
    vCPU — long-running VMs redirty the same pages, they do not dirty
    unboundedly many.
    """

    def __init__(self, base_downtime_ns=2 * MS, link_mb_per_s=10_000,
                 dirty_mb_per_cpu_s=64, dirty_window_ns=1 * SEC):
        self.base_downtime_ns = base_downtime_ns
        self.link_mb_per_s = link_mb_per_s
        self.dirty_mb_per_cpu_s = dirty_mb_per_cpu_s
        self.dirty_window_ns = dirty_window_ns

    def dirtied_mb(self, dirty_run_ns, n_vcpus):
        capped = min(dirty_run_ns, n_vcpus * self.dirty_window_ns)
        return capped * self.dirty_mb_per_cpu_s // SEC

    def transfer_ns(self, working_set_mb, dirty_run_ns, n_vcpus):
        total_mb = working_set_mb + self.dirtied_mb(dirty_run_ns, n_vcpus)
        return self.base_downtime_ns + total_mb * SEC // self.link_mb_per_s


class MigrationRecord:
    """The ledger entry for one migration (in-flight until
    ``completed_ns`` or ``aborted_ns`` is set)."""

    __slots__ = ('vm_name', 'source', 'target', 'reason', 'started_ns',
                 'transfer_ns', 'completed_ns', 'aborted_ns',
                 'abort_reason')

    def __init__(self, vm_name, source, target, reason, started_ns,
                 transfer_ns):
        self.vm_name = vm_name
        self.source = source
        self.target = target
        self.reason = reason
        self.started_ns = started_ns
        self.transfer_ns = transfer_ns
        self.completed_ns = None
        self.aborted_ns = None
        self.abort_reason = None

    def as_dict(self):
        return {
            'vm': self.vm_name,
            'source': self.source,
            'target': self.target,
            'reason': self.reason,
            'started_ns': self.started_ns,
            'transfer_ns': self.transfer_ns,
            'completed_ns': self.completed_ns,
            'aborted_ns': self.aborted_ns,
            'abort_reason': self.abort_reason,
        }

    def __repr__(self):
        if self.completed_ns is not None:
            state = 'done@%d' % self.completed_ns
        elif self.aborted_ns is not None:
            state = 'aborted@%d(%s)' % (self.aborted_ns, self.abort_reason)
        else:
            state = 'in-flight'
        return '<Migration %s %s->%s %s %s>' % (
            self.vm_name, self.source, self.target, self.reason, state)


class _Flight:
    """Book-keeping for one in-flight migration: the ledger record,
    both endpoints, the cancellable events that decide its fate, and
    the observability handles (the source-host trace span plus the
    flow id that stitches departure to arrival across host tracks)."""

    __slots__ = ('record', 'source', 'target', 'resume_event',
                 'abort_event', 'flow_id', 'span')

    def __init__(self, record, source, target, resume_event,
                 abort_event=None, flow_id=None, span=None):
        self.record = record
        self.source = source
        self.target = target
        self.resume_event = resume_event
        self.abort_event = abort_event
        self.flow_id = flow_id
        self.span = span


class LiveMigrationEngine:
    """Pause -> transfer -> resume, one migration per VM at a time.

    The engine owns the only code path that moves a VM between hosts,
    so the invariant the sanitizer (and the cluster tests) lean on is
    local: between ``migrate`` and ``_resume`` the VM is resident
    nowhere and runnable nowhere.

    Migrations are *abortable*: an injected ``migration_abort`` fault
    or a target-host crash triggers :meth:`abort`, which cancels the
    pending resume, releases the target's capacity reservation, and
    rolls the VM back to the source (re-registering its vCPUs and
    repointing its kernel — the same adopt path a completed migration
    uses). Aborted moves retry with exponential backoff; a per-VM
    circuit breaker stops flapping VMs from churning: after
    ``breaker_threshold`` consecutive aborts, :meth:`migrate` refuses
    the VM until ``breaker_reset_ns`` has passed, and one completed
    migration closes the breaker entirely.
    """

    def __init__(self, sim, cost_model=None, injector=None,
                 retry_backoff_ns=50 * MS, max_retry_backoff_shift=5,
                 breaker_threshold=3, breaker_reset_ns=1 * SEC):
        self.sim = sim
        self.cost_model = cost_model or MigrationCostModel()
        # Fault plane (None = every transfer completes).
        self.injector = injector
        self.retry_backoff_ns = retry_backoff_ns
        self.max_retry_backoff_shift = max_retry_backoff_shift
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_ns = breaker_reset_ns
        # Rollback fallback when the source died too: the recovery
        # controller's re-place-or-park path (set by the cluster).
        self.on_orphan = None
        # Observability plane, shared by the cluster: the health event
        # log and the flow-id allocator (None = standalone engine).
        self.events = None
        self.flow_ids = None
        self.records = []
        self.in_flight = {}          # vm -> _Flight
        # vm -> cumulative run_ns at placement / last resume; the delta
        # against this is the dirtying run time the cost model charges.
        self._run_checkpoint = {}
        self._failures = {}          # vm -> consecutive aborted attempts
        self._breaker_until = {}     # vm -> time the breaker half-opens

    def note_placed(self, vm):
        """Checkpoint a VM's run counters at (re)placement so later
        migrations only pay for CPU burned since."""
        self._run_checkpoint[vm] = self._run_ns(vm)

    def _event(self, kind, **detail):
        """Append to the shared health event log (no-op standalone)."""
        if self.events is not None:
            self.events.append(self.sim.now, kind, **detail)

    @staticmethod
    def _track(host, vm):
        """Per-VM migration trace track on ``host``'s process group."""
        return 'cluster/%s/mig:%s' % (host.name, vm.name)

    def _run_ns(self, vm):
        now = self.sim.now
        return sum(vcpu.snapshot_accounting(now)[0] for vcpu in vm.vcpus)

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------

    def breaker_open(self, vm):
        """Is ``vm`` barred from migrating right now?"""
        until = self._breaker_until.get(vm)
        if until is None:
            return False
        if self.sim.now >= until:
            # Half-open: the next migrate() is the probe.
            del self._breaker_until[vm]
            return False
        return True

    def _record_failure(self, vm, host=None):
        count = self._failures.get(vm, 0) + 1
        self._failures[vm] = count
        if count >= self.breaker_threshold:
            self._breaker_until[vm] = self.sim.now + self.breaker_reset_ns
            self.sim.trace.count('cluster.migration_breaker_trips')
            self._event(eventlog.EVENT_BREAKER_TRIP, vm=vm.name,
                        failures=count)
            if host is not None:
                self.sim.trace.spans.instant(
                    self.sim.now, eventlog.EVENT_BREAKER_TRIP,
                    'cluster/%s/health' % host.name, vm=vm.name,
                    failures=count)
        return count

    # ------------------------------------------------------------------
    # The move itself
    # ------------------------------------------------------------------

    def migrate(self, vm, source, target, reason='rebalance'):
        """Start migrating ``vm`` from ``source`` to ``target``.

        Returns the :class:`MigrationRecord`, or ``None`` when the move
        is refused (already in flight, degenerate source==target, the
        target lacks capacity or is not accepting, or the VM's circuit
        breaker is open).
        """
        if vm in self.in_flight or source is target:
            return None
        if not target.accepting or not target.has_capacity(vm.n_vcpus):
            return None
        if self.breaker_open(vm):
            self.sim.trace.count('cluster.migration_breaker_refusals')
            return None
        dirty_run_ns = self._run_ns(vm) - self._run_checkpoint.get(vm, 0)
        transfer = self.cost_model.transfer_ns(
            getattr(vm, 'working_set_mb', 0), dirty_run_ns, vm.n_vcpus)
        record = MigrationRecord(vm.name, source.name, target.name, reason,
                                 self.sim.now, transfer)
        source.evict_vm(vm)
        target.reserved_vcpus += vm.n_vcpus
        resume = self.sim.after(transfer, self._resume, vm)
        flow_id = next(self.flow_ids) if self.flow_ids is not None else None
        span = self.sim.trace.spans.begin(
            self.sim.now, PHASE_CL_MIGRATE, self._track(source, vm),
            flow='start', flow_id=flow_id, vm=vm.name, target=target.name,
            reason=reason)
        flight = _Flight(record, source, target, resume, flow_id=flow_id,
                         span=span)
        self.in_flight[vm] = flight
        self.records.append(record)
        self.sim.trace.count('cluster.migrations')
        self._event(eventlog.EVENT_MIGRATION_START, vm=vm.name,
                    source=source.name, target=target.name, reason=reason,
                    transfer_ns=transfer, flow=flow_id)
        # The fault plane decides *at departure* whether this transfer
        # dies mid-flight (one roll per migration, deterministic).
        if (self.injector is not None
                and self.injector.migration_aborted(vm) is not None):
            point = self.injector.abort_point_ns(transfer)
            flight.abort_event = self.sim.after(point, self.abort, vm,
                                                'fault')
        return record

    def _resume(self, vm):
        flight = self.in_flight.pop(vm)
        target = flight.target
        if flight.abort_event is not None:
            flight.abort_event.cancel()
        target.reserved_vcpus -= vm.n_vcpus
        target.adopt_vm(vm)
        # Re-checkpoint: the transfer shipped the dirty pages, so the
        # next migration starts from a clean slate.
        self._run_checkpoint[vm] = self._run_ns(vm)
        flight.record.completed_ns = self.sim.now
        self._failures.pop(vm, None)
        self._breaker_until.pop(vm, None)
        self.sim.trace.count('cluster.migrations_done')
        spans = self.sim.trace.spans
        spans.end(self.sim.now, flight.span, outcome='done')
        # The arrival instant carries the flow *end*: Perfetto draws
        # the arrow from the source-host transfer slice to this point
        # on the target host's track.
        spans.instant(self.sim.now, PHASE_CL_MIGRATE_IN,
                      self._track(target, vm), flow='end',
                      flow_id=flight.flow_id, vm=vm.name,
                      source=flight.source.name)
        self._event(eventlog.EVENT_MIGRATION_DONE, vm=vm.name,
                    source=flight.source.name, target=target.name,
                    flow=flight.flow_id)

    # ------------------------------------------------------------------
    # Abort / rollback
    # ------------------------------------------------------------------

    def abort(self, vm, reason='fault', retry=True):
        """Kill the in-flight migration of ``vm`` and roll it back to
        the source: release the target reservation, re-register the
        vCPUs, repoint the kernel and hypercall facades. No-op when the
        VM is not in flight (the transfer already completed).

        When the source has crashed in the meantime the VM cannot go
        back; it is handed to :attr:`on_orphan` (the recovery
        controller) to be re-placed or parked.
        """
        flight = self.in_flight.pop(vm, None)
        if flight is None:
            return False
        flight.resume_event.cancel()
        if flight.abort_event is not None:
            flight.abort_event.cancel()
        flight.target.reserved_vcpus -= vm.n_vcpus
        flight.record.aborted_ns = self.sim.now
        flight.record.abort_reason = reason
        self.sim.trace.count('cluster.migration_aborts')
        self.sim.trace.spans.end(self.sim.now, flight.span,
                                 outcome='abort:%s' % reason)
        failures = self._record_failure(vm, host=flight.source)

        from .host import HOST_FAILED
        if flight.source.state == HOST_FAILED:
            # Nowhere to roll back to: the source died while the VM was
            # in flight. The recovery controller re-places or parks it.
            self.sim.trace.count('cluster.migration_orphans')
            self._event(eventlog.EVENT_MIGRATION_ABORT, vm=vm.name,
                        source=flight.source.name,
                        target=flight.target.name, reason=reason,
                        rollback=False, flow=flight.flow_id)
            if self.on_orphan is not None:
                self.on_orphan(vm)
            return True

        flight.source.adopt_vm(vm)
        self._run_checkpoint[vm] = self._run_ns(vm)
        self.sim.trace.count('cluster.migration_rollbacks')
        self._event(eventlog.EVENT_MIGRATION_ABORT, vm=vm.name,
                    source=flight.source.name, target=flight.target.name,
                    reason=reason, rollback=True, flow=flight.flow_id)
        # Rollback closes the flow where it started: the arrow returns
        # to the source host's track.
        self.sim.trace.spans.instant(
            self.sim.now, PHASE_CL_MIGRATE_ROLLBACK,
            self._track(flight.source, vm), flow='end',
            flow_id=flight.flow_id, vm=vm.name, reason=reason)

        if retry and not self.breaker_open(vm):
            shift = min(failures - 1, self.max_retry_backoff_shift)
            backoff = self.retry_backoff_ns << shift
            self.sim.after(backoff, self._retry, vm, flight.source,
                           flight.target, flight.record.reason)
        return True

    def _retry(self, vm, source, target, reason):
        """Backed-off re-attempt of an aborted migration. Re-validates
        the world first: the VM must still sit on the source and the
        target must still be accepting — otherwise the retry is dropped
        (the rebalance daemon will find a better move on its own)."""
        if vm in self.in_flight or vm not in source.resident_vms:
            return
        if not target.accepting or not target.has_capacity(vm.n_vcpus):
            return
        self.sim.trace.count('cluster.migration_retries')
        self.migrate(vm, source, target, reason=reason)

    def abort_targeting(self, host, reason='target_crash'):
        """Roll back every in-flight migration aimed at ``host`` (the
        target crashed mid-transfer). Retries are suppressed — the
        target is gone."""
        for vm, flight in list(self.in_flight.items()):
            if flight.target is host:
                self.abort(vm, reason=reason, retry=False)

    def flights_from(self, host):
        """In-flight migrations whose *source* is ``host``. They keep
        flying after a source crash — the hand-off already happened —
        and complete through the normal adopt path on the target."""
        return [vm for vm, flight in self.in_flight.items()
                if flight.source is host]

    @property
    def completed(self):
        return [r for r in self.records if r.completed_ns is not None]

    @property
    def aborted(self):
        return [r for r in self.records if r.aborted_ns is not None]
