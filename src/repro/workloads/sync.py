"""Guest-level synchronization primitives.

These are *state machines only*: they never touch the scheduler
directly. The guest kernel interprets their return values — who blocked,
who spins, who must be woken — so every sleep/wake goes through the same
kernel paths real futex/spin code would take. That separation is what
lets LHP and LWP emerge rather than being scripted.

Two families mirror the paper's workload split:

* **blocking** (pthread mutex / barrier, OpenMP passive): contended
  waiters sleep; their vCPUs may go idle — the *deceptive idleness* of
  Section 5.6;
* **spinning** (OpenMP active): contended waiters burn CPU in a pause
  loop, visible to PLE.
"""

ACQUIRED = 'acquired'
WAIT = 'wait'
SPIN = 'spin'
PASS = 'pass'


class Mutex:
    """Blocking mutual-exclusion lock (futex-like, FIFO handoff)."""

    def __init__(self, name='mutex'):
        self.name = name
        self.owner = None
        self.waiters = []
        self.contended_acquires = 0
        self.total_acquires = 0

    def acquire(self, task):
        """Returns ACQUIRED, or WAIT (caller must put ``task`` to sleep;
        ownership is handed to it on release)."""
        self.total_acquires += 1
        if self.owner is None:
            self.owner = task
            return ACQUIRED
        self.contended_acquires += 1
        self.waiters.append(task)
        return WAIT

    def release(self, task):
        """Returns the next owner to wake, or None."""
        if self.owner is not task:
            raise RuntimeError('%s released by non-owner %s'
                               % (self.name, task.name))
        if self.waiters:
            self.owner = self.waiters.pop(0)
            return self.owner
        self.owner = None
        return None

    def abandon_wait(self, task):
        """Remove a waiter (task teardown paths)."""
        if task in self.waiters:
            self.waiters.remove(task)


class SpinLock:
    """Spinning mutual-exclusion lock.

    ``fair=True`` models a ticket lock: strict FIFO handoff, even to a
    spinner whose vCPU is currently preempted (the LWP amplifier).
    ``fair=False`` models test-and-set: on release, a spinner whose vCPU
    is actually running wins the race; a preempted spinner can only win
    when no running spinner exists.
    """

    def __init__(self, name='spinlock', fair=False):
        self.name = name
        self.fair = fair
        self.owner = None
        self.spinners = []
        self.contended_acquires = 0
        self.total_acquires = 0

    def acquire(self, task):
        """Returns ACQUIRED, or SPIN (caller marks ``task`` spinning)."""
        self.total_acquires += 1
        if self.owner is None:
            self.owner = task
            return ACQUIRED
        self.contended_acquires += 1
        self.spinners.append(task)
        return SPIN

    def release(self, task, running_predicate=None):
        """Returns the spinner granted ownership, or None.

        ``running_predicate(task) -> bool`` tells an unfair lock which
        spinners are actually executing their pause loop right now.
        """
        if self.owner is not task:
            raise RuntimeError('%s released by non-owner %s'
                               % (self.name, task.name))
        if not self.spinners:
            self.owner = None
            return None
        grantee = None
        if not self.fair and running_predicate is not None:
            for candidate in self.spinners:
                if running_predicate(candidate):
                    grantee = candidate
                    break
        if grantee is None:
            grantee = self.spinners[0]
        self.spinners.remove(grantee)
        self.owner = grantee
        return grantee


class Barrier:
    """Group synchronization for ``parties`` tasks.

    ``mode='block'`` puts early arrivals to sleep; ``mode='spin'`` makes
    them pause-loop until the last arrival.
    """

    def __init__(self, parties, name='barrier', mode='block'):
        if parties < 1:
            raise ValueError('parties must be >= 1')
        if mode not in ('block', 'spin'):
            raise ValueError("mode must be 'block' or 'spin'")
        self.parties = parties
        self.name = name
        self.mode = mode
        self.waiting = []
        self.generation = 0
        self.crossings = 0

    def wait(self, task):
        """Returns ``(PASS, released_tasks)`` for the last arrival (the
        caller wakes/unspins ``released_tasks``), or ``(WAIT, None)`` /
        ``(SPIN, None)`` for early arrivals per the mode."""
        if len(self.waiting) + 1 == self.parties:
            released = self.waiting
            self.waiting = []
            self.generation += 1
            self.crossings += 1
            return PASS, released
        self.waiting.append(task)
        return (WAIT if self.mode == 'block' else SPIN), None


class BoundedQueue:
    """Bounded producer/consumer queue (pipeline parallelism).

    Blocking semantics on both ends, like the hand-over queues between
    dedup/ferret pipeline stages.
    """

    def __init__(self, capacity, name='queue'):
        if capacity < 1:
            raise ValueError('capacity must be >= 1')
        self.capacity = capacity
        self.name = name
        self.items = []
        self.put_waiters = []      # (task, item) blocked producers
        self.get_waiters = []      # tasks blocked consumers
        self.total_put = 0

    def put(self, task, item):
        """Returns ``(PASS, consumer_to_wake)`` or ``(WAIT, None)``."""
        if self.get_waiters:
            # Hand the item directly to a blocked consumer.
            consumer = self.get_waiters.pop(0)
            consumer.mailbox = item
            self.total_put += 1
            return PASS, consumer
        if len(self.items) < self.capacity:
            self.items.append(item)
            self.total_put += 1
            return PASS, None
        self.put_waiters.append((task, item))
        return WAIT, None

    def get(self, task):
        """Returns ``(PASS, item, producer_to_wake)`` or
        ``(WAIT, None, None)``. A woken producer's deferred item is
        appended as part of this call."""
        if self.items:
            item = self.items.pop(0)
            producer = None
            if self.put_waiters:
                producer, deferred = self.put_waiters.pop(0)
                self.items.append(deferred)
                self.total_put += 1
            return PASS, item, producer
        self.get_waiters.append(task)
        return WAIT, None, None


class RwLock:
    """Blocking reader-writer lock with writer preference (like
    pthread rwlocks with `PTHREAD_RWLOCK_PREFER_WRITER_NONRECURSIVE_NP`,
    the discipline PARSEC's annotation-heavy apps assume).

    Writer preference means new readers wait once a writer queues —
    which also means a *preempted writer* stalls every reader behind
    it: the LHP amplification for read-mostly workloads.
    """

    def __init__(self, name='rwlock'):
        self.name = name
        self.readers = set()
        self.writer = None
        self.read_waiters = []
        self.write_waiters = []
        self.total_acquires = 0
        self.contended_acquires = 0

    def acquire_read(self, task):
        """Returns ACQUIRED or WAIT (caller sleeps until granted)."""
        self.total_acquires += 1
        if self.writer is None and not self.write_waiters:
            self.readers.add(task)
            return ACQUIRED
        self.contended_acquires += 1
        self.read_waiters.append(task)
        return WAIT

    def acquire_write(self, task):
        """Returns ACQUIRED or WAIT."""
        self.total_acquires += 1
        if self.writer is None and not self.readers:
            self.writer = task
            return ACQUIRED
        self.contended_acquires += 1
        self.write_waiters.append(task)
        return WAIT

    def release_read(self, task):
        """Returns the tasks to wake (at most one writer)."""
        if task not in self.readers:
            raise RuntimeError('%s released read by non-reader %s'
                               % (self.name, task.name))
        self.readers.discard(task)
        if not self.readers and self.write_waiters:
            self.writer = self.write_waiters.pop(0)
            return [self.writer]
        return []

    def release_write(self, task):
        """Returns the tasks to wake: the next writer, or every queued
        reader."""
        if self.writer is not task:
            raise RuntimeError('%s released write by non-writer %s'
                               % (self.name, task.name))
        self.writer = None
        if self.write_waiters:
            self.writer = self.write_waiters.pop(0)
            return [self.writer]
        woken = self.read_waiters
        self.read_waiters = []
        self.readers.update(woken)
        return woken
