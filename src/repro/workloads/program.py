"""Program builders: generator factories for workload thread bodies.

A program is a generator of actions. Code between ``yield`` statements
executes at action-fetch time — i.e. on the task's vCPU, at the correct
simulated instant — so closures over shared Python state model
user-level shared memory (work-stealing pools, pipeline termination
counters) faithfully.
"""

from .actions import Acquire, BarrierWait, Compute, QueueGet, QueuePut, Release

# Sentinel flowing through pipeline queues to terminate stages.
PIPELINE_STOP = object()


def _draw(sim, stream, base_ns, jitter):
    if jitter:
        return sim.rng.jittered_ns(stream, base_ns, jitter)
    return base_ns


def cpu_hog(chunk_ns):
    """Endless compute: the paper's interference micro-benchmark (a CPU
    hog with near-zero memory footprint)."""
    while True:
        yield Compute(chunk_ns)


def compute_chunks(total_ns, chunk_ns):
    """Fixed amount of compute, split into chunks (sequential batch /
    swaptions-style embarrassingly parallel share)."""
    remaining = total_ns
    while remaining > 0:
        step = min(chunk_ns, remaining)
        remaining -= step
        yield Compute(step)


def barrier_phases(sim, stream, barrier, phase_ns, phases, jitter=0.0,
                   critical=None, on_phase=None, region_barrier=None,
                   region_every=0):
    """Data-parallel loop: compute a phase, then synchronize at a
    barrier (blocking or spinning per the barrier). The dominant shape
    of PARSEC's streamcluster/blackscholes/facesim and all of NPB.

    ``critical=(mutex, hold_ns)`` adds a short lock-protected section
    each phase (e.g. reduction updates), the LHP amplifier.

    ``region_barrier``/``region_every`` model OpenMP parallel-region
    boundaries: even with ``OMP_WAIT_POLICY=active`` the runtime blocks
    between regions, so every ``region_every``-th phase crosses the
    (blocking) region barrier instead. Those occasional sleeps are what
    expose spinning workloads to hypervisor wake placement.
    """
    for index in range(phases):
        yield Compute(_draw(sim, stream, phase_ns, jitter))
        if critical is not None:
            mutex, hold_ns = critical
            yield Acquire(mutex)
            yield Compute(hold_ns)
            yield Release(mutex)
        if (region_barrier is not None and region_every > 0
                and (index + 1) % region_every == 0):
            yield BarrierWait(region_barrier)
        else:
            yield BarrierWait(barrier)
        if on_phase is not None:
            on_phase(sim.now)


def mutex_loop(sim, stream, mutex, compute_ns, critical_ns, iterations,
               jitter=0.0, on_iteration=None):
    """Point-to-point synchronization: compute, then a lock-protected
    critical section (x264/canneal/fluidanimate-style)."""
    for __ in range(iterations):
        yield Compute(_draw(sim, stream, compute_ns, jitter))
        yield Acquire(mutex)
        yield Compute(critical_ns)
        yield Release(mutex)
        if on_iteration is not None:
            on_iteration(sim.now)


def work_steal_worker(sim, pool, on_unit=None):
    """User-level work stealing (raytrace): grab the next unit off a
    shared pool and compute it; exit when the pool drains. Because the
    pop happens at fetch time on whichever vCPU the thread occupies,
    faster threads naturally absorb the slow ones' work."""
    while pool:
        unit_ns = pool.pop()
        yield Compute(unit_ns)
        if on_unit is not None:
            on_unit(sim.now)


def pipeline_source(sim, stream, out_queue, n_items, unit_ns, jitter,
                    done_counter, n_source_threads, next_stage_threads):
    """First pipeline stage: produce ``n_items`` work items. The last
    source thread to finish floods the next stage with stop tokens."""
    for __ in range(n_items):
        yield Compute(_draw(sim, stream, unit_ns, jitter))
        yield QueuePut(out_queue, 'item')
    done_counter[0] += 1
    if done_counter[0] == n_source_threads:
        for __ in range(next_stage_threads):
            yield QueuePut(out_queue, PIPELINE_STOP)


def pipeline_stage(sim, stream, in_queue, out_queue, unit_ns, jitter,
                   done_counter, stage_threads, next_stage_threads):
    """Middle pipeline stage: get, work, put. Stops propagate: the last
    thread of this stage to stop seeds the next stage's stops."""
    while True:
        item = yield QueueGet(in_queue)
        if item is PIPELINE_STOP:
            done_counter[0] += 1
            if done_counter[0] == stage_threads and out_queue is not None:
                for __ in range(next_stage_threads):
                    yield QueuePut(out_queue, PIPELINE_STOP)
            return
        yield Compute(_draw(sim, stream, unit_ns, jitter))
        if out_queue is not None:
            yield QueuePut(out_queue, item)


def pipeline_sink(sim, stream, in_queue, unit_ns, jitter, on_item=None):
    """Final pipeline stage: consume until stopped."""
    while True:
        item = yield QueueGet(in_queue)
        if item is PIPELINE_STOP:
            return
        yield Compute(_draw(sim, stream, unit_ns, jitter))
        if on_item is not None:
            on_item(sim.now)
