"""Interference generators.

The paper's synthetic interference is "a varying number of CPU hogs
that compete for CPU cycles with almost zero memory footprint"
(Section 5.1). Real-application interference reuses the PARSEC/NPB
profiles in repeat mode.
"""

from ..simkernel.units import MS
from .program import cpu_hog


class HogWorkload:
    """N endless compute tasks in a guest."""

    def __init__(self, sim, kernel, count=1, chunk_ns=10 * MS, name='hog'):
        self.sim = sim
        self.kernel = kernel
        self.count = count
        self.chunk_ns = chunk_ns
        self.name = name
        self.tasks = []

    def install(self):
        for i in range(self.count):
            task = self.kernel.spawn(
                '%s.t%d' % (self.name, i), cpu_hog(self.chunk_ns),
                gcpu_index=i % len(self.kernel.gcpus))
            self.tasks.append(task)
        return self

    def consumed_ns(self):
        """Total CPU the hogs managed to burn."""
        return sum(task.cpu_ns for task in self.tasks)
