"""Multi-threaded server workloads (Section 5.3).

* :class:`SpecJbbWorkload` — SPECjbb2005-like: one warehouse thread per
  vCPU, closed-loop transactions with a little shared-state locking.
  Reports throughput and per-transaction ("new order") latency.
* :class:`ApacheBenchWorkload` — ab-like: many more threads than vCPUs
  (512 in the paper), short independent requests, no synchronization.
  Reports throughput and tail (p99) latency.
"""

from ..metrics.latency import LatencyRecorder
from ..simkernel.units import MS, SEC, US
from .actions import Acquire, Compute, Release
from .sync import Mutex


class ServerWorkload:
    """Base: closed-loop request threads with latency recording."""

    def __init__(self, sim, kernel, n_threads, service_ns, jitter,
                 name='server'):
        self.sim = sim
        self.kernel = kernel
        self.n_threads = n_threads
        self.service_ns = service_ns
        self.jitter = jitter
        self.name = name
        self.latency = LatencyRecorder('%s.latency' % name)
        self.completed = 0
        self.started_at = None
        self.tasks = []

    def install(self):
        self.started_at = self.sim.now
        for i in range(self.n_threads):
            name = '%s.t%d' % (self.name, i)
            task = self.kernel.spawn(
                name, self._request_loop(name),
                gcpu_index=i % len(self.kernel.gcpus))
            self.tasks.append(task)
        return self

    def _request_loop(self, stream):
        while True:
            started = self.sim.now
            for action in self._one_request(stream):
                yield action
            self.latency.record(self.sim.now - started)
            self.completed += 1

    def _one_request(self, stream):
        yield Compute(self.sim.rng.jittered_ns(stream, self.service_ns,
                                               self.jitter))

    def throughput(self, now=None):
        """Requests per second since installation."""
        now = self.sim.now if now is None else now
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.completed / (elapsed / SEC)


class SpecJbbWorkload(ServerWorkload):
    """SPECjbb2005 model: warehouses = vCPUs, ~5 ms transactions with a
    short lock-protected order-book update every transaction."""

    def __init__(self, sim, kernel, n_warehouses=None, tx_ns=5 * MS,
                 lock_hold_ns=40 * US, jitter=0.3, name='specjbb'):
        n_warehouses = n_warehouses or len(kernel.gcpus)
        super().__init__(sim, kernel, n_warehouses, tx_ns, jitter, name=name)
        self.lock_hold_ns = lock_hold_ns
        self.order_lock = Mutex('%s.orders' % name)

    def _one_request(self, stream):
        draw = self.sim.rng.jittered_ns(stream, self.service_ns, self.jitter)
        yield Compute(draw)
        yield Acquire(self.order_lock)
        yield Compute(self.lock_hold_ns)
        yield Release(self.order_lock)


class ApacheBenchWorkload(ServerWorkload):
    """Apache `ab` model: MaxClients worker threads, short independent
    requests, zero synchronization."""

    def __init__(self, sim, kernel, n_threads=512, service_ns=int(1.5 * MS),
                 jitter=0.4, name='ab'):
        super().__init__(sim, kernel, n_threads, service_ns, jitter,
                         name=name)


class OpenLoopServerWorkload:
    """Open-loop server: requests arrive on a Poisson process and queue
    for a fixed pool of worker threads.

    Unlike the closed-loop SPECjbb/ab models, latency here includes
    queueing delay, so scheduler stalls compound: one 30 ms vCPU
    preemption backs up every request that arrives behind it — the
    regime where IRS's tail-latency win is largest.
    """

    def __init__(self, sim, kernel, n_workers=None, service_ns=2 * MS,
                 arrivals_per_sec=800, jitter=0.3, queue_capacity=10_000,
                 name='openloop'):
        from .actions import QueueGet, Sleep
        from .sync import BoundedQueue
        self.sim = sim
        self.kernel = kernel
        self.n_workers = n_workers or len(kernel.gcpus)
        self.service_ns = service_ns
        self.arrivals_per_sec = arrivals_per_sec
        self.jitter = jitter
        self.name = name
        self.queue = BoundedQueue(queue_capacity, name='%s.q' % name)
        self.latency = LatencyRecorder('%s.latency' % name)
        self.completed = 0
        self.dropped = 0
        self.started_at = None
        self.tasks = []

    def install(self):
        from .actions import QueuePut, Sleep
        self.started_at = self.sim.now
        arrival = self.kernel.spawn('%s.arrivals' % self.name,
                                    self._arrival_loop(), gcpu_index=0)
        self.tasks.append(arrival)
        for i in range(self.n_workers):
            worker = self.kernel.spawn(
                '%s.w%d' % (self.name, i), self._worker_loop(i),
                gcpu_index=i % len(self.kernel.gcpus))
            self.tasks.append(worker)
        return self

    def _arrival_loop(self):
        from .actions import QueuePut, Sleep
        mean_gap = int(SEC / self.arrivals_per_sec)
        while True:
            gap = self.sim.rng.exponential_ns(
                '%s.arrivals' % self.name, mean_gap, cap_ns=mean_gap * 10)
            yield Sleep(gap)
            if len(self.queue.items) >= self.queue.capacity - 1:
                self.dropped += 1
                continue
            yield QueuePut(self.queue, self.sim.now)

    def _worker_loop(self, index):
        from .actions import Compute, QueueGet
        stream = '%s.w%d' % (self.name, index)
        while True:
            arrived_at = yield QueueGet(self.queue)
            yield Compute(self.sim.rng.jittered_ns(
                stream, self.service_ns, self.jitter))
            self.latency.record(self.sim.now - arrived_at)
            self.completed += 1

    def throughput(self, now=None):
        now = self.sim.now if now is None else now
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.completed / (elapsed / SEC)

    def reset_measurement(self):
        """Clear counters for steady-state measurement."""
        self.latency.reset()
        self.completed = 0
        self.dropped = 0
        self.started_at = self.sim.now
