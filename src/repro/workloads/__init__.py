"""Workload models: actions, synchronization primitives, programs,
benchmark suites, server workloads, and interference generators."""

from . import actions
from . import sync
from .actions import (
    Acquire,
    AcquireRead,
    AcquireWrite,
    BarrierWait,
    Compute,
    Mark,
    QueueGet,
    QueuePut,
    Release,
    ReleaseRead,
    ReleaseWrite,
    Sleep,
    YieldCpu,
)
from .hogs import HogWorkload
from .program import (
    barrier_phases,
    compute_chunks,
    cpu_hog,
    mutex_loop,
    PIPELINE_STOP,
    pipeline_sink,
    pipeline_source,
    pipeline_stage,
    work_steal_worker,
)
from .server import (
    ApacheBenchWorkload,
    OpenLoopServerWorkload,
    ServerWorkload,
    SpecJbbWorkload,
)
from .suites import (
    ALL_PROFILES,
    get_profile,
    NPB,
    ParallelWorkload,
    PARSEC,
    profile_variant,
    WorkloadProfile,
)
from .sync import Barrier, BoundedQueue, Mutex, RwLock, SpinLock

__all__ = [
    'Acquire', 'AcquireRead', 'AcquireWrite', 'actions', 'ALL_PROFILES',
    'ApacheBenchWorkload',
    'Barrier', 'barrier_phases', 'BarrierWait', 'BoundedQueue',
    'Compute', 'compute_chunks', 'cpu_hog', 'get_profile', 'HogWorkload',
    'Mark', 'Mutex', 'mutex_loop', 'NPB', 'OpenLoopServerWorkload',
    'ParallelWorkload', 'PARSEC',
    'PIPELINE_STOP', 'pipeline_sink', 'pipeline_source', 'pipeline_stage',
    'profile_variant', 'QueueGet', 'QueuePut', 'Release', 'ReleaseRead',
    'ReleaseWrite', 'RwLock', 'ServerWorkload',
    'Sleep', 'SpecJbbWorkload', 'SpinLock', 'sync', 'WorkloadProfile',
    'work_steal_worker', 'YieldCpu',
]
