"""Named benchmark profiles (PARSEC, NPB) and the workload driver.

Each profile captures the synchronization *structure* of the named
benchmark — blocking vs spinning, barrier vs mutex vs pipeline vs work
stealing, and granularity relative to the hypervisor's 30 ms slice —
which is what determines LHP/LWP behaviour. Durations are uniformly
scaled so a native-input run shrinks to ~1–2 simulated seconds; ratios
to the scheduler constants are preserved for the fine-grained programs
(granularities follow Section 5.1's characterization).
"""

from ..simkernel.units import MS, SEC, US
from . import program as prog
from .sync import Barrier, BoundedQueue, Mutex, SpinLock

KIND_BARRIER = 'barrier'
KIND_MUTEX = 'mutex'
KIND_BARRIER_MUTEX = 'barrier+mutex'
KIND_PIPELINE = 'pipeline'
KIND_WORKSTEAL = 'worksteal'
KIND_COMPUTE = 'compute'

MODE_BLOCK = 'block'
MODE_SPIN = 'spin'

DEFAULT_TOTAL_NS = int(1.2 * SEC)


class WorkloadProfile:
    """Synchronization profile of one named benchmark."""

    def __init__(self, name, suite, kind, mode=MODE_BLOCK, phase_ns=50 * MS,
                 critical_ns=0, jitter=0.1, total_ns=DEFAULT_TOTAL_NS,
                 cache_footprint=1.0, stages=1, unit_ns=4 * MS,
                 region_every=0):
        self.name = name
        self.suite = suite
        self.kind = kind
        self.mode = mode
        self.phase_ns = phase_ns
        self.critical_ns = critical_ns
        self.jitter = jitter
        self.total_ns = total_ns
        self.cache_footprint = cache_footprint
        self.stages = stages
        self.unit_ns = unit_ns
        # For spinning workloads: every Nth barrier is a blocking
        # OpenMP parallel-region boundary (0 = never).
        self.region_every = region_every

    def __repr__(self):
        return '<Profile %s %s/%s phase=%dus>' % (
            self.name, self.kind, self.mode, self.phase_ns // US)


def _p(name, **kw):
    return WorkloadProfile(name, 'parsec', **kw)


def _n(name, **kw):
    kw.setdefault('mode', MODE_SPIN)
    if kw['mode'] == MODE_SPIN:
        # OpenMP blocks at parallel-region boundaries even when the
        # in-region waiting policy is active spinning.
        kw.setdefault('region_every', 5)
    return WorkloadProfile(name, 'npb', kind=KIND_BARRIER, **kw)


# PARSEC: pthreads, blocking synchronization (Section 5.1).
PARSEC = {p.name: p for p in [
    _p('blackscholes', kind=KIND_BARRIER, phase_ns=100 * MS, jitter=0.05,
       cache_footprint=0.5),
    _p('bodytrack', kind=KIND_BARRIER_MUTEX, phase_ns=30 * MS,
       critical_ns=100 * US, jitter=0.25),
    _p('canneal', kind=KIND_MUTEX, phase_ns=800 * US, critical_ns=8 * US,
       jitter=0.2, cache_footprint=2.0),
    _p('dedup', kind=KIND_PIPELINE, stages=4, unit_ns=2 * MS, jitter=0.3,
       cache_footprint=1.5),
    _p('facesim', kind=KIND_BARRIER, phase_ns=70 * MS, jitter=0.15,
       cache_footprint=1.5),
    _p('ferret', kind=KIND_PIPELINE, stages=5, unit_ns=2 * MS, jitter=0.3),
    _p('fluidanimate', kind=KIND_BARRIER_MUTEX, phase_ns=60 * MS,
       critical_ns=20 * US, jitter=0.2, cache_footprint=1.2),
    _p('raytrace', kind=KIND_WORKSTEAL, unit_ns=4 * MS, jitter=0.3,
       cache_footprint=0.8),
    _p('streamcluster', kind=KIND_BARRIER, phase_ns=25 * MS, jitter=0.1,
       cache_footprint=1.5),
    _p('swaptions', kind=KIND_COMPUTE, phase_ns=50 * MS, jitter=0.05,
       cache_footprint=0.5),
    _p('vips', kind=KIND_MUTEX, phase_ns=4 * MS, critical_ns=30 * US,
       jitter=0.2),
    _p('x264', kind=KIND_MUTEX, phase_ns=8 * MS, critical_ns=150 * US,
       jitter=0.35),
]}

# NPB class C, OpenMP with OMP_WAIT_POLICY=active (spinning), except EP
# which the paper runs blocking (Figure 10).
NPB = {p.name: p for p in [
    _n('BT', phase_ns=80 * MS, jitter=0.1),
    _n('CG', phase_ns=20 * MS, jitter=0.1),
    _n('EP', mode=MODE_BLOCK, phase_ns=300 * MS, jitter=0.05),
    _n('FT', phase_ns=60 * MS, jitter=0.1),
    _n('IS', phase_ns=10 * MS, jitter=0.15),
    _n('LU', phase_ns=250 * MS, jitter=0.1),
    _n('MG', phase_ns=15 * MS, jitter=0.15),
    _n('SP', phase_ns=25 * MS, jitter=0.1),
    _n('UA', phase_ns=40 * MS, jitter=0.2),
]}

ALL_PROFILES = {}
ALL_PROFILES.update(PARSEC)
ALL_PROFILES.update(NPB)


def get_profile(name):
    """Look up a benchmark profile by name (case-sensitive)."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError('unknown benchmark %r; known: %s'
                       % (name, ', '.join(sorted(ALL_PROFILES))))


def profile_variant(profile, **overrides):
    """A copy of ``profile`` with fields overridden (e.g. forcing MG to
    spin or blocking mode for the Figure 10 study)."""
    fields = dict(
        name=profile.name, suite=profile.suite, kind=profile.kind,
        mode=profile.mode, phase_ns=profile.phase_ns,
        critical_ns=profile.critical_ns, jitter=profile.jitter,
        total_ns=profile.total_ns, cache_footprint=profile.cache_footprint,
        stages=profile.stages, unit_ns=profile.unit_ns,
        region_every=profile.region_every)
    fields.update(overrides)
    return WorkloadProfile(**fields)


class ParallelWorkload:
    """Instantiates a profile as tasks in a guest kernel and tracks
    progress and completion."""

    def __init__(self, sim, kernel, profile, n_threads=None, repeat=False,
                 scale=1.0, prefix=None):
        self.sim = sim
        self.kernel = kernel
        self.profile = profile
        self.n_threads = n_threads or len(kernel.gcpus)
        self.repeat = repeat
        self.scale = scale
        self.prefix = prefix or '%s.%s' % (kernel.vm.name, profile.name)
        self.tasks = []
        self.started_at = None
        self.done_at = None
        self.progress_events = 0
        self._exited = 0

    # ------------------------------------------------------------------

    def install(self):
        """Spawn the workload's tasks (one per vCPU by default)."""
        self.started_at = self.sim.now
        programs = self._make_programs()
        for i, (name, body) in enumerate(programs):
            task = self.kernel.spawn(
                name, body, gcpu_index=i % len(self.kernel.gcpus),
                cache_footprint=self.profile.cache_footprint,
                on_exit=self._on_task_exit)
            self.tasks.append(task)
        return self

    def _on_task_exit(self, task, now):
        self._exited += 1
        if self._exited == len(self.tasks):
            self.done_at = now

    def _on_progress(self, now):
        self.progress_events += 1

    @property
    def is_done(self):
        return self.done_at is not None

    def makespan_ns(self):
        if self.done_at is None:
            return None
        return self.done_at - self.started_at

    def progress_rate(self, now=None):
        """Progress events (phases/iterations/items) per second —
        the throughput measure for repeating background workloads."""
        now = self.sim.now if now is None else now
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.progress_events / (elapsed / SEC)

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------

    def _scaled_total(self):
        return int(self.profile.total_ns * self.scale)

    def _make_programs(self):
        kind = self.profile.kind
        if kind == KIND_BARRIER:
            return self._barrier_programs(critical=False)
        if kind == KIND_BARRIER_MUTEX:
            return self._barrier_programs(critical=True)
        if kind == KIND_MUTEX:
            return self._mutex_programs()
        if kind == KIND_PIPELINE:
            return self._pipeline_programs()
        if kind == KIND_WORKSTEAL:
            return self._worksteal_programs()
        if kind == KIND_COMPUTE:
            return self._compute_programs()
        raise ValueError('unknown workload kind %r' % kind)

    def _loop(self, factory):
        """Endless repetition of a program for background interferers."""
        def forever():
            while True:
                for action in factory():
                    yield action
        return forever()

    def _body(self, factory):
        return self._loop(factory) if self.repeat else factory()

    def _barrier_programs(self, critical):
        p = self.profile
        barrier = Barrier(self.n_threads, name='%s.bar' % self.prefix,
                          mode=p.mode)
        region_barrier = None
        if p.mode == MODE_SPIN and p.region_every > 0:
            region_barrier = Barrier(self.n_threads,
                                     name='%s.region' % self.prefix,
                                     mode=MODE_BLOCK)
        mutex = None
        if critical:
            mutex = (Mutex('%s.mtx' % self.prefix) if p.mode == MODE_BLOCK
                     else SpinLock('%s.mtx' % self.prefix))
        phases = max(1, self._scaled_total() // p.phase_ns)
        programs = []
        for i in range(self.n_threads):
            stream = '%s.t%d' % (self.prefix, i)

            def factory(stream=stream):
                return prog.barrier_phases(
                    self.sim, stream, barrier, p.phase_ns, phases,
                    jitter=p.jitter,
                    critical=(mutex, p.critical_ns) if mutex else None,
                    on_phase=self._on_progress,
                    region_barrier=region_barrier,
                    region_every=p.region_every)
            programs.append(('%s.t%d' % (self.prefix, i),
                             self._body(factory)))
        return programs

    def _mutex_programs(self):
        p = self.profile
        lock = (Mutex('%s.mtx' % self.prefix) if p.mode == MODE_BLOCK
                else SpinLock('%s.mtx' % self.prefix))
        iterations = max(1, self._scaled_total() // p.phase_ns)
        programs = []
        for i in range(self.n_threads):
            stream = '%s.t%d' % (self.prefix, i)

            def factory(stream=stream):
                return prog.mutex_loop(
                    self.sim, stream, lock, p.phase_ns, p.critical_ns,
                    iterations, jitter=p.jitter,
                    on_iteration=self._on_progress)
            programs.append(('%s.t%d' % (self.prefix, i),
                             self._body(factory)))
        return programs

    def _compute_programs(self):
        p = self.profile
        total = self._scaled_total()
        programs = []
        for i in range(self.n_threads):
            def factory():
                return self._counted_chunks(total, p.phase_ns)
            programs.append(('%s.t%d' % (self.prefix, i),
                             self._body(factory)))
        return programs

    def _counted_chunks(self, total_ns, chunk_ns):
        for action in prog.compute_chunks(total_ns, chunk_ns):
            yield action
            self._on_progress(self.sim.now)

    def _worksteal_programs(self):
        if self.repeat:
            raise ValueError('work-stealing workloads do not support '
                             'repeat mode (the pool drains)')
        p = self.profile
        n_units = max(self.n_threads,
                      self.n_threads * self._scaled_total() // p.unit_ns)
        rng = self.sim.rng.stream('%s.pool' % self.prefix)
        spread = int(p.unit_ns * p.jitter)
        pool = [p.unit_ns + (rng.randint(-spread, spread) if spread else 0)
                for __ in range(n_units)]
        programs = []
        for i in range(self.n_threads):
            programs.append((
                '%s.t%d' % (self.prefix, i),
                prog.work_steal_worker(self.sim, pool,
                                       on_unit=self._on_progress)))
        return programs

    def _pipeline_programs(self):
        if self.repeat:
            raise ValueError('pipeline workloads do not support repeat '
                             'mode (stop tokens terminate the stages)')
        p = self.profile
        n_stages = p.stages
        threads_per_stage = self.n_threads
        items_per_source = max(1, self._scaled_total() // (p.unit_ns *
                                                           n_stages))
        queues = [BoundedQueue(8, name='%s.q%d' % (self.prefix, s))
                  for s in range(n_stages - 1)]
        counters = [[0] for __ in range(n_stages)]
        programs = []
        for s in range(n_stages):
            for i in range(threads_per_stage):
                name = '%s.s%dt%d' % (self.prefix, s, i)
                stream = name
                if s == 0:
                    body = prog.pipeline_source(
                        self.sim, stream, queues[0], items_per_source,
                        p.unit_ns, p.jitter, counters[0],
                        threads_per_stage, threads_per_stage)
                elif s == n_stages - 1:
                    body = prog.pipeline_sink(
                        self.sim, stream, queues[s - 1], p.unit_ns,
                        p.jitter, on_item=self._on_progress)
                else:
                    body = prog.pipeline_stage(
                        self.sim, stream, queues[s - 1], queues[s],
                        p.unit_ns, p.jitter, counters[s],
                        threads_per_stage, threads_per_stage)
                programs.append((name, body))
        return programs
