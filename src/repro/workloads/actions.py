"""Primitive actions a guest task can perform.

A workload *program* is an iterator of these actions; the guest kernel
interprets them one at a time. ``Compute`` is the only action that
consumes simulated CPU time by itself — synchronization actions resolve
instantly into either progress, sleeping, or spinning.
"""


class Action:
    """Base class for program actions."""

    __slots__ = ()


class Compute(Action):
    """Burn ``duration_ns`` of CPU time."""

    __slots__ = ('duration_ns',)

    def __init__(self, duration_ns):
        if duration_ns < 0:
            raise ValueError('compute duration must be >= 0')
        self.duration_ns = int(duration_ns)

    def __repr__(self):
        return 'Compute(%d)' % self.duration_ns


class Acquire(Action):
    """Acquire a lock (blocking mutex or spinlock, per the lock)."""

    __slots__ = ('lock',)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return 'Acquire(%s)' % self.lock.name


class Release(Action):
    """Release a lock previously acquired."""

    __slots__ = ('lock',)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return 'Release(%s)' % self.lock.name


class BarrierWait(Action):
    """Wait at a barrier until all parties arrive."""

    __slots__ = ('barrier',)

    def __init__(self, barrier):
        self.barrier = barrier

    def __repr__(self):
        return 'BarrierWait(%s)' % self.barrier.name


class QueuePut(Action):
    """Put one item into a bounded queue (blocks when full)."""

    __slots__ = ('queue', 'item')

    def __init__(self, queue, item=None):
        self.queue = queue
        self.item = item

    def __repr__(self):
        return 'QueuePut(%s)' % self.queue.name


class QueueGet(Action):
    """Take one item from a bounded queue (blocks when empty)."""

    __slots__ = ('queue',)

    def __init__(self, queue):
        self.queue = queue

    def __repr__(self):
        return 'QueueGet(%s)' % self.queue.name


class Sleep(Action):
    """Sleep for ``duration_ns`` of wall-clock (simulated) time."""

    __slots__ = ('duration_ns',)

    def __init__(self, duration_ns):
        if duration_ns <= 0:
            raise ValueError('sleep duration must be > 0')
        self.duration_ns = int(duration_ns)

    def __repr__(self):
        return 'Sleep(%d)' % self.duration_ns


class Mark(Action):
    """Invoke ``callback(task, now_ns)`` — zero-cost instrumentation
    point used by workloads to timestamp request boundaries."""

    __slots__ = ('callback',)

    def __init__(self, callback):
        self.callback = callback

    def __repr__(self):
        return 'Mark(%s)' % getattr(self.callback, '__name__', 'fn')


class YieldCpu(Action):
    """Voluntarily yield the CPU (sched_yield)."""

    __slots__ = ()

    def __repr__(self):
        return 'YieldCpu()'


class AcquireRead(Action):
    """Take a reader-writer lock for shared (read) access."""

    __slots__ = ('lock',)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return 'AcquireRead(%s)' % self.lock.name


class AcquireWrite(Action):
    """Take a reader-writer lock for exclusive (write) access."""

    __slots__ = ('lock',)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return 'AcquireWrite(%s)' % self.lock.name


class ReleaseRead(Action):
    """Drop shared access to a reader-writer lock."""

    __slots__ = ('lock',)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return 'ReleaseRead(%s)' % self.lock.name


class ReleaseWrite(Action):
    """Drop exclusive access to a reader-writer lock."""

    __slots__ = ('lock',)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self):
        return 'ReleaseWrite(%s)' % self.lock.name
