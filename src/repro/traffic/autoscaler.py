"""SLO-burn-driven autoscaler for serving replicas.

Runs as a periodic daemon in the style of
:class:`~repro.cluster.cluster.RebalanceDaemon`, but watches the
*service* rather than the hosts: the signal is the
:class:`~repro.traffic.slo.SloTracker`'s recent error-budget burn
rate. Burn above ``high_burn`` means violations are arriving faster
than the budget tolerates — add a replica through the cluster's
normal admission + placement path. Burn below ``low_burn`` with the
fleet above its floor means capacity is idle — retire the most
recently added autoscaled replica (LIFO, so the hand-placed baseline
fleet is never touched).

Hysteresis comes from three guards: the ``high_burn``/``low_burn``
gap itself, a ``cooldown_ns`` dead time after every scale action, and
LIFO victim selection. A load step that oscillates around the target
therefore produces one scale-up and (after the load drops and the
cooldown lapses) one scale-down, not a flap storm — the no-flap test
pins this.

Every decision is visible: ``scale.up`` / ``scale.down`` /
``scale.reject`` events in the structured event log, plus
``traffic.scale_*`` counters.
"""

from ..obs import eventlog
from ..simkernel.units import MS


class SloAutoscaler:
    """Adds/retires replicas as the SLO error budget burns."""

    def __init__(self, high_burn=1.0, low_burn=0.25,
                 check_period_ns=100 * MS, cooldown_ns=400 * MS,
                 min_replicas=1, max_replicas=8, burn_windows=5):
        if low_burn > high_burn:
            raise ValueError('low_burn must not exceed high_burn')
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError('need 1 <= min_replicas <= max_replicas')
        if check_period_ns <= 0 or cooldown_ns < 0:
            raise ValueError('periods must be positive')
        self.high_burn = high_burn
        self.low_burn = low_burn
        self.check_period_ns = check_period_ns
        self.cooldown_ns = cooldown_ns
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.burn_windows = burn_windows
        self.service = None
        self.scale_ups = 0
        self.scale_downs = 0
        self.rejects = 0
        self._last_action = None     # sim time of last scale action

    def bind(self, service):
        """Attach to a :class:`~repro.traffic.scenario.TrafficService`
        (anything exposing ``sim``/``tracker``/``events``,
        ``active_replicas()``, ``deploy_replica()``,
        ``pick_scaledown_victim()``, ``retire_replica()``)."""
        self.service = service

    def start(self):
        self.service.sim.after(self.check_period_ns, self._check)

    # ------------------------------------------------------------------
    # Decision loop
    # ------------------------------------------------------------------

    def _in_cooldown(self, now):
        return (self._last_action is not None
                and now - self._last_action < self.cooldown_ns)

    def _check(self):
        service = self.service
        sim = service.sim
        now = sim.now
        if not self._in_cooldown(now):
            burn = service.tracker.burn_rate(now, self.burn_windows)
            active = len(service.active_replicas())
            if burn > self.high_burn and active < self.max_replicas:
                self._scale_up(now, burn, active)
            elif burn < self.low_burn and active > self.min_replicas:
                self._scale_down(now, burn, active)
        sim.after(self.check_period_ns, self._check)

    def _scale_up(self, now, burn, active):
        service = self.service
        name, replica = service.deploy_replica()
        if replica is None:
            # Admission or placement said no — log it and retry next
            # period without consuming the cooldown: a rejected scale-up
            # changed nothing, so there is nothing to let settle.
            self.rejects += 1
            service.sim.trace.count('traffic.scale_rejected')
            self._event(now, eventlog.EVENT_SCALE_REJECT,
                        vm=name, burn=round(burn, 4))
            return
        self.scale_ups += 1
        self._last_action = now
        service.sim.trace.count('traffic.scale_ups')
        host = service.cluster.host_of(replica.vm)
        self._event(now, eventlog.EVENT_SCALE_UP, vm=name,
                    host=host.name if host is not None else None,
                    burn=round(burn, 4), replicas=active + 1)

    def _scale_down(self, now, burn, active):
        service = self.service
        victim = service.pick_scaledown_victim()
        if victim is None:
            return
        if not service.retire_replica(victim):
            # In flight (mid-migration) — try again next period.
            return
        self.scale_downs += 1
        self._last_action = now
        service.sim.trace.count('traffic.scale_downs')
        self._event(now, eventlog.EVENT_SCALE_DOWN, vm=victim.name,
                    burn=round(burn, 4), replicas=active - 1)

    def _event(self, now, kind, **detail):
        if self.service.events is not None:
            self.service.events.append(now, kind, **detail)

    def summary(self):
        return {
            'scale_ups': self.scale_ups,
            'scale_downs': self.scale_downs,
            'scale_rejects': self.rejects,
        }

    def __repr__(self):
        return '<SloAutoscaler up=%d down=%d reject=%d burn[%g,%g]>' % (
            self.scale_ups, self.scale_downs, self.rejects,
            self.low_burn, self.high_burn)
