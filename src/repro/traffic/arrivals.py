"""Deterministic open-loop arrival processes.

Every process is a *pure function of the seed*: gaps are drawn from
dedicated named RNG streams (the :class:`~repro.simkernel.rng.
RngRegistry` discipline the fault injector established), so adding a
traffic plane to a run never perturbs the draws any existing consumer
sees, and two same-seed runs produce byte-identical arrival sequences.

A process is stateless until :meth:`ArrivalProcess.gaps` is called with
a registry; the generator it returns yields integer inter-arrival gaps
(ns, >= 1) forever. :meth:`ArrivalProcess.times` materializes the first
``n`` absolute arrival times — the determinism tests compare those
lists byte-for-byte.
"""

from ..simkernel.units import MS, SEC


class ArrivalProcess:
    """Base arrival process: ``rate_rps`` mean requests per second."""

    kind = None

    def __init__(self, rate_rps, stream='traffic.arrivals'):
        if rate_rps <= 0:
            raise ValueError('rate_rps must be positive, got %r' % rate_rps)
        self.rate_rps = rate_rps
        self.stream = stream

    def gaps(self, rng):
        """Infinite generator of integer inter-arrival gaps (ns)."""
        raise NotImplementedError

    def times(self, rng, n):
        """The first ``n`` absolute arrival times (ns from t=0)."""
        out = []
        t = 0
        gen = self.gaps(rng)
        for __ in range(n):
            t += next(gen)
            out.append(t)
        return out

    def _draw_gap(self, rng, rate_rps):
        mean_gap = max(1, int(SEC / rate_rps))
        return rng.exponential_ns('%s.gap' % self.stream, mean_gap,
                                  cap_ns=mean_gap * 10)

    def __repr__(self):
        return '<%s %.0f rps stream=%s>' % (
            type(self).__name__, self.rate_rps, self.stream)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps at a constant rate."""

    kind = 'poisson'

    def gaps(self, rng):
        while True:
            yield self._draw_gap(rng, self.rate_rps)


class BurstyArrivals(ArrivalProcess):
    """MMPP-style bursty arrivals: a two-state Markov-modulated Poisson
    process alternating between a calm phase and a burst phase whose
    rate is ``burst_factor`` times higher. Phase dwell times are
    exponential with means chosen so the process spends
    ``burst_fraction`` of its time bursting and the long-run mean rate
    stays ``rate_rps``.
    """

    kind = 'bursty'

    def __init__(self, rate_rps, stream='traffic.arrivals',
                 burst_factor=4.0, burst_fraction=0.25,
                 cycle_ns=200 * MS):
        super().__init__(rate_rps, stream=stream)
        if burst_factor <= 1.0:
            raise ValueError('burst_factor must exceed 1.0')
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError('burst_fraction must be in (0, 1)')
        self.burst_factor = burst_factor
        self.burst_fraction = burst_fraction
        self.cycle_ns = cycle_ns
        # Long-run mean = calm*(1-f) + burst*f with burst = factor*calm.
        self.calm_rps = rate_rps / (1.0 - burst_fraction
                                    + burst_factor * burst_fraction)
        self.burst_rps = self.calm_rps * burst_factor

    def gaps(self, rng):
        dwell_stream = '%s.dwell' % self.stream
        bursting = False
        dwell_left = rng.exponential_ns(
            dwell_stream, int(self.cycle_ns * (1.0 - self.burst_fraction)))
        while True:
            rate = self.burst_rps if bursting else self.calm_rps
            gap = self._draw_gap(rng, rate)
            yield gap
            dwell_left -= gap
            if dwell_left <= 0:
                bursting = not bursting
                fraction = (self.burst_fraction if bursting
                            else 1.0 - self.burst_fraction)
                dwell_left = rng.exponential_ns(
                    dwell_stream, max(1, int(self.cycle_ns * fraction)))


class DiurnalArrivals(ArrivalProcess):
    """Piecewise diurnal ramp: the rate steps through ``ramp``
    multipliers of ``rate_rps`` over one ``period_ns`` cycle (a whole
    day compressed to simulation scale), then repeats. Gaps within a
    segment are exponential at the segment's rate.
    """

    kind = 'diurnal'

    def __init__(self, rate_rps, stream='traffic.arrivals',
                 period_ns=800 * MS, ramp=(0.4, 0.9, 1.6, 1.1)):
        super().__init__(rate_rps, stream=stream)
        if not ramp or any(m <= 0 for m in ramp):
            raise ValueError('ramp needs positive multipliers')
        if period_ns < len(ramp):
            raise ValueError('period_ns too short for %d segments'
                             % len(ramp))
        self.period_ns = period_ns
        self.ramp = tuple(ramp)

    def rate_at(self, t_ns):
        """The instantaneous target rate at offset ``t_ns``."""
        segment_ns = self.period_ns // len(self.ramp)
        segment = (t_ns % self.period_ns) // segment_ns
        return self.rate_rps * self.ramp[min(segment, len(self.ramp) - 1)]

    def gaps(self, rng):
        t = 0
        while True:
            gap = self._draw_gap(rng, self.rate_at(t))
            t += gap
            yield gap


ARRIVALS = {
    PoissonArrivals.kind: PoissonArrivals,
    BurstyArrivals.kind: BurstyArrivals,
    DiurnalArrivals.kind: DiurnalArrivals,
}

#: The ``--arrivals`` vocabulary, in presentation order.
ARRIVAL_KINDS = tuple(ARRIVALS)


def make_arrivals(kind, rate_rps, stream='traffic.arrivals', **kwargs):
    """Build the arrival process named ``kind`` (an already-built
    process passes through unchanged)."""
    if isinstance(kind, ArrivalProcess):
        return kind
    try:
        factory = ARRIVALS[kind]
    except KeyError:
        raise ValueError('unknown arrival process %r (want one of %s)'
                         % (kind, ', '.join(ARRIVAL_KINDS)))
    return factory(rate_rps, stream=stream, **kwargs)
