"""Open-loop traffic & serving plane (rank above the cluster layer).

The evaluation's classic server workloads are closed-loop: each
request thread issues the next request only after the previous one
completes, so scheduler stalls slow the *offered load* down along with
the service — queueing delay, the component interference actually
inflates, never shows up. This package drives the cluster open-loop:

* :mod:`~repro.traffic.arrivals` — seed-pure arrival processes
  (Poisson, MMPP-style bursty, piecewise diurnal ramp);
* :mod:`~repro.traffic.serving` — per-VM bounded-queue replicas with
  separate queueing-delay and end-to-end latency accounting plus load
  shedding;
* :mod:`~repro.traffic.slo` — windowed SLO attainment and error-budget
  burn from the latency stream;
* :mod:`~repro.traffic.router` — spreads one arrival stream across VM
  replicas on multiple hosts (round-robin / least-queue /
  interference-aware), rerouting around migrations and host failures;
* :mod:`~repro.traffic.autoscaler` — an SLO-burn-driven daemon that
  adds and retires replicas through the cluster's admission +
  placement path, with hysteresis and cooldown;
* :mod:`~repro.traffic.scenario` — :func:`run_traffic`, the entry
  point the ``traffic-slo`` figure and ``TrafficSpec`` execute.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from .autoscaler import SloAutoscaler
from .router import ROUTER_POLICIES, RequestRouter
from .scenario import TrafficRunResult, TrafficService, run_traffic
from .serving import OpenLoopServerWorkload, ReplicaServer
from .slo import SloPolicy, SloTracker

__all__ = [
    'ARRIVAL_KINDS',
    'ArrivalProcess',
    'BurstyArrivals',
    'DiurnalArrivals',
    'OpenLoopServerWorkload',
    'PoissonArrivals',
    'ROUTER_POLICIES',
    'ReplicaServer',
    'RequestRouter',
    'SloAutoscaler',
    'SloPolicy',
    'SloTracker',
    'TrafficRunResult',
    'TrafficService',
    'make_arrivals',
    'run_traffic',
]
