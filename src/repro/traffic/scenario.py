"""The ``traffic-slo`` scenario: open-loop serving over the cluster.

Same consolidation topology as :func:`repro.cluster.run_consolidation`
— batch hog VMs land first, then the serving fleet — but the serving
side is driven by the traffic plane: one deterministic arrival process
fans out through a :class:`~repro.traffic.router.RequestRouter` into
bounded-queue replicas (:class:`~repro.traffic.serving.ReplicaServer`)
booted as ``workload='none'`` VMs, with an
:class:`~repro.traffic.slo.SloTracker` folding every completion and
shed into attainment/burn accounting and (optionally) an
:class:`~repro.traffic.autoscaler.SloAutoscaler` growing and shrinking
the fleet through the cluster's admission + placement path.

``open_loop=False`` runs the *same* topology with classic closed-loop
server threads instead — the comparison the figure draws: closed-loop
measurements let interference hide in the throttled offered load,
open-loop measurements surface it as queueing delay and SLO burn.
"""

from ..faults import FaultPlan, parse_fault_plan
from ..metrics import LatencyRecorder
from ..obs.exporters import write_chrome_trace
from ..obs.exposition import write_exposition
from ..simkernel import Simulator
from ..simkernel.units import MS, SEC
from ..cluster.cluster import (Cluster, RebalanceDaemon, VmRequest,
                               WORKLOAD_NONE)
from ..cluster.host import HOST_STRATEGIES, HostSpec
from .arrivals import make_arrivals
from .autoscaler import SloAutoscaler
from .router import RequestRouter
from .serving import ReplicaServer
from .slo import SloPolicy, SloTracker

# Trace-counter prefixes surfaced in TrafficRunResult.counters: the
# cluster/fault ledger plus the traffic plane's own counters (sheds,
# reroutes, scale actions).
TRAFFIC_COUNTER_PREFIXES = ('cluster.', 'faults.', 'traffic.')


class TrafficService:
    """The serving fleet: replicas + router + SLO tracker.

    Owns replica lifecycle — :meth:`deploy_replica` books a
    ``workload='none'`` VM through the cluster's admission + placement
    path and installs a :class:`ReplicaServer` on its guest kernel;
    :meth:`retire_replica` takes it back out through
    :meth:`~repro.cluster.cluster.Cluster.retire_vm`. The autoscaler
    binds to this object (see :meth:`SloAutoscaler.bind`).
    """

    def __init__(self, sim, cluster, policy=None, router_policy='least_queue',
                 replica_vcpus=2, irs=False, service_ns=2 * MS, jitter=0.3,
                 queue_capacity=256, working_set_mb=64, name_prefix='srv'):
        self.sim = sim
        self.cluster = cluster
        self.events = cluster.events
        self.policy = policy or SloPolicy()
        self.tracker = SloTracker(self.policy, registry=sim.trace.metrics)
        self.router = RequestRouter(sim, cluster, policy=router_policy,
                                    events=self.events)
        self.replica_vcpus = replica_vcpus
        self.irs = irs
        self.service_ns = service_ns
        self.jitter = jitter
        self.queue_capacity = queue_capacity
        self.working_set_mb = working_set_mb
        self.name_prefix = name_prefix
        self.replicas = []           # every replica ever deployed
        self.injected = 0
        self._autoscaled = []        # LIFO stack of autoscaled replicas
        self._next_index = 0
        self._gaps = None

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------

    def deploy_replica(self, autoscaled=True):
        """Book one more serving VM through admission + placement and
        install a replica on it. Returns ``(name, replica)`` —
        ``replica`` is None when the cluster rejected the request."""
        name = '%s%d' % (self.name_prefix, self._next_index)
        self._next_index += 1
        request = VmRequest(name, n_vcpus=self.replica_vcpus,
                            workload=WORKLOAD_NONE, irs=self.irs,
                            working_set_mb=self.working_set_mb)
        host = self.cluster.submit(request)
        if host is None:
            return name, None
        vm = self.cluster.vm_named(name)
        kernel = self.cluster.kernels[vm]
        replica = ReplicaServer(
            self.sim, kernel, name=name, service_ns=self.service_ns,
            jitter=self.jitter, queue_capacity=self.queue_capacity,
            slo=self.tracker, events=self.events).install()
        self.replicas.append(replica)
        if autoscaled:
            self._autoscaled.append(replica)
        self.router.add_replica(replica)
        return name, replica

    def retire_replica(self, replica):
        """Scale-down path: retire the VM through the cluster, then
        shed the replica's backlog. False while the VM is in flight —
        the caller retries on a later tick."""
        if not self.cluster.retire_vm(replica.vm):
            return False
        replica.retire()
        return True

    def active_replicas(self):
        return [r for r in self.replicas if not r.retired]

    def pick_scaledown_victim(self):
        """Newest live autoscaled replica (LIFO) — the hand-placed
        baseline fleet is never a scale-down victim."""
        for replica in reversed(self._autoscaled):
            if not replica.retired:
                return replica
        return None

    # ------------------------------------------------------------------
    # Traffic dispatch (sim-event context)
    # ------------------------------------------------------------------

    def start_traffic(self, arrivals):
        """Arm the open-loop dispatcher: the first arrival fires one
        gap from now, and every arrival schedules the next."""
        self._gaps = arrivals.gaps(self.sim.rng)
        self.sim.after(next(self._gaps), self._arrive)

    def _arrive(self):
        self.injected += 1
        now = self.sim.now
        if self.router.route(now) is None:
            # Nothing routable (fleet not up yet, or every replica is
            # mid-migration/orphaned): an open-loop client times out —
            # that is an SLO violation, not a pause in offered load.
            self.tracker.observe_shed(now)
        self.sim.after(next(self._gaps), self._arrive)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def reset_measurement(self):
        """Restart the measured window (after warmup): clear the SLO
        ledger, every replica's recorders, and the dispatch counters."""
        self.tracker.reset()
        for replica in self.replicas:
            if not replica.retired:
                replica.reset_measurement()
        self.injected = 0
        self.router.routed = 0
        self.router.unroutable = 0

    def merged_latency(self):
        merged = LatencyRecorder('traffic.latency')
        for replica in self.replicas:
            merged.extend(replica.latency.samples)
        return merged

    def merged_queue_wait(self):
        merged = LatencyRecorder('traffic.qwait')
        for replica in self.replicas:
            merged.extend(replica.queue_wait.samples)
        return merged

    def throughput(self, now=None):
        return sum(r.throughput(now) for r in self.active_replicas())

    def shed_total(self):
        return sum(r.shed for r in self.replicas)

    def completed_total(self):
        return sum(r.completed for r in self.replicas)


class TrafficRunResult:
    """Everything the ``traffic-slo`` figure needs from one run."""

    def __init__(self, strategy, placement, seed, open_loop, arrivals,
                 rate_rps, router, throughput, latency_summary,
                 queue_wait_summary, slo, injected, completed, shed,
                 unroutable, replicas, autoscaler=None, migrations=0,
                 rejections=0, rejections_dropped=0, faults=None,
                 counters=None, host_crashes=0, events=None,
                 event_counts=None, span_drops=0, trace_drops=0):
        self.strategy = strategy
        self.placement = placement
        self.seed = seed
        self.open_loop = open_loop
        self.arrivals = arrivals
        self.rate_rps = rate_rps
        self.router = router
        self.throughput = throughput
        self.latency_summary = latency_summary
        self.queue_wait_summary = queue_wait_summary
        self.slo = slo
        self.injected = injected
        self.completed = completed
        self.shed = shed
        self.unroutable = unroutable
        self.replicas = replicas
        self.autoscaler = autoscaler
        self.migrations = migrations
        self.rejections = rejections
        self.rejections_dropped = rejections_dropped
        self.faults = faults
        self.counters = dict(counters or {})
        self.host_crashes = host_crashes
        self.events = list(events or [])
        self.event_counts = dict(event_counts or {})
        self.span_drops = span_drops
        self.trace_drops = trace_drops

    def summary(self):
        """JSON-simple dict (what the pipeline caches)."""
        return {
            'strategy': self.strategy,
            'placement': self.placement,
            'seed': self.seed,
            'open_loop': self.open_loop,
            'arrivals': self.arrivals,
            'rate_rps': self.rate_rps,
            'router': self.router,
            'throughput': self.throughput,
            'latency': self.latency_summary,
            'queue_wait': self.queue_wait_summary,
            'slo': self.slo,
            'injected': self.injected,
            'completed': self.completed,
            'shed': self.shed,
            'unroutable': self.unroutable,
            'replicas': self.replicas,
            'autoscaler': self.autoscaler,
            'migrations': self.migrations,
            'rejections': self.rejections,
            'rejections_dropped': self.rejections_dropped,
            'faults': self.faults,
            'counters': self.counters,
            'host_crashes': self.host_crashes,
            'events': self.events,
            'event_counts': self.event_counts,
            'span_drops': self.span_drops,
            'trace_drops': self.trace_drops,
        }


def _closed_loop_slo(merged, policy):
    """Shape a closed-loop run's latency samples like a tracker
    summary so both figure modes read the same keys. No dispatcher
    means nothing can shed, and burn is not defined without windows."""
    good = sum(1 for s in merged.samples if s <= policy.p99_target_ns)
    total = len(merged.samples)
    attainment = good / total if total else 1.0
    return {
        'requests': total,
        'good': good,
        'slow': total - good,
        'shed': 0,
        'attainment': round(attainment, 6),
        'error_rate': 0.0,
        'burn_rate': 0.0,
        'meets_slo': attainment >= policy.attainment_target,
        'p99_target_ns': policy.p99_target_ns,
    }


def run_traffic(strategy='vanilla', placement='first_fit', seed=0,
                open_loop=True, arrivals='poisson', rate_rps=4000,
                slo_p99_ms=20.0, router='least_queue', autoscale=False,
                max_replicas=8, n_hosts=4, host_pcpus=4,
                capacity_vcpus=6, n_hog_vms=4, hog_vcpus=2,
                n_server_vms=4, server_vcpus=4, service_ns=2 * MS,
                queue_capacity=256, rebalance=True, warmup_ns=600 * MS,
                measure_ns=1 * SEC, faults=None, observe=None):
    """Run one open-loop serving experiment and return a
    :class:`TrafficRunResult`.

    Topology: a consolidated cluster where every host already runs a
    batch hog tenant when its serving replica lands — hog and replica
    submissions interleave, so first-fit pairs each replica with a hog
    (the per-host capacity default of 6 vCPUs on 4 pCPUs makes each
    pair oversubscribed). Round-robin vCPU pinning then gives the
    replica *partial* pCPU overlap with its hog: some of its vCPUs get
    preempted while others run free — exactly the asymmetric-steal
    regime where scheduler activations pay off, and the cluster analogue
    of the paper's single-host consolidation setting.

    The fleet serves a router-dispatched open-loop arrival stream
    (``arrivals`` names a process in
    :data:`repro.traffic.arrivals.ARRIVALS`, or pass a built
    :class:`~repro.traffic.arrivals.ArrivalProcess`). With
    ``open_loop=False`` the same VMs instead run closed-loop request
    threads (the classic measurement this scenario exists to indict).
    ``autoscale=True`` arms the :class:`SloAutoscaler` with the
    baseline fleet as its floor and ``max_replicas`` as its ceiling.
    """
    if strategy not in HOST_STRATEGIES:
        raise ValueError('unknown strategy %r' % strategy)
    # Lazy import, same direction rule as cluster.scenario: the
    # experiments layer reaches this module only at call time.
    from ..experiments.harness import (ObservabilityConfig,
                                       default_observability)
    obs_config = observe if observe is not None else default_observability()
    if obs_config is True:
        obs_config = ObservabilityConfig()
    fault_plan = None
    fault_name = None
    if faults is not None:
        fault_plan = (faults if isinstance(faults, FaultPlan)
                      else parse_fault_plan(faults))
        fault_name = fault_plan.name if fault_plan is not None else None
    sim = Simulator(seed=seed)
    if obs_config is not None and obs_config.spans:
        sim.trace.spans.enabled = True
    specs = [HostSpec('host%d' % i, n_pcpus=host_pcpus, strategy=strategy,
                      capacity_vcpus=capacity_vcpus)
             for i in range(n_hosts)]
    daemon = RebalanceDaemon() if rebalance else None
    cluster = Cluster(sim, specs, policy=placement, rebalance=daemon,
                      fault_plan=fault_plan)

    # Interleaved arrival: each hog lands just before its replica, so
    # first-fit pairs them on the same (capacity-limited) host and the
    # fleet shares every host with a batch tenant.
    for i in range(n_hog_vms):
        request = VmRequest('hog%d' % i, n_vcpus=hog_vcpus,
                            workload='hogs', working_set_mb=256)
        sim.at(10 * MS + i * 40 * MS, cluster.submit, request)

    is_irs = strategy == 'irs'
    server_t0 = 30 * MS
    traffic_t0 = 40 * MS + max(n_hog_vms, n_server_vms) * 40 * MS
    policy = SloPolicy(p99_target_ns=int(slo_p99_ms * MS))
    service = None
    autoscaler = None
    closed_workloads = []

    if open_loop:
        service = TrafficService(
            sim, cluster, policy=policy, router_policy=router,
            replica_vcpus=server_vcpus, irs=is_irs, service_ns=service_ns,
            queue_capacity=queue_capacity)
        for i in range(n_server_vms):
            sim.at(server_t0 + i * 40 * MS, service.deploy_replica, False)
        process = make_arrivals(arrivals, rate_rps, stream='traffic.arrivals')
        sim.at(traffic_t0, service.start_traffic, process)
        if autoscale:
            autoscaler = SloAutoscaler(min_replicas=n_server_vms,
                                       max_replicas=max_replicas)
            autoscaler.bind(service)
            sim.at(traffic_t0, autoscaler.start)
    else:
        # Closed loop: same VMs, classic self-throttling request
        # threads — one per vCPU, no queue, no shedding.
        from ..workloads.server import ServerWorkload

        def _boot_closed(index):
            name = 'srv%d' % index
            request = VmRequest(name, n_vcpus=server_vcpus,
                                workload=WORKLOAD_NONE, irs=is_irs,
                                working_set_mb=64)
            if cluster.submit(request) is None:
                return
            kernel = cluster.kernels[cluster.vm_named(name)]
            workload = ServerWorkload(sim, kernel, n_threads=server_vcpus,
                                      service_ns=service_ns, jitter=0.3,
                                      name=name).install()
            closed_workloads.append(workload)

        for i in range(n_server_vms):
            sim.at(server_t0 + i * 40 * MS, _boot_closed, i)

    cluster.start()
    sim.run_until(warmup_ns)
    if open_loop:
        service.reset_measurement()
    else:
        for workload in closed_workloads:
            workload.latency.reset()
            workload.completed = 0
            workload.started_at = sim.now
    sim.run_until(warmup_ns + measure_ns)

    if open_loop:
        merged = service.merged_latency()
        queue_wait = service.merged_queue_wait()
        slo_summary = service.tracker.snapshot(sim.now)
        throughput = service.throughput()
        injected = service.injected
        completed = service.completed_total()
        shed = service.shed_total()
        unroutable = service.router.unroutable
        n_replicas = len(service.active_replicas())
    else:
        merged = LatencyRecorder('traffic.latency')
        throughput = 0.0
        for workload in closed_workloads:
            merged.extend(workload.latency.samples)
            throughput += workload.throughput()
        queue_wait = LatencyRecorder('traffic.qwait')
        slo_summary = _closed_loop_slo(merged, policy)
        injected = completed = len(merged.samples)
        shed = unroutable = 0
        n_replicas = len(closed_workloads)

    counters = {name: count
                for name, count in sorted(sim.trace.counters.items())
                if name.startswith(TRAFFIC_COUNTER_PREFIXES)}
    if obs_config is not None:
        if obs_config.trace_out:
            write_chrome_trace(obs_config.trace_out,
                               spans=sim.trace.spans, now_ns=sim.now)
        if obs_config.events_out:
            cluster.events.write_jsonl(obs_config.events_out)
        if obs_config.metrics_out:
            write_exposition(obs_config.metrics_out, sim.trace.metrics)
    return TrafficRunResult(
        strategy=strategy,
        placement=placement,
        seed=seed,
        open_loop=open_loop,
        arrivals=getattr(arrivals, 'kind', arrivals),
        rate_rps=rate_rps,
        router=router if open_loop else None,
        throughput=throughput,
        latency_summary=merged.summary(),
        queue_wait_summary=queue_wait.summary(),
        slo=slo_summary,
        injected=injected,
        completed=completed,
        shed=shed,
        unroutable=unroutable,
        replicas=n_replicas,
        autoscaler=autoscaler.summary() if autoscaler is not None else None,
        migrations=len(cluster.migration.records),
        rejections=cluster.admission.rejected,
        rejections_dropped=cluster.admission.rejections_dropped,
        faults=fault_name,
        counters=counters,
        host_crashes=sum(host.crashes for host in cluster.hosts),
        events=cluster.events.to_dicts(),
        event_counts=cluster.events.counts(),
        span_drops=sim.trace.spans.dropped,
        trace_drops=sim.trace.counters.get('trace.dropped', 0),
    )
