"""Request routing: one arrival stream spread across VM replicas.

The router is the traffic plane's view of the cluster: it holds the
set of serving replicas, knows which of them are *routable* right now
(not retired, resident on some host — a replica mid-migration or on a
crashed host reports no resident host and drops out of rotation), and
picks a target for each arrival under one of three policies that
mirror the placement policies in :mod:`repro.cluster.placement`:

``round_robin``
    Cycle through routable replicas in name order.
``least_queue``
    Send to the replica with the shortest request queue (join the
    shortest queue — the classic load-balancing baseline).
``interference``
    Prefer replicas on the least-interfered host (by
    :meth:`~repro.cluster.host.Host.interference_score`), breaking
    ties by queue depth — the traffic-plane analogue of
    interference-aware placement.

Routability changes are visible: every replica that leaves or rejoins
the rotation gets a ``traffic.reroute`` event (reason ``'lost'`` /
``'restored'``), so host crashes, migrations, and recoveries show up
in the structured event log as traffic movements, not just cluster
state transitions.
"""

from ..obs import eventlog

#: The ``--router`` vocabulary, in presentation order.
ROUTER_POLICIES = ('round_robin', 'least_queue', 'interference')


class RequestRouter:
    """Spreads arrivals across :class:`~repro.traffic.serving.
    ReplicaServer` instances, skipping unroutable ones."""

    def __init__(self, sim, cluster, policy='least_queue', events=None):
        if policy not in ROUTER_POLICIES:
            raise ValueError('unknown router policy %r (want one of %s)'
                             % (policy, ', '.join(ROUTER_POLICIES)))
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.events = events
        self.replicas = []
        self.routed = 0
        self.unroutable = 0
        self._rr_cursor = 0
        self._known_routable = set()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_replica(self, replica):
        self.replicas.append(replica)
        self.replicas.sort(key=lambda r: r.name)

    def remove_replica(self, replica):
        if replica in self.replicas:
            self.replicas.remove(replica)
        self._known_routable.discard(replica.name)

    def is_routable(self, replica):
        """In rotation: live and resident on some host. ``host_of``
        returns None both mid-migration and after a host crash, so
        in-flight and orphaned replicas drop out until they land."""
        return (not replica.retired
                and self.cluster.host_of(replica.vm) is not None)

    def routable(self):
        current = [r for r in self.replicas if self.is_routable(r)]
        self._note_routable(current)
        return current

    def _note_routable(self, current):
        names = {r.name for r in current}
        if names == self._known_routable:
            return
        now = self.sim.now
        for name in sorted(self._known_routable - names):
            self.sim.trace.count('traffic.reroute')
            if self.events is not None:
                self.events.append(now, eventlog.EVENT_REROUTE,
                                   replica=name, reason='lost')
        for name in sorted(names - self._known_routable):
            # Initial appearance is not a reroute — only log replicas
            # coming *back* after an outage.
            if self.events is not None and self._known_routable:
                self.events.append(now, eventlog.EVENT_REROUTE,
                                   replica=name, reason='restored')
        self._known_routable = names

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, arrived_ns):
        """Deliver one arrival to the chosen replica. Returns the
        replica that accepted it, or None when nothing was routable
        (the caller accounts the loss)."""
        candidates = self.routable()
        if not candidates:
            self.unroutable += 1
            self.sim.trace.count('traffic.unroutable')
            return None
        target = self._pick(candidates)
        self.routed += 1
        target.enqueue(arrived_ns)
        return target

    def _pick(self, candidates):
        if self.policy == 'round_robin':
            target = candidates[self._rr_cursor % len(candidates)]
            self._rr_cursor += 1
            return target
        if self.policy == 'least_queue':
            return min(candidates,
                       key=lambda r: (r.queue_depth, r.name))
        # interference: least-interfered host first, then shortest
        # queue, then name for a deterministic total order.
        return min(candidates, key=lambda r: (
            self.cluster.host_of(r.vm).interference_score(),
            r.queue_depth, r.name))

    def __repr__(self):
        return '<RequestRouter %s replicas=%d routed=%d unroutable=%d>' % (
            self.policy, len(self.replicas), self.routed, self.unroutable)
