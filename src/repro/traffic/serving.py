"""Open-loop serving replicas: bounded queues fed at arrival time.

:class:`ReplicaServer` is the per-VM serving element: a bounded request
queue drained by guest worker tasks. The *dispatcher side* runs at
simulation level (:meth:`ReplicaServer.enqueue` is called from sim-event
context by the router or a standalone dispatcher), so offered load is
genuinely open-loop — arrivals keep coming no matter how stalled the
guest is, and a full queue sheds instead of applying backpressure.
Queueing delay and end-to-end latency are recorded *separately*
(:class:`~repro.metrics.latency.LatencyRecorder` each, plus the
log-bucketed ``req.queue`` / ``req.service`` histograms in the typed
registry): interference inflates the queueing component first, which is
exactly what the closed-loop workloads cannot show.

:class:`OpenLoopServerWorkload` is the single-VM assembly — one arrival
process driving one replica — used by tests and standalone runs; the
cluster-level assembly (router + many replicas) lives in
:mod:`repro.traffic.scenario`.
"""

from ..metrics.latency import LatencyRecorder
from ..obs import eventlog
from ..obs.phases import PHASE_REQ_QUEUE, PHASE_REQ_SERVICE
from ..simkernel.units import MS, SEC
from ..workloads.actions import Compute, QueueGet
from ..workloads.sync import BoundedQueue
from .arrivals import PoissonArrivals


class ReplicaServer:
    """One VM replica: bounded queue + guest worker tasks.

    ``slo`` (a :class:`~repro.traffic.slo.SloTracker`) receives every
    completion and shed; ``events`` (an
    :class:`~repro.obs.eventlog.EventLog`) receives rate-limited
    ``traffic.shed`` entries — at most one per ``shed_report_ns``,
    carrying the count since the previous one, so an overload burst
    cannot flood the ring.
    """

    def __init__(self, sim, kernel, name, n_workers=None,
                 service_ns=2 * MS, jitter=0.3, queue_capacity=256,
                 slo=None, events=None, shed_report_ns=100 * MS):
        self.sim = sim
        self.kernel = kernel
        self.vm = kernel.vm
        self.name = name
        self.n_workers = n_workers or len(kernel.gcpus)
        self.service_ns = service_ns
        self.jitter = jitter
        self.slo = slo
        self.events = events
        self.shed_report_ns = shed_report_ns
        self.queue = BoundedQueue(queue_capacity, name='%s.q' % name)
        self.queue_wait = LatencyRecorder('%s.qwait' % name)
        self.latency = LatencyRecorder('%s.latency' % name)
        self.enqueued = 0
        self.completed = 0
        self.shed = 0
        self.retired = False
        self.started_at = None
        self.tasks = []
        self._shed_pending = 0
        self._last_shed_report = None
        registry = sim.trace.metrics
        self._queue_hist = registry.histogram(PHASE_REQ_QUEUE)
        self._service_hist = registry.histogram(PHASE_REQ_SERVICE)

    def install(self):
        self.started_at = self.sim.now
        for i in range(self.n_workers):
            worker = self.kernel.spawn(
                '%s.w%d' % (self.name, i), self._worker_loop(i),
                gcpu_index=i % len(self.kernel.gcpus))
            self.tasks.append(worker)
        return self

    @property
    def queue_depth(self):
        return len(self.queue.items)

    # ------------------------------------------------------------------
    # Dispatcher side (sim-event context, not a guest task)
    # ------------------------------------------------------------------

    def enqueue(self, arrived_ns):
        """Inject one request at its arrival time. Hands the item
        straight to a blocked worker when one is waiting, queues it
        when there is room, sheds it otherwise. Returns True when the
        request was accepted."""
        if self.retired:
            self._shed_one()
            return False
        queue = self.queue
        if queue.get_waiters:
            # Mirror SyncEngine.do_queue_put's direct hand-off: put()
            # fills the consumer's mailbox, we clear its parked action
            # and wake it. wake_task is sim-event safe (timers use it).
            __, consumer = queue.put(None, arrived_ns)
            consumer.action = None
            self.kernel.wake_task(consumer)
        elif len(queue.items) < queue.capacity:
            queue.put(None, arrived_ns)
        else:
            self._shed_one()
            return False
        self.enqueued += 1
        return True

    def _shed_one(self):
        self.shed += 1
        self.sim.trace.count('traffic.shed')
        now = self.sim.now
        if self.slo is not None:
            self.slo.observe_shed(now)
        self._shed_pending += 1
        if self.events is not None and (
                self._last_shed_report is None
                or now - self._last_shed_report >= self.shed_report_ns):
            self.events.append(now, eventlog.EVENT_SHED,
                               replica=self.name,
                               dropped=self._shed_pending,
                               queue=len(self.queue.items))
            self._last_shed_report = now
            self._shed_pending = 0

    # ------------------------------------------------------------------
    # Guest side
    # ------------------------------------------------------------------

    def _worker_loop(self, index):
        stream = '%s.w%d' % (self.name, index)
        while True:
            arrived_at = yield QueueGet(self.queue)
            picked_at = self.sim.now
            self.queue_wait.record(picked_at - arrived_at)
            self._queue_hist.record(picked_at - arrived_at)
            yield Compute(self.sim.rng.jittered_ns(
                stream, self.service_ns, self.jitter))
            now = self.sim.now
            self.latency.record(now - arrived_at)
            self._service_hist.record(now - picked_at)
            self.completed += 1
            if self.slo is not None:
                self.slo.observe(now, now - arrived_at)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def retire(self):
        """Take this replica out of service. Requests still queued can
        never complete (the guest's vCPUs go offline with the VM), so
        they are shed — honest accounting beats losing them."""
        self.retired = True
        for __ in range(len(self.queue.items)):
            self._shed_one()
        self.queue.items.clear()

    def throughput(self, now=None):
        now = self.sim.now if now is None else now
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.completed / (elapsed / SEC)

    def reset_measurement(self):
        """Clear recorders and counters for steady-state measurement.
        In-queue requests stay — they are real backlog."""
        self.latency.reset()
        self.queue_wait.reset()
        self.enqueued = 0
        self.completed = 0
        self.shed = 0
        self.started_at = self.sim.now

    def __repr__(self):
        return '<ReplicaServer %s q=%d done=%d shed=%d%s>' % (
            self.name, self.queue_depth, self.completed, self.shed,
            ' retired' if self.retired else '')


class OpenLoopServerWorkload:
    """Single-VM open-loop serving: one arrival process, one replica.

    The dispatcher is a sim-level timer chain, not a guest task — the
    arrival clock never competes with the workers for a vCPU, unlike
    the guest-resident arrival loop in
    :class:`repro.workloads.server.OpenLoopServerWorkload` (kept for
    the cluster's built-in ``'server'`` VM workload).
    """

    def __init__(self, sim, kernel, arrivals=None, rate_rps=800,
                 name='openloop', slo=None, events=None,
                 **replica_kwargs):
        self.sim = sim
        self.arrivals = arrivals or PoissonArrivals(
            rate_rps, stream='traffic.%s' % name)
        self.replica = ReplicaServer(sim, kernel, name=name, slo=slo,
                                     events=events, **replica_kwargs)
        self.injected = 0
        self._gaps = None

    def install(self):
        self.replica.install()
        self._gaps = self.arrivals.gaps(self.sim.rng)
        self.sim.after(next(self._gaps), self._arrive)
        return self

    def _arrive(self):
        self.injected += 1
        self.replica.enqueue(self.sim.now)
        self.sim.after(next(self._gaps), self._arrive)

    # Convenience pass-throughs (tests read these off the workload).
    @property
    def latency(self):
        return self.replica.latency

    @property
    def queue_wait(self):
        return self.replica.queue_wait

    @property
    def completed(self):
        return self.replica.completed

    @property
    def shed(self):
        return self.replica.shed

    def throughput(self, now=None):
        return self.replica.throughput(now)

    def reset_measurement(self):
        self.injected = 0
        self.replica.reset_measurement()
