"""SLO accounting: windowed attainment and error-budget burn.

:class:`SloPolicy` declares the objective (a p99 latency target, an
attainment target, a max shed/error rate); :class:`SloTracker` folds
the live latency stream into fixed-width windows keyed by simulated
time and answers the two questions the serving plane asks:

* *attainment* — what fraction of requests met the target (shed
  requests count as violations: a dropped request is the worst latency
  of all);
* *burn rate* — how fast the error budget is being spent over the last
  few windows. Burn 1.0 means violations arrive exactly at the budgeted
  rate (``1 - attainment_target``); the autoscaler scales up above its
  high-burn threshold and back down below its low one.

The tracker is observation-driven — windows roll on the timestamps of
the ``observe`` calls, no timers — so it is exactly as deterministic as
the latency stream feeding it.
"""

from ..simkernel.units import MS


class SloPolicy:
    """The serving objective: latency target + budgets."""

    def __init__(self, p99_target_ns=20 * MS, attainment_target=0.99,
                 max_error_rate=0.01, window_ns=100 * MS):
        if p99_target_ns <= 0:
            raise ValueError('p99_target_ns must be positive')
        if not 0.0 < attainment_target < 1.0:
            raise ValueError('attainment_target must be in (0, 1)')
        if not 0.0 <= max_error_rate < 1.0:
            raise ValueError('max_error_rate must be in [0, 1)')
        if window_ns <= 0:
            raise ValueError('window_ns must be positive')
        self.p99_target_ns = p99_target_ns
        self.attainment_target = attainment_target
        self.max_error_rate = max_error_rate
        self.window_ns = window_ns

    @property
    def error_budget(self):
        """The violation fraction the attainment target tolerates."""
        return 1.0 - self.attainment_target

    def __repr__(self):
        return ('<SloPolicy p99<=%.1fms att>=%.2f err<=%.3f win=%dms>'
                % (self.p99_target_ns / MS, self.attainment_target,
                   self.max_error_rate, self.window_ns // MS))


class SloTracker:
    """Windowed SLO attainment + burn rate over a latency stream."""

    def __init__(self, policy, registry=None, max_windows=64):
        if max_windows < 1:
            raise ValueError('max_windows must be >= 1')
        self.policy = policy
        self.registry = registry
        self.max_windows = max_windows
        self.good = 0
        self.slow = 0
        self.sheds = 0
        self._windows = {}           # window start -> [good, bad]

    # ------------------------------------------------------------------
    # Write side (called by replicas and the router)
    # ------------------------------------------------------------------

    def observe(self, now, latency_ns):
        """Fold one completed request's end-to-end latency."""
        window = self._window(now)
        if latency_ns <= self.policy.p99_target_ns:
            self.good += 1
            window[0] += 1
        else:
            self.slow += 1
            window[1] += 1

    def observe_shed(self, now):
        """Fold one shed (or unroutable) request — a hard violation."""
        self.sheds += 1
        self._window(now)[1] += 1

    def _window(self, now):
        start = (now // self.policy.window_ns) * self.policy.window_ns
        window = self._windows.get(start)
        if window is None:
            window = [0, 0]
            self._windows[start] = window
            if len(self._windows) > self.max_windows:
                del self._windows[min(self._windows)]
        return window

    # ------------------------------------------------------------------
    # Read side (autoscaler, figure aggregation)
    # ------------------------------------------------------------------

    @property
    def total(self):
        return self.good + self.slow + self.sheds

    def attainment(self):
        """Overall fraction of requests meeting the target; sheds count
        against. 1.0 with no traffic (an idle service meets its SLO)."""
        total = self.total
        return self.good / total if total else 1.0

    def error_rate(self):
        """Fraction of requests shed outright."""
        total = self.total
        return self.sheds / total if total else 0.0

    def violation_rate(self, now, windows=5):
        """Violations / requests over the last ``windows`` window slots
        ending at ``now`` (empty slots contribute nothing)."""
        horizon = now - windows * self.policy.window_ns
        good = bad = 0
        for start, (window_good, window_bad) in self._windows.items():
            if start > horizon:
                good += window_good
                bad += window_bad
        total = good + bad
        return bad / total if total else 0.0

    def burn_rate(self, now, windows=5):
        """Recent violation rate in units of the error budget."""
        return self.violation_rate(now, windows) / self.policy.error_budget

    def meets_slo(self):
        """Did the whole measured stream meet the policy?"""
        return (self.attainment() >= self.policy.attainment_target
                and self.error_rate() <= self.policy.max_error_rate)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self):
        """Drop all accounting (steady-state measurement restart)."""
        self.good = 0
        self.slow = 0
        self.sheds = 0
        self._windows.clear()

    def snapshot(self, now):
        """Publish the current aggregates into the typed registry (so
        ``RunMetrics`` carries them) and return the summary dict."""
        summary = self.summary(now)
        if self.registry is not None:
            scope = self.registry.scoped('traffic.slo.')
            scope.gauge('good').set(self.good)
            scope.gauge('slow').set(self.slow)
            scope.gauge('shed').set(self.sheds)
            scope.gauge('attainment_ppm').set(
                int(summary['attainment'] * 1_000_000))
            scope.gauge('burn_ppm').set(
                int(min(summary['burn_rate'], 1000.0) * 1_000_000))
        return summary

    def summary(self, now):
        return {
            'requests': self.total,
            'good': self.good,
            'slow': self.slow,
            'shed': self.sheds,
            'attainment': round(self.attainment(), 6),
            'error_rate': round(self.error_rate(), 6),
            'burn_rate': round(self.burn_rate(now), 6),
            'meets_slo': self.meets_slo(),
            'p99_target_ns': self.policy.p99_target_ns,
        }

    def __repr__(self):
        return ('<SloTracker good=%d slow=%d shed=%d att=%.4f>'
                % (self.good, self.slow, self.sheds, self.attainment()))
