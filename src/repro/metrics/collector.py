"""Run-level measurement collection.

A :class:`RunMetrics` snapshot gathers, at the end of a simulated run,
the quantities every experiment reports: per-VM runstate breakdowns,
per-task CPU and migration counts, and machine-level utilization.

When a run was subjected to a fault campaign (:mod:`repro.faults`),
the snapshot also separates out the fault/degradation counters —
injections per kind, SA retries/suppressions, migrator recoveries,
sanitizer checks — under :attr:`RunMetrics.fault_counters` and
:attr:`RunMetrics.degradation_counters`.

The snapshot is backed by a typed
:class:`~repro.obs.histograms.MetricsRegistry`
(:attr:`RunMetrics.registry`): the tracer's raw counters are folded in
as typed counters next to the span-phase latency histograms, and all
counter views are prefix filters over the registry rather than ad-hoc
``Counter`` scraping.
"""

#: Trace-counter prefixes that belong to the fault plane (injections).
FAULT_COUNTER_PREFIXES = ('faults.',)

#: Trace-counter prefixes that belong to the defense layers: the SA
#: sender's retry/watchdog path, the migrator's requeue path, the
#: cluster fault-tolerance plane (crash recovery, parked VMs, migration
#: rollbacks, quarantines), and the runtime sanitizer.
DEGRADATION_COUNTER_PREFIXES = (
    'irs.sa_retries', 'irs.sa_suppressed', 'irs.sa_dup_acks',
    'irs.sa_health_', 'irs.migrator_abort', 'irs.migrator_retr',
    'irs.migrator_fail', 'irs.migrator_recover', 'irs.migrator_probe',
    'irs.migrator_stranded', 'cluster.', 'sanitizer.',
)


def registry_from_tracer(trace):
    """Frozen :class:`MetricsRegistry` for one finished run: the
    tracer's typed metrics (phase histograms, obs counters) plus its
    legacy raw counters folded in as typed counters."""
    registry = trace.metrics.snapshot()
    for name, value in trace.counters.items():
        registry.counter(name).inc(value)
    return registry


class VmMetrics:
    """Aggregate accounting for one VM."""

    def __init__(self, vm, now):
        run, steal, blocked = vm.total_runstate(now)
        self.name = vm.name
        self.n_vcpus = vm.n_vcpus
        self.run_ns = run
        self.steal_ns = steal
        self.blocked_ns = blocked

    def utilization(self, elapsed_ns):
        """Fraction of one pCPU-equivalent per vCPU actually used."""
        if elapsed_ns <= 0:
            return 0.0
        return self.run_ns / (elapsed_ns * self.n_vcpus)


class TaskMetrics:
    """Aggregate accounting for one task."""

    def __init__(self, task):
        self.name = task.name
        self.cpu_ns = task.cpu_ns
        self.migrations = task.migrations
        self.wakeups = task.wakeups
        self.started_at = task.started_at
        self.finished_at = task.finished_at

    @property
    def turnaround_ns(self):
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class RunMetrics:
    """End-of-run snapshot across the whole machine."""

    def __init__(self, machine, kernels, elapsed_ns):
        now = machine.sim.now
        self.elapsed_ns = elapsed_ns
        self.vms = {vm.name: VmMetrics(vm, now) for vm in machine.vms}
        self.tasks = {}
        for kernel in kernels:
            for task in kernel.tasks:
                self.tasks[task.name] = TaskMetrics(task)
        self.registry = registry_from_tracer(machine.sim.trace)
        self.counters = self.registry.counter_values()
        self.fault_counters = self.registry.counter_values(
            prefixes=FAULT_COUNTER_PREFIXES)
        self.degradation_counters = self.registry.counter_values(
            prefixes=DEGRADATION_COUNTER_PREFIXES)
        self.phase_latencies = self.registry.histogram_summaries()
        self.pcpu_busy_ns = [p.snapshot_busy(now) for p in machine.pcpus]

    def machine_utilization(self):
        """Mean busy fraction across pCPUs."""
        if self.elapsed_ns <= 0 or not self.pcpu_busy_ns:
            return 0.0
        total = sum(self.pcpu_busy_ns)
        return total / (self.elapsed_ns * len(self.pcpu_busy_ns))

    def vm_utilization(self, vm_name):
        return self.vms[vm_name].utilization(self.elapsed_ns)
