"""Latency recording and percentile summaries."""

import math


class LatencyRecorder:
    """Collects latency samples (ns) and answers percentile queries.

    Percentiles are served from a cached sorted view: the first query
    after a mutation sorts once, and every further query (``summary()``
    alone needs two) reuses the order. Open-loop serving runs push
    sample counts into the millions, where re-sorting per call is the
    dominant cost. Mutate through :meth:`record` / :meth:`extend` /
    :meth:`reset`; direct ``samples`` surgery is still detected by the
    length check in :meth:`_ordered`, but equal-length in-place edits
    are not — use the methods.
    """

    def __init__(self, name='latency'):
        self.name = name
        self.samples = []
        self._sorted = None

    def record(self, value_ns):
        if value_ns < 0:
            raise ValueError('negative latency %r' % value_ns)
        self.samples.append(value_ns)
        self._sorted = None

    def extend(self, values_ns):
        """Bulk-append samples (merging per-replica recorders)."""
        self.samples.extend(values_ns)
        self._sorted = None

    def reset(self):
        """Drop every sample (steady-state measurement restarts)."""
        self.samples.clear()
        self._sorted = None

    def __len__(self):
        return len(self.samples)

    @property
    def count(self):
        return len(self.samples)

    def mean(self):
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def _ordered(self):
        ordered = self._sorted
        if ordered is None or len(ordered) != len(self.samples):
            ordered = sorted(self.samples)
            self._sorted = ordered
        return ordered

    def percentile(self, p):
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError('percentile must be in [0, 100]')
        ordered = self._ordered()
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        if ordered[low] == ordered[high]:
            return float(ordered[low])
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def p50(self):
        return self.percentile(50)

    def p99(self):
        return self.percentile(99)

    def max(self):
        return float(self._ordered()[-1]) if self.samples else 0.0

    def summary(self):
        """Dict of the usual aggregates (ns)."""
        return {
            'count': self.count,
            'mean': self.mean(),
            'p50': self.p50(),
            'p99': self.p99(),
            'max': self.max(),
        }
