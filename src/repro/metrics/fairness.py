"""Fairness and efficiency metrics.

Mirrors the paper's reporting:

* **utilization relative to fair share** (Figure 2) — the CPU time a VM
  actually consumed over what proportional sharing entitles it to;
* **performance improvement** (Figures 5, 6, 8, 10–13) — speed of a
  strategy relative to vanilla, as a percentage;
* **weighted speedup** (Figures 7, 9) — mean of foreground and
  background speedups, the system-efficiency measure of Section 5.4.
"""


def utilization_vs_fair_share(vm, machine, elapsed_ns):
    """CPU consumed by ``vm`` over ``elapsed_ns``, normalized to its
    fair share (1.0 = exactly the entitlement)."""
    if elapsed_ns <= 0:
        raise ValueError('elapsed must be positive')
    run_ns, __, __ = vm.total_runstate(machine.sim.now)
    share_ns = machine.fair_share_ns(vm, elapsed_ns)
    if share_ns <= 0:
        return 0.0
    return run_ns / share_ns


def improvement_percent(vanilla_time_ns, strategy_time_ns):
    """Performance improvement of a strategy over vanilla, in percent.
    Positive = faster than vanilla (paper convention)."""
    if strategy_time_ns <= 0:
        raise ValueError('strategy time must be positive')
    return (vanilla_time_ns / strategy_time_ns - 1.0) * 100.0


def speedup(vanilla_metric, strategy_metric, higher_is_better=False):
    """Speedup of a strategy relative to vanilla (1.0 = parity).

    For times (lower better) pass the raw values; for rates (higher
    better) set ``higher_is_better``.
    """
    if higher_is_better:
        if vanilla_metric <= 0:
            raise ValueError('vanilla rate must be positive')
        return strategy_metric / vanilla_metric
    if strategy_metric <= 0:
        raise ValueError('strategy time must be positive')
    return vanilla_metric / strategy_metric


def weighted_speedup(foreground_speedup, background_speedup):
    """System efficiency: the (weighted) average speedup of the
    co-located applications, in percent (100 = vanilla parity)."""
    return (foreground_speedup + background_speedup) / 2.0 * 100.0
