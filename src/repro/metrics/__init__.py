"""Measurement: latency percentiles, fairness/efficiency metrics,
and run-level collection."""

from .collector import RunMetrics, TaskMetrics, VmMetrics
from .fairness import (
    improvement_percent,
    speedup,
    utilization_vs_fair_share,
    weighted_speedup,
)
from .latency import LatencyRecorder
from .timeline import TimelineRecorder, TimelineSample

__all__ = [
    'improvement_percent',
    'LatencyRecorder',
    'RunMetrics',
    'speedup',
    'TaskMetrics',
    'TimelineRecorder',
    'TimelineSample',
    'utilization_vs_fair_share',
    'VmMetrics',
    'weighted_speedup',
]
