"""Runstate timelines: record who ran where, render it readably.

A :class:`TimelineRecorder` samples vCPU runstates and guest current
tasks on a fixed period and renders an ASCII gantt — the quickest way
to *see* lock-holder preemption, scheduler activations, and CPU
stacking happen. Used by examples and by tests that assert on
occupancy patterns.
"""

from ..simkernel.units import MS

RUNSTATE_GLYPHS = {
    'running': '#',
    'runnable': '.',
    'blocked': ' ',
    'offline': '-',
}


class TimelineSample:
    """One sampling instant across the machine."""

    __slots__ = ('time', 'vcpu_states', 'vcpu_tasks', 'vcpu_pcpus')

    def __init__(self, time, vcpu_states, vcpu_tasks, vcpu_pcpus):
        self.time = time
        self.vcpu_states = vcpu_states      # vcpu name -> runstate
        self.vcpu_tasks = vcpu_tasks        # vcpu name -> task name/None
        self.vcpu_pcpus = vcpu_pcpus        # vcpu name -> pcpu index


class TimelineRecorder:
    """Samples the machine every ``period_ns`` while armed."""

    def __init__(self, sim, machine, period_ns=1 * MS, max_samples=100_000):
        self.sim = sim
        self.machine = machine
        self.period_ns = period_ns
        self.max_samples = max_samples
        self.samples = []
        self._armed = None

    def start(self):
        """Begin sampling (idempotent). The first sample fires at the
        current instant so the t=0 machine state is captured too."""
        if self._armed is None or not self._armed.pending:
            self._armed = self.sim.call_soon(self._sample)
        return self

    def stop(self):
        if self._armed is not None:
            self._armed.cancel()
            self._armed = None

    def _sample(self):
        states, tasks, pcpus = {}, {}, {}
        for vm in self.machine.vms:
            for vcpu in vm.vcpus:
                states[vcpu.name] = vcpu.runstate
                gcpu = vcpu.gcpu
                tasks[vcpu.name] = (gcpu.current.name
                                    if gcpu is not None
                                    and gcpu.current is not None else None)
                pcpus[vcpu.name] = vcpu.pcpu.index if vcpu.pcpu else None
        self.samples.append(TimelineSample(self.sim.now, states, tasks,
                                           pcpus))
        if len(self.samples) < self.max_samples:
            self._armed = self.sim.after(self.period_ns, self._sample)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def occupancy(self, vcpu_name):
        """Fraction of samples in each runstate for one vCPU."""
        counts = {}
        total = 0
        for sample in self.samples:
            state = sample.vcpu_states.get(vcpu_name)
            if state is None:
                continue
            counts[state] = counts.get(state, 0) + 1
            total += 1
        if total == 0:
            return {}
        return {state: n / total for state, n in counts.items()}

    def colocation_fraction(self, vm):
        """Fraction of samples in which two or more of ``vm``'s vCPUs
        share a pCPU (the CPU-stacking measure)."""
        if not self.samples:
            return 0.0
        names = [v.name for v in vm.vcpus]
        stacked = 0
        for sample in self.samples:
            homes = [sample.vcpu_pcpus.get(n) for n in names]
            homes = [h for h in homes if h is not None]
            if len(homes) != len(set(homes)):
                stacked += 1
        return stacked / len(self.samples)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, width=80, vcpus=None):
        """ASCII gantt: one row per vCPU, one column per bucket of
        samples. ``#`` running, ``.`` runnable (preempted), blank
        blocked."""
        if not self.samples:
            return '(no samples)'
        if vcpus is None:
            vcpus = [v.name for vm in self.machine.vms for v in vm.vcpus]
        per_bucket = max(1, len(self.samples) // width)
        lines = []
        name_width = max(len(n) for n in vcpus)
        for name in vcpus:
            cells = []
            for start in range(0, len(self.samples), per_bucket):
                bucket = self.samples[start:start + per_bucket]
                # Majority state within the bucket.
                tally = {}
                for sample in bucket:
                    state = sample.vcpu_states.get(name, 'offline')
                    tally[state] = tally.get(state, 0) + 1
                majority = max(tally, key=tally.get)
                cells.append(RUNSTATE_GLYPHS.get(majority, '?'))
            lines.append('%s |%s|' % (name.rjust(name_width),
                                      ''.join(cells)))
        span_ms = (self.samples[-1].time - self.samples[0].time) / MS
        lines.append('%s  %s' % (' ' * name_width,
                                 '(%.0f ms span; # running, . preempted, '
                                 'blank blocked)' % span_ms))
        return '\n'.join(lines)
