"""Deterministic fault-injection plane.

IRS assumes its notification path is perfectly reliable: a
``VIRQ_SA_UPCALL`` precedes every involuntary preemption, the guest's
acknowledgement beats the grace window, and the migrator's runstate
probes are truthful. This package makes each of those assumptions
breakable — deterministically, from named RNG streams that never
perturb the model's existing streams — so the degradation behaviour of
the protocol can be measured instead of assumed.

* :class:`FaultSpec` — one composable fault (kind + probability +
  filters);
* :class:`FaultInjector` — the runtime hooked into the hypervisor's
  channel / hypercall / migrator paths;
* :class:`FaultPlan` — a named, reusable collection of specs;
* :func:`get_campaign` / :data:`CAMPAIGNS` — the named fault campaigns
  runnable from the experiments CLI via ``--faults=NAME``.
"""

from .injector import (
    FAULT_KINDS,
    HOST_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HypercallFaultError,
)
from .scenarios import CAMPAIGNS, get_campaign, parse_fault_plan

__all__ = [
    'CAMPAIGNS',
    'FAULT_KINDS',
    'HOST_FAULT_KINDS',
    'FaultInjector',
    'FaultPlan',
    'FaultSpec',
    'HypercallFaultError',
    'get_campaign',
    'parse_fault_plan',
]
