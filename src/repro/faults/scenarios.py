"""Named fault campaigns, runnable from the experiments CLI.

A campaign is a :class:`~repro.faults.injector.FaultPlan` factory. Use
:func:`get_campaign` for one campaign or :func:`parse_fault_plan` for
the CLI syntax — a comma-separated list of campaign names, merged into
one plan::

    python -m repro.experiments fig5 --faults=sa-loss-30
    python -m repro.experiments fig5 --faults=sa-loss-10,stale-probes-20

Percentage-parameterized campaigns accept any integer suffix
(``sa-loss-37`` is a 37 % SA-upcall loss rate); the registry lists the
canonical 10/30/50 points the resilience benchmark uses.
"""

from ..hypervisor.channels import VIRQ_SA_UPCALL
from .injector import FaultPlan, FaultSpec

US = 1_000
MS = 1_000_000


def _pct(value):
    if not 0 <= value <= 100:
        raise ValueError('percentage must be in [0, 100], got %r' % value)
    return value / 100.0


def sa_loss(pct):
    """Lose ``pct`` % of SA upcalls outright (VIRQ_SA_UPCALL drops)."""
    return FaultPlan(
        'sa-loss-%d' % pct,
        [FaultSpec('virq_drop', _pct(pct), virq=VIRQ_SA_UPCALL)],
        '%d%% of SA upcalls are lost' % pct)


def sa_delay(pct, min_ns=50 * US, max_ns=500 * US):
    """Delay ``pct`` % of SA upcalls by 50-500 us (past the handler
    budget, flirting with the grace window)."""
    return FaultPlan(
        'sa-delay-%d' % pct,
        [FaultSpec('virq_delay', _pct(pct), virq=VIRQ_SA_UPCALL,
                   delay_min_ns=min_ns, delay_max_ns=max_ns)],
        '%d%% of SA upcalls delayed 50-500us' % pct)


def sa_dup(pct=20):
    """Duplicate ``pct`` % of SA upcalls (at-least-once delivery)."""
    return FaultPlan(
        'sa-dup-%d' % pct,
        [FaultSpec('virq_dup', _pct(pct), virq=VIRQ_SA_UPCALL)],
        '%d%% of SA upcalls delivered twice' % pct)


def sa_reorder(pct=20):
    """Hold back ``pct`` % of SA upcalls until the next vIRQ for the
    same vCPU (delivery reordering)."""
    return FaultPlan(
        'sa-reorder-%d' % pct,
        [FaultSpec('virq_reorder', _pct(pct), virq=VIRQ_SA_UPCALL)],
        '%d%% of SA upcalls reordered' % pct)


def virq_chaos(pct=10):
    """Drop, delay, duplicate, and reorder *all* vIRQ traffic at
    ``pct`` % each — the full unreliable-channel model."""
    p = _pct(pct)
    return FaultPlan(
        'virq-chaos-%d' % pct,
        [FaultSpec('virq_drop', p),
         FaultSpec('virq_delay', p, delay_min_ns=10 * US,
                   delay_max_ns=300 * US),
         FaultSpec('virq_dup', p),
         FaultSpec('virq_reorder', p)],
        'all vIRQs dropped/delayed/duplicated/reordered at %d%%' % pct)


def stale_probes(pct=30):
    """``pct`` % of VCPUOP_get_runstate probes return the previously
    observed runstate (migrator sees a stale world)."""
    return FaultPlan(
        'stale-probes-%d' % pct,
        [FaultSpec('runstate_stale', _pct(pct))],
        '%d%% of runstate probes are stale' % pct)


def probe_errors(pct=10):
    """``pct`` % of runstate probes fail with a hypercall error."""
    return FaultPlan(
        'probe-errors-%d' % pct,
        [FaultSpec('runstate_error', _pct(pct))],
        '%d%% of runstate probes error out' % pct)


def flaky_migrator(pct=20):
    """``pct`` % of IRS migrations die mid-move."""
    return FaultPlan(
        'flaky-migrator-%d' % pct,
        [FaultSpec('migrator_fail', _pct(pct))],
        '%d%% of IRS migrations fail mid-move' % pct)


def ack_loss(pct=20):
    """``pct`` % of SA acknowledgements are lost, forcing the sender's
    grace-window timeout (and retry path) to fire."""
    return FaultPlan(
        'ack-loss-%d' % pct,
        [FaultSpec('sa_ack_timeout', _pct(pct))],
        '%d%% of SA acks lost past the grace window' % pct)


def host_flap(pct=15, down_ns=250 * MS):
    """Cluster campaign: every fault-driver tick, each host has a
    ``pct`` % chance of crashing outright; it reboots empty after
    ``down_ns``. Orphaned VMs exercise the recovery controller."""
    return FaultPlan(
        'host-flap-%d' % pct,
        [FaultSpec('host_crash', _pct(pct), down_ns=down_ns)],
        '%d%% host-crash chance per tick, %dms reboot'
        % (pct, down_ns // MS))


def migration_storm(pct=40):
    """Cluster campaign: ``pct`` % of inter-host live migrations abort
    mid-transfer and roll back to the source (retry/backoff and the
    per-VM circuit breaker decide what happens next)."""
    return FaultPlan(
        'migration-storm-%d' % pct,
        [FaultSpec('migration_abort', _pct(pct))],
        '%d%% of live migrations abort mid-transfer' % pct)


def capacity_crunch(pct=8, down_ns=800 * MS):
    """Cluster campaign: infrequent but *long* host outages, so
    re-placement runs out of capacity and orphans end up parked until
    a host returns."""
    return FaultPlan(
        'capacity-crunch-%d' % pct,
        [FaultSpec('host_crash', _pct(pct), down_ns=down_ns)],
        '%d%% host-crash chance per tick, %dms outage (capacity '
        'exhaustion)' % (pct, down_ns // MS))


def host_degrade(pct=20, down_ns=300 * MS):
    """Cluster campaign: hosts flap between healthy and degraded; the
    watchdog quarantines degraded hosts and re-arms on recovery."""
    return FaultPlan(
        'host-degrade-%d' % pct,
        [FaultSpec('host_degrade', _pct(pct), down_ns=down_ns)],
        '%d%% host-degrade chance per tick, %dms to recover'
        % (pct, down_ns // MS))


def cluster_chaos():
    """Cluster torture campaign: crashes, degradations, migration
    aborts, and SA-upcall loss all at once — the seeded determinism
    gate and the sanitizer job run against this."""
    return FaultPlan(
        'cluster-chaos',
        [FaultSpec('host_crash', 0.06, down_ns=300 * MS),
         FaultSpec('host_degrade', 0.10, down_ns=250 * MS),
         FaultSpec('migration_abort', 0.30),
         FaultSpec('virq_drop', 0.10, virq=VIRQ_SA_UPCALL)],
        'host crashes + degradations + migration aborts + SA loss')


def full_chaos():
    """Everything at once, at moderate rates: the torture campaign the
    sanitizer job runs against."""
    return FaultPlan(
        'full-chaos',
        [FaultSpec('virq_drop', 0.15, virq=VIRQ_SA_UPCALL),
         FaultSpec('virq_delay', 0.10, delay_min_ns=20 * US,
                   delay_max_ns=400 * US),
         FaultSpec('virq_dup', 0.10),
         FaultSpec('virq_reorder', 0.10),
         FaultSpec('runstate_stale', 0.20),
         FaultSpec('runstate_error', 0.05),
         FaultSpec('migrator_fail', 0.10),
         FaultSpec('sa_ack_timeout', 0.10)],
        'combined loss/delay/dup/reorder/stale/error/migrator/ack faults')


#: Canonical campaign registry: name -> zero-argument factory.
CAMPAIGNS = {
    'sa-loss-10': lambda: sa_loss(10),
    'sa-loss-30': lambda: sa_loss(30),
    'sa-loss-50': lambda: sa_loss(50),
    'sa-delay-20': lambda: sa_delay(20),
    'sa-dup-20': lambda: sa_dup(20),
    'sa-reorder-20': lambda: sa_reorder(20),
    'virq-chaos-10': lambda: virq_chaos(10),
    'stale-probes-30': lambda: stale_probes(30),
    'probe-errors-10': lambda: probe_errors(10),
    'flaky-migrator-20': lambda: flaky_migrator(20),
    'ack-loss-20': lambda: ack_loss(20),
    'full-chaos': full_chaos,
    'host-flap-15': lambda: host_flap(15),
    'host-degrade-20': lambda: host_degrade(20),
    'migration-storm-40': lambda: migration_storm(40),
    'capacity-crunch-8': lambda: capacity_crunch(8),
    'cluster-chaos': cluster_chaos,
}

# name-prefix -> percentage-parameterized factory.
_PARAMETRIC = {
    'sa-loss': sa_loss,
    'sa-delay': sa_delay,
    'sa-dup': sa_dup,
    'sa-reorder': sa_reorder,
    'virq-chaos': virq_chaos,
    'stale-probes': stale_probes,
    'probe-errors': probe_errors,
    'flaky-migrator': flaky_migrator,
    'ack-loss': ack_loss,
    'host-flap': host_flap,
    'host-degrade': host_degrade,
    'migration-storm': migration_storm,
    'capacity-crunch': capacity_crunch,
}


def get_campaign(name):
    """Resolve one campaign name to a :class:`FaultPlan`.

    Exact registry names win; otherwise ``<prefix>-<pct>`` resolves
    through the parameterized factories (``sa-loss-37``). Underscores
    are accepted as dashes (``cluster_chaos`` == ``cluster-chaos``)."""
    name = name.replace('_', '-')
    if name in CAMPAIGNS:
        return CAMPAIGNS[name]()
    prefix, __, suffix = name.rpartition('-')
    if prefix in _PARAMETRIC and suffix.isdigit():
        return _PARAMETRIC[prefix](int(suffix))
    raise ValueError('unknown fault campaign %r; known: %s'
                     % (name, ', '.join(sorted(CAMPAIGNS))))


def parse_fault_plan(text):
    """Parse the CLI ``--faults`` value: a comma-separated list of
    campaign names merged into one plan. Returns None for ''/None."""
    if not text:
        return None
    plan = None
    for name in text.split(','):
        name = name.strip()
        if not name:
            continue
        campaign = get_campaign(name)
        plan = campaign if plan is None else plan.merged_with(campaign)
    return plan
