"""Composable fault specs and the injector that applies them.

Every fault decision is drawn from a dedicated named RNG stream
(``faults.<kind>.<index>``), so

* two runs with the same seed and plan inject the identical fault
  sequence (campaigns are reproducible and bisectable), and
* a run with **no** plan makes **no** draws — the existing model
  streams see exactly the sequence they saw before this package
  existed, keeping all fault-free figures bit-identical.

Fault kinds
-----------

========================  ====================================================
``virq_drop``             the vIRQ is lost (SA upcall loss when filtered to
                          ``VIRQ_SA_UPCALL``)
``virq_delay``            delivery is postponed by a uniform draw from
                          ``[delay_min_ns, delay_max_ns]``
``virq_dup``              the vIRQ is delivered twice back to back
``virq_reorder``          the vIRQ is held back and delivered *after* the
                          next vIRQ to the same vCPU (flushed after
                          ``flush_ns`` if none arrives)
``runstate_stale``        ``VCPUOP_get_runstate`` returns the previously
                          observed runstate instead of the current one
``runstate_error``        the probe raises :class:`HypercallFaultError`
``migrator_fail``         an IRS migration fails mid-move, stranding the
                          task in migrator limbo unless the degradation
                          path recovers it
``sa_ack_timeout``        the guest's SA acknowledgement is lost, so the
                          sender's grace window expires
``host_crash``            a cluster host dies outright: its VMs are orphaned
                          and the recovery controller re-places (or parks)
                          them; the host reboots empty after ``down_ns``
``host_degrade``          a cluster host's health degrades: the watchdog
                          quarantines it (no new placements, drained by the
                          rebalance daemon) until it recovers
``migration_abort``       an in-flight inter-host live migration dies
                          mid-transfer and must roll back to the source
========================  ====================================================

The host-level and migration kinds are consumed by the cluster layer
(:mod:`repro.cluster.recovery`), not by per-machine hooks: the cluster's
fault driver polls :meth:`FaultInjector.host_fault` on its tick and the
migration engine consults :meth:`FaultInjector.migration_aborted` when a
transfer starts. On a single-machine run they simply never fire.
"""

from collections import Counter


FAULT_KINDS = (
    'virq_drop',
    'virq_delay',
    'virq_dup',
    'virq_reorder',
    'runstate_stale',
    'runstate_error',
    'migrator_fail',
    'sa_ack_timeout',
    'host_crash',
    'host_degrade',
    'migration_abort',
)

_VIRQ_KINDS = ('virq_drop', 'virq_delay', 'virq_dup', 'virq_reorder')

#: Cluster-level kinds rolled by the cluster fault driver's tick.
HOST_FAULT_KINDS = ('host_crash', 'host_degrade')


class HypercallFaultError(Exception):
    """An injected hypercall failure (``runstate_error``)."""


class FaultSpec:
    """One composable fault: a kind, a firing probability, and filters.

    Specs are immutable templates; per-run firing counts live in the
    :class:`FaultInjector`, so one spec (or plan) can drive many runs.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        probability: chance in [0, 1] that the fault fires at each
            matching hook crossing.
        virq: restrict vIRQ faults to one interrupt line (e.g.
            ``'VIRQ_SA_UPCALL'``); None matches every vIRQ.
        vm: restrict to VMs whose name equals (or starts with) this
            prefix; None matches every VM.
        delay_min_ns / delay_max_ns: delivery delay band for
            ``virq_delay``.
        flush_ns: how long ``virq_reorder`` may hold a vIRQ before
            force-delivering it.
        limit: at most this many firings per run; None is unlimited.
        host: restrict host faults to hosts whose name equals (or
            starts with) this prefix; None matches every host.
        down_ns: for ``host_crash``/``host_degrade``, how long the host
            stays down (or degraded) before it recovers.
    """

    __slots__ = ('kind', 'probability', 'virq', 'vm', 'delay_min_ns',
                 'delay_max_ns', 'flush_ns', 'limit', 'host', 'down_ns')

    def __init__(self, kind, probability, virq=None, vm=None,
                 delay_min_ns=10_000, delay_max_ns=200_000,
                 flush_ns=100_000, limit=None, host=None,
                 down_ns=250_000_000):
        if kind not in FAULT_KINDS:
            raise ValueError('unknown fault kind %r (want one of %s)'
                             % (kind, ', '.join(FAULT_KINDS)))
        if not 0.0 <= probability <= 1.0:
            raise ValueError('probability must be in [0, 1], got %r'
                             % probability)
        if delay_min_ns > delay_max_ns:
            raise ValueError('delay band is empty: [%d, %d]'
                             % (delay_min_ns, delay_max_ns))
        if down_ns < 1:
            raise ValueError('down_ns must be positive, got %r' % down_ns)
        self.kind = kind
        self.probability = probability
        self.virq = virq
        self.vm = vm
        self.delay_min_ns = delay_min_ns
        self.delay_max_ns = delay_max_ns
        self.flush_ns = flush_ns
        self.limit = limit
        self.host = host
        self.down_ns = down_ns

    def matches_vm(self, vm):
        return self.vm is None or vm.name.startswith(self.vm)

    def matches_host(self, host_name):
        return self.host is None or host_name.startswith(self.host)

    def matches_virq(self, virq, vcpu):
        if self.virq is not None and virq != self.virq:
            return False
        return self.matches_vm(vcpu.vm)

    def __repr__(self):
        extras = []
        if self.virq:
            extras.append('virq=%s' % self.virq)
        if self.vm:
            extras.append('vm=%s' % self.vm)
        return '<FaultSpec %s p=%.2f%s>' % (
            self.kind, self.probability,
            ' ' + ' '.join(extras) if extras else '')


class FaultInjector:
    """Applies a list of :class:`FaultSpec` at the hypervisor's fault
    hook points. Attach to a machine with :meth:`attach`; a machine
    with no injector takes the exact pre-existing code paths."""

    def __init__(self, sim, specs=()):
        self.sim = sim
        self.specs = list(specs)
        self.machine = None
        #: injections per fault kind this run.
        self.injected = Counter()
        #: SA-protocol state of the target vCPU at the moment each
        #: SA-relevant fault struck (``(kind, state)`` -> count). Kept
        #: out of :meth:`summary` so report payloads are unchanged;
        #: read it directly when analysing degraded-edge coverage.
        self.sa_states_struck = Counter()
        self._fired = Counter()          # spec index -> firings
        self._stale_runstates = {}       # vcpu -> last truthful probe
        self._held_virqs = {}            # vcpu -> [(virq, flush_event)]

    def attach(self, machine):
        """Wire this injector into ``machine``. Returns self."""
        machine.attach_fault_injector(self)
        self.machine = machine
        return self

    # ------------------------------------------------------------------
    # Decision plumbing
    # ------------------------------------------------------------------

    def _roll(self, index, spec):
        """Deterministically decide whether ``spec`` fires now."""
        if spec.probability <= 0.0:
            return False
        if spec.limit is not None and self._fired[index] >= spec.limit:
            return False
        stream = self.sim.rng.stream('faults.%s.%d' % (spec.kind, index))
        if stream.random() >= spec.probability:
            return False
        self._fired[index] += 1
        return True

    def _record(self, spec):
        self.injected[spec.kind] += 1
        self.sim.trace.count('faults.%s' % spec.kind)
        self.sim.trace.count('faults.injected')

    def _record_sa_state(self, spec, vcpu):
        """Attribute an SA-relevant fault to the protocol state its
        target vCPU's round was in when the fault struck."""
        proto = getattr(vcpu, 'sa_protocol', None)
        state = proto.state if proto is not None else 'untracked'
        self.sa_states_struck[(spec.kind, state)] += 1

    # ------------------------------------------------------------------
    # Hook: vIRQ delivery (EventChannels.send_virq)
    # ------------------------------------------------------------------

    def on_virq(self, channels, vcpu, virq):
        """Deliver ``virq`` through the fault plane. At most one vIRQ
        fault applies per interrupt (first matching spec that fires)."""
        for index, spec in enumerate(self.specs):
            if spec.kind not in _VIRQ_KINDS:
                continue
            if not spec.matches_virq(virq, vcpu):
                continue
            if not self._roll(index, spec):
                continue
            self._record(spec)
            self._record_sa_state(spec, vcpu)
            if spec.kind == 'virq_drop':
                self._flush_held(channels, vcpu)
                return
            if spec.kind == 'virq_delay':
                delay = self.sim.rng.uniform_ns(
                    'faults.virq_delay.%d.jitter' % index,
                    spec.delay_min_ns, spec.delay_max_ns)
                self.sim.after(delay, channels.deliver, vcpu, virq)
                self._flush_held(channels, vcpu)
                return
            if spec.kind == 'virq_dup':
                channels.deliver(vcpu, virq)
                channels.deliver(vcpu, virq)
                self._flush_held(channels, vcpu)
                return
            # virq_reorder: hold this one back until the next vIRQ for
            # the same vCPU (or the flush timer) releases it.
            flush = self.sim.after(spec.flush_ns, self._flush_held,
                                   channels, vcpu)
            self._held_virqs.setdefault(vcpu, []).append((virq, flush))
            return
        channels.deliver(vcpu, virq)
        self._flush_held(channels, vcpu)

    def _flush_held(self, channels, vcpu):
        """Deliver every vIRQ held back for reordering on ``vcpu``."""
        held = self._held_virqs.pop(vcpu, None)
        if not held:
            return
        for virq, flush_event in held:
            flush_event.cancel()
            channels.deliver(vcpu, virq)

    # ------------------------------------------------------------------
    # Hook: runstate probes (HypercallInterface.vcpu_op_get_runstate)
    # ------------------------------------------------------------------

    def on_runstate_probe(self, vcpu, real_state):
        """Return the (possibly corrupted) probe result, or raise
        :class:`HypercallFaultError` for an erroring probe."""
        for index, spec in enumerate(self.specs):
            if spec.kind not in ('runstate_stale', 'runstate_error'):
                continue
            if not spec.matches_vm(vcpu.vm):
                continue
            if not self._roll(index, spec):
                continue
            self._record(spec)
            if spec.kind == 'runstate_error':
                raise HypercallFaultError(
                    'VCPUOP_get_runstate failed for %s' % vcpu.name)
            # Stale: report the previous observation and do NOT refresh
            # the cache, so a re-probe has a chance to see the truth.
            return self._stale_runstates.get(vcpu, real_state)
        self._stale_runstates[vcpu] = real_state
        return real_state

    # ------------------------------------------------------------------
    # Hook: migrator (core.migrator.Migrator.migrate)
    # ------------------------------------------------------------------

    def migration_fails(self, task, kernel):
        """True when the in-flight IRS migration of ``task`` dies."""
        for index, spec in enumerate(self.specs):
            if spec.kind != 'migrator_fail':
                continue
            if not spec.matches_vm(kernel.vm):
                continue
            if self._roll(index, spec):
                self._record(spec)
                self._record_sa_state(spec, task.gcpu.vcpu)
                return True
        return False

    # ------------------------------------------------------------------
    # Hook: SA acknowledgement (HypercallInterface.sched_op)
    # ------------------------------------------------------------------

    def sa_ack_lost(self, vcpu):
        """True when the guest's SA acknowledgement never reaches the
        hypervisor, leaving the grace-window timeout to fire."""
        for index, spec in enumerate(self.specs):
            if spec.kind != 'sa_ack_timeout':
                continue
            if not spec.matches_vm(vcpu.vm):
                continue
            if self._roll(index, spec):
                self._record(spec)
                self._record_sa_state(spec, vcpu)
                return True
        return False

    # ------------------------------------------------------------------
    # Hook: cluster fault driver (repro.cluster.recovery)
    # ------------------------------------------------------------------

    def host_fault(self, host_name):
        """The first firing host-level spec for ``host_name`` on this
        tick (or None). At most one host fault applies per host per
        tick; the cluster fault driver decides what it means."""
        for index, spec in enumerate(self.specs):
            if spec.kind not in HOST_FAULT_KINDS:
                continue
            if not spec.matches_host(host_name):
                continue
            if self._roll(index, spec):
                self._record(spec)
                return spec
        return None

    def migration_aborted(self, vm):
        """The firing ``migration_abort`` spec when the in-flight
        cluster migration of ``vm`` dies mid-transfer (or None)."""
        for index, spec in enumerate(self.specs):
            if spec.kind != 'migration_abort':
                continue
            if not spec.matches_vm(vm):
                continue
            if self._roll(index, spec):
                self._record(spec)
                return spec
        return None

    def abort_point_ns(self, transfer_ns):
        """Deterministic offset into a ``transfer_ns``-long migration at
        which an injected abort strikes (strictly before completion)."""
        if transfer_ns <= 1:
            return 1
        return self.sim.rng.uniform_ns(
            'faults.migration_abort.point', 1, transfer_ns - 1)

    def summary(self):
        """Injection counts per kind (plain dict, for reports)."""
        return dict(self.injected)


class FaultPlan:
    """A named, reusable collection of fault specs.

    Plans are templates: :meth:`build` creates a fresh injector per
    run, so firing counts and stale caches never leak across runs.
    """

    def __init__(self, name, specs, description=''):
        self.name = name
        self.specs = tuple(specs)
        self.description = description

    def build(self, sim):
        """Instantiate a :class:`FaultInjector` for one run."""
        return FaultInjector(sim, self.specs)

    def merged_with(self, other):
        """A plan combining this plan's specs with ``other``'s."""
        return FaultPlan('%s+%s' % (self.name, other.name),
                         self.specs + other.specs,
                         '; '.join(d for d in (self.description,
                                               other.description) if d))

    def __repr__(self):
        return '<FaultPlan %s: %d spec(s)>' % (self.name, len(self.specs))
