"""repro - reproduction of "Scheduler Activations for
Interference-Resilient SMP Virtual Machine Scheduling" (Middleware '17).

The package simulates the full stack the paper modifies - a Xen-like
hypervisor with the credit scheduler, Linux-like SMP guests with CFS
and load balancing, and synthetic PARSEC/NPB/server workloads - and
implements IRS plus the PLE and relaxed co-scheduling baselines on top.

Quick start::

    from repro import Simulator, Machine, VM, GuestKernel
    from repro.core import install_irs

See ``examples/quickstart.py`` for a complete scenario.
"""

from .simkernel import MS, SEC, US, Simulator
from .hypervisor import Machine, VM
from .guestos import GuestKernel, Task
from .core import IRSConfig, install_irs

__version__ = '1.0.0'

__all__ = [
    'GuestKernel',
    'IRSConfig',
    'install_irs',
    'Machine',
    'MS',
    'SEC',
    'Simulator',
    'Task',
    'US',
    'VM',
]
