"""Delay-preemption baseline (Uhlig et al., discussed in Section 2.2).

The guest notifies the hypervisor while a thread holds a lock; the
hypervisor postpones involuntary preemptions of that vCPU for a bounded
window so critical sections drain before the vCPU is descheduled —
LHP avoidance by *prevention* instead of IRS's *reaction*.

The paper's critique, which this implementation lets you measure: the
hypervisor must repeatedly deviate from its scheduling policy, the
deferral budget caps how much it can help (long or nested critical
sections overrun it), and it does nothing for lock *waiters*.
"""

from ..obs.phases import PHASE_DP_DEFER
from ..simkernel.units import MS, US

DEFAULT_WINDOW_NS = 100 * US
DEFAULT_MAX_EXTENSION_NS = 1 * MS


class DelayedPreemption:
    """Per-machine manager of guest-requested no-preempt windows."""

    def __init__(self, sim, machine, window_ns=DEFAULT_WINDOW_NS,
                 max_extension_ns=DEFAULT_MAX_EXTENSION_NS):
        self.sim = sim
        self.machine = machine
        self.window_ns = window_ns
        self.max_extension_ns = max_extension_ns
        self._lock_depth = {}        # task -> nesting depth
        self._extension_used = {}    # vcpu -> ns deferred this dispatch
        self._retry = {}             # pcpu -> pending retry Event
        self.deferrals = 0
        self.budget_exhaustions = 0

    # ------------------------------------------------------------------
    # Guest notifications (paravirtual lock hooks)
    # ------------------------------------------------------------------

    def lock_acquired(self, task):
        """``task`` entered a critical section. The no-preempt hint
        follows the task, not the vCPU (it may be migrated while
        holding)."""
        self._lock_depth[task] = self._lock_depth.get(task, 0) + 1

    def lock_released(self, task):
        """``task`` left a critical section. When its last lock drops
        with a deferred preemption pending on its vCPU, the preemption
        fires immediately (the guest kept its side of the bargain)."""
        depth = self._lock_depth.get(task, 0)
        if depth <= 0:
            return
        if depth == 1:
            del self._lock_depth[task]
        else:
            self._lock_depth[task] = depth - 1
        gcpu = task.gcpu
        if depth == 1 and gcpu is not None and gcpu.current is task:
            vcpu = gcpu.vcpu
            pcpu = vcpu.pcpu
            retry = self._retry.pop(pcpu, None)
            if retry is not None:
                retry.cancel()
                self.sim.call_soon(self._retry_preempt, pcpu, vcpu)

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------

    def on_dispatch(self, vcpu):
        """A fresh dispatch resets the deferral budget."""
        self._extension_used[vcpu] = 0

    def try_defer(self, pcpu):
        """Called before an involuntary preemption. Returns True when
        the preemption was parked for one window."""
        vcpu = pcpu.current
        if vcpu is None or vcpu.gcpu is None:
            return False
        task = vcpu.gcpu.current
        if task is None or self._lock_depth.get(task, 0) <= 0:
            return False
        used = self._extension_used.get(vcpu, 0)
        if used + self.window_ns > self.max_extension_ns:
            self.budget_exhaustions += 1
            self.sim.trace.count('dp.budget_exhausted')
            return False
        if pcpu in self._retry:
            return True                      # already parked
        self._extension_used[vcpu] = used + self.window_ns
        self.deferrals += 1
        self.sim.trace.count('dp.deferrals')
        spans = self.sim.trace.spans
        if spans.enabled:
            spans.begin(self.sim.now, PHASE_DP_DEFER, vcpu.name,
                        task=task.name)
        self._retry[pcpu] = self.sim.after(self.window_ns,
                                           self._retry_preempt, pcpu, vcpu)
        return True

    def _retry_preempt(self, pcpu, vcpu):
        self._retry.pop(pcpu, None)
        spans = self.sim.trace.spans
        if spans.enabled:
            spans.end_phase(self.sim.now, PHASE_DP_DEFER, vcpu.name)
        if pcpu.current is not vcpu or not vcpu.is_running:
            return
        self.machine.scheduler.retry_preemption(pcpu)


def install_delayed_preemption(machine, kernels, window_ns=None,
                               max_extension_ns=None):
    """Enable delay-preemption for the given guests. Returns the
    manager. Mutually exclusive with IRS (both hook the preemption
    path)."""
    kwargs = {}
    if window_ns is not None:
        kwargs['window_ns'] = window_ns
    if max_extension_ns is not None:
        kwargs['max_extension_ns'] = max_extension_ns
    manager = machine.attach_delay_preempt(
        DelayedPreemption(machine.sim, machine, **kwargs))
    for kernel in kernels:
        kernel.attach_delay_preempt(manager)
    return manager
