"""Event channels: virtual interrupt delivery from hypervisor to guest.

Models the slice of Xen's event-channel machinery IRS needs (Section
4.1): a dedicated per-vCPU virtual interrupt line. A vIRQ sent to a
running vCPU is delivered immediately; one sent to a descheduled vCPU
pends and is delivered when the vCPU is next dispatched.

When a fault injector (:mod:`repro.faults`) is attached to the machine,
every send crosses the fault plane first, which may drop, delay,
duplicate, or reorder the interrupt; :meth:`EventChannels.deliver` is
the truthful delivery primitive the injector calls back into.
"""

VIRQ_SA_UPCALL = 'VIRQ_SA_UPCALL'
VIRQ_TIMER = 'VIRQ_TIMER'


class EventChannels:
    """Routes virtual interrupts to guest kernels."""

    def __init__(self, sim, machine=None):
        self.sim = sim
        self.machine = machine

    def send_virq(self, vcpu, virq):
        """Deliver ``virq`` to ``vcpu``, pending it if not running.
        Routed through the fault injector when one is attached."""
        injector = (self.machine.fault_injector
                    if self.machine is not None else None)
        if injector is not None:
            injector.on_virq(self, vcpu, virq)
        else:
            self.deliver(vcpu, virq)

    def deliver(self, vcpu, virq):
        """Actually deliver ``virq`` (immediately or pended) — the
        fault-free path, also used by the injector for the copies that
        survive the fault plane."""
        guest = vcpu.vm.guest
        if guest is None:
            # No guest attached: the interrupt vanishes, like a domain
            # that never bound the channel.
            self.sim.trace.count('virq.dropped')
            return
        if vcpu.is_running:
            self.sim.trace.count('virq.delivered')
            guest.deliver_virq(vcpu, virq)
        else:
            self.sim.trace.count('virq.pended')
            if virq not in vcpu.pending_virqs:
                vcpu.pending_virqs.append(virq)

    def drain_pending(self, vcpu):
        """Deliver every pended vIRQ (called at dispatch)."""
        guest = vcpu.vm.guest
        if guest is None:
            vcpu.pending_virqs.clear()
            return
        while vcpu.pending_virqs:
            virq = vcpu.pending_virqs.pop(0)
            guest.deliver_virq(vcpu, virq)
