"""Xen-like hypervisor substrate.

Physical CPUs, VMs/vCPUs, the credit scheduler, event channels,
hypercalls, and the comparison strategies (PLE, relaxed co-scheduling,
VM-oblivious balancing).
"""

from .balance_sched import BalanceScheduler, enable_balance_scheduling
from .balancer import HypervisorBalancer
from .channels import VIRQ_SA_UPCALL, VIRQ_TIMER, EventChannels
from .credit import CreditConfig, CreditScheduler
from .delayed_preempt import DelayedPreemption, install_delayed_preemption
from .hypercalls import SCHEDOP_BLOCK, SCHEDOP_YIELD, HypercallInterface
from .machine import Machine, StrategyDescriptor
from .pcpu import PCpu
from .ple import PleMonitor
from .relaxed_co import RelaxedCoScheduler
from .vcpu import (
    PRI_BOOST,
    PRI_OVER,
    PRI_UNDER,
    RUNSTATE_BLOCKED,
    RUNSTATE_OFFLINE,
    RUNSTATE_RUNNABLE,
    RUNSTATE_RUNNING,
    VCpu,
)
from .vm import VM

__all__ = [
    'BalanceScheduler',
    'enable_balance_scheduling',
    'CreditConfig',
    'CreditScheduler',
    'DelayedPreemption',
    'install_delayed_preemption',
    'EventChannels',
    'HypercallInterface',
    'HypervisorBalancer',
    'Machine',
    'PCpu',
    'PleMonitor',
    'PRI_BOOST',
    'PRI_OVER',
    'PRI_UNDER',
    'RelaxedCoScheduler',
    'RUNSTATE_BLOCKED',
    'RUNSTATE_OFFLINE',
    'RUNSTATE_RUNNABLE',
    'RUNSTATE_RUNNING',
    'SCHEDOP_BLOCK',
    'SCHEDOP_YIELD',
    'StrategyDescriptor',
    'VCpu',
    'VIRQ_SA_UPCALL',
    'VIRQ_TIMER',
    'VM',
]
