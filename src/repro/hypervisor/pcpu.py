"""Physical CPU model.

Each pCPU owns a runqueue of runnable vCPUs (the credit scheduler keeps
it priority-ordered) and at most one currently dispatched vCPU. The
``preempt_deferred`` flag marks a pCPU whose context switch is parked
while the guest processes an IRS scheduler activation (Section 3.1: the
hypervisor delays the preemption until the guest acknowledges).
"""


class PCpu:
    """One physical CPU."""

    def __init__(self, index):
        self.index = index
        self.name = 'pcpu%d' % index
        self.current = None          # VCpu currently dispatched, or None
        self.runq = []               # runnable VCpus, priority FIFO order
        # Set while an SA notification is outstanding for self.current;
        # further preemption triggers are subsumed until the guest acks.
        self.preempt_deferred = False
        # Cumulative busy time (ns) for utilization reporting.
        self.busy_ns = 0
        self._busy_since = None

    # ------------------------------------------------------------------
    # Runqueue helpers (orderliness is the scheduler's job; these keep
    # the invariants local and assertable)
    # ------------------------------------------------------------------

    def insert_vcpu(self, vcpu):
        """Insert ``vcpu`` behind the last entry of equal-or-higher
        priority (priority FIFO)."""
        pos = len(self.runq)
        for i, other in enumerate(self.runq):
            if other.priority > vcpu.priority:
                pos = i
                break
        self.runq.insert(pos, vcpu)
        vcpu.pcpu = self

    def insert_vcpu_head(self, vcpu):
        """Insert ``vcpu`` ahead of its priority class (used for BOOST
        wakes and relaxed-co laggard boosting)."""
        pos = 0
        for i, other in enumerate(self.runq):
            if other.priority >= vcpu.priority:
                pos = i
                break
            pos = i + 1
        self.runq.insert(pos, vcpu)
        vcpu.pcpu = self

    def remove_vcpu(self, vcpu):
        """Remove ``vcpu`` from the runqueue (it must be present)."""
        self.runq.remove(vcpu)

    def peek_best(self):
        """The runnable vCPU that would be dispatched next, or None.
        Co-stopped vCPUs (relaxed co-scheduling) are not dispatchable."""
        for vcpu in self.runq:
            if not vcpu.costopped:
                return vcpu
        return None

    @property
    def nr_runnable(self):
        """Queued runnable vCPUs (not counting the one running)."""
        return len(self.runq)

    @property
    def load(self):
        """Crude load figure: queued + running vCPUs."""
        return len(self.runq) + (1 if self.current is not None else 0)

    # ------------------------------------------------------------------
    # Busy-time accounting
    # ------------------------------------------------------------------

    def mark_busy(self, now):
        if self._busy_since is None:
            self._busy_since = now

    def mark_idle(self, now):
        if self._busy_since is not None:
            self.busy_ns += now - self._busy_since
            self._busy_since = None

    def snapshot_busy(self, now):
        """Busy time including any open interval."""
        busy = self.busy_ns
        if self._busy_since is not None:
            busy += now - self._busy_since
        return busy

    def __repr__(self):
        cur = self.current.name if self.current else 'idle'
        return '<PCpu %d running=%s queue=%d>' % (
            self.index, cur, len(self.runq))
