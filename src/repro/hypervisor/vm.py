"""Virtual machine (domain) model.

A VM groups sibling vCPUs, carries the scheduling weight used by the
credit scheduler's proportional-share accounting, and advertises whether
its guest kernel implements the IRS ``VIRQ_SA_UPCALL`` handler. A guest
without the handler ignores scheduler activations, exactly like the
vanilla background VM in the paper's Section 5.4 experiments.
"""

from .vcpu import VCpu

DEFAULT_WEIGHT = 256


class VM:
    """A domain: a named set of sibling vCPUs plus a guest kernel."""

    def __init__(self, name, n_vcpus, sim, weight=DEFAULT_WEIGHT):
        if n_vcpus < 1:
            raise ValueError('a VM needs at least one vCPU')
        self.name = name
        self.sim = sim
        self.weight = weight
        self.vcpus = [VCpu(self, i, sim) for i in range(n_vcpus)]
        # The guest kernel attaches itself here (duck-typed interface:
        # vcpu_started_running / vcpu_stopped_running / deliver_virq).
        self.guest = None
        # True once the guest registers the SA upcall handler.
        self.irs_capable = False

    @property
    def n_vcpus(self):
        return len(self.vcpus)

    def attach_guest(self, guest, irs_capable=False):
        """Bind a guest kernel to this VM's vCPUs."""
        self.guest = guest
        self.irs_capable = irs_capable

    def siblings_of(self, vcpu):
        """All vCPUs of this VM except ``vcpu``."""
        return [v for v in self.vcpus if v is not vcpu]

    def total_runstate(self, now):
        """Aggregate (run_ns, steal_ns, blocked_ns) over all vCPUs."""
        run = steal = blocked = 0
        for vcpu in self.vcpus:
            r, s, b = vcpu.snapshot_accounting(now)
            run += r
            steal += s
            blocked += b
        return run, steal, blocked

    def __repr__(self):
        return '<VM %s %d vCPUs weight=%d%s>' % (
            self.name, self.n_vcpus, self.weight,
            ' IRS' if self.irs_capable else '')
