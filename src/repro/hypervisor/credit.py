"""Xen credit scheduler model.

Faithful to the behaviours the paper depends on:

* proportional-share **credits** refilled every 30 ms accounting period,
  debited 100 per 10 ms tick from the running vCPU;
* three priorities — ``BOOST`` (just woke from blocked), ``UNDER``
  (credits remaining), ``OVER`` (credits exhausted) — FIFO within each;
* a **30 ms time slice**: the origin of the "one more VM adds ~30 ms of
  scheduling delay" staircase in Figure 1(b) and of lock-holder
  preemption stalls;
* wake **boosting**, which is why I/O-ish vCPUs preempt CPU hogs quickly
  while an involuntarily preempted lock holder must wait a full slice;
* an optional **work-conserving steal path** used in unpinned mode (the
  CPU-stacking experiments of Section 5.6).

The single intrusive change IRS makes to the hypervisor (Section 4.1) is
modeled by :meth:`CreditScheduler._preempt_current`: before completing an
involuntary preemption it offers the event to the SA sender, which may
defer the context switch until the guest acknowledges.
"""

from ..obs.phases import PHASE_PREEMPT_FIRE
from ..simkernel.units import MS
from .vcpu import (
    PRI_BOOST,
    PRI_OVER,
    PRI_UNDER,
    RUNSTATE_BLOCKED,
    RUNSTATE_RUNNABLE,
    RUNSTATE_RUNNING,
)


class CreditConfig:
    """Tunables of the credit scheduler (defaults match Xen 4.5)."""

    def __init__(self, tslice_ns=30 * MS, tick_ns=10 * MS,
                 accounting_ns=30 * MS, credits_per_tick=100,
                 credit_cap=300, boost_on_wake=True):
        self.tslice_ns = tslice_ns
        self.tick_ns = tick_ns
        self.accounting_ns = accounting_ns
        self.credits_per_tick = credits_per_tick
        self.credit_cap = credit_cap
        self.boost_on_wake = boost_on_wake


class CreditScheduler:
    """Per-pCPU runqueues with credit-based proportional sharing."""

    def __init__(self, sim, machine, config=None):
        self.sim = sim
        self.machine = machine
        self.config = config or CreditConfig()
        self.vcpus = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Arm the periodic ticks and the accounting timer."""
        if self._started:
            return
        self._started = True
        cfg = self.config
        for pcpu in self.machine.pcpus:
            self.sim.after(cfg.tick_ns, self._tick, pcpu)
        self.sim.after(cfg.accounting_ns, self._accounting)

    def register_vcpu(self, vcpu, pcpu):
        """Bring a vCPU online, blocked, homed on ``pcpu``."""
        vcpu.pcpu = pcpu
        vcpu.credits = self.config.credit_cap
        vcpu.priority = PRI_UNDER
        vcpu.set_runstate(RUNSTATE_BLOCKED, self.sim.now)
        self.vcpus.append(vcpu)

    def deregister_vcpu(self, vcpu):
        """Take ``vcpu`` offline and forget it entirely (the live
        migration pause path). The caller must have resolved any
        outstanding SA offer first; a running vCPU's pCPU is
        backfilled so no queued work is stranded."""
        from .vcpu import RUNSTATE_OFFLINE
        pcpu = vcpu.pcpu
        if vcpu.is_running:
            # Cancel a parked context switch: the vCPU is leaving the
            # host, so the deferred preemption resolves trivially.
            pcpu.preempt_deferred = False
            self._stop_current(pcpu, RUNSTATE_BLOCKED)
            vcpu.set_runstate(RUNSTATE_OFFLINE, self.sim.now)
            self._schedule(pcpu)
        elif vcpu.is_runnable:
            pcpu.remove_vcpu(vcpu)
            vcpu.set_runstate(RUNSTATE_OFFLINE, self.sim.now)
        else:
            vcpu.set_runstate(RUNSTATE_OFFLINE, self.sim.now)
        vcpu.pcpu = None
        vcpu.pinned_pcpu = None
        self.vcpus.remove(vcpu)

    # ------------------------------------------------------------------
    # Wake / block / yield
    # ------------------------------------------------------------------

    def wake(self, vcpu):
        """Blocked -> runnable. Applies wake boosting and tickles the
        target pCPU if the woken vCPU outranks the one running there."""
        if not vcpu.is_blocked:
            return
        now = self.sim.now
        vcpu.set_runstate(RUNSTATE_RUNNABLE, now)
        if vcpu.priority != PRI_OVER:
            # Xen: a waking vCPU at UNDER priority is boosted.
            if self.config.boost_on_wake:
                vcpu.priority = PRI_BOOST
            else:
                vcpu.priority = PRI_UNDER
        pcpu = self._placement_for(vcpu)
        if vcpu.priority == PRI_BOOST:
            pcpu.insert_vcpu_head(vcpu)
        else:
            pcpu.insert_vcpu(vcpu)
        self.sim.trace.count('hv.wakes')
        self._tickle(pcpu)

    def sched_op_block(self, vcpu):
        """Guest hypercall: the vCPU has nothing to run (idle)."""
        self._deschedule_running(vcpu, RUNSTATE_BLOCKED)

    def sched_op_yield(self, vcpu):
        """Guest hypercall: yield the pCPU but stay runnable."""
        self._deschedule_running(vcpu, RUNSTATE_RUNNABLE)

    def force_yield(self, vcpu):
        """Hypervisor-initiated directed yield (PLE / relaxed-co). Does
        NOT go through the SA path: these are strategy actions, not
        credit-scheduler preemptions."""
        self._deschedule_running(vcpu, RUNSTATE_RUNNABLE)

    def _deschedule_running(self, vcpu, new_state):
        if not vcpu.is_running:
            return
        pcpu = vcpu.pcpu
        self._stop_current(pcpu, new_state)
        self._schedule(pcpu)

    # ------------------------------------------------------------------
    # Periodic machinery
    # ------------------------------------------------------------------

    def _tick(self, pcpu):
        """10 ms tick: debit credits, drop BOOST, check the slice."""
        cfg = self.config
        self.sim.after(cfg.tick_ns, self._tick, pcpu)
        current = pcpu.current
        if current is not None:
            # Xen clips credits at -cap: a vCPU can overdraw at most
            # one accounting period's worth.
            current.credits = max(current.credits - cfg.credits_per_tick,
                                  -cfg.credit_cap)
            if current.priority == PRI_BOOST:
                current.priority = PRI_UNDER
            if current.credits <= 0:
                current.priority = PRI_OVER
            self._check_preempt_at_tick(pcpu)
        elif pcpu.runq:
            # An idle pCPU with queued work should never persist.
            self._schedule(pcpu)

    def _check_preempt_at_tick(self, pcpu):
        current = pcpu.current
        best = pcpu.peek_best()
        if best is None:
            return
        slice_expired = (self.sim.now - current.slice_start >=
                         self.config.tslice_ns)
        if best.priority < current.priority:
            self._preempt_current(pcpu)
        elif best.priority == current.priority and slice_expired:
            self._preempt_current(pcpu)
        elif current.priority == PRI_OVER and best.priority <= PRI_UNDER:
            self._preempt_current(pcpu)

    def _accounting(self):
        """30 ms accounting: refill credits proportional to VM weight,
        then run strategy hooks (relaxed co-scheduling)."""
        cfg = self.config
        self.sim.after(cfg.accounting_ns, self._accounting)
        active = [v for v in self.vcpus if not v.is_blocked]
        if active:
            total_weight = sum(v.vm.weight for v in active)
            # One accounting period's worth of credits per pCPU.
            pool = (cfg.credit_cap * len(self.machine.pcpus))
            for vcpu in active:
                share = pool * vcpu.vm.weight // total_weight
                vcpu.credits = min(vcpu.credits + share, cfg.credit_cap)
                if vcpu.credits > 0 and vcpu.priority == PRI_OVER:
                    vcpu.priority = PRI_UNDER
        # Idle vCPUs leave the active set: Xen resets their debt so a
        # later wake is boost-eligible again.
        for vcpu in self.vcpus:
            if vcpu.is_blocked:
                vcpu.credits = max(vcpu.credits, 0)
                if vcpu.priority == PRI_OVER:
                    vcpu.priority = PRI_UNDER
        if self.machine.relaxed_co is not None:
            self.machine.relaxed_co.on_accounting()
        if self.machine.hv_balancer is not None:
            self.machine.hv_balancer.periodic_rebalance()
        # Re-evaluate every pCPU: priorities may have changed.
        for pcpu in self.machine.pcpus:
            if pcpu.current is None and pcpu.runq:
                self._schedule(pcpu)
            elif pcpu.current is not None:
                best = pcpu.peek_best()
                if best is not None and best.priority < pcpu.current.priority:
                    self._preempt_current(pcpu)

    # ------------------------------------------------------------------
    # Preemption (the IRS hook point)
    # ------------------------------------------------------------------

    def _tickle(self, pcpu):
        """Re-evaluate ``pcpu`` after a wake landed on its runqueue."""
        current = pcpu.current
        if current is None:
            if not pcpu.preempt_deferred:
                self._schedule(pcpu)
            return
        best = pcpu.peek_best()
        if best is not None and best.priority < current.priority:
            self._preempt_current(pcpu)

    def _preempt_current(self, pcpu):
        """Involuntarily preempt the running vCPU. If IRS is active and
        the guest is capable, the context switch is deferred until the
        guest acknowledges the scheduler activation (Algorithm 1)."""
        if pcpu.preempt_deferred:
            return
        current = pcpu.current
        if current is None:
            self._schedule(pcpu)
            return
        delay = self.machine.delay_preempt
        if delay is not None and delay.try_defer(pcpu):
            return
        sender = self.machine.sa_sender
        if sender is not None and sender.offer_preemption(current):
            pcpu.preempt_deferred = True
            return
        self._stop_current(pcpu, RUNSTATE_RUNNABLE)
        self._schedule(pcpu)

    def retry_preemption(self, pcpu):
        """Re-attempt a preemption parked by delay-preemption. Only
        proceeds if someone still outranks or co-ranks the current
        vCPU."""
        if pcpu.current is None:
            self._schedule(pcpu)
            return
        best = pcpu.peek_best()
        if best is not None and best.priority <= pcpu.current.priority:
            self._preempt_current(pcpu)

    def complete_deferred_preemption(self, vcpu, block):
        """Finish a preemption parked for SA processing. ``block`` is
        True when the guest answered ``SCHEDOP_block`` (no runnable task
        left on the vCPU), False for ``SCHEDOP_yield``."""
        pcpu = vcpu.pcpu
        if not (pcpu.preempt_deferred and pcpu.current is vcpu):
            raise RuntimeError('no deferred preemption outstanding on %s'
                               % vcpu.name)
        pcpu.preempt_deferred = False
        spans = self.sim.trace.spans
        if spans.enabled:
            spans.instant(self.sim.now, PHASE_PREEMPT_FIRE, vcpu.name,
                          block=block)
        new_state = RUNSTATE_BLOCKED if block else RUNSTATE_RUNNABLE
        self._stop_current(pcpu, new_state)
        self._schedule(pcpu)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _stop_current(self, pcpu, new_state):
        """Deschedule ``pcpu.current`` into ``new_state``."""
        vcpu = pcpu.current
        now = self.sim.now
        # Let the guest checkpoint the running task *before* the state
        # flips; it may consult the clock.
        if vcpu.vm.guest is not None:
            vcpu.vm.guest.vcpu_stopped_running(vcpu)
        vcpu.set_runstate(new_state, now)
        pcpu.current = None
        if new_state == RUNSTATE_RUNNABLE:
            pcpu.insert_vcpu(vcpu)
            vcpu.preemptions += 1
            self.sim.trace.count('hv.preemptions')
        self.machine.on_vcpu_descheduled(vcpu, pcpu)

    def _schedule(self, pcpu):
        """Dispatch the best runnable vCPU on ``pcpu`` (stealing from
        peers in unpinned mode when profitable)."""
        if pcpu.current is not None or pcpu.preempt_deferred:
            return
        candidate = pcpu.peek_best()
        if self.machine.hv_balancer is not None:
            candidate = self.machine.hv_balancer.maybe_steal(pcpu, candidate)
        if candidate is None:
            pcpu.mark_idle(self.sim.now)
            return
        candidate.pcpu.remove_vcpu(candidate)
        candidate.pcpu = pcpu
        now = self.sim.now
        candidate.set_runstate(RUNSTATE_RUNNING, now)
        candidate.slice_start = now
        pcpu.current = candidate
        pcpu.mark_busy(now)
        self.machine.on_vcpu_dispatched(candidate, pcpu)
        if candidate.vm.guest is not None:
            candidate.vm.guest.vcpu_started_running(candidate)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _placement_for(self, vcpu):
        """pCPU that should receive a waking vCPU."""
        if vcpu.pinned_pcpu is not None:
            return vcpu.pinned_pcpu
        if self.machine.hv_balancer is not None:
            return self.machine.hv_balancer.pick_pcpu_for_wake(vcpu)
        return vcpu.pcpu
