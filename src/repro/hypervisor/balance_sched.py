"""Balance scheduling baseline (Sukwong & Kim, EuroSys'11 — the
paper's reference [30]).

A probabilistic co-scheduling scheme: instead of synchronizing sibling
vCPUs in time (strict/relaxed co-scheduling), *balance scheduling*
constrains placement so sibling vCPUs never share a pCPU runqueue —
raising the chance that runnable siblings actually run concurrently,
with none of co-scheduling's CPU fragmentation.

The paper's critique (Section 2.1): spreading siblings raises the
*probability* of co-execution but does nothing when a sibling's pCPU is
busy with another VM — LHP and LWP persist. This implementation lets
that critique be measured: it eliminates CPU stacking completely, yet
pinned-style interference results are unchanged.
"""


class BalanceScheduler:
    """Placement filter keeping sibling vCPUs on distinct pCPUs."""

    def __init__(self, machine, fallback):
        self.machine = machine
        # The ordinary (VM-oblivious) balancer supplies candidate
        # placements; we veto sibling collisions.
        self.fallback = fallback
        self.vetoes = 0

    # The credit scheduler calls the same interface as the plain
    # hypervisor balancer.

    def _has_sibling(self, vcpu, pcpu):
        for sibling in vcpu.vm.vcpus:
            if sibling is vcpu:
                continue
            if sibling.pcpu is pcpu and (sibling.is_running or
                                         sibling in pcpu.runq):
                return True
        return False

    def pick_pcpu_for_wake(self, vcpu):
        """The fallback's choice unless a sibling already lives there;
        then the least-loaded sibling-free pCPU."""
        choice = self.fallback.pick_pcpu_for_wake(vcpu)
        if not self._has_sibling(vcpu, choice):
            return choice
        self.vetoes += 1
        self.machine.sim.trace.count('balancesched.vetoes')
        candidates = [p for p in self.machine.pcpus
                      if not self._has_sibling(vcpu, p)]
        if not candidates:
            return choice                    # more siblings than pCPUs
        return min(candidates, key=lambda p: p.load)

    def maybe_steal(self, pcpu, local_candidate):
        """Steals are filtered the same way: never import a sibling."""
        candidate = self.fallback.maybe_steal(pcpu, local_candidate)
        if (candidate is not None and candidate is not local_candidate
                and self._has_sibling(candidate, pcpu)):
            self.machine.sim.trace.count('balancesched.vetoes')
            self.vetoes += 1
            return local_candidate
        return candidate

    def periodic_rebalance(self):
        """Rebalancing delegates, then repairs any sibling collision it
        introduced by bouncing the moved vCPU to a sibling-free pCPU."""
        moved = self.fallback.periodic_rebalance()
        for pcpu in self.machine.pcpus:
            for vcpu in list(pcpu.runq):
                if self._has_sibling(vcpu, pcpu):
                    candidates = [p for p in self.machine.pcpus
                                  if not self._has_sibling(vcpu, p)]
                    if candidates:
                        target = min(candidates, key=lambda p: p.load)
                        pcpu.remove_vcpu(vcpu)
                        target.insert_vcpu(vcpu)
                        self.machine.scheduler._tickle(target)
                        moved += 1
        return moved


def enable_balance_scheduling(machine):
    """Deprecated: use
    ``attach_strategies(StrategyDescriptor(balance_sched=True))``."""
    import warnings

    from .machine import StrategyDescriptor

    warnings.warn(
        'enable_balance_scheduling is deprecated; use '
        'attach_strategies(StrategyDescriptor(balance_sched=True))',
        DeprecationWarning, stacklevel=2)
    machine.attach_strategies(StrategyDescriptor(balance_sched=True))
    return machine.hv_balancer
