"""Pause-loop exiting (PLE) model.

PLE is the hardware spin detector the paper compares against (Section
5.1): when a vCPU executes PAUSE-heavy spin loops beyond a window, the
CPU traps into the hypervisor, which responds with a directed yield —
the spinning vCPU is descheduled in favour of a competitor.

In the simulator the guest reports spin phases (a spinning task *is* a
pause loop); the monitor arms a timer per spinning vCPU and yields the
vCPU if the spin outlives the window. Crucially — and this is the
paper's critique — PLE stops the *waiter* from burning cycles but does
nothing to schedule the *holder* sooner, so LHP persists.
"""

from ..simkernel.units import US

DEFAULT_PLE_WINDOW_NS = 50 * US


class PleMonitor:
    """Per-machine PLE state: one armed window per spinning vCPU."""

    def __init__(self, sim, machine, window_ns=DEFAULT_PLE_WINDOW_NS):
        self.sim = sim
        self.machine = machine
        self.window_ns = window_ns
        self._armed = {}           # vcpu -> Event

    def on_spin_start(self, vcpu):
        """The running task on ``vcpu`` entered a pause loop."""
        if vcpu in self._armed:
            return
        self._armed[vcpu] = self.sim.after(
            self.window_ns, self._window_expired, vcpu)

    def on_spin_stop(self, vcpu):
        """The pause loop ended (lock acquired, or vCPU descheduled)."""
        event = self._armed.pop(vcpu, None)
        if event is not None:
            event.cancel()

    def _window_expired(self, vcpu):
        self._armed.pop(vcpu, None)
        if not vcpu.is_running:
            return
        # VM-exit: the credit scheduler performs a directed yield. No
        # scheduler activation is sent — PLE and IRS are alternative
        # strategies and the exit is a hardware event, not a scheduler
        # preemption decision.
        self.sim.trace.count('ple.exits')
        self.machine.scheduler.force_yield(vcpu)
