"""The hypercall surface the guest kernel uses.

Three calls matter to IRS (Section 4):

* ``HYPERVISOR_sched_op(SCHEDOP_block)`` — the vCPU has nothing to run;
* ``HYPERVISOR_sched_op(SCHEDOP_yield)`` — yield but remain runnable;
* ``HYPERVISOR_vcpu_op(VCPUOP_get_runstate_info)`` — the migrator's
  probe for the *actual* vCPU runstate (Algorithm 2, line 7), which is
  what lets the guest skip preempted-but-"online" vCPUs.

When a ``sched_op`` arrives while a preemption is parked for SA
processing, it is the guest's acknowledgement (Algorithm 1 line 15) and
completes the deferred context switch.
"""

from .vcpu import RUNSTATE_BLOCKED, RUNSTATE_RUNNABLE, RUNSTATE_RUNNING

SCHEDOP_BLOCK = 'SCHEDOP_block'
SCHEDOP_YIELD = 'SCHEDOP_yield'


class HypercallInterface:
    """Facade over the scheduler, handed to guest kernels."""

    def __init__(self, machine):
        self._machine = machine

    def sched_op(self, vcpu, operation):
        """``HYPERVISOR_sched_op``: block or yield the calling vCPU."""
        scheduler = self._machine.scheduler
        pcpu = vcpu.pcpu
        if pcpu.preempt_deferred and pcpu.current is vcpu:
            # SA acknowledgement path: clear the pending flag and let
            # the parked preemption complete with the requested state.
            injector = self._machine.fault_injector
            if injector is not None and injector.sa_ack_lost(vcpu):
                # Injected fault: the ack never reaches the hypervisor.
                # The sender's grace-window timeout will fire instead.
                return
            if self._machine.sa_sender is not None:
                self._machine.sa_sender.acknowledge(vcpu)
            scheduler.complete_deferred_preemption(
                vcpu, block=(operation == SCHEDOP_BLOCK))
            return
        if operation == SCHEDOP_BLOCK:
            scheduler.sched_op_block(vcpu)
        elif operation == SCHEDOP_YIELD:
            scheduler.sched_op_yield(vcpu)
        else:
            raise ValueError('unknown sched_op %r' % operation)

    def vcpu_op_get_runstate(self, vcpu):
        """``HYPERVISOR_vcpu_op(VCPUOP_get_runstate_info)``: the true
        runstate of ``vcpu`` — 'running', 'runnable' or 'blocked'.

        With a fault injector attached the probe may return a stale
        observation or raise
        :class:`~repro.faults.injector.HypercallFaultError`."""
        injector = self._machine.fault_injector
        if injector is not None:
            return injector.on_runstate_probe(vcpu, vcpu.runstate)
        return vcpu.runstate

    def vcpu_is_preempted(self, vcpu):
        """Convenience predicate: runnable-but-not-running."""
        return vcpu.runstate == RUNSTATE_RUNNABLE

    def vcpu_is_idle_at_hypervisor(self, vcpu):
        """Convenience predicate used by the migrator's IDLE check."""
        return vcpu.runstate == RUNSTATE_BLOCKED

    def vcpu_is_running(self, vcpu):
        return vcpu.runstate == RUNSTATE_RUNNING

    def steal_time(self, vcpu):
        """Paravirtual steal-time counter for the guest's ``rt_avg``."""
        __, steal, __ = vcpu.snapshot_accounting(self._machine.sim.now)
        return steal
