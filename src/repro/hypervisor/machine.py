"""The physical machine: pCPUs, VMs, scheduler, and strategy wiring.

A :class:`Machine` is the root object of the hypervisor substrate. The
scheduling *strategy* — vanilla credit, PLE, relaxed co-scheduling, or
IRS — is selected by which optional components are attached:

* ``sa_sender`` — the IRS scheduler-activation sender (``repro.core``);
* ``ple`` — the pause-loop-exiting monitor;
* ``relaxed_co`` — the relaxed co-scheduling monitor;
* ``hv_balancer`` — the VM-oblivious vCPU balancer (unpinned mode).
"""

import warnings

from .balance_sched import BalanceScheduler
from .balancer import HypervisorBalancer
from .channels import EventChannels
from .credit import CreditConfig, CreditScheduler
from .delayed_preempt import DelayedPreemption
from .hypercalls import HypercallInterface
from .pcpu import PCpu
from .ple import PleMonitor
from .relaxed_co import RelaxedCoScheduler


class StrategyDescriptor:
    """Declarative description of a machine's strategy attachments.

    One value object covers every optional component a host can carry,
    so cluster hosts (``repro.cluster``) and the experiment layer can
    compose strategies without per-strategy call sites. ``None`` for a
    window/threshold means the component's default."""

    def __init__(self, ple=False, ple_window_ns=None,
                 relaxed_co=False, relaxed_co_skew_ns=None,
                 unpinned=False, balance_sched=False,
                 delay_preempt=False, dp_window_ns=None,
                 dp_max_extension_ns=None,
                 sa_sender=None, fault_injector=None):
        self.ple = ple
        self.ple_window_ns = ple_window_ns
        self.relaxed_co = relaxed_co
        self.relaxed_co_skew_ns = relaxed_co_skew_ns
        self.unpinned = unpinned
        self.balance_sched = balance_sched
        self.delay_preempt = delay_preempt
        self.dp_window_ns = dp_window_ns
        self.dp_max_extension_ns = dp_max_extension_ns
        self.sa_sender = sa_sender
        self.fault_injector = fault_injector

    def __repr__(self):
        parts = []
        if self.ple:
            parts.append('ple')
        if self.relaxed_co:
            parts.append('relaxed_co')
        if self.unpinned:
            parts.append('unpinned')
        if self.balance_sched:
            parts.append('balance_sched')
        if self.delay_preempt:
            parts.append('delay_preempt')
        if self.sa_sender is not None:
            parts.append('sa_sender')
        if self.fault_injector is not None:
            parts.append('faults')
        return '<StrategyDescriptor %s>' % (' '.join(parts) or 'vanilla')


class Machine:
    """A host: pCPUs + credit scheduler + attached VMs + strategies."""

    def __init__(self, sim, n_pcpus, credit_config=None):
        if n_pcpus < 1:
            raise ValueError('need at least one pCPU')
        self.sim = sim
        self.pcpus = [PCpu(i) for i in range(n_pcpus)]
        self.scheduler = CreditScheduler(sim, self,
                                         credit_config or CreditConfig())
        self.channels = EventChannels(sim, machine=self)
        self.hypercalls = HypercallInterface(self)
        self.vms = []

        # Strategy slots (None = vanilla behaviour).
        self.sa_sender = None
        self.ple = None
        self.relaxed_co = None
        self.hv_balancer = None
        self.delay_preempt = None
        # Deterministic fault-injection plane (repro.faults); None means
        # every notification / probe / migration path is reliable.
        self.fault_injector = None

        if sim.sanitizer is not None:
            sim.sanitizer.attach_machine(self)

    # ------------------------------------------------------------------
    # Strategy wiring
    # ------------------------------------------------------------------

    def attach_strategies(self, descriptor):
        """Declarative strategy wiring: attach every component named by
        a :class:`StrategyDescriptor` in one call. The single entry
        point cluster hosts configure themselves through; the legacy
        ``enable_*`` methods below are shims over this."""
        if descriptor.ple:
            if descriptor.ple_window_ns is None:
                self.ple = PleMonitor(self.sim, self)
            else:
                self.ple = PleMonitor(self.sim, self,
                                      window_ns=descriptor.ple_window_ns)
        if descriptor.relaxed_co:
            if descriptor.relaxed_co_skew_ns is None:
                self.relaxed_co = RelaxedCoScheduler(self.sim, self)
            else:
                self.relaxed_co = RelaxedCoScheduler(
                    self.sim, self,
                    skew_threshold_ns=descriptor.relaxed_co_skew_ns)
        if descriptor.unpinned or descriptor.balance_sched:
            if self.hv_balancer is None:
                self.hv_balancer = HypervisorBalancer(self)
        if descriptor.balance_sched:
            if not isinstance(self.hv_balancer, BalanceScheduler):
                self.hv_balancer = BalanceScheduler(self, self.hv_balancer)
        if descriptor.delay_preempt:
            kwargs = {}
            if descriptor.dp_window_ns is not None:
                kwargs['window_ns'] = descriptor.dp_window_ns
            if descriptor.dp_max_extension_ns is not None:
                kwargs['max_extension_ns'] = descriptor.dp_max_extension_ns
            self.attach_delay_preempt(
                DelayedPreemption(self.sim, self, **kwargs))
        if descriptor.sa_sender is not None:
            self.sa_sender = descriptor.sa_sender
        if descriptor.fault_injector is not None:
            self.fault_injector = descriptor.fault_injector
        return self

    def attach_delay_preempt(self, manager):
        """Attach the delayed-preemption manager (the hypervisor half;
        guests opt in via ``GuestKernel.attach_delay_preempt``)."""
        self.delay_preempt = manager
        return manager

    def enable_ple(self, window_ns=None):
        """Deprecated: use ``attach_strategies(StrategyDescriptor(ple=True))``."""
        warnings.warn(
            'Machine.enable_ple is deprecated; use '
            'attach_strategies(StrategyDescriptor(ple=True, ...))',
            DeprecationWarning, stacklevel=2)
        self.attach_strategies(
            StrategyDescriptor(ple=True, ple_window_ns=window_ns))
        return self.ple

    def enable_relaxed_co(self, skew_threshold_ns=None):
        """Deprecated: use
        ``attach_strategies(StrategyDescriptor(relaxed_co=True))``."""
        warnings.warn(
            'Machine.enable_relaxed_co is deprecated; use '
            'attach_strategies(StrategyDescriptor(relaxed_co=True, ...))',
            DeprecationWarning, stacklevel=2)
        self.attach_strategies(StrategyDescriptor(
            relaxed_co=True, relaxed_co_skew_ns=skew_threshold_ns))
        return self.relaxed_co

    def enable_unpinned_balancing(self):
        """Attach the hypervisor vCPU balancer (vCPUs float freely)."""
        self.attach_strategies(StrategyDescriptor(unpinned=True))
        return self.hv_balancer

    def attach_sa_sender(self, sender):
        """Attach the IRS scheduler-activation sender."""
        self.attach_strategies(StrategyDescriptor(sa_sender=sender))

    def attach_fault_injector(self, injector):
        """Attach a deterministic fault injector (``repro.faults``)."""
        self.attach_strategies(StrategyDescriptor(fault_injector=injector))

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------

    def add_vm(self, vm, pinning=None):
        """Register ``vm``. ``pinning`` maps each vCPU to a pCPU index;
        None leaves the vCPUs floating (requires the balancer for
        sensible placement)."""
        if pinning is not None and len(pinning) != vm.n_vcpus:
            raise ValueError('pinning must name one pCPU per vCPU')
        self.vms.append(vm)
        for i, vcpu in enumerate(vm.vcpus):
            if pinning is not None:
                pcpu = self.pcpus[pinning[i]]
                vcpu.pinned_pcpu = pcpu
            else:
                pcpu = self.pcpus[i % len(self.pcpus)]
            self.scheduler.register_vcpu(vcpu, pcpu)

    def detach_vm(self, vm):
        """Pull ``vm`` off this host (live-migration pause). Every vCPU
        goes OFFLINE — immune to wakes, invisible to the scheduler — and
        outstanding SA offers and pended upcalls are torn down with the
        event channel. The VM belongs to *no* host until adopted."""
        if vm not in self.vms:
            raise ValueError('%s is not resident on this machine' % vm.name)
        for vcpu in vm.vcpus:
            if self.sa_sender is not None:
                self.sa_sender.cancel_offer(vcpu)
            if vcpu.gcpu is not None:
                vcpu.gcpu.in_sa_handler = False
            if self.ple is not None:
                self.ple.on_spin_stop(vcpu)
            if self.relaxed_co is not None:
                self.relaxed_co.costopped.pop(vcpu, None)
            vcpu.costopped = False
            # Event-channel teardown: pended vIRQs do not survive the
            # move (the target host has its own channels).
            vcpu.pending_virqs = []
            self.scheduler.deregister_vcpu(vcpu)
        self.vms.remove(vm)

    def adopt_vm(self, vm, pinning=None):
        """Accept a detached VM (live-migration resume). Same placement
        contract as :meth:`add_vm`; vCPUs come back blocked and must be
        woken by the migration engine."""
        for vcpu in vm.vcpus:
            if vcpu.pcpu is not None:
                raise ValueError('%s still registered with a scheduler'
                                 % vcpu.name)
        self.add_vm(vm, pinning=pinning)

    def start(self):
        """Arm the scheduler's periodic machinery."""
        self.scheduler.start()

    # ------------------------------------------------------------------
    # Hooks from the scheduler
    # ------------------------------------------------------------------

    def on_vcpu_dispatched(self, vcpu, pcpu):
        """A vCPU just got a pCPU: deliver pended interrupts."""
        if self.delay_preempt is not None:
            self.delay_preempt.on_dispatch(vcpu)
        if vcpu.pending_virqs:
            self.channels.drain_pending(vcpu)

    def on_vcpu_descheduled(self, vcpu, pcpu):
        """A vCPU just lost its pCPU: stop any armed PLE window."""
        if self.ple is not None:
            self.ple.on_spin_stop(vcpu)

    # ------------------------------------------------------------------
    # Guest-visible services
    # ------------------------------------------------------------------

    def notify_spin_start(self, vcpu):
        """Guest report: the current task on ``vcpu`` is pause-looping.
        Only meaningful when PLE is enabled (HVM)."""
        if self.ple is not None and vcpu.is_running:
            self.ple.on_spin_start(vcpu)

    def notify_spin_stop(self, vcpu):
        """Guest report: the pause loop on ``vcpu`` ended."""
        if self.ple is not None:
            self.ple.on_spin_stop(vcpu)

    def wake_vcpu(self, vcpu):
        """Kick a blocked vCPU (guest enqueued work for it)."""
        self.scheduler.wake(vcpu)

    def fair_share_ns(self, vm, elapsed_ns):
        """CPU time ``vm`` is entitled to over ``elapsed_ns``: its
        weight share of the pCPUs its vCPUs compete for."""
        total_capacity = elapsed_ns * len(self.pcpus)
        total_weight = sum(m.weight * m.n_vcpus for m in self.vms)
        if total_weight == 0:
            return 0
        share = total_capacity * (vm.weight * vm.n_vcpus) / total_weight
        # A VM can never use more than one pCPU per vCPU.
        return min(share, elapsed_ns * vm.n_vcpus)
