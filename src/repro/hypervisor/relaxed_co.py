"""Relaxed co-scheduling, as the paper re-implements it (Section 5.1).

Every credit accounting period (30 ms) the monitor measures each sibling
vCPU's *progress*. Following VMware's definition — and this is the flaw
the paper exploits in Section 5.2 — a vCPU makes progress when it
executes guest instructions **or sits idle**: only time spent
``runnable`` (preempted, wanting CPU) counts as skew. When the fastest
sibling leads the slowest by more than the threshold, the leader is
**co-stopped** — made undispatchable until the skew shrinks — and the
laggard is boosted: the paper's "switch the leading vCPU with its
slowest sibling".

Because blocked time counts as progress, a vCPU idled by lock waiting
looks healthy, which is why relaxed-co misfires on blocking workloads
(Figures 5 and 13).
"""

from ..simkernel.units import MS
from .vcpu import PRI_BOOST

DEFAULT_SKEW_THRESHOLD_NS = 30 * MS


class RelaxedCoScheduler:
    """Skew monitor + co-stop/boost for every multi-vCPU VM."""

    def __init__(self, sim, machine,
                 skew_threshold_ns=DEFAULT_SKEW_THRESHOLD_NS):
        self.sim = sim
        self.machine = machine
        self.skew_threshold_ns = skew_threshold_ns
        # Insertion-ordered (dict-as-set): release order must not hang
        # off object hashes, or runs stop being reproducible across
        # processes.
        self.costopped = {}

    def _progress_of(self, vcpu):
        run, __, blocked = vcpu.snapshot_accounting(self.sim.now)
        return run + blocked

    def on_accounting(self):
        """Called by the credit scheduler each accounting period. The
        paper's re-implementation re-evaluates every period: last
        period's co-stops are lifted, then the current leader is
        stopped for this period if the skew warrants it."""
        for vcpu in list(self.costopped):
            self._release(vcpu)
        for vm in self.machine.vms:
            if vm.n_vcpus > 1:
                self._balance_vm(vm)

    def _balance_vm(self, vm):
        progress = {v: self._progress_of(v) for v in vm.vcpus}
        leader = max(vm.vcpus, key=lambda v: progress[v])
        laggard = min(vm.vcpus, key=lambda v: progress[v])
        skew = progress[leader] - progress[laggard]
        if skew <= self.skew_threshold_ns:
            return
        if not laggard.is_runnable:
            # The laggard is blocked (idle) or already running; stopping
            # the leader would accomplish nothing.
            return
        self.sim.trace.count('relaxedco.switches')
        self._costop(leader)
        self._boost(laggard)

    # ------------------------------------------------------------------

    def _costop(self, vcpu):
        """Make the leader undispatchable until released."""
        if vcpu.costopped:
            return
        vcpu.costopped = True
        self.costopped[vcpu] = True
        self.sim.trace.count('relaxedco.costops')
        if vcpu.is_running:
            self.machine.scheduler.force_yield(vcpu)

    def _release(self, vcpu):
        vcpu.costopped = False
        self.costopped.pop(vcpu, None)
        pcpu = vcpu.pcpu
        if pcpu is not None and vcpu in pcpu.runq:
            self.machine.scheduler._tickle(pcpu)

    def _boost(self, laggard):
        """Move the laggard to the head of its pCPU's queue."""
        pcpu = laggard.pcpu
        if laggard in pcpu.runq:
            pcpu.remove_vcpu(laggard)
            laggard.priority = PRI_BOOST
            pcpu.insert_vcpu_head(laggard)
            self.machine.scheduler._tickle(pcpu)
