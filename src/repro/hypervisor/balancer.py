"""Hypervisor-level vCPU load balancing (unpinned mode).

Models the placement mechanisms of a credit-scheduler hypervisor that,
being oblivious to VM sibling relationships, produce the **CPU
stacking** pathology of Section 5.6:

* **wake placement** — a waking vCPU goes to the pCPU that looks least
  loaded *according to the balancer's periodically refreshed load
  snapshot*. Real balancers act on sampled/averaged load, not on the
  instantaneous truth; when a barrier release wakes several sibling
  vCPUs within one snapshot window, they all see the same "emptiest"
  pCPU and stack on it. Blocking workloads make this worse: their vCPUs
  exhibit deceptive idleness, so the pCPUs hosting them always look
  underloaded next to the ones running CPU hogs.
* **work stealing** — an idle pCPU (or one about to run an ``OVER``
  vCPU) steals a higher-priority runnable vCPU from a peer, again
  without regard for siblings.
"""

from ..simkernel.units import MS
from .vcpu import PRI_UNDER

# One guest-tick of staleness: long enough that a barrier release's
# simultaneous wakes all see the same "least loaded" pCPU (the real
# idler-mask race), short enough that ordinary wakes act on usable data.
DEFAULT_SNAPSHOT_INTERVAL_NS = 1 * MS


class HypervisorBalancer:
    """VM-oblivious vCPU placement over pCPUs."""

    def __init__(self, machine,
                 snapshot_interval_ns=DEFAULT_SNAPSHOT_INTERVAL_NS):
        self.machine = machine
        self.snapshot_interval_ns = snapshot_interval_ns
        self._snapshot = None        # pcpu -> load at snapshot time
        self._snapshot_time = None

    # ------------------------------------------------------------------
    # Wake placement
    # ------------------------------------------------------------------

    def _load_snapshot(self):
        """The (possibly stale) per-pCPU loads placement decisions use."""
        now = self.machine.sim.now
        if (self._snapshot is None or
                now - self._snapshot_time >= self.snapshot_interval_ns):
            self._snapshot = {p: p.load for p in self.machine.pcpus}
            self._snapshot_time = now
        return self._snapshot

    def pick_pcpu_for_wake(self, vcpu):
        """Xen-style wake placement (``csched_cpu_pick``): move toward
        the pCPU that looks least loaded *in the stale snapshot*, with
        the previous pCPU winning ties.

        The staleness is the stacking trigger (Section 5.6): a barrier
        release wakes several sibling vCPUs inside one snapshot window,
        they all see the same "least loaded" pCPU, and pile onto it —
        while the deceptively idle pCPUs hosting blocked siblings keep
        attracting more of them.
        """
        snapshot = self._load_snapshot()
        best = None
        best_load = None
        for pcpu in self.machine.pcpus:
            load = snapshot[pcpu]
            if best_load is None or load < best_load:
                best, best_load = pcpu, load
            elif load == best_load and pcpu is vcpu.pcpu:
                best = pcpu
        return best if best is not None else vcpu.pcpu

    # ------------------------------------------------------------------
    # Periodic rebalancing (Xen's csched_cpu_pick at accounting)
    # ------------------------------------------------------------------

    def periodic_rebalance(self):
        """Each accounting period, spread *queued* vCPUs off crowded
        pCPUs when the imbalance is at least two, then re-pick homes
        for running vCPUs (Xen's ``csched_vcpu_acct`` →
        ``_csched_cpu_pick`` path). The re-pick is VM-oblivious: a
        running vCPU happily moves next to a *blocked sibling's* home
        pCPU because the sibling contributes no load — seeding the
        sibling co-location that becomes CPU stacking when the sibling
        wakes."""
        moved = 0
        while True:
            busiest = max(self.machine.pcpus, key=lambda p: p.load)
            idlest = min(self.machine.pcpus, key=lambda p: p.load)
            if busiest.load - idlest.load < 2:
                break
            candidate = None
            for vcpu in reversed(busiest.runq):
                if vcpu.pinned_pcpu is None:
                    candidate = vcpu
                    break
            if candidate is None:
                break
            busiest.remove_vcpu(candidate)
            idlest.insert_vcpu(candidate)
            moved += 1
            self.machine.sim.trace.count('hv.rebalances')
            self.machine.scheduler._tickle(idlest)
            if moved > 4 * len(self.machine.pcpus):
                break
        moved += self._repick_running()
        return moved

    def _repick_running(self):
        """Migrate a running, unpinned vCPU toward a strictly less
        loaded pCPU (one migration per accounting period, like the
        tick-paced csched_vcpu_acct)."""
        for pcpu in self.machine.pcpus:
            vcpu = pcpu.current
            if (vcpu is None or vcpu.pinned_pcpu is not None
                    or pcpu.preempt_deferred):
                continue
            idlest = min(self.machine.pcpus, key=lambda p: p.load)
            # Leaving `pcpu` removes this vCPU's own load unit, so a
            # strict improvement needs a gap of 2.
            if pcpu.load - idlest.load < 2 or idlest is pcpu:
                continue
            self.machine.sim.trace.count('hv.repicks')
            scheduler = self.machine.scheduler
            scheduler.force_yield(vcpu)       # now queued on `pcpu`
            if vcpu in pcpu.runq:
                pcpu.remove_vcpu(vcpu)
                idlest.insert_vcpu(vcpu)
                scheduler._tickle(idlest)
            return 1
        return 0

    # ------------------------------------------------------------------
    # Work stealing
    # ------------------------------------------------------------------

    def maybe_steal(self, pcpu, local_candidate):
        """Called at dispatch time. Returns the vCPU ``pcpu`` should
        run: the local candidate, or a better one stolen from a peer."""
        local_priority = (local_candidate.priority
                          if local_candidate is not None else None)
        # Stealing is profitable only if the local option is nothing or
        # an OVER vCPU while a peer queues BOOST/UNDER work.
        if local_priority is not None and local_priority <= PRI_UNDER:
            return local_candidate
        best = local_candidate
        for peer in self.machine.pcpus:
            if peer is pcpu:
                continue
            for candidate in peer.runq:
                if candidate.pinned_pcpu is not None:
                    continue
                if candidate.priority > PRI_UNDER:
                    continue
                if best is None or candidate.priority < best.priority:
                    best = candidate
                break  # only the head of each peer queue is stealable
        if best is not local_candidate and best is not None:
            self.machine.sim.trace.count('hv.steals')
        return best
