"""Virtual CPU model.

A vCPU is the hypervisor's schedulable entity. It mirrors Xen's runstate
machine (``running`` / ``runnable`` / ``blocked`` / ``offline``) and keeps
the accounting the rest of the system depends on:

* **steal time** — time spent ``runnable`` (wanting a pCPU but not getting
  one). The guest's ``rt_avg`` load metric folds this in, exactly as the
  paper relies on (Section 3.3).
* **credits / priority** — owned by the credit scheduler.
* **pending vIRQs** and the per-vCPU ``sa_pending`` flag used by the IRS
  scheduler-activation channel (Algorithm 1).
"""

RUNSTATE_RUNNING = 'running'
RUNSTATE_RUNNABLE = 'runnable'
RUNSTATE_BLOCKED = 'blocked'
RUNSTATE_OFFLINE = 'offline'

# Credit-scheduler priorities, lower value = scheduled first.
PRI_BOOST = 0
PRI_UNDER = 1
PRI_OVER = 2

_PRIORITY_NAMES = {PRI_BOOST: 'BOOST', PRI_UNDER: 'UNDER', PRI_OVER: 'OVER'}


class VCpu:
    """One virtual CPU belonging to a :class:`~repro.hypervisor.vm.VM`."""

    def __init__(self, vm, index, sim):
        self.vm = vm
        self.index = index
        self.sim = sim
        self.name = '%s.v%d' % (vm.name, index)

        # Placement.
        self.pcpu = None          # pCPU whose runqueue we belong to
        self.pinned_pcpu = None   # hard affinity, or None if floating

        # Runstate machine.
        self.runstate = RUNSTATE_OFFLINE
        self.runstate_since = 0

        # Cumulative runstate accounting (ns).
        self.run_ns = 0
        self.steal_ns = 0         # time spent runnable
        self.blocked_ns = 0
        # Involuntary preemptions suffered (descheduled while runnable).
        # Tracer counters are per-simulation, so multi-host interference
        # profiling needs the count attributable to this vCPU alone.
        self.preemptions = 0

        # Credit scheduler state.
        self.credits = 0
        self.priority = PRI_UNDER
        self.slice_start = 0

        # Event-channel state.
        self.pending_virqs = []
        self.sa_pending = False
        # Explicit SA protocol state machine (repro.core.protocol);
        # created by the sender on the first activation offer. Lives
        # here so the sanitizer and the fault plane can read the round
        # state without importing the core layer.
        self.sa_protocol = None
        # SA offers targeted at this vCPU (per-VM notification rate for
        # cluster interference profiling; the sender's totals are
        # host-wide).
        self.sa_offers = 0

        # Relaxed co-scheduling: a co-stopped vCPU is undispatchable.
        self.costopped = False

        # Guest-side companion (set by the guest kernel when attached).
        self.gcpu = None

    # ------------------------------------------------------------------
    # Runstate transitions (called only by the scheduler / machine)
    # ------------------------------------------------------------------

    def set_runstate(self, new_state, now):
        """Move to ``new_state``, charging the elapsed interval to the
        bucket of the state being left."""
        elapsed = now - self.runstate_since
        old = self.runstate
        if old == RUNSTATE_RUNNING:
            self.run_ns += elapsed
        elif old == RUNSTATE_RUNNABLE:
            self.steal_ns += elapsed
        elif old == RUNSTATE_BLOCKED:
            self.blocked_ns += elapsed
        self.runstate = new_state
        self.runstate_since = now

    def snapshot_accounting(self, now):
        """Return (run_ns, steal_ns, blocked_ns) including the partial
        charge for the current (still open) runstate interval."""
        run, steal, blocked = self.run_ns, self.steal_ns, self.blocked_ns
        elapsed = now - self.runstate_since
        if self.runstate == RUNSTATE_RUNNING:
            run += elapsed
        elif self.runstate == RUNSTATE_RUNNABLE:
            steal += elapsed
        elif self.runstate == RUNSTATE_BLOCKED:
            blocked += elapsed
        return run, steal, blocked

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------

    @property
    def is_running(self):
        return self.runstate == RUNSTATE_RUNNING

    @property
    def is_runnable(self):
        return self.runstate == RUNSTATE_RUNNABLE

    @property
    def is_blocked(self):
        return self.runstate == RUNSTATE_BLOCKED

    def __repr__(self):
        return '<VCpu %s %s pri=%s credits=%d>' % (
            self.name, self.runstate,
            _PRIORITY_NAMES.get(self.priority, self.priority), self.credits)
