"""SA receiver — the guest half of IRS (Algorithm 1, bottom).

The interrupt handler of ``VIRQ_SA_UPCALL``. Kept deliberately small
(Section 4.2): it delegates the real work to the context switcher
(softirq bottom half) and acknowledges the hypervisor as soon as the
context switch is done, while the migrator runs asynchronously — so the
preemptee vCPU holds its pCPU for only the 20–26 µs the handler takes.
"""

from ..hypervisor.channels import VIRQ_SA_UPCALL
from ..obs.phases import (
    PHASE_ACK,
    PHASE_MIGRATE,
    PHASE_UPCALL,
    PHASE_VIRQ,
    migrate_track,
)
from .config import IRSConfig
from .context_switcher import ContextSwitcher
from .migrator import Migrator
from .protocol import ensure_protocol


class SaReceiver:
    """Guest-side scheduler-activation handler."""

    def __init__(self, sim, kernel, config=None):
        self.sim = sim
        self.kernel = kernel
        self.config = config or IRSConfig()
        self.context_switcher = ContextSwitcher(kernel)
        self.migrator = Migrator(sim, kernel, kernel.hypercalls, self.config)
        self.handled = 0
        self.handler_time_ns = 0     # cumulative, for the §3.1 profile

    def on_virq(self, gcpu, virq):
        """vIRQ entry point (registered via ``kernel.sa_receiver``)."""
        if virq != VIRQ_SA_UPCALL:
            return
        if gcpu.in_sa_handler:
            return
        # The protocol resolves this to the normal NOTIFIED->SWITCHING
        # edge, a lost-ack re-entry, or a spurious round (delayed or
        # duplicated upcall arriving after the offer closed).
        ensure_protocol(gcpu.vcpu).upcall()
        spans = self.sim.trace.spans
        if spans.enabled:
            # The vIRQ leg ends where the upcall leg begins: here.
            track = gcpu.vcpu.name
            spans.end_phase(self.sim.now, PHASE_VIRQ, track)
            spans.begin(self.sim.now, PHASE_UPCALL, track)
        self.kernel.sa_begin(gcpu)
        cost = self.sim.rng.uniform_ns(
            'irs.sa_handler', self.config.sa_handler_min_ns,
            self.config.sa_handler_max_ns)
        self.handler_time_ns += cost
        self.sim.after(cost, self._bottom_half, gcpu)

    def _bottom_half(self, gcpu):
        """UPCALL_SOFTIRQ: context switch, kick migrator, acknowledge."""
        if not gcpu.in_sa_handler:
            # The hard limit fired first and forced the preemption.
            return
        self.handled += 1
        op, task = self.context_switcher.switch(gcpu)
        spans = self.sim.trace.spans
        if task is not None:
            # Wake the migrator thread asynchronously; it runs on some
            # other vCPU and must not extend the preemption delay.
            if spans.enabled:
                spans.begin(self.sim.now, PHASE_MIGRATE,
                            migrate_track(task.name), task=task.name,
                            source=gcpu.vcpu.name)
            self.sim.after(self.config.migrator_kick_ns,
                           self.migrator.migrate, task, gcpu)
        if spans.enabled:
            # The ack leg is closed by the sender when the hypercall
            # lands (or by the offer's timeout if the ack gets lost).
            spans.begin(self.sim.now, PHASE_ACK, gcpu.vcpu.name, op=op)
        self.kernel.sa_ack(gcpu, op)
        proto = gcpu.vcpu.sa_protocol
        if proto is not None:
            # Closes spurious rounds the sender will never handshake;
            # real rounds were advanced by the sender when the sched_op
            # hypercall landed (or stay LIMBO if the ack was lost).
            proto.ack_sent()
