"""Pull-based IRS — the paper's stated future work (Section 6).

    "The ideal migration should be pull-based and happen when a vCPU
    becomes idle. This calls for a new mechanism of task migration —
    migrating a 'running' task from a preempted vCPU."

This module implements that mechanism. When a guest CPU is about to go
idle (its runqueue is empty and ordinary idle balancing found nothing),
it probes its siblings' *hypervisor* runstates and steals the frozen
current task of a preempted vCPU — the one task vanilla Linux can never
touch because it looks "running".

Compared to the push-based IRS of Sections 3–4:

* no hypervisor modification at all — no vIRQ, no preemption delay, no
  fairness concern (the probe hypercall already exists);
* migrations happen exactly when capacity is free, so the load estimate
  cannot be wrong (the limitation Section 6 calls out for push);
* but a task frozen while every sibling is busy stays frozen — push
  and pull are complementary, and :func:`install_pull_irs` can be
  combined with :func:`repro.core.install_irs`.
"""

from ..guestos.task import TASK_READY, TASK_RUNNING
from ..simkernel.units import MS

DEFAULT_IDLE_POLL_NS = 4 * MS


class PullMigrator:
    """Steals the frozen current task of preempted sibling vCPUs."""

    def __init__(self, sim, kernel, hypercalls, tag_tasks=True,
                 idle_poll_ns=DEFAULT_IDLE_POLL_NS):
        self.sim = sim
        self.kernel = kernel
        self.hypercalls = hypercalls
        # Tag pulled tasks like the push migrator does, so the Figure 4
        # wakeup rule applies to them too.
        self.tag_tasks = tag_tasks
        # An idle vCPU re-checks for frozen victims on this period
        # (NOHZ-style idle housekeeping); 0 disables polling and pulls
        # happen only at idle entry.
        self.idle_poll_ns = idle_poll_ns
        self._polls = {}             # gcpu -> Event
        self.pulls = 0

    def try_pull(self, idle_gcpu):
        """Called by the idle path. Returns the stolen task (already
        enqueued on ``idle_gcpu``) or None."""
        source = self._find_victim(idle_gcpu)
        if source is None:
            return None
        task = source.current
        # Detach the frozen task from the preempted vCPU. No checkpoint
        # is needed: a frozen vCPU has no open execution interval.
        source.current = None
        task.state = TASK_READY
        task.last_descheduled = self.sim.now
        if self.tag_tasks:
            task.irs_tag = True
        source.rq.update_min_vruntime(None)
        # Enqueue locally, like a pull.
        kernel = self.kernel
        kernel._apply_migration_penalty(task)
        task.migrations += 1
        task.gcpu = idle_gcpu
        task.vruntime = kernel.policy.place_waking_vruntime(
            task, idle_gcpu.rq)
        idle_gcpu.rq.enqueue(task)
        self.pulls += 1
        self.sim.trace.count('irs.pulls')
        return task

    # ------------------------------------------------------------------
    # Idle polling
    # ------------------------------------------------------------------

    def on_idle(self, gcpu):
        """Called by the kernel when ``gcpu`` blocks idle: arm the
        periodic re-check for frozen victims."""
        if self.idle_poll_ns <= 0:
            return
        self._cancel_poll(gcpu)
        self._polls[gcpu] = self.sim.after(self.idle_poll_ns,
                                           self._poll, gcpu)

    def _cancel_poll(self, gcpu):
        event = self._polls.pop(gcpu, None)
        if event is not None:
            event.cancel()

    def _poll(self, gcpu):
        self._polls.pop(gcpu, None)
        if not (gcpu.is_guest_idle and gcpu.vcpu.is_blocked):
            return
        victim = self._find_victim(gcpu)
        if victim is None:
            self._polls[gcpu] = self.sim.after(self.idle_poll_ns,
                                               self._poll, gcpu)
            return
        # Wake the idle vCPU; its dispatch path runs _schedule, whose
        # pull hook performs the steal.
        self.sim.trace.count('irs.pull_kicks')
        self.kernel.machine.wake_vcpu(gcpu.vcpu)

    def _find_victim(self, idle_gcpu):
        """A sibling whose vCPU is preempted while a task sits frozen
        on it. Prefer the vCPU with the most steal time (longest
        expected wait)."""
        best = None
        best_steal = -1
        for gcpu in self.kernel.gcpus:
            if gcpu is idle_gcpu or not gcpu.online:
                continue
            if gcpu.current is None or gcpu.in_sa_handler:
                continue
            if gcpu.current.state != TASK_RUNNING:
                continue
            if not self.hypercalls.vcpu_is_preempted(gcpu.vcpu):
                continue
            steal = self.hypercalls.steal_time(gcpu.vcpu)
            if steal > best_steal:
                best, best_steal = gcpu, steal
        return best


def install_pull_irs(machine, kernels, tag_tasks=True):
    """Enable pull-based IRS for the given guest kernels. Composable
    with the push-based :func:`repro.core.install_irs`. Returns the
    list of installed :class:`PullMigrator` objects."""
    migrators = []
    for kernel in kernels:
        migrator = PullMigrator(machine.sim, kernel, machine.hypercalls,
                                tag_tasks=tag_tasks)
        migrators.append(kernel.attach_pull_migrator(migrator))
    return migrators
