"""The SA protocol as an explicit per-vCPU state machine.

The paper describes the scheduler-activation round informally
(Algorithm 1/2); this module makes it first-class. Every IRS-capable
vCPU carries a :class:`SaVcpuProtocol` whose state names exactly where
the current activation round stands::

    IDLE ──offer──> NOTIFIED ──upcall──> SWITCHING ──deschedule──> LIMBO
                                                                     │
              ┌──────────────────────────────ack─────────────────────┘
              v
            ACKED ──migrated──> MIGRATED        (next offer restarts)
              └─────parked_home────> IDLE

plus the *fault-degraded* edges the resilience plane exercises: lost
upcalls time out (``NOTIFIED -> IDLE``), lost acks leave the round in
``LIMBO`` until a retry re-enters the handler (``LIMBO -> SWITCHING``)
or the grace window expires, spurious (delayed/duplicated) upcalls open
a round from a quiescent state, and live-migration teardown cancels
from anywhere.

The four IRS components (:class:`~repro.core.sender.SaSender`,
:class:`~repro.core.receiver.SaReceiver`,
:class:`~repro.core.context_switcher.ContextSwitcher`,
:class:`~repro.core.migrator.Migrator`) key their lifecycle off these
transitions instead of ad-hoc flags; the per-vCPU ``sa_pending`` and
per-gCPU ``in_sa_handler`` booleans remain as cheap operational
mirrors whose consistency with the machine is asserted by the runtime
sanitizer (:mod:`repro.simkernel.sanitizer`).

Illegal transitions are never raised on the hot path: they are recorded
(with the offending edge) and surfaced by the sanitizer's
``sa_legal_transitions`` invariant, so a protocol bug points at the
exact event that broke the machine, not at a corrupted end state.
"""

# ---------------------------------------------------------------------
# States
# ---------------------------------------------------------------------

#: No activation round in flight (also the post-cancel/timeout state).
SA_IDLE = 'idle'
#: Offer sent; VIRQ_SA_UPCALL is travelling to the guest.
SA_NOTIFIED = 'notified'
#: Guest upcall handler (vIRQ entry + softirq bottom half) running.
SA_SWITCHING = 'switching'
#: Context switch done; the acknowledgement is in flight (and any
#: descheduled task sits in migrator limbo).
SA_LIMBO = 'limbo'
#: Hypervisor received the ack; the parked preemption completed.
SA_ACKED = 'acked'
#: The migrator placed the round's limbo task on a sibling vCPU.
SA_MIGRATED = 'migrated'

SA_STATES = (SA_IDLE, SA_NOTIFIED, SA_SWITCHING, SA_LIMBO, SA_ACKED,
             SA_MIGRATED)

#: States with no activation work outstanding: a new offer may start.
SA_QUIESCENT_STATES = (SA_IDLE, SA_ACKED, SA_MIGRATED)
#: States with an activation round actively in flight.
SA_ACTIVE_STATES = (SA_NOTIFIED, SA_SWITCHING, SA_LIMBO)

# ---------------------------------------------------------------------
# Edges
# ---------------------------------------------------------------------

EDGE_OFFER = 'offer'
EDGE_RETRY = 'retry'
EDGE_UPCALL = 'upcall'
EDGE_SPURIOUS_UPCALL = 'spurious_upcall'
EDGE_DESCHEDULE = 'deschedule'
EDGE_ACK = 'ack'
EDGE_EARLY_ACK = 'early_ack'
EDGE_LATE_ACK = 'late_ack'
EDGE_MIGRATED = 'migrated'
EDGE_PARKED_HOME = 'parked_home'
EDGE_STRANDED = 'stranded'
EDGE_STALE_TASK = 'stale_task'
EDGE_TIMEOUT = 'timeout'
EDGE_CANCEL = 'cancel'
EDGE_SPURIOUS_CLOSE = 'spurious_close'

#: Every intent edge, in protocol order. The static protocol-
#: exhaustiveness lint (``tools/replint``) checks that each
#: ``(state, edge)`` pair of ``SA_STATES x SA_EDGES`` appears in
#: exactly one of :data:`LEGAL_TRANSITIONS` /
#: :data:`ILLEGAL_TRANSITIONS` — adding an edge constant without
#: classifying all six states against it fails the build.
SA_EDGES = (
    EDGE_OFFER, EDGE_RETRY, EDGE_UPCALL, EDGE_SPURIOUS_UPCALL,
    EDGE_DESCHEDULE, EDGE_ACK, EDGE_EARLY_ACK, EDGE_LATE_ACK,
    EDGE_MIGRATED, EDGE_PARKED_HOME, EDGE_STRANDED, EDGE_STALE_TASK,
    EDGE_TIMEOUT, EDGE_CANCEL, EDGE_SPURIOUS_CLOSE,
)

#: ``(state, edge) -> new_state`` — the complete legal-transition table.
#: Everything absent from this table is an illegal transition, and is
#: *also* enumerated in :data:`ILLEGAL_TRANSITIONS` so that every pair
#: is a considered decision rather than an omission.
LEGAL_TRANSITIONS = {
    # The happy path of one activation round.
    (SA_IDLE, EDGE_OFFER): SA_NOTIFIED,
    (SA_ACKED, EDGE_OFFER): SA_NOTIFIED,
    (SA_MIGRATED, EDGE_OFFER): SA_NOTIFIED,
    (SA_NOTIFIED, EDGE_UPCALL): SA_SWITCHING,
    (SA_SWITCHING, EDGE_DESCHEDULE): SA_LIMBO,
    (SA_LIMBO, EDGE_ACK): SA_ACKED,
    (SA_ACKED, EDGE_MIGRATED): SA_MIGRATED,
    (SA_ACKED, EDGE_PARKED_HOME): SA_IDLE,
    (SA_ACKED, EDGE_STALE_TASK): SA_IDLE,

    # Degradation: upcall/ack retries with exponential backoff.
    (SA_NOTIFIED, EDGE_RETRY): SA_NOTIFIED,
    (SA_SWITCHING, EDGE_RETRY): SA_SWITCHING,
    (SA_LIMBO, EDGE_RETRY): SA_LIMBO,
    # Degradation: a retry after a lost ack re-enters the handler.
    (SA_LIMBO, EDGE_UPCALL): SA_SWITCHING,
    # Degradation: the guest blocked/yielded before the upcall landed
    # (e.g. CPU hotplug parked the vCPU mid-round) — the hypervisor
    # treats the sched_op as the acknowledgement.
    (SA_NOTIFIED, EDGE_EARLY_ACK): SA_ACKED,
    (SA_SWITCHING, EDGE_EARLY_ACK): SA_ACKED,
    # Degradation: spurious (delayed / duplicated) upcall opens a round
    # from a quiescent state; it closes without a sender handshake.
    (SA_IDLE, EDGE_SPURIOUS_UPCALL): SA_SWITCHING,
    (SA_ACKED, EDGE_SPURIOUS_UPCALL): SA_SWITCHING,
    (SA_MIGRATED, EDGE_SPURIOUS_UPCALL): SA_SWITCHING,
    (SA_LIMBO, EDGE_SPURIOUS_CLOSE): SA_IDLE,
    # Degradation: the migrator disposed of the limbo task before the
    # (lost) ack was recovered, or after the round was force-closed.
    (SA_LIMBO, EDGE_MIGRATED): SA_MIGRATED,
    (SA_LIMBO, EDGE_PARKED_HOME): SA_IDLE,
    (SA_LIMBO, EDGE_STALE_TASK): SA_IDLE,
    # Degradation: a mid-move failure with no recovery path strands
    # the task in limbo; the round is over either way.
    (SA_ACKED, EDGE_STRANDED): SA_IDLE,
    (SA_LIMBO, EDGE_STRANDED): SA_IDLE,
    # Degradation: grace window exhausted (upcall or ack lost).
    (SA_NOTIFIED, EDGE_TIMEOUT): SA_IDLE,
    (SA_SWITCHING, EDGE_TIMEOUT): SA_IDLE,
    (SA_LIMBO, EDGE_TIMEOUT): SA_IDLE,
    (SA_MIGRATED, EDGE_TIMEOUT): SA_IDLE,
    # Degradation: a lost ack leaves the *sender's* round open after
    # the guest/migrator already closed it (the limbo task was disposed
    # of before the grace window expired). The sender's retries,
    # timeout, and any finally-landing acknowledgement then probe a
    # quiescent machine; they must not be illegal.
    (SA_IDLE, EDGE_RETRY): SA_IDLE,
    (SA_MIGRATED, EDGE_RETRY): SA_MIGRATED,
    (SA_IDLE, EDGE_TIMEOUT): SA_IDLE,
    (SA_IDLE, EDGE_LATE_ACK): SA_IDLE,
    (SA_ACKED, EDGE_LATE_ACK): SA_ACKED,
    (SA_MIGRATED, EDGE_LATE_ACK): SA_MIGRATED,
    # Teardown (live-migration pause / detach): void from anywhere.
    (SA_IDLE, EDGE_CANCEL): SA_IDLE,
    (SA_NOTIFIED, EDGE_CANCEL): SA_IDLE,
    (SA_SWITCHING, EDGE_CANCEL): SA_IDLE,
    (SA_LIMBO, EDGE_CANCEL): SA_IDLE,
    (SA_ACKED, EDGE_CANCEL): SA_IDLE,
    (SA_MIGRATED, EDGE_CANCEL): SA_IDLE,
}

#: The declared-illegal complement: every ``(state, edge)`` pair a
#: correct implementation must never attempt. The runtime records (not
#: raises) these via :class:`IllegalTransition`; declaring them keeps
#: the table *total* — the static lint rejects a build where a pair is
#: in neither table, so new edges cannot become "illegal by omission".
ILLEGAL_TRANSITIONS = frozenset((
    # A fresh offer requires a quiescent machine; the sender never
    # overlaps rounds on one vCPU.
    (SA_NOTIFIED, EDGE_OFFER),
    (SA_SWITCHING, EDGE_OFFER),
    (SA_LIMBO, EDGE_OFFER),
    # Retries stop once the hypervisor has the ack in hand.
    (SA_ACKED, EDGE_RETRY),
    # A (non-spurious) upcall needs an offer in flight; re-entry is
    # only legal from LIMBO (lost-ack recovery).
    (SA_IDLE, EDGE_UPCALL),
    (SA_SWITCHING, EDGE_UPCALL),
    (SA_ACKED, EDGE_UPCALL),
    (SA_MIGRATED, EDGE_UPCALL),
    # Spurious upcalls open rounds only from quiescent states; an
    # active round's upcall is the normal edge, never spurious.
    (SA_NOTIFIED, EDGE_SPURIOUS_UPCALL),
    (SA_SWITCHING, EDGE_SPURIOUS_UPCALL),
    (SA_LIMBO, EDGE_SPURIOUS_UPCALL),
    # The context switch happens exactly once, inside the handler.
    (SA_IDLE, EDGE_DESCHEDULE),
    (SA_NOTIFIED, EDGE_DESCHEDULE),
    (SA_LIMBO, EDGE_DESCHEDULE),
    (SA_ACKED, EDGE_DESCHEDULE),
    (SA_MIGRATED, EDGE_DESCHEDULE),
    # The intent methods resolve acks: sender.ack() picks the normal /
    # early / late edge itself, so the raw edges are unreachable
    # elsewhere (LIMBO is the only normal-ack state, NOTIFIED /
    # SWITCHING the only early-ack ones, quiescent the only late ones).
    (SA_IDLE, EDGE_ACK),
    (SA_NOTIFIED, EDGE_ACK),
    (SA_SWITCHING, EDGE_ACK),
    (SA_ACKED, EDGE_ACK),
    (SA_MIGRATED, EDGE_ACK),
    (SA_IDLE, EDGE_EARLY_ACK),
    (SA_LIMBO, EDGE_EARLY_ACK),
    (SA_ACKED, EDGE_EARLY_ACK),
    (SA_MIGRATED, EDGE_EARLY_ACK),
    (SA_NOTIFIED, EDGE_LATE_ACK),
    (SA_SWITCHING, EDGE_LATE_ACK),
    (SA_LIMBO, EDGE_LATE_ACK),
    # Task disposal needs a limbo task (LIMBO) or a closed handshake
    # (ACKED); a round that never descheduled has nothing to dispose.
    (SA_IDLE, EDGE_MIGRATED),
    (SA_NOTIFIED, EDGE_MIGRATED),
    (SA_SWITCHING, EDGE_MIGRATED),
    (SA_MIGRATED, EDGE_MIGRATED),
    (SA_IDLE, EDGE_PARKED_HOME),
    (SA_NOTIFIED, EDGE_PARKED_HOME),
    (SA_SWITCHING, EDGE_PARKED_HOME),
    (SA_MIGRATED, EDGE_PARKED_HOME),
    (SA_IDLE, EDGE_STRANDED),
    (SA_NOTIFIED, EDGE_STRANDED),
    (SA_SWITCHING, EDGE_STRANDED),
    (SA_MIGRATED, EDGE_STRANDED),
    (SA_IDLE, EDGE_STALE_TASK),
    (SA_NOTIFIED, EDGE_STALE_TASK),
    (SA_SWITCHING, EDGE_STALE_TASK),
    (SA_MIGRATED, EDGE_STALE_TASK),
    # The grace window is disarmed the moment the ack lands.
    (SA_ACKED, EDGE_TIMEOUT),
    # Spurious-close is the receiver finishing a spurious round it
    # opened itself; only LIMBO can hold such a round.
    (SA_IDLE, EDGE_SPURIOUS_CLOSE),
    (SA_NOTIFIED, EDGE_SPURIOUS_CLOSE),
    (SA_SWITCHING, EDGE_SPURIOUS_CLOSE),
    (SA_ACKED, EDGE_SPURIOUS_CLOSE),
    (SA_MIGRATED, EDGE_SPURIOUS_CLOSE),
))

#: The transitions of an undisturbed round. Every legal transition
#: outside this set is *degraded*: reachable only under faults,
#: hotplug races, or teardown.
NORMAL_TRANSITIONS = frozenset((
    (SA_IDLE, EDGE_OFFER),
    (SA_ACKED, EDGE_OFFER),
    (SA_MIGRATED, EDGE_OFFER),
    (SA_NOTIFIED, EDGE_UPCALL),
    (SA_SWITCHING, EDGE_DESCHEDULE),
    (SA_LIMBO, EDGE_ACK),
    (SA_ACKED, EDGE_MIGRATED),
    (SA_ACKED, EDGE_PARKED_HOME),
    (SA_IDLE, EDGE_CANCEL),
    (SA_ACKED, EDGE_CANCEL),
    (SA_MIGRATED, EDGE_CANCEL),
))


class IllegalTransition:
    """One recorded attempt to cross an edge the table forbids."""

    __slots__ = ('time', 'vcpu_name', 'state', 'edge')

    def __init__(self, time, vcpu_name, state, edge):
        self.time = time
        self.vcpu_name = vcpu_name
        self.state = state
        self.edge = edge

    def __repr__(self):
        return '<IllegalTransition t=%d %s: %s --%s-> ?>' % (
            self.time, self.vcpu_name, self.state, self.edge)


class SaVcpuProtocol:
    """The SA state machine of one vCPU.

    Components call the intent methods (:meth:`offer`, :meth:`upcall`,
    :meth:`deschedule`, :meth:`ack`, ...); each resolves to an edge of
    :data:`LEGAL_TRANSITIONS` based on the current state, so callers
    never hand-pick degraded edges. Edge traversals are counted in
    :attr:`edges` (and :attr:`degraded` for degraded ones); illegal
    attempts land in :attr:`illegal` without changing the state.
    """

    __slots__ = ('vcpu', 'sim', 'state', 'round', 'edges', 'degraded',
                 'illegal', 'stale_disposals', '_limbo_task', '_spurious')

    def __init__(self, vcpu, sim=None):
        self.vcpu = vcpu
        self.sim = sim if sim is not None else vcpu.sim
        self.state = SA_IDLE
        self.round = 0                # completed+current offer rounds
        self.edges = {}               # edge name -> traversal count
        self.degraded = {}            # degraded edge name -> count
        self.illegal = []             # IllegalTransition records
        self.stale_disposals = 0      # disposals for superseded rounds
        self._limbo_task = None       # task parked by the current round
        self._spurious = False        # round opened without an offer

    # ------------------------------------------------------------------
    # Core transition plumbing
    # ------------------------------------------------------------------

    def _transition(self, edge):
        key = (self.state, edge)
        new_state = LEGAL_TRANSITIONS.get(key)
        if new_state is None:
            self.illegal.append(IllegalTransition(
                self.sim.now, self.vcpu.name, self.state, edge))
            return False
        self.state = new_state
        self.edges[edge] = self.edges.get(edge, 0) + 1
        if key not in NORMAL_TRANSITIONS:
            self.degraded[edge] = self.degraded.get(edge, 0) + 1
        return True

    @property
    def is_quiescent(self):
        return self.state in SA_QUIESCENT_STATES

    # ------------------------------------------------------------------
    # Intents (called by the IRS components)
    # ------------------------------------------------------------------

    def offer(self):
        """Sender: a fresh activation offer starts a new round."""
        self.round += 1
        self._limbo_task = None
        self._spurious = False
        return self._transition(EDGE_OFFER)

    def retry(self):
        """Sender: the upcall (or its ack) is being re-sent."""
        return self._transition(EDGE_RETRY)

    def upcall(self):
        """Receiver: the guest handler is entering. Resolves to the
        normal edge, the lost-ack re-entry, or — from a quiescent
        state — a spurious round that will close without a sender
        handshake."""
        if self.state in SA_QUIESCENT_STATES:
            self._limbo_task = None
            self._spurious = True
            return self._transition(EDGE_SPURIOUS_UPCALL)
        return self._transition(EDGE_UPCALL)

    def deschedule(self, task):
        """Context switcher: the switch is done; ``task`` (or nothing)
        went into migrator limbo."""
        self._limbo_task = task
        return self._transition(EDGE_DESCHEDULE)

    def ack(self):
        """Sender: the guest's acknowledgement landed. Resolves to the
        normal LIMBO handshake, an *early* ack (the guest blocked or
        yielded before finishing the upcall — e.g. CPU hotplug parked
        the vCPU mid-round), or a *late* ack (the round was already
        closed guest-side while the sender still waited)."""
        if self.state == SA_LIMBO:
            return self._transition(EDGE_ACK)
        if self.state in (SA_NOTIFIED, SA_SWITCHING):
            return self._transition(EDGE_EARLY_ACK)
        return self._transition(EDGE_LATE_ACK)

    def ack_sent(self):
        """Receiver: the guest issued its SCHEDOP answer. Rounds the
        sender will never handshake (spurious upcalls with no task to
        migrate) close here; everything else is driven by the sender
        or the migrator."""
        if (self._spurious and self.state == SA_LIMBO
                and self._limbo_task is None):
            return self._transition(EDGE_SPURIOUS_CLOSE)
        return True

    def timeout(self):
        """Sender: the grace window expired; the round is void."""
        self._limbo_task = None
        return self._transition(EDGE_TIMEOUT)

    def cancel(self):
        """Teardown (live-migration pause / VM detach)."""
        self._limbo_task = None
        self._spurious = False
        if self.state == SA_IDLE:
            return True                     # nothing in flight: no-op
        return self._transition(EDGE_CANCEL)

    def task_disposed(self, task, outcome):
        """Migrator: the limbo task of *some* round reached a terminal
        outcome ('migrated', 'parked_home', 'stranded' or 'stale').
        Only the current round's task moves the machine; disposals for
        superseded rounds are counted, not transitioned."""
        if task is None or task is not self._limbo_task:
            self.stale_disposals += 1
            return True
        self._limbo_task = None
        edge = {'migrated': EDGE_MIGRATED,
                'parked_home': EDGE_PARKED_HOME,
                'stranded': EDGE_STRANDED,
                'stale': EDGE_STALE_TASK}[outcome]
        return self._transition(edge)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def degraded_total(self):
        """Degraded-edge traversals so far (0 on an undisturbed run)."""
        return sum(self.degraded.values())

    def __repr__(self):
        return '<SaVcpuProtocol %s %s round=%d%s>' % (
            self.vcpu.name, self.state, self.round,
            ' degraded' if self.degraded else '')


def ensure_protocol(vcpu):
    """Return ``vcpu``'s protocol tracker, creating it on first use.
    The tracker lives on the vCPU (``vcpu.sa_protocol``) so the
    sanitizer and the fault plane can read it without importing this
    layer."""
    proto = vcpu.sa_protocol
    if proto is None:
        proto = SaVcpuProtocol(vcpu)
        vcpu.sa_protocol = proto
    return proto
