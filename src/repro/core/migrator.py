"""Migrator — the IRS load distributor (Algorithm 2, Section 3.3).

A system-wide kernel thread, woken asynchronously by the SA receiver.
For the task descheduled off a preemptee vCPU it searches the sibling
vCPUs for the best destination, probing *actual* hypervisor runstates
via ``HYPERVISOR_vcpu_op`` (preempted vCPUs still look "online" to the
guest, so the hypercall is the only truthful signal):

* an **idle** vCPU (blocked at the hypervisor with an empty runqueue)
  wins immediately — the task can run the moment the vCPU wake-boosts;
* otherwise the **running** vCPU with the smallest ``rt_avg`` load
  (which folds in steal time) is chosen;
* **runnable** (preempted) vCPUs are skipped — moving the task there
  would recreate the very problem being solved;
* with no target at all, the task is parked back on its original vCPU.

Tasks placed by the migrator carry the ``irs_tag`` that drives the
ping-pong-avoiding wakeup rule (Figure 4).
"""

from ..guestos.task import TASK_MIGRATING
from .config import IRSConfig


class Migrator:
    """Guest-side migration thread for SA-descheduled tasks."""

    def __init__(self, sim, kernel, hypercalls, config=None):
        self.sim = sim
        self.kernel = kernel
        self.hypercalls = hypercalls
        self.config = config or IRSConfig()
        self.migrations = 0
        self.fallbacks = 0

    def migrate(self, task, source_gcpu):
        """Move ``task`` (in migrator limbo) off ``source_gcpu``."""
        if task.state != TASK_MIGRATING:
            return None
        target = self._find_target(source_gcpu)
        if target is None:
            # No idle or running sibling: keep the task home; it runs
            # when the preempted vCPU is scheduled again.
            self.fallbacks += 1
            self.sim.trace.count('irs.migrator_fallbacks')
            self.kernel.migrate_limbo_task(task, source_gcpu)
            return source_gcpu
        self.migrations += 1
        self.kernel.migrate_limbo_task(task, target)
        return target

    def _find_target(self, source_gcpu):
        """Algorithm 2 (policy 'idle_first'): first idle vCPU, else the
        least-loaded running one. The other policies are ablations of
        the design choices the paper calls out (Section 3.3)."""
        policy = self.config.migrator_policy
        candidates = []
        for gcpu in self.kernel.gcpus:
            if gcpu is source_gcpu or not gcpu.online:
                continue
            state = self.hypercalls.vcpu_op_get_runstate(gcpu.vcpu)
            if state == 'blocked' and gcpu.is_guest_idle:
                if (policy == IRSConfig.POLICY_IDLE_FIRST
                        and self.config.prefer_idle_vcpu):
                    return gcpu
                candidates.append((gcpu, 0.0))
            elif state == 'running':
                candidates.append((gcpu, self._load_of(gcpu)))
            # runnable (preempted) or blocked-with-work: skip.
        if not candidates:
            return None
        if policy == IRSConfig.POLICY_RANDOM:
            rng = self.sim.rng.stream('irs.migrator.random')
            return rng.choice([gcpu for gcpu, __ in candidates])
        return min(candidates, key=lambda pair: pair[1])[0]

    def _load_of(self, gcpu):
        """Busyness under the configured policy: the paper's rt_avg
        (steal-aware) or the naive guest-only queue depth."""
        if self.config.migrator_policy == IRSConfig.POLICY_GUEST_LOAD_ONLY:
            return (gcpu.rq.nr_ready +
                    (1 if gcpu.current is not None else 0))
        return gcpu.load_metric()
