"""Migrator — the IRS load distributor (Algorithm 2, Section 3.3).

A system-wide kernel thread, woken asynchronously by the SA receiver.
For the task descheduled off a preemptee vCPU it searches the sibling
vCPUs for the best destination, probing *actual* hypervisor runstates
via ``HYPERVISOR_vcpu_op`` (preempted vCPUs still look "online" to the
guest, so the hypercall is the only truthful signal):

* an **idle** vCPU (blocked at the hypervisor with an empty runqueue)
  wins immediately — the task can run the moment the vCPU wake-boosts;
* otherwise the **running** vCPU with the smallest ``rt_avg`` load
  (which folds in steal time) is chosen;
* **runnable** (preempted) vCPUs are skipped — moving the task there
  would recreate the very problem being solved;
* with no target at all, the task is parked back on its original vCPU.

Tasks placed by the migrator carry the ``irs_tag`` that drives the
ping-pong-avoiding wakeup rule (Figure 4).

Graceful degradation (``IRSConfig.degradation_enabled``): runstate
probes may be stale or error out, and the move itself may die mid-way
(fault plane, :mod:`repro.faults`). The degradation path (a) treats an
erroring probe as "candidate unusable" instead of crashing the kernel
thread, (b) **re-validates** the chosen target's runstate immediately
before committing the move and aborts on a mismatch, and (c) *requeues*
an aborted or failed move with a small backoff, bounded by
``migrator_retries``, before falling back to parking the task home —
so a task is never stranded in migrator limbo.
"""

from ..faults.injector import HypercallFaultError
from ..guestos.task import TASK_MIGRATING
from ..obs.phases import PHASE_MIGRATE, migrate_track
from .config import IRSConfig


class Migrator:
    """Guest-side migration thread for SA-descheduled tasks."""

    def __init__(self, sim, kernel, hypercalls, config=None):
        self.sim = sim
        self.kernel = kernel
        self.hypercalls = hypercalls
        self.config = config or IRSConfig()
        self.migrations = 0
        self.fallbacks = 0
        self.aborts = 0          # moves aborted on re-validation
        self.retries = 0         # aborted/failed moves re-attempted
        self.recoveries = 0      # mid-move failures recovered home
        self._retry_counts = {}  # task -> requeue attempts so far

    def migrate(self, task, source_gcpu):
        """Move ``task`` (in migrator limbo) off ``source_gcpu``."""
        if task.state != TASK_MIGRATING:
            self._retry_counts.pop(task, None)
            self._dispose(task, source_gcpu, 'stale')
            self._end_span(task, outcome='stale')
            return None
        target = self._find_target(source_gcpu)
        if target is None:
            # No idle or running sibling: keep the task home; it runs
            # when the preempted vCPU is scheduled again.
            return self._fall_back_home(task, source_gcpu)
        if self.config.degradation_enabled:
            if not self._revalidate(target):
                # The probe that chose this target was stale: the vCPU
                # is no longer idle/running. Abort and requeue rather
                # than parking the task on a frozen vCPU.
                self.aborts += 1
                self.sim.trace.count('irs.migrator_aborts')
                return self._requeue(task, source_gcpu)
            injector = self.kernel.machine.fault_injector
            if (injector is not None
                    and injector.migration_fails(task, self.kernel)):
                # The move died mid-way; recover by requeueing.
                self.sim.trace.count('irs.migrator_failures')
                self.recoveries += 1
                self.sim.trace.count('irs.migrator_recoveries')
                return self._requeue(task, source_gcpu)
        else:
            injector = self.kernel.machine.fault_injector
            if (injector is not None
                    and injector.migration_fails(task, self.kernel)):
                # No degradation path: the task is stranded in limbo —
                # exactly the failure mode the defense exists for.
                self.sim.trace.count('irs.migrator_failures')
                self.sim.trace.count('irs.migrator_stranded')
                self._dispose(task, source_gcpu, 'stranded')
                self._end_span(task, outcome='stranded')
                return None
        self._retry_counts.pop(task, None)
        self.migrations += 1
        self.kernel.migrate_limbo_task(task, target)
        self._dispose(task, source_gcpu, 'migrated')
        self._end_span(task, outcome='migrated', target=target.name)
        return target

    def _dispose(self, task, source_gcpu, outcome):
        """Tell the source vCPU's SA protocol machine the limbo task of
        its round reached a terminal outcome."""
        proto = source_gcpu.vcpu.sa_protocol
        if proto is not None:
            proto.task_disposed(task, outcome)

    def _end_span(self, task, **detail):
        """Close the migrate-pick -> migrate-done span (opened by the
        SA receiver when it kicked us) on a terminal outcome."""
        spans = self.sim.trace.spans
        if spans.enabled:
            spans.end_phase(self.sim.now, PHASE_MIGRATE,
                            migrate_track(task.name), **detail)

    # ------------------------------------------------------------------
    # Degradation path
    # ------------------------------------------------------------------

    def _revalidate(self, target_gcpu):
        """Probe the chosen target once more right before the move;
        True when it is still a legal destination."""
        state = self._probe(target_gcpu.vcpu)
        if state is None:
            return False
        if state == 'blocked':
            return target_gcpu.is_guest_idle
        return state == 'running'

    def _requeue(self, task, source_gcpu):
        """Retry an aborted/failed move after a backoff, a bounded
        number of times; then park the task back home."""
        attempts = self._retry_counts.get(task, 0)
        if attempts < self.config.migrator_retries:
            self._retry_counts[task] = attempts + 1
            self.retries += 1
            self.sim.trace.count('irs.migrator_retries')
            self.sim.after(self.config.migrator_retry_ns,
                           self.migrate, task, source_gcpu)
            return None
        return self._fall_back_home(task, source_gcpu)

    def _fall_back_home(self, task, source_gcpu):
        self._retry_counts.pop(task, None)
        self.fallbacks += 1
        self.sim.trace.count('irs.migrator_fallbacks')
        self.kernel.migrate_limbo_task(task, source_gcpu)
        self._dispose(task, source_gcpu, 'parked_home')
        self._end_span(task, outcome='fallback')
        return source_gcpu

    def _probe(self, vcpu):
        """Runstate probe that survives injected hypercall errors
        (returns None when the probe fails and degradation is on)."""
        if not self.config.degradation_enabled:
            return self.hypercalls.vcpu_op_get_runstate(vcpu)
        try:
            return self.hypercalls.vcpu_op_get_runstate(vcpu)
        except HypercallFaultError:
            self.sim.trace.count('irs.migrator_probe_errors')
            return None

    # ------------------------------------------------------------------
    # Target search (Algorithm 2)
    # ------------------------------------------------------------------

    def _find_target(self, source_gcpu):
        """Algorithm 2 (policy 'idle_first'): first idle vCPU, else the
        least-loaded running one. The other policies are ablations of
        the design choices the paper calls out (Section 3.3)."""
        policy = self.config.migrator_policy
        candidates = []
        for gcpu in self.kernel.gcpus:
            if gcpu is source_gcpu or not gcpu.online:
                continue
            state = self._probe(gcpu.vcpu)
            if state is None:
                continue
            if state == 'blocked' and gcpu.is_guest_idle:
                if (policy == IRSConfig.POLICY_IDLE_FIRST
                        and self.config.prefer_idle_vcpu):
                    return gcpu
                candidates.append((gcpu, 0.0))
            elif state == 'running':
                candidates.append((gcpu, self._load_of(gcpu)))
            # runnable (preempted) or blocked-with-work: skip.
        if not candidates:
            return None
        if policy == IRSConfig.POLICY_RANDOM:
            rng = self.sim.rng.stream('irs.migrator.random')
            return rng.choice([gcpu for gcpu, __ in candidates])
        return min(candidates, key=lambda pair: pair[1])[0]

    def _load_of(self, gcpu):
        """Busyness under the configured policy: the paper's rt_avg
        (steal-aware) or the naive guest-only queue depth."""
        if self.config.migrator_policy == IRSConfig.POLICY_GUEST_LOAD_ONLY:
            return (gcpu.rq.nr_ready +
                    (1 if gcpu.current is not None else 0))
        return gcpu.load_metric()
