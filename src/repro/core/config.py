"""Configuration of the IRS prototype.

Defaults follow the paper: SA processing measured at 20–26 µs (Section
3.1), a hypervisor-side hard limit on SA completion to contain rogue
guests (Section 4.1), and the ping-pong-avoiding wakeup rule enabled
(Section 3.3 / Figure 4).
"""

from ..simkernel.units import MS, US


class IRSConfig:
    """Tunables of the scheduler-activation machinery."""

    #: Migrator target policies (Algorithm 2 and ablations thereof).
    POLICY_IDLE_FIRST = 'idle_first'        # paper: idle, else min rt_avg
    POLICY_LEAST_LOADED = 'least_loaded'    # min rt_avg, idle not special
    POLICY_GUEST_LOAD_ONLY = 'guest_load'   # ignore steal time entirely
    POLICY_RANDOM = 'random'                # any non-preempted sibling
    MIGRATOR_POLICIES = (POLICY_IDLE_FIRST, POLICY_LEAST_LOADED,
                         POLICY_GUEST_LOAD_ONLY, POLICY_RANDOM)

    def __init__(self, sa_handler_min_ns=20 * US, sa_handler_max_ns=26 * US,
                 sa_hard_limit_ns=200 * US, migrator_kick_ns=3 * US,
                 wakeup_preempt_tagged=True, prefer_idle_vcpu=True,
                 migrator_policy='idle_first', degradation_enabled=False,
                 sa_ack_retries=2, sa_retry_backoff_ns=50 * US,
                 sa_health_threshold=3, sa_health_backoff_ns=5 * MS,
                 migrator_retries=2, migrator_retry_ns=50 * US):
        if sa_handler_min_ns > sa_handler_max_ns:
            raise ValueError('sa handler min > max')
        if migrator_policy not in self.MIGRATOR_POLICIES:
            raise ValueError('unknown migrator policy %r' % migrator_policy)
        if sa_ack_retries < 0 or migrator_retries < 0:
            raise ValueError('retry counts must be >= 0')
        if sa_health_threshold < 1:
            raise ValueError('sa_health_threshold must be >= 1')
        # Guest-side SA processing time (vIRQ handling + one context
        # switch), sampled uniformly per activation.
        self.sa_handler_min_ns = sa_handler_min_ns
        self.sa_handler_max_ns = sa_handler_max_ns
        # Hypervisor bail-out: if the guest has not acknowledged within
        # this bound, the preemption proceeds without it.
        self.sa_hard_limit_ns = sa_hard_limit_ns
        # Asynchronous migrator wakeup latency (it is a kernel thread
        # that runs elsewhere, Section 4.2).
        self.migrator_kick_ns = migrator_kick_ns
        # The Figure 4 fix: waking tasks preempt IRS-tagged intruders in
        # place instead of being migrated away.
        self.wakeup_preempt_tagged = wakeup_preempt_tagged
        # Algorithm 2: stop the search at the first idle vCPU.
        self.prefer_idle_vcpu = prefer_idle_vcpu
        # Target-selection policy; non-default values are ablations.
        self.migrator_policy = migrator_policy
        # --- Graceful degradation (fault tolerance) ------------------
        # Master switch for every defense below. Off by default so the
        # fault-free reproduction stays bit-identical to the paper
        # figures; the harness enables it automatically whenever a
        # fault plan is active.
        self.degradation_enabled = degradation_enabled
        # On an SA-ack timeout, re-send the upcall up to this many
        # times, with exponential backoff starting here, before forcing
        # the preemption through.
        self.sa_ack_retries = sa_ack_retries
        self.sa_retry_backoff_ns = sa_retry_backoff_ns
        # Per-VM SA-health watchdog: after this many *consecutive*
        # exhausted offers the sender falls back to vanilla preemption
        # for the VM, re-arming after the backoff period.
        self.sa_health_threshold = sa_health_threshold
        self.sa_health_backoff_ns = sa_health_backoff_ns
        # Migrator requeue policy: on a stale/erroring probe or a
        # mid-move failure, retry the move this many times (spaced by
        # migrator_retry_ns) before parking the task back home.
        self.migrator_retries = migrator_retries
        self.migrator_retry_ns = migrator_retry_ns
