"""Context switcher — bottom half of the SA upcall (Section 3.2).

Implemented in the real system as the ``UPCALL_SOFTIRQ`` handler: it
deschedules the task running on the preemptee vCPU (faithfully
reflecting the vCPU's fate in the guest), marks it migrating, and
decides how to answer the hypervisor:

* ``SCHEDOP_block`` — the runqueue is now empty; the idle task takes
  over, so the vCPU should be parked blocked and later wake boosted;
* ``SCHEDOP_yield`` — other runnable tasks remain; the vCPU must stay
  runnable so they get CPU when the contention clears.

Returning the right operation is what keeps IRS from perturbing the
hypervisor's existing scheduling policies (I/O boosting in particular).
"""

from ..obs.phases import PHASE_DESCHEDULE


class ContextSwitcher:
    """Deschedules the preemptee vCPU's current task."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.switches = 0

    def switch(self, gcpu):
        """Perform the context switch. Returns ``(op, descheduled_task)``
        where ``op`` is the SCHEDOP string to acknowledge with and the
        task is None if the vCPU was running nothing migratable."""
        op, task = self.kernel.sa_context_switch(gcpu)
        proto = gcpu.vcpu.sa_protocol
        if proto is not None:
            proto.deschedule(task)
        if task is not None:
            self.switches += 1
            self.kernel.sim.trace.count('irs.context_switches')
        spans = self.kernel.sim.trace.spans
        if spans.enabled:
            spans.instant(self.kernel.sim.now, PHASE_DESCHEDULE,
                          gcpu.vcpu.name, op=op,
                          task=task.name if task is not None else None)
        return op, task
