"""IRS — interference-resilient scheduling (the paper's contribution).

Wires the four components of Figure 3 into a machine and a guest:
SA sender (hypervisor), SA receiver, context switcher, and migrator
(guest). Use :func:`install_irs` for the usual case.
"""

from .config import IRSConfig
from .context_switcher import ContextSwitcher
from .migrator import Migrator
from .pull_irs import PullMigrator, install_pull_irs
from .receiver import SaReceiver
from .sender import SaSender


def install_irs(machine, kernels, config=None):
    """Enable IRS on ``machine`` for the guests in ``kernels``.

    Attaches one :class:`SaSender` to the hypervisor and, per guest, a
    :class:`SaReceiver` (with its context switcher and migrator). The
    guests' wake balancers gain the tagged-task preemption rule. VMs
    whose kernels are not listed keep vanilla behaviour and simply never
    receive activations.

    Returns the sender.
    """
    config = config or IRSConfig()
    sender = SaSender(machine.sim, machine, config)
    machine.attach_sa_sender(sender)
    for kernel in kernels:
        kernel.attach_sa_receiver(
            SaReceiver(machine.sim, kernel, config),
            wake_rule=config.wakeup_preempt_tagged)
    return sender


__all__ = [
    'ContextSwitcher',
    'IRSConfig',
    'install_irs',
    'install_pull_irs',
    'Migrator',
    'PullMigrator',
    'SaReceiver',
    'SaSender',
]
