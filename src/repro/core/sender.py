"""SA sender — the hypervisor half of IRS (Algorithm 1, top).

Sits on the credit scheduler's preemption path. When an involuntary
preemption targets a running, still-runnable vCPU of an IRS-capable
guest with no activation already pending, the sender:

1. sets the per-vCPU ``sa_pending`` flag,
2. delivers ``VIRQ_SA_UPCALL`` over the event channel,
3. lets the vCPU keep the pCPU until the guest acknowledges via
   ``HYPERVISOR_sched_op`` (the scheduler parks the context switch),
4. arms a hard-limit timeout so a rogue or wedged guest cannot hold the
   pCPU hostage (Section 4.1).
"""

from ..hypervisor.channels import VIRQ_SA_UPCALL
from .config import IRSConfig


class SaSender:
    """Hypervisor-side scheduler-activation emitter."""

    def __init__(self, sim, machine, config=None):
        self.sim = sim
        self.machine = machine
        self.config = config or IRSConfig()
        self._timeouts = {}          # vcpu -> Event
        self._offer_times = {}       # vcpu -> offer timestamp
        self.sent = 0
        self.timed_out = 0
        # Observed preemption-delay samples (offer -> acknowledgement),
        # the Section 3.1 "20-26 us" profile.
        self.delay_samples_ns = []

    def offer_preemption(self, vcpu):
        """Called by the credit scheduler before an involuntary
        preemption. Returns True if the preemption is deferred pending
        guest acknowledgement."""
        if not vcpu.vm.irs_capable:
            return False
        if vcpu.sa_pending:
            return False
        if not vcpu.is_running:
            return False
        gcpu = vcpu.gcpu
        if gcpu is None or gcpu.in_sa_handler:
            return False
        if gcpu.current is None:
            # Nothing to migrate; a plain preemption costs nothing.
            return False
        vcpu.sa_pending = True
        self.sent += 1
        self._offer_times[vcpu] = self.sim.now
        self.sim.trace.count('irs.sa_sent')
        self._timeouts[vcpu] = self.sim.after(
            self.config.sa_hard_limit_ns, self._hard_limit, vcpu)
        self.machine.channels.send_virq(vcpu, VIRQ_SA_UPCALL)
        return True

    def acknowledge(self, vcpu):
        """Guest acknowledged: clear the pending flag so the next round
        of SA can fire (Algorithm 1 line 16)."""
        vcpu.sa_pending = False
        offered_at = self._offer_times.pop(vcpu, None)
        if offered_at is not None:
            self.delay_samples_ns.append(self.sim.now - offered_at)
        timeout = self._timeouts.pop(vcpu, None)
        if timeout is not None:
            timeout.cancel()

    def _hard_limit(self, vcpu):
        """The guest never answered: force the preemption through."""
        self._timeouts.pop(vcpu, None)
        self._offer_times.pop(vcpu, None)
        if not vcpu.sa_pending:
            return
        vcpu.sa_pending = False
        self.timed_out += 1
        self.sim.trace.count('irs.sa_timeouts')
        pcpu = vcpu.pcpu
        if pcpu.preempt_deferred and pcpu.current is vcpu:
            if vcpu.gcpu is not None:
                vcpu.gcpu.in_sa_handler = False
            self.machine.scheduler.complete_deferred_preemption(
                vcpu, block=False)
