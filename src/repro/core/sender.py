"""SA sender — the hypervisor half of IRS (Algorithm 1, top).

Sits on the credit scheduler's preemption path. When an involuntary
preemption targets a running, still-runnable vCPU of an IRS-capable
guest with no activation already pending, the sender:

1. sets the per-vCPU ``sa_pending`` flag,
2. delivers ``VIRQ_SA_UPCALL`` over the event channel,
3. lets the vCPU keep the pCPU until the guest acknowledges via
   ``HYPERVISOR_sched_op`` (the scheduler parks the context switch),
4. arms a hard-limit timeout so a rogue or wedged guest cannot hold the
   pCPU hostage (Section 4.1).

Graceful degradation (``IRSConfig.degradation_enabled``): when the
notification channel is unreliable — upcalls lost, acks swallowed — the
timeout no longer silently wastes the grace window every slice. An
exhausted offer is first *retried* (the upcall is re-sent with
exponential backoff, still bounded), and a per-VM
:class:`SaHealthWatchdog` tracks consecutive failures; past a threshold
the sender stops offering activations to that VM entirely — vanilla
preemption, the behaviour IRS gracefully degrades *to* — and re-arms
after a backoff period so a recovered channel wins the protocol back.
"""

from ..hypervisor.channels import VIRQ_SA_UPCALL
from ..obs.phases import PHASE_ACK, PHASE_OFFER, PHASE_VIRQ
from .config import IRSConfig
from .protocol import ensure_protocol


class SaHealthWatchdog:
    """Per-VM health of the SA notification channel.

    Consecutive exhausted offers (all retries timed out) trip the VM
    into a *degraded* window during which :meth:`allow` is False and
    preemptions proceed vanilla-style. The window re-arms
    automatically: after ``sa_health_backoff_ns`` the next offer is
    allowed through as a probe, and one acknowledged activation resets
    the failure count entirely.
    """

    def __init__(self, sim, config):
        self.sim = sim
        self.config = config
        self._failures = {}        # vm -> consecutive exhausted offers
        self._degraded_until = {}  # vm -> time the fallback window ends
        self.fallbacks = 0         # degraded windows opened
        self.rearms = 0            # windows that expired (channel retried)

    def allow(self, vm):
        """May the sender offer an activation to ``vm`` right now?"""
        until = self._degraded_until.get(vm)
        if until is None:
            return True
        if self.sim.now >= until:
            # Window over: re-arm, let the next offer probe the channel.
            del self._degraded_until[vm]
            self.rearms += 1
            self.sim.trace.count('irs.sa_health_rearms')
            return True
        return False

    def record_success(self, vm):
        self._failures[vm] = 0

    def record_failure(self, vm):
        count = self._failures.get(vm, 0) + 1
        self._failures[vm] = count
        if count >= self.config.sa_health_threshold:
            self._failures[vm] = 0
            self._degraded_until[vm] = (self.sim.now +
                                        self.config.sa_health_backoff_ns)
            self.fallbacks += 1
            self.sim.trace.count('irs.sa_health_fallbacks')

    def is_degraded(self, vm):
        """True while ``vm`` is inside a vanilla-fallback window."""
        until = self._degraded_until.get(vm)
        return until is not None and self.sim.now < until


class SaSender:
    """Hypervisor-side scheduler-activation emitter."""

    def __init__(self, sim, machine, config=None):
        self.sim = sim
        self.machine = machine
        self.config = config or IRSConfig()
        self.health = SaHealthWatchdog(sim, self.config)
        self._timeouts = {}          # vcpu -> Event
        self._offer_times = {}       # vcpu -> offer timestamp
        self._attempts = {}          # vcpu -> re-sends for current offer
        self.sent = 0
        self.timed_out = 0
        self.retried = 0
        self.suppressed = 0          # offers skipped while degraded
        self.duplicate_acks = 0
        # Observed preemption-delay samples (offer -> acknowledgement),
        # the Section 3.1 "20-26 us" profile.
        self.delay_samples_ns = []

    def offer_preemption(self, vcpu):
        """Called by the credit scheduler before an involuntary
        preemption. Returns True if the preemption is deferred pending
        guest acknowledgement."""
        if not vcpu.vm.irs_capable:
            return False
        if vcpu.sa_pending:
            return False
        if not vcpu.is_running:
            return False
        gcpu = vcpu.gcpu
        if gcpu is None or gcpu.in_sa_handler:
            return False
        if gcpu.current is None:
            # Nothing to migrate; a plain preemption costs nothing.
            return False
        if self.config.degradation_enabled and not self.health.allow(vcpu.vm):
            # Watchdog says the SA channel is unhealthy: degrade to a
            # vanilla preemption instead of burning the grace window.
            self.suppressed += 1
            self.sim.trace.count('irs.sa_suppressed')
            return False
        ensure_protocol(vcpu).offer()
        vcpu.sa_pending = True
        self.sent += 1
        vcpu.sa_offers += 1
        self._offer_times[vcpu] = self.sim.now
        self.sim.trace.count('irs.sa_sent')
        spans = self.sim.trace.spans
        if spans.enabled:
            # Span probes: the offer covers the whole offer->ack chain;
            # the vIRQ leg closes when the guest handler picks it up.
            spans.begin(self.sim.now, PHASE_OFFER, vcpu.name,
                        vm=vcpu.vm.name)
            spans.begin(self.sim.now, PHASE_VIRQ, vcpu.name)
        self._timeouts[vcpu] = self.sim.after(
            self.config.sa_hard_limit_ns, self._hard_limit, vcpu)
        self.machine.channels.send_virq(vcpu, VIRQ_SA_UPCALL)
        return True

    def acknowledge(self, vcpu):
        """Guest acknowledged: clear the pending flag so the next round
        of SA can fire (Algorithm 1 line 16). A duplicate ack (no offer
        outstanding) is counted and otherwise ignored."""
        if not vcpu.sa_pending and vcpu not in self._timeouts:
            self.duplicate_acks += 1
            self.sim.trace.count('irs.sa_dup_acks')
            return
        if vcpu.sa_protocol is not None:
            vcpu.sa_protocol.ack()
        vcpu.sa_pending = False
        self._attempts.pop(vcpu, None)
        offered_at = self._offer_times.pop(vcpu, None)
        if offered_at is not None:
            self.delay_samples_ns.append(self.sim.now - offered_at)
        timeout = self._timeouts.pop(vcpu, None)
        if timeout is not None:
            timeout.cancel()
        spans = self.sim.trace.spans
        if spans.enabled:
            spans.end_phase(self.sim.now, PHASE_ACK, vcpu.name)
            spans.end_phase(self.sim.now, PHASE_OFFER, vcpu.name,
                            outcome='acked')
        self.health.record_success(vcpu.vm)

    def cancel_offer(self, vcpu):
        """Withdraw an outstanding offer without recording an outcome
        (live-migration pause: the vCPU is leaving the host, so the
        protocol round is void — no delay sample, no health verdict)."""
        timeout = self._timeouts.pop(vcpu, None)
        if timeout is not None:
            timeout.cancel()
        had_offer = self._offer_times.pop(vcpu, None) is not None
        self._attempts.pop(vcpu, None)
        if vcpu.sa_protocol is not None:
            vcpu.sa_protocol.cancel()
        vcpu.sa_pending = False
        spans = self.sim.trace.spans
        if had_offer and spans.enabled:
            spans.end_phase(self.sim.now, PHASE_OFFER, vcpu.name,
                            outcome='cancelled')

    def _hard_limit(self, vcpu):
        """The guest never answered within the grace window: retry the
        upcall (degradation path) or force the preemption through."""
        self._timeouts.pop(vcpu, None)
        if not vcpu.sa_pending:
            self._offer_times.pop(vcpu, None)
            self._attempts.pop(vcpu, None)
            return
        pcpu = vcpu.pcpu
        deferred = pcpu.preempt_deferred and pcpu.current is vcpu
        attempts = self._attempts.get(vcpu, 0)
        if (self.config.degradation_enabled and deferred
                and attempts < self.config.sa_ack_retries):
            # Retry-with-backoff: the upcall (or its ack) may have been
            # lost; re-send and extend the window exponentially.
            if vcpu.sa_protocol is not None:
                vcpu.sa_protocol.retry()
            self._attempts[vcpu] = attempts + 1
            self.retried += 1
            self.sim.trace.count('irs.sa_retries')
            backoff = self.config.sa_retry_backoff_ns << attempts
            spans = self.sim.trace.spans
            if spans.enabled:
                spans.begin(self.sim.now, PHASE_VIRQ, vcpu.name,
                            retry=attempts + 1)
            self._timeouts[vcpu] = self.sim.after(
                backoff, self._hard_limit, vcpu)
            self.machine.channels.send_virq(vcpu, VIRQ_SA_UPCALL)
            return
        self._offer_times.pop(vcpu, None)
        self._attempts.pop(vcpu, None)
        if vcpu.sa_protocol is not None:
            vcpu.sa_protocol.timeout()
        vcpu.sa_pending = False
        self.timed_out += 1
        self.sim.trace.count('irs.sa_timeouts')
        spans = self.sim.trace.spans
        if spans.enabled:
            # Closing the offer also closes any legs still open under
            # it (undelivered vIRQ, interrupted upcall, lost ack).
            spans.end_phase(self.sim.now, PHASE_OFFER, vcpu.name,
                            outcome='timeout')
        if self.config.degradation_enabled:
            self.health.record_failure(vcpu.vm)
        if deferred:
            if vcpu.gcpu is not None:
                vcpu.gcpu.in_sa_handler = False
            self.machine.scheduler.complete_deferred_preemption(
                vcpu, block=False)
