"""The ``sa-latency`` report: per-phase latency summaries as rows.

Pure data-shaping: given a :class:`~repro.obs.histograms.MetricsRegistry`
(live or a :class:`~repro.metrics.collector.RunMetrics` snapshot),
produce the headers/rows the CLI table and the benchmarks consume.
Kept free of experiment-layer imports so :mod:`repro.obs` never needs
the harness.
"""

from .histograms import MetricsRegistry
from .phases import ALL_PHASES, PHASE_DESCRIPTIONS

SA_LATENCY_HEADERS = ('phase', 'samples', 'p50 (us)', 'p90 (us)',
                      'p99 (us)', 'max (us)', 'meaning')


def _us(value_ns):
    return value_ns / 1000.0


def phase_summaries(registry, phases=ALL_PHASES):
    """``{phase: summary-dict}`` for every phase with recorded samples,
    in taxonomy order."""
    out = {}
    for phase in phases:
        metric = registry.get(phase)
        if metric is None or metric.kind != 'histogram' or metric.count == 0:
            continue
        out[phase] = metric.summary()
    return out


def sa_latency_rows(registry, phases=ALL_PHASES):
    """(headers, rows, notes) of the per-phase latency table.

    ``notes`` maps each phase to its summary dict with additional
    ``*_us`` conveniences, ready for test assertions.
    """
    rows = []
    notes = {}
    for phase, summary in phase_summaries(registry, phases).items():
        rows.append([
            phase,
            '%d' % summary['count'],
            '%.1f' % _us(summary['p50']),
            '%.1f' % _us(summary['p90']),
            '%.1f' % _us(summary['p99']),
            '%.1f' % _us(summary['max']),
            PHASE_DESCRIPTIONS.get(phase, ''),
        ])
        notes[phase] = dict(
            summary,
            p50_us=_us(summary['p50']),
            p90_us=_us(summary['p90']),
            p99_us=_us(summary['p99']),
            min_us=_us(summary['min']),
            max_us=_us(summary['max']),
        )
    return list(SA_LATENCY_HEADERS), rows, notes


def explain_empty(strategy, spans_enabled):
    """Why an SA-latency table has no rows - surfaced instead of a
    table of zeros (CLI polish, not an error)."""
    if not spans_enabled:
        return ('span recording was disabled for this run; enable '
                'observability (e.g. --trace-out or observe=True) to '
                'collect SA phase latencies')
    if strategy not in ('irs', 'delay_preempt'):
        return ("strategy %r never issues scheduler activations, so "
                "every SA phase histogram is empty; rerun with the "
                "'irs' strategy to profile the SA protocol" % strategy)
    return ('no scheduler activations fired during this run (no '
            'involuntary preemptions hit an SA-capable vCPU); lengthen '
            'the run or add interference')


#: Ring-overflow counters every report should surface: a saturated
#: ring means the exported window (and any span-derived view) is
#: missing the oldest data, which must not fail silently.
DROP_COUNTERS = (
    ('spans.dropped', 'span ring overflowed'),
    ('trace.dropped', 'trace-record ring overflowed'),
)


def drop_warnings(registry):
    """One warning line per saturated observability ring (empty when
    nothing was dropped). Reports print these verbatim."""
    warnings = []
    for name, what in DROP_COUNTERS:
        metric = registry.get(name)
        if metric is None or metric.kind != 'counter':
            continue
        if metric.value > 0:
            warnings.append(
                'warning: %s — %d oldest entries dropped; histograms '
                'and counters are complete, but exported windows are '
                'truncated (raise the ring capacity to keep them)'
                % (what, metric.value))
    return warnings


def format_text_report(registry, title='SA-protocol latency'):
    """Minimal aligned text rendering (for quick printing without the
    experiments reporting layer)."""
    headers, rows, __ = sa_latency_rows(registry)
    if not rows:
        return '%s: (no samples)' % title
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, '-' * len(title),
             '  '.join(h.ljust(w) for h, w in zip(headers, widths))]
    for row in rows:
        lines.append('  '.join(c.ljust(w) for c, w in zip(row, widths)))
    return '\n'.join(lines)


__all__ = [
    'DROP_COUNTERS',
    'MetricsRegistry',
    'SA_LATENCY_HEADERS',
    'drop_warnings',
    'explain_empty',
    'format_text_report',
    'phase_summaries',
    'sa_latency_rows',
]
