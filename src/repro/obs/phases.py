"""The SA-protocol phase taxonomy.

One span phase per leg of the scheduler-activation lifecycle
(Algorithm 1/2; Sections 3.1-3.3). Spans of one activation nest on the
preemptee vCPU's track::

    sa.offer                       hypervisor offers, waits for the ack
      sa.virq                      event-channel delivery of the upcall
      sa.upcall                    guest vIRQ handler + softirq bottom half
        sa.deschedule              context switch into migrator limbo
        sa.ack                     SCHEDOP ack hypercall back down
      sa.preempt_fire              the parked preemption finally completes

while the asynchronous migration runs on its own per-task track::

    sa.migrate                     migrate-pick -> migrate-done (or fallback)

The delay-preemption baseline contributes one phase of its own
(``dp.defer``) so its deferral windows are visible on the same
timeline. Histograms are registered under the phase name, so
``registry.histogram('sa.offer').summary()`` is the paper's
Section 3.1 "20-26 us" profile.
"""

#: Hypervisor offered an activation; ends at guest ack (or hard limit).
PHASE_OFFER = 'sa.offer'
#: VIRQ_SA_UPCALL in flight over the event channel.
PHASE_VIRQ = 'sa.virq'
#: Guest handler running: vIRQ entry to UPCALL_SOFTIRQ bottom half.
PHASE_UPCALL = 'sa.upcall'
#: Context switch of the doomed task into migrator limbo (instant).
PHASE_DESCHEDULE = 'sa.deschedule'
#: Acknowledgement hypercall travelling back to the hypervisor.
PHASE_ACK = 'sa.ack'
#: The deferred involuntary preemption completing (instant).
PHASE_PREEMPT_FIRE = 'sa.preempt_fire'
#: Migrator thread: target search to task placement (incl. requeues).
PHASE_MIGRATE = 'sa.migrate'
#: Delay-preemption baseline: one guest-requested no-preempt window.
PHASE_DP_DEFER = 'dp.defer'
#: Traffic plane: one request waiting in a replica's bounded queue
#: (dispatcher enqueue -> worker pickup).
PHASE_REQ_QUEUE = 'req.queue'
#: Traffic plane: one request's service execution on a worker task
#: (pickup -> completion; includes any vCPU steal stalls).
PHASE_REQ_SERVICE = 'req.service'

#: Report order: the offer -> ack chain first, then the async tail.
SA_PHASES = (
    PHASE_OFFER,
    PHASE_VIRQ,
    PHASE_UPCALL,
    PHASE_DESCHEDULE,
    PHASE_ACK,
    PHASE_PREEMPT_FIRE,
    PHASE_MIGRATE,
)

ALL_PHASES = SA_PHASES + (PHASE_DP_DEFER,)

#: The traffic plane's request phases (``repro.traffic``). Kept out of
#: :data:`ALL_PHASES` so the sa-latency report stays an SA-protocol
#: profile; the serving layer registers histograms under these names.
TRAFFIC_PHASES = (PHASE_REQ_QUEUE, PHASE_REQ_SERVICE)

#: Cluster plane: one live-migration leg on the VM's migration track
#: (source-side start -> target-side completion).
PHASE_CL_MIGRATE = 'cluster.migrate'
#: Cluster plane: the target-side arrival instant closing a migration.
PHASE_CL_MIGRATE_IN = 'cluster.migrate_in'
#: Cluster plane: an aborted migration rolling back to its source.
PHASE_CL_MIGRATE_ROLLBACK = 'cluster.migrate_rollback'

#: The cluster layer's span phases (``repro.cluster``). Like
#: :data:`TRAFFIC_PHASES`, kept out of :data:`ALL_PHASES`; the
#: cross-host trace stitching renders these on per-VM migration
#: tracks. Health/lifecycle *instants* on cluster tracks reuse the
#: event-kind vocabulary of :mod:`repro.obs.eventlog` instead, so the
#: trace and the event log tell one story under one set of names.
CLUSTER_PHASES = (PHASE_CL_MIGRATE, PHASE_CL_MIGRATE_IN,
                  PHASE_CL_MIGRATE_ROLLBACK)

#: Which span phase is open while an SA round sits in each (non-idle)
#: state of the per-vCPU protocol machine (``repro.core.protocol``).
#: Keyed by state *name* — this layer sits below core, so the names are
#: mirrored here as strings and a test asserts they match the enum.
SA_STATE_PHASES = {
    'notified': PHASE_VIRQ,        # upcall travelling to the guest
    'switching': PHASE_UPCALL,     # guest handler running
    'limbo': PHASE_ACK,            # ack (and any limbo task) in flight
    'acked': PHASE_PREEMPT_FIRE,   # parked preemption completing
    'migrated': PHASE_MIGRATE,     # round closed by a completed move
}

#: One-line meaning per phase (report/doc rendering).
PHASE_DESCRIPTIONS = {
    PHASE_OFFER: 'offer -> guest acknowledgement (the preemption delay)',
    PHASE_VIRQ: 'event-channel delivery of VIRQ_SA_UPCALL',
    PHASE_UPCALL: 'guest vIRQ handler + UPCALL_SOFTIRQ bottom half',
    PHASE_DESCHEDULE: 'context switch into migrator limbo',
    PHASE_ACK: 'SCHEDOP acknowledgement hypercall',
    PHASE_PREEMPT_FIRE: 'deferred preemption completing',
    PHASE_MIGRATE: 'migrator pick -> task placed (or parked home)',
    PHASE_DP_DEFER: 'delay-preemption no-preempt window',
    PHASE_REQ_QUEUE: 'request queueing delay (enqueue -> worker pickup)',
    PHASE_REQ_SERVICE: 'request service time (pickup -> completion)',
    PHASE_CL_MIGRATE: 'live-migration leg (source start -> target done)',
    PHASE_CL_MIGRATE_IN: 'migration arrival on the target host',
    PHASE_CL_MIGRATE_ROLLBACK: 'aborted migration rolled back to source',
}


def migrate_track(task_name):
    """Track name for the asynchronous migration of one task."""
    return 'migrate:%s' % task_name
