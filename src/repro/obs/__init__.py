"""Observability: spans, latency histograms, and trace exporters.

The instrumentation plane of the reproduction (docs/observability.md):

* :mod:`repro.obs.spans` - begin/end span recording with nesting and a
  bounded ring, owned by every :class:`~repro.simkernel.tracing.Tracer`;
* :mod:`repro.obs.phases` - the SA-protocol phase taxonomy the probes
  in ``repro.core`` and ``repro.hypervisor`` emit;
* :mod:`repro.obs.histograms` - log-bucketed latency histograms and
  the typed counter/gauge/histogram registry;
* :mod:`repro.obs.exporters` - Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and schema validation;
* :mod:`repro.obs.report` - the per-phase ``sa-latency`` summary.
"""

from .exporters import (
    chrome_trace_events,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .histograms import (
    CounterMetric,
    GaugeMetric,
    LogHistogram,
    MetricsRegistry,
)
from .phases import (
    ALL_PHASES,
    PHASE_ACK,
    PHASE_DESCHEDULE,
    PHASE_DP_DEFER,
    PHASE_MIGRATE,
    PHASE_OFFER,
    PHASE_PREEMPT_FIRE,
    PHASE_UPCALL,
    PHASE_VIRQ,
    SA_PHASES,
)
from .report import (
    explain_empty,
    format_text_report,
    phase_summaries,
    sa_latency_rows,
)
from .spans import Span, SpanRecorder

__all__ = [
    'ALL_PHASES',
    'CounterMetric',
    'GaugeMetric',
    'LogHistogram',
    'MetricsRegistry',
    'PHASE_ACK',
    'PHASE_DESCHEDULE',
    'PHASE_DP_DEFER',
    'PHASE_MIGRATE',
    'PHASE_OFFER',
    'PHASE_PREEMPT_FIRE',
    'PHASE_UPCALL',
    'PHASE_VIRQ',
    'SA_PHASES',
    'Span',
    'SpanRecorder',
    'chrome_trace_events',
    'explain_empty',
    'format_text_report',
    'load_chrome_trace',
    'phase_summaries',
    'sa_latency_rows',
    'validate_chrome_trace',
    'write_chrome_trace',
]
