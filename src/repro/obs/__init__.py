"""Observability: spans, latency histograms, and trace exporters.

The instrumentation plane of the reproduction (docs/observability.md):

* :mod:`repro.obs.spans` - begin/end span recording with nesting and a
  bounded ring, owned by every :class:`~repro.simkernel.tracing.Tracer`;
* :mod:`repro.obs.phases` - the SA-protocol phase taxonomy the probes
  in ``repro.core`` and ``repro.hypervisor`` emit;
* :mod:`repro.obs.histograms` - log-bucketed latency histograms and
  the typed counter/gauge/histogram registry (plus prefix-scoped,
  labelled per-host views);
* :mod:`repro.obs.exporters` - Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) with per-host cluster process groups and flow
  stitching, plus schema validation;
* :mod:`repro.obs.eventlog` - the structured cluster health event log
  (bounded, deterministic JSONL) and residency-timeline reconstruction;
* :mod:`repro.obs.exposition` - Prometheus-style text exposition of a
  registry snapshot;
* :mod:`repro.obs.report` - the per-phase ``sa-latency`` summary and
  ring-drop warnings.
"""

from .eventlog import (
    CLUSTER_EVENT_KINDS,
    EventLog,
    format_residency,
    read_jsonl,
    residency_timeline,
    vm_names,
)
from .exporters import (
    CLUSTER_TRACK_PREFIX,
    PID_CLUSTER_BASE,
    chrome_trace_events,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .exposition import render_exposition, write_exposition
from .histograms import (
    CounterMetric,
    GaugeMetric,
    LogHistogram,
    MetricsRegistry,
    ScopedRegistry,
)
from .phases import (
    ALL_PHASES,
    PHASE_ACK,
    PHASE_DESCHEDULE,
    PHASE_DP_DEFER,
    PHASE_MIGRATE,
    PHASE_OFFER,
    PHASE_PREEMPT_FIRE,
    PHASE_UPCALL,
    PHASE_VIRQ,
    SA_PHASES,
)
from .report import (
    drop_warnings,
    explain_empty,
    format_text_report,
    phase_summaries,
    sa_latency_rows,
)
from .spans import Span, SpanRecorder

__all__ = [
    'ALL_PHASES',
    'CLUSTER_EVENT_KINDS',
    'CLUSTER_TRACK_PREFIX',
    'CounterMetric',
    'EventLog',
    'GaugeMetric',
    'LogHistogram',
    'MetricsRegistry',
    'PHASE_ACK',
    'PHASE_DESCHEDULE',
    'PHASE_DP_DEFER',
    'PHASE_MIGRATE',
    'PHASE_OFFER',
    'PHASE_PREEMPT_FIRE',
    'PHASE_UPCALL',
    'PHASE_VIRQ',
    'PID_CLUSTER_BASE',
    'SA_PHASES',
    'ScopedRegistry',
    'Span',
    'SpanRecorder',
    'chrome_trace_events',
    'drop_warnings',
    'explain_empty',
    'format_residency',
    'format_text_report',
    'load_chrome_trace',
    'phase_summaries',
    'read_jsonl',
    'render_exposition',
    'residency_timeline',
    'sa_latency_rows',
    'validate_chrome_trace',
    'vm_names',
    'write_chrome_trace',
    'write_exposition',
]
