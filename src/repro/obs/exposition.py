"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

A snapshot writer, not a server: :func:`render_exposition` turns the
registry's typed metrics into the Prometheus text format (one ``# TYPE``
header per family, ``_total`` suffix on counters, histograms as
count/sum/quantile summaries), and :func:`write_exposition` drops it in
a file. Per-host labelled views come from
:meth:`~repro.obs.histograms.MetricsRegistry.scoped`: every metric a
scoped view creates remembers its *family* (the unscoped name) and its
labels, so ``host.host0.placements`` and ``host.host1.placements``
render as two samples of one labelled ``placements`` family::

    # TYPE repro_placements_total counter
    repro_placements_total{host="host0"} 3
    repro_placements_total{host="host1"} 5

Output is deterministic: families sort by name, samples by label
string. Durations stay in nanoseconds (the registry's native unit).
"""

_QUANTILES = ((50, '0.5'), (90, '0.9'), (99, '0.99'))


def _sanitize(name):
    """Prometheus-legal metric name: ``[a-zA-Z_][a-zA-Z0-9_]*``."""
    cleaned = ''.join(ch if (ch.isalnum() and ch.isascii()) or ch == '_'
                      else '_' for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = '_' + cleaned
    return cleaned


def _labels_text(labels):
    if not labels:
        return ''
    parts = ['%s="%s"' % (_sanitize(str(key)),
                          str(value).replace('\\', r'\\').replace('"', r'\"'))
             for key, value in sorted(labels.items())]
    return '{%s}' % ','.join(parts)


def _merge_labels(labels, **extra):
    merged = dict(labels)
    merged.update(extra)
    return merged


def render_exposition(registry, namespace='repro', prefixes=None):
    """The registry as Prometheus text-format lines (one string).

    ``prefixes`` optionally restricts output to metric names starting
    with any of the given prefixes (matched against the *registry*
    name, before family folding).
    """
    # family -> (kind, [(labels, metric), ...]); families sorted at emit.
    families = {}
    for name in registry.names(prefixes=prefixes):
        metric = registry.get(name)
        meta = registry.metric_meta(name)
        family, labels = meta if meta is not None else (name, {})
        entry = families.setdefault(family, (metric.kind, []))
        if entry[0] != metric.kind:
            raise TypeError('family %r mixes kinds %s and %s'
                            % (family, entry[0], metric.kind))
        entry[1].append((labels, metric))

    lines = []
    total_samples = 0
    for family in sorted(families):
        kind, samples = families[family]
        base = '%s_%s' % (_sanitize(namespace), _sanitize(family))
        samples.sort(key=lambda pair: _labels_text(pair[0]))
        if kind == 'counter':
            lines.append('# TYPE %s_total counter' % base)
            for labels, metric in samples:
                lines.append('%s_total%s %d'
                             % (base, _labels_text(labels), metric.value))
                total_samples += 1
        elif kind == 'gauge':
            lines.append('# TYPE %s gauge' % base)
            for labels, metric in samples:
                lines.append('%s%s %s'
                             % (base, _labels_text(labels), metric.value))
                total_samples += 1
        else:
            lines.append('# TYPE %s summary' % base)
            for labels, metric in samples:
                for q, quantile in _QUANTILES:
                    quantile_labels = _merge_labels(labels,
                                                    quantile=quantile)
                    lines.append('%s%s %.1f'
                                 % (base, _labels_text(quantile_labels),
                                    metric.percentile(q)))
                lines.append('%s_sum%s %d'
                             % (base, _labels_text(labels), metric.sum))
                lines.append('%s_count%s %d'
                             % (base, _labels_text(labels), metric.count))
                total_samples += 2 + len(_QUANTILES)
    text = '\n'.join(lines)
    return text + '\n' if text else ''


def write_exposition(path, registry, namespace='repro', prefixes=None):
    """Write the exposition snapshot to ``path``; returns the number of
    samples written (type headers excluded)."""
    text = render_exposition(registry, namespace=namespace,
                             prefixes=prefixes)
    with open(path, 'w') as handle:
        handle.write(text)
    return sum(1 for line in text.splitlines()
               if line and not line.startswith('#'))
