"""Trace exporters: Chrome trace-event JSON (Perfetto) and text.

:func:`chrome_trace_events` folds two data sources into one timeline:

* **TimelineRecorder samples** become pCPU occupancy tracks (which vCPU
  held each pCPU) and per-vCPU task tracks (which guest task each vCPU
  was executing) - the macro view;
* **SpanRecorder spans** become nested slices on per-track threads -
  the micro view of every SA-protocol leg (offer, vIRQ, upcall,
  deschedule, ack, preempt-fire, migrate).

The emitted JSON is the Chrome trace-event format: open it at
https://ui.perfetto.dev or ``chrome://tracing``. Timestamps are
microseconds (the format's unit); durations under a microsecond keep
fractional precision.

:func:`validate_chrome_trace` is the schema contract the exporter
tests (and any future exporter change) must keep: required keys,
balanced ``B``/``E`` nesting, and per-track timestamp monotonicity.
"""

import json

#: Process ids grouping the tracks in the trace viewer.
PID_HYPERVISOR = 1          # pCPU occupancy (who held each pCPU)
PID_GUEST = 2               # per-vCPU guest task execution
PID_SA = 3                  # SA/DP protocol spans

#: Cluster hosts get one process group each, starting here: the first
#: host (sorted by name) is pid 10, the next 11, and so on.
PID_CLUSTER_BASE = 10

#: Track-name prefix marking cluster-layer spans. The convention is
#: ``cluster/<host>/<subtrack>`` (subtracks: ``health``, ``placement``,
#: ``recovery``, ``mig:<vm>``); the exporter renders each host as its
#: own Perfetto process group.
CLUSTER_TRACK_PREFIX = 'cluster/'

#: Flow-event name linking a migration/recovery departure span to its
#: arrival span across host process groups (one arrow in Perfetto).
FLOW_NAME = 'cluster-flow'

_TRACK_SORT_HINT = {PID_HYPERVISOR: 'pCPUs', PID_GUEST: 'vCPU tasks',
                    PID_SA: 'SA protocol'}


def _us(value_ns):
    """ns -> trace-event microseconds (float keeps sub-us precision)."""
    return value_ns / 1000.0


def _meta(event_name, pid, tid, **args):
    return {'name': event_name, 'ph': 'M', 'ts': 0.0, 'pid': pid,
            'tid': tid, 'args': args}


def _complete(name, pid, tid, begin_ns, end_ns, args=None):
    event = {'name': name, 'ph': 'X', 'ts': _us(begin_ns),
             'dur': _us(end_ns - begin_ns), 'pid': pid, 'tid': tid}
    if args:
        event['args'] = args
    return event


# ----------------------------------------------------------------------
# Timeline-sample tracks
# ----------------------------------------------------------------------

def _merge_slices(samples, key_fn):
    """Collapse consecutive samples with equal ``key_fn(sample)`` into
    ``(key, begin_ns, end_ns)`` slices (None keys become gaps)."""
    slices = []
    current = None
    start = None
    last_time = None
    for sample in samples:
        key = key_fn(sample)
        if key != current:
            if current is not None:
                slices.append((current, start, sample.time))
            current = key
            start = sample.time
        last_time = sample.time
    if current is not None and last_time is not None and last_time > start:
        slices.append((current, start, last_time))
    return slices


def _pcpu_events(timeline, machine):
    """One track per pCPU; slices name the running vCPU."""
    events = []
    for pcpu in machine.pcpus:
        tid = pcpu.index

        def occupant(sample, _index=pcpu.index):
            for name, home in sample.vcpu_pcpus.items():
                if home == _index and sample.vcpu_states.get(name) == 'running':
                    return name
            return None

        events.append(_meta('thread_name', PID_HYPERVISOR, tid,
                            name='pCPU%d' % tid))
        for vcpu_name, begin, end in _merge_slices(timeline.samples,
                                                   occupant):
            events.append(_complete(vcpu_name, PID_HYPERVISOR, tid,
                                    begin, end))
    return events


def _vcpu_task_events(timeline, machine):
    """One track per vCPU; slices name the guest task it executed."""
    events = []
    tid = 0
    for vm in machine.vms:
        for vcpu in vm.vcpus:
            name = vcpu.name

            def running_task(sample, _name=name):
                if sample.vcpu_states.get(_name) != 'running':
                    return None
                return sample.vcpu_tasks.get(_name)

            events.append(_meta('thread_name', PID_GUEST, tid, name=name))
            for task, begin, end in _merge_slices(timeline.samples,
                                                  running_task):
                events.append(_complete(task, PID_GUEST, tid, begin, end))
            tid += 1
    return events


# ----------------------------------------------------------------------
# Span tracks
# ----------------------------------------------------------------------

def _span_events(spans):
    """Nested B/E slices per span track (X for zero-duration spans).

    Per-track ordering: at equal timestamps, ends before begins, deeper
    ends before shallower ones, shallower begins before deeper ones -
    exactly the order that keeps B/E properly nested.
    """
    by_track = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)
    events = []
    for tid, track in enumerate(sorted(by_track)):
        events.append(_meta('thread_name', PID_SA, tid, name=track))
        keyed = []
        for span in by_track[track]:
            args = dict(span.detail) if span.detail else None
            if span.duration_ns == 0:
                keyed.append(((span.begin_ns, 1, span.depth),
                              _complete(span.phase, PID_SA, tid,
                                        span.begin_ns, span.end_ns, args)))
                continue
            begin = {'name': span.phase, 'ph': 'B',
                     'ts': _us(span.begin_ns), 'pid': PID_SA, 'tid': tid}
            if args:
                begin['args'] = args
            end = {'name': span.phase, 'ph': 'E',
                   'ts': _us(span.end_ns), 'pid': PID_SA, 'tid': tid}
            keyed.append(((span.begin_ns, 1, span.depth), begin))
            keyed.append(((span.end_ns, 0, -span.depth), end))
        keyed.sort(key=lambda pair: pair[0])
        events.extend(event for __, event in keyed)
    return events


# ----------------------------------------------------------------------
# Cluster tracks (per-host process groups + flow stitching)
# ----------------------------------------------------------------------

def _split_track(track):
    """``cluster/<host>/<subtrack>`` -> (host, subtrack)."""
    parts = track.split('/', 2)
    host = parts[1] if len(parts) > 1 else '?'
    subtrack = parts[2] if len(parts) > 2 else 'events'
    return host, subtrack

def _cluster_events(spans):
    """Cluster spans as per-host Perfetto process groups.

    Each host becomes one process (pid = :data:`PID_CLUSTER_BASE` + its
    rank among sorted host names); each subtrack one thread. Spans
    render as ``X`` slices - never ``B``/``E``, because overlapping
    migrations on one host would interleave - and zero-duration spans
    without flow detail become ``i`` instants. A span whose detail says
    ``flow='start'`` additionally emits a ``s`` flow event, and
    ``flow='end'`` an ``f`` (binding to the enclosing slice's end),
    both carrying ``id`` = the shared ``flow_id`` - that is the arrow
    Perfetto draws from the source-host slice to the target-host slice
    of one migration or orphan recovery.
    """
    by_host = {}
    for span in spans:
        host, subtrack = _split_track(span.track)
        by_host.setdefault(host, {}).setdefault(subtrack, []).append(span)

    events = []
    for rank, host in enumerate(sorted(by_host)):
        pid = PID_CLUSTER_BASE + rank
        events.append(_meta('process_name', pid, 0, name='host:%s' % host))
        events.append(_meta('process_sort_index', pid, 0, sort_index=pid,
                            label=host))
        for tid, subtrack in enumerate(sorted(by_host[host])):
            events.append(_meta('thread_name', pid, tid, name=subtrack))
            keyed = []
            for span in by_host[host][subtrack]:
                args = dict(span.detail) if span.detail else {}
                flow = args.get('flow')
                flow_id = args.get('flow_id')
                if span.duration_ns == 0 and flow is None:
                    instant = {'name': span.phase, 'ph': 'i',
                               'ts': _us(span.begin_ns), 'pid': pid,
                               'tid': tid, 's': 't'}
                    if args:
                        instant['args'] = args
                    keyed.append(((span.begin_ns, 0), instant))
                    continue
                keyed.append(((span.begin_ns, 0),
                              _complete(span.phase, pid, tid, span.begin_ns,
                                        span.end_ns, args or None)))
                if flow is not None and flow_id is not None:
                    # Flow companions sit inside the carrying slice so
                    # the viewer can bind the arrow endpoints to it.
                    flow_event = {'name': FLOW_NAME, 'cat': 'cluster',
                                  'ts': _us(span.begin_ns), 'pid': pid,
                                  'tid': tid, 'id': flow_id,
                                  'ph': 's' if flow == 'start' else 'f'}
                    if flow != 'start':
                        flow_event['bp'] = 'e'
                    keyed.append(((span.begin_ns, 1), flow_event))
            keyed.sort(key=lambda pair: pair[0])
            events.extend(event for __, event in keyed)
    return events


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def chrome_trace_events(machine=None, timeline=None, spans=None):
    """Build the trace-event list from whatever sources are given."""
    events = [
        _meta('process_name', PID_HYPERVISOR, 0, name='hypervisor'),
        _meta('process_name', PID_GUEST, 0, name='guest'),
        _meta('process_name', PID_SA, 0, name='sa-protocol'),
    ]
    for pid, label in _TRACK_SORT_HINT.items():
        events.append(_meta('process_sort_index', pid, 0, sort_index=pid,
                            label=label))
    if timeline is not None and machine is not None and timeline.samples:
        events.extend(_pcpu_events(timeline, machine))
        events.extend(_vcpu_task_events(timeline, machine))
    if spans is not None:
        sa_spans = []
        cluster_spans = []
        for span in spans.spans:
            if span.track.startswith(CLUSTER_TRACK_PREFIX):
                cluster_spans.append(span)
            else:
                sa_spans.append(span)
        if sa_spans:
            events.extend(_span_events(sa_spans))
        if cluster_spans:
            events.extend(_cluster_events(cluster_spans))
    return events


def write_chrome_trace(path, machine=None, timeline=None, spans=None,
                       now_ns=None):
    """Serialize the trace to ``path``. Open spans are flushed first so
    in-flight protocol legs still show up (marked ``truncated``).
    Returns the number of events written."""
    if spans is not None and now_ns is not None:
        spans.flush_open(now_ns)
    events = chrome_trace_events(machine=machine, timeline=timeline,
                                 spans=spans)
    document = {'traceEvents': events, 'displayTimeUnit': 'ms'}
    with open(path, 'w') as handle:
        json.dump(document, handle, indent=None, separators=(',', ':'))
        handle.write('\n')
    return len(events)


def validate_chrome_trace(events):
    """Schema contract for the emitted events. Returns a list of
    problem strings (empty = valid).

    Checks: required keys on every event, balanced and LIFO-nested
    ``B``/``E`` pairs per (pid, tid) track, non-decreasing ``ts`` per
    track in file order, ``id`` on every flow event (``s``/``t``/``f``),
    and no flow-end (``f``) whose ``id`` never had a flow-start.
    """
    problems = []
    last_ts = {}
    stacks = {}
    flow_starts = set()
    flow_ends = []
    for i, event in enumerate(events):
        for key in ('ph', 'ts', 'pid', 'tid'):
            if key not in event:
                problems.append('event %d missing %r: %r' % (i, key, event))
        if problems and len(problems) > 20:
            return problems
        ph = event.get('ph')
        track = (event.get('pid'), event.get('tid'))
        ts = event.get('ts')
        if ph != 'M' and isinstance(ts, (int, float)):
            if ts < last_ts.get(track, 0.0):
                problems.append(
                    'event %d: ts %.3f goes backwards on track %r'
                    % (i, ts, track))
            last_ts[track] = ts
        if ph == 'B':
            stacks.setdefault(track, []).append(event)
        elif ph == 'E':
            stack = stacks.get(track)
            if not stack:
                problems.append('event %d: E without B on track %r'
                                % (i, track))
            else:
                begin = stack.pop()
                if begin.get('name') != event.get('name'):
                    problems.append(
                        'event %d: E %r interleaves with open B %r on '
                        'track %r' % (i, event.get('name'),
                                      begin.get('name'), track))
        elif ph == 'X' and 'dur' not in event:
            problems.append('event %d: X without dur' % i)
        elif ph in ('s', 't', 'f'):
            if 'id' not in event:
                problems.append('event %d: flow %r without id' % (i, ph))
            elif ph == 's':
                flow_starts.add(event['id'])
            elif ph == 'f':
                flow_ends.append((i, event['id']))
    # Second pass: hosts are grouped in file order, so a flow-end on an
    # earlier host may precede its start on a later one - match by id
    # only after every start has been seen.
    for i, flow_id in flow_ends:
        if flow_id not in flow_starts:
            problems.append('event %d: flow-end id %r without a '
                            'flow-start' % (i, flow_id))
    for track, stack in stacks.items():
        if stack:
            problems.append('track %r: %d unbalanced B events'
                            % (track, len(stack)))
    return problems


def load_chrome_trace(path):
    """Read back a trace written by :func:`write_chrome_trace`."""
    with open(path) as handle:
        document = json.load(handle)
    return document['traceEvents']
