"""Log-bucketed latency histograms and the typed metrics registry.

The histogram is HdrHistogram-shaped: values land in power-of-two major
buckets, each split into :data:`SUB_BUCKETS` linear sub-buckets, so the
relative quantile error is bounded (~1/SUB_BUCKETS) at every magnitude
while storage stays O(log(max) * SUB_BUCKETS) regardless of sample
count. That is what lets a multi-second run keep full-fidelity
percentiles of 20 µs scheduler-activation phases without retaining the
samples themselves.

The :class:`MetricsRegistry` is the typed face of the measurement
plane: named counters, gauges, and histograms created on first use.
:class:`~repro.metrics.collector.RunMetrics` snapshots it at the end of
a run instead of prefix-scraping a raw ``Counter``.

This module is dependency-free on purpose: :mod:`repro.simkernel.tracing`
imports it, so it must not import anything from the simkernel.
"""

import math

#: Linear sub-buckets per power-of-two octave. 16 gives <= ~6% relative
#: quantile error - tight enough to resolve the paper's 20-26 us band.
SUB_BUCKETS = 16

# ----------------------------------------------------------------------
# The metric-name taxonomy
# ----------------------------------------------------------------------
#
# Every counter/gauge/histogram name emitted anywhere in ``src/repro``
# is declared here (or is a span phase from :mod:`repro.obs.phases`, or
# an event kind from :mod:`repro.obs.eventlog` — span durations and
# health markers register under those vocabularies). The static
# taxonomy-drift lint (``tools/replint``) cross-checks emission sites
# against these sets, so a metric can no longer be born by typo: an
# undeclared name fails the build instead of silently falling out of
# every registry-driven report.

#: Full metric names, grouped by emitting subsystem.
DECLARED_METRICS = frozenset((
    # hypervisor substrate
    'hv.preemptions', 'hv.rebalances', 'hv.repicks', 'hv.steals',
    'hv.wakes',
    'virq.delivered', 'virq.dropped', 'virq.pended',
    'ple.exits',
    'relaxedco.costops', 'relaxedco.switches',
    'dp.budget_exhausted', 'dp.deferrals',
    'balancesched.vetoes',
    # guest kernel
    'guest.block_waits', 'guest.cpu_offline', 'guest.cpu_online',
    'guest.nohz_kicks', 'guest.pulls', 'guest.spin_waits',
    'guest.stopper_migrations', 'guest.task_exits', 'guest.wakeups',
    # IRS core (sender / receiver / context switcher / migrator)
    'irs.context_switches', 'irs.migrations', 'irs.migrator_aborts',
    'irs.migrator_failures', 'irs.migrator_fallbacks',
    'irs.migrator_probe_errors', 'irs.migrator_recoveries',
    'irs.migrator_retries', 'irs.migrator_stranded', 'irs.pull_kicks',
    'irs.pulls', 'irs.sa_dup_acks', 'irs.sa_health_fallbacks',
    'irs.sa_health_rearms', 'irs.sa_retries', 'irs.sa_sent',
    'irs.sa_suppressed', 'irs.sa_timeouts',
    # fault plane / sanitizer
    'faults.injected',
    'sanitizer.checks', 'sanitizer.violations',
    # cluster control plane
    'cluster.admitted', 'cluster.drain_migrations',
    'cluster.duplicate_submits', 'cluster.host_crashes',
    'cluster.host_degrades', 'cluster.host_recoveries',
    'cluster.migration_aborts', 'cluster.migration_breaker_refusals',
    'cluster.migration_breaker_trips', 'cluster.migration_orphans',
    'cluster.migration_retries', 'cluster.migration_rollbacks',
    'cluster.migrations', 'cluster.migrations_done', 'cluster.parked',
    'cluster.quarantine_rearms', 'cluster.quarantines',
    'cluster.rebalance_rearms', 'cluster.rebalance_trips',
    'cluster.recoveries', 'cluster.recovery_retries',
    'cluster.rejected', 'cluster.retired', 'cluster.unparked',
    # traffic / serving plane
    'traffic.reroute', 'traffic.scale_downs', 'traffic.scale_rejected',
    'traffic.scale_ups', 'traffic.shed', 'traffic.unroutable',
    # observability self-accounting
    'spans.dropped', 'trace.dropped',
    # wall-clock pipeline profiling (experiments layer; not part of
    # the deterministic in-simulation vocabulary)
    'executor.dispatched', 'executor.run_wall_ns', 'executor.runs',
    'executor.timeout_retries', 'executor.wall_timeouts',
    'runcache.hit', 'runcache.miss', 'runcache.store',
))

#: Short per-scope family names used through :class:`ScopedRegistry`
#: views (``registry.scoped('host.host0.')`` etc.); the exposition
#: folds them into labelled families, so the *family* is the declared
#: unit, not each prefixed instance.
DECLARED_METRIC_FAMILIES = frozenset((
    # host scope ('host.<name>.')
    'adoptions', 'crashes', 'degrades', 'evictions', 'monitor_windows',
    'placements', 'recoveries', 'resident_vms', 'run_pressure',
    'steal_pressure',
    # SLO scope ('traffic.slo.')
    'attainment_ppm', 'burn_ppm', 'good', 'shed', 'slow',
))


class LogHistogram:
    """Fixed-memory histogram of non-negative integer durations (ns)."""

    __slots__ = ('name', 'count', 'sum', 'min', 'max', '_buckets')
    kind = 'histogram'

    def __init__(self, name='histogram'):
        self.name = name
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None
        self._buckets = {}      # bucket index -> count

    @staticmethod
    def _bucket_index(value):
        """Index of the (octave, sub-bucket) cell holding ``value``."""
        if value < SUB_BUCKETS:
            return value
        octave = value.bit_length() - 1
        # Width of one sub-bucket in this octave.
        sub = (value - (1 << octave)) * SUB_BUCKETS >> octave
        return octave * SUB_BUCKETS + sub

    @staticmethod
    def _bucket_bounds(index):
        """(low, high) value range of bucket ``index`` (high exclusive)."""
        if index < SUB_BUCKETS:
            return index, index + 1
        octave, sub = divmod(index, SUB_BUCKETS)
        base = 1 << octave
        width = base // SUB_BUCKETS or 1
        low = base + sub * width
        return low, low + width

    def record(self, value_ns):
        """Add one sample. Negative durations are a caller bug."""
        if value_ns < 0:
            raise ValueError('negative duration %r' % value_ns)
        value_ns = int(value_ns)
        self.count += 1
        self.sum += value_ns
        if self.min is None or value_ns < self.min:
            self.min = value_ns
        if self.max is None or value_ns > self.max:
            self.max = value_ns
        index = self._bucket_index(value_ns)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def __len__(self):
        return self.count

    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p):
        """Approximate percentile via linear interpolation inside the
        bucket holding the rank; exact at the recorded min and max."""
        if not 0 <= p <= 100:
            raise ValueError('percentile must be in [0, 100]')
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index in sorted(self._buckets):
            n = self._buckets[index]
            if seen + n >= rank:
                low, high = self._bucket_bounds(index)
                frac = (rank - seen) / n
                value = low + (high - low) * frac
                # The true extremes are tracked exactly; never report
                # beyond them because of bucket granularity.
                return float(min(max(value, self.min), self.max))
            seen += n
        return float(self.max)

    def p50(self):
        return self.percentile(50)

    def p90(self):
        return self.percentile(90)

    def p99(self):
        return self.percentile(99)

    def summary(self):
        """Dict of the aggregates every report prints (ns)."""
        return {
            'count': self.count,
            'mean': self.mean(),
            'p50': self.p50(),
            'p90': self.p90(),
            'p99': self.p99(),
            'min': self.min if self.min is not None else 0,
            'max': self.max if self.max is not None else 0,
        }

    def merge(self, other):
        """Fold ``other``'s samples into this histogram."""
        if other.count == 0:
            return self
        self.count += other.count
        self.sum += other.sum
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        return self

    def copy(self, name=None):
        clone = LogHistogram(name or self.name)
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        clone._buckets = dict(self._buckets)
        return clone

    def __repr__(self):
        return '<LogHistogram %s n=%d>' % (self.name, self.count)


class CounterMetric:
    """Monotonic counter."""

    __slots__ = ('name', 'value')
    kind = 'counter'

    def __init__(self, name, value=0):
        self.name = name
        self.value = value

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError('counters only go up (got %r)' % amount)
        self.value += amount

    def __repr__(self):
        return '<Counter %s=%d>' % (self.name, self.value)


class GaugeMetric:
    """Last-write-wins instantaneous value."""

    __slots__ = ('name', 'value')
    kind = 'gauge'

    def __init__(self, name, value=0):
        self.name = name
        self.value = value

    def set(self, value):
        self.value = value

    def __repr__(self):
        return '<Gauge %s=%r>' % (self.name, self.value)


class ScopedRegistry:
    """Prefix-scoped, label-carrying view of a :class:`MetricsRegistry`.

    Every metric created through the view lives in the parent registry
    under ``prefix + name`` and remembers ``name`` as its *family* plus
    the view's labels — which is what lets the Prometheus exposition
    (:mod:`repro.obs.exposition`) fold ``host.host0.placements`` and
    ``host.host1.placements`` into one labelled family. The scope is
    also the isolation boundary the cluster layer relies on: two hosts
    with distinct prefixes can never increment each other's counters.
    """

    __slots__ = ('registry', 'prefix', 'labels')

    def __init__(self, registry, prefix, labels=None):
        self.registry = registry
        self.prefix = prefix
        self.labels = dict(labels or {})

    def _bind(self, metric, name):
        self.registry.set_meta(metric.name, name, self.labels)
        return metric

    def counter(self, name):
        return self._bind(self.registry.counter(self.prefix + name), name)

    def gauge(self, name):
        return self._bind(self.registry.gauge(self.prefix + name), name)

    def histogram(self, name):
        return self._bind(self.registry.histogram(self.prefix + name), name)

    def counter_values(self):
        """``{scoped-name: value}`` for this scope's counters only."""
        return {name[len(self.prefix):]: value
                for name, value in self.registry.counter_values(
                    prefixes=(self.prefix,)).items()}

    def __repr__(self):
        return '<ScopedRegistry %s%s>' % (self.prefix, self.labels or '')


class MetricsRegistry:
    """Named, typed metrics created on first use.

    A name is permanently bound to its first type; asking for the same
    name as a different type is a programming error and raises.
    """

    def __init__(self):
        self._metrics = {}
        self._meta = {}              # name -> (family, labels) for scopes

    def _get(self, name, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError('metric %r is a %s, not a %s'
                            % (name, metric.kind, kind))
        return metric

    def counter(self, name):
        return self._get(name, CounterMetric, 'counter')

    def gauge(self, name):
        return self._get(name, GaugeMetric, 'gauge')

    def histogram(self, name):
        return self._get(name, LogHistogram, 'histogram')

    def scoped(self, prefix, **labels):
        """A :class:`ScopedRegistry` view: metrics created through it
        live under ``prefix + name`` and carry ``labels`` (rendered by
        the Prometheus exposition). Views with distinct prefixes are
        isolated from each other by construction."""
        return ScopedRegistry(self, prefix, labels)

    def set_meta(self, name, family, labels):
        """Record the (family, labels) identity of a scoped metric."""
        self._meta[name] = (family, dict(labels))

    def metric_meta(self, name):
        """``(family, labels)`` of a scoped metric, or None."""
        return self._meta.get(name)

    def __contains__(self, name):
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics))

    def __len__(self):
        return len(self._metrics)

    def get(self, name):
        return self._metrics.get(name)

    def names(self, kind=None, prefixes=None):
        """Sorted metric names, optionally filtered by kind/prefixes."""
        out = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if kind is not None and metric.kind != kind:
                continue
            if prefixes is not None and not name.startswith(tuple(prefixes)):
                continue
            out.append(name)
        return out

    def counter_values(self, prefixes=None):
        """``{name: value}`` for counters (optionally prefix-filtered)."""
        return {name: self._metrics[name].value
                for name in self.names(kind='counter', prefixes=prefixes)}

    def histogram_summaries(self, prefixes=None):
        """``{name: summary-dict}`` for histograms."""
        return {name: self._metrics[name].summary()
                for name in self.names(kind='histogram', prefixes=prefixes)}

    def snapshot(self):
        """Deep-copied registry frozen at this instant."""
        clone = MetricsRegistry()
        for name, metric in self._metrics.items():
            if metric.kind == 'histogram':
                clone._metrics[name] = metric.copy()
            elif metric.kind == 'counter':
                clone._metrics[name] = CounterMetric(name, metric.value)
            else:
                clone._metrics[name] = GaugeMetric(name, metric.value)
        clone._meta = {name: (family, dict(labels))
                       for name, (family, labels) in self._meta.items()}
        return clone

    def clear(self):
        self._metrics.clear()
        self._meta.clear()

    def __repr__(self):
        return '<MetricsRegistry %d metrics>' % len(self._metrics)
