"""Structured health event log: typed cluster lifecycle events.

The cluster layer is driven by discrete decisions — a placement, a
migration leg, a crash, a park — and the event log is their ledger: a
bounded ring of JSON-simple dicts, each ``{'t': sim_ns, 'kind': ...,
**detail}``. Unlike the span recorder (a sampling probe that may be
disabled), the event log is always on: events are low-rate control-
plane transitions, and the reports that reconstruct what happened to a
VM (``cluster-health``) must work from the log alone.

Determinism contract: events are appended in simulation order, details
are plain values (names, integers, dicts of scores), and
:meth:`EventLog.to_jsonl` serializes with sorted keys and fixed
separators — two same-seed runs produce *byte-identical* JSONL. The
chaos determinism gates in CI rely on this.

:func:`residency_timeline` is the read side: given the event stream
(live dicts or ones read back from disk), it replays one VM's
residency — placed, migrated, orphaned, recovered, parked — which is
exactly the story a post-mortem needs.
"""

import json

#: Default event-ring capacity. Cluster control-plane events arrive at
#: a few hundred per simulated second, so this covers minutes of chaos.
DEFAULT_MAX_EVENTS = 16_384

# ----------------------------------------------------------------------
# Event kinds (the typed vocabulary; details vary per kind)
# ----------------------------------------------------------------------

EVENT_PLACE = 'vm.place'                 # vm, host, policy, scores
EVENT_REJECT = 'vm.reject'               # vm, reason
EVENT_ORPHANED = 'vm.orphaned'           # vm, cause[, host, flow]
EVENT_RECOVERED = 'vm.recovered'         # vm, host, attempts[, flow]
EVENT_PARKED = 'vm.parked'               # vm, attempts
EVENT_UNPARKED = 'vm.unparked'           # vm, host (the recovered host)
EVENT_MIGRATION_START = 'migration.start'    # vm, source, target, ...
EVENT_MIGRATION_DONE = 'migration.done'      # vm, source, target, flow
EVENT_MIGRATION_ABORT = 'migration.abort'    # vm, ..., rollback
EVENT_BREAKER_TRIP = 'migration.breaker_trip'  # vm, failures
EVENT_HOST_CRASH = 'host.crash'          # host, down_ns, orphans
EVENT_HOST_DEGRADE = 'host.degrade'      # host, down_ns
EVENT_HOST_RECOVER = 'host.recover'      # host
EVENT_QUARANTINE = 'host.quarantine'     # host
EVENT_REARM = 'host.rearm'               # host

#: Every cluster lifecycle kind, in taxonomy order (reports iterate
#: this, not the dict-order of whatever a run happened to emit).
CLUSTER_EVENT_KINDS = (
    EVENT_PLACE, EVENT_REJECT, EVENT_ORPHANED, EVENT_RECOVERED,
    EVENT_PARKED, EVENT_UNPARKED, EVENT_MIGRATION_START,
    EVENT_MIGRATION_DONE, EVENT_MIGRATION_ABORT, EVENT_BREAKER_TRIP,
    EVENT_HOST_CRASH, EVENT_HOST_DEGRADE, EVENT_HOST_RECOVER,
    EVENT_QUARANTINE, EVENT_REARM,
)

# Traffic-plane kinds (repro.traffic): load shedding, routing-set
# changes, and autoscaler decisions. Deterministic like the cluster
# vocabulary, but kept in their own tuple so cluster-only reports keep
# iterating exactly the lifecycle kinds they always did.
EVENT_SHED = 'traffic.shed'          # replica, dropped, queue
EVENT_REROUTE = 'traffic.reroute'    # replica, reason ('lost'/'restored')
EVENT_SCALE_UP = 'scale.up'          # vm, host, burn, replicas
EVENT_SCALE_DOWN = 'scale.down'      # vm, burn, replicas
EVENT_SCALE_REJECT = 'scale.reject'  # vm, burn (admission said no)
EVENT_VM_RETIRE = 'vm.retire'        # vm, host

TRAFFIC_EVENT_KINDS = (
    EVENT_SHED, EVENT_REROUTE, EVENT_SCALE_UP, EVENT_SCALE_DOWN,
    EVENT_SCALE_REJECT, EVENT_VM_RETIRE,
)

# Pipeline-profiling kinds (wall-clock, emitted by the executor/cache;
# deliberately *not* part of the deterministic cluster vocabulary).
EVENT_SPEC_DISPATCH = 'spec.dispatch'    # spec, queue
EVENT_SPEC_DONE = 'spec.done'            # spec, wall_ns
EVENT_SPEC_RETRY = 'spec.timeout_retry'  # spec
EVENT_CACHE_HIT = 'cache.hit'            # spec
EVENT_CACHE_MISS = 'cache.miss'          # spec
EVENT_CACHE_STORE = 'cache.store'        # spec


def _jsonl_line(event):
    """One canonical JSONL line: sorted keys, fixed separators — the
    byte-determinism contract."""
    return json.dumps(event, sort_keys=True, separators=(',', ':'))


class EventLog:
    """Bounded, ordered sink of typed events.

    Storage mirrors :class:`~repro.obs.spans.SpanRecorder`: a ring of
    ``max_events``, oldest evicted first and counted in ``dropped``.
    Events are plain dicts so they serialize (JSONL, result summaries,
    worker pickles) without any schema machinery.
    """

    def __init__(self, max_events=DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError('max_events must be >= 1')
        self.max_events = max_events
        self.dropped = 0
        self._ring = []
        self._head = 0               # ring start once wrapped

    def append(self, time_ns, kind, **detail):
        """Record one event; returns the stored dict."""
        event = {'t': time_ns, 'kind': kind}
        event.update(detail)
        if len(self._ring) < self.max_events:
            self._ring.append(event)
        else:
            self._ring[self._head] = event
            self._head = (self._head + 1) % self.max_events
            self.dropped += 1
        return event

    @property
    def events(self):
        """Retained events, oldest first."""
        if self._head == 0:
            return list(self._ring)
        return self._ring[self._head:] + self._ring[:self._head]

    def events_for(self, kind=None, vm=None, host=None):
        """Events filtered by kind / vm name / host name."""
        return [e for e in self.events
                if (kind is None or e['kind'] == kind)
                and (vm is None or e.get('vm') == vm)
                and (host is None or e.get('host') == host)]

    def counts(self):
        """``{kind: count}`` over retained events, sorted by kind."""
        out = {}
        for event in self._ring:
            out[event['kind']] = out.get(event['kind'], 0) + 1
        return dict(sorted(out.items()))

    def to_dicts(self):
        """The retained events as a plain list (for result summaries)."""
        return [dict(e) for e in self.events]

    def to_jsonl(self):
        """The canonical JSONL text (one sorted-keys line per event)."""
        lines = [_jsonl_line(e) for e in self.events]
        return '\n'.join(lines) + ('\n' if lines else '')

    def write_jsonl(self, path):
        """Serialize to ``path``; returns the number of events
        written. Byte-identical for byte-identical event streams."""
        text = self.to_jsonl()
        with open(path, 'w') as handle:
            handle.write(text)
        return len(self._ring)

    def clear(self):
        self._ring = []
        self._head = 0
        self.dropped = 0

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return ('<EventLog %d events (%d dropped)>'
                % (len(self._ring), self.dropped))


def read_jsonl(path):
    """Read back a log written by :meth:`EventLog.write_jsonl`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# Residency reconstruction (the cluster-health report's core)
# ----------------------------------------------------------------------

def residency_timeline(events, vm_name):
    """Replay ``vm_name``'s residency from the event stream alone.

    Returns an ordered list of steps, each
    ``{'t': ns, 'step': ..., 'host': name-or-None}`` — the full
    place -> migrate -> crash/orphan -> recover -> park story. Works on
    live :meth:`EventLog.events` and on :func:`read_jsonl` output alike.
    """
    steps = []

    def step(event, name, host):
        steps.append({'t': event['t'], 'step': name, 'host': host})

    for event in events:
        kind = event['kind']
        if event.get('vm') != vm_name:
            continue
        if kind == EVENT_PLACE:
            step(event, 'place', event.get('host'))
        elif kind == EVENT_REJECT:
            step(event, 'reject', None)
        elif kind == EVENT_MIGRATION_START:
            step(event, 'migrate_out', event.get('source'))
        elif kind == EVENT_MIGRATION_DONE:
            step(event, 'migrate_in', event.get('target'))
        elif kind == EVENT_MIGRATION_ABORT:
            if event.get('rollback'):
                step(event, 'rollback', event.get('source'))
            else:
                step(event, 'abort', None)
        elif kind == EVENT_ORPHANED:
            step(event, 'orphaned', event.get('host'))
        elif kind == EVENT_RECOVERED:
            step(event, 'recovered', event.get('host'))
        elif kind == EVENT_PARKED:
            step(event, 'parked', None)
        elif kind == EVENT_UNPARKED:
            step(event, 'unparked', None)
    return steps


def format_residency(steps):
    """One-line rendering of a residency timeline:
    ``place@host0 -> orphaned@host0 -> recovered@host2``."""
    parts = []
    for entry in steps:
        if entry['host'] is not None:
            parts.append('%s@%s' % (entry['step'], entry['host']))
        else:
            parts.append(entry['step'])
    return ' -> '.join(parts) if parts else '(no events)'


def vm_names(events):
    """Every VM name appearing in the stream, in first-seen order."""
    seen = []
    for event in events:
        vm = event.get('vm')
        if vm is not None and vm not in seen:
            seen.append(vm)
    return seen
