"""Low-overhead begin/end spans with nesting and bounded storage.

A span is one timed phase of a protocol (see :mod:`repro.obs.phases`)
on a named *track* (usually a vCPU). Spans on the same track nest:
``begin`` pushes onto the track's stack, ``end``/``end_phase`` pops.
Completed spans land in a bounded ring (oldest dropped first, counted)
and their durations feed the phase histogram of the same name in the
attached :class:`~repro.obs.histograms.MetricsRegistry` - so percentile
reports survive even after the ring has wrapped.

Overhead discipline: when ``enabled`` is False every entry point
returns after one attribute test, and probes sit only on SA/DP protocol
edges (never per-event paths), which is what keeps the disabled-mode
budget of ``benchmarks/test_obs_overhead.py`` comfortably under 2%.
"""

from .histograms import MetricsRegistry

#: Default completed-span ring capacity.
DEFAULT_MAX_SPANS = 65_536


class Span:
    """One completed (or still-open) phase on a track."""

    __slots__ = ('phase', 'track', 'begin_ns', 'end_ns', 'depth', 'detail')

    def __init__(self, phase, track, begin_ns, depth, detail=None):
        self.phase = phase
        self.track = track
        self.begin_ns = begin_ns
        self.end_ns = None
        self.depth = depth
        self.detail = detail

    @property
    def duration_ns(self):
        if self.end_ns is None:
            return None
        return self.end_ns - self.begin_ns

    def __repr__(self):
        end = '...' if self.end_ns is None else str(self.end_ns)
        return '<Span %s@%s %d-%s>' % (self.phase, self.track,
                                       self.begin_ns, end)


class SpanRecorder:
    """Collects nested spans per track into a bounded ring."""

    def __init__(self, enabled=False, max_spans=DEFAULT_MAX_SPANS,
                 registry=None):
        if max_spans < 1:
            raise ValueError('max_spans must be >= 1')
        self.enabled = enabled
        self.max_spans = max_spans
        self.registry = registry if registry is not None else MetricsRegistry()
        self.dropped = 0
        self._ring = []
        self._head = 0               # ring start when wrapped
        self._open = {}              # track -> stack of open Spans

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin(self, time_ns, phase, track, **detail):
        """Open a span. Returns the handle, or None when disabled."""
        if not self.enabled:
            return None
        stack = self._open.get(track)
        if stack is None:
            stack = self._open[track] = []
        span = Span(phase, track, time_ns, len(stack), detail or None)
        stack.append(span)
        return span

    def end(self, time_ns, span, **detail):
        """Close ``span``. A None handle (disabled begin) is a no-op.

        Children still open above ``span`` on its track are closed at
        the same instant - a cross-component protocol abort (e.g. an
        offer timing out under a lost upcall) must not wedge the
        track's stack.
        """
        if not self.enabled or span is None or span.end_ns is not None:
            return
        stack = self._open.get(span.track)
        if stack is None or span not in stack:
            return
        while stack:
            top = stack.pop()
            self._finish(time_ns, top, detail if top is span else {})
            if top is span:
                break

    def end_phase(self, time_ns, phase, track, **detail):
        """Close the innermost open span of ``phase`` on ``track``.

        The decoupled form of :meth:`end` for protocol legs whose begin
        and end live in different components (sender vs receiver).
        Returns the closed span, or None if nothing matched.
        """
        if not self.enabled:
            return None
        stack = self._open.get(track)
        if not stack:
            return None
        for span in reversed(stack):
            if span.phase == phase:
                self.end(time_ns, span, **detail)
                return span
        return None

    def instant(self, time_ns, phase, track, **detail):
        """Record a zero-duration span (a point event on the track)."""
        if not self.enabled:
            return None
        stack = self._open.get(track)
        span = Span(phase, track, time_ns, len(stack) if stack else 0,
                    detail or None)
        self._finish(time_ns, span, {})
        return span

    def _finish(self, time_ns, span, detail, record=True):
        span.end_ns = time_ns
        if detail:
            span.detail = dict(span.detail or {}, **detail)
        if record:
            # Truncated spans (end-of-run flush) skip the histogram:
            # they measure the run boundary, not the protocol.
            self.registry.histogram(span.phase).record(span.duration_ns)
        if len(self._ring) < self.max_spans:
            self._ring.append(span)
        else:
            self._ring[self._head] = span
            self._head = (self._head + 1) % self.max_spans
            self.dropped += 1
            # Mirrored into the registry so end-of-run snapshots (and
            # the sa-latency / cluster-health reports) can warn that
            # the ring saturated instead of failing silently.
            self.registry.counter('spans.dropped').inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def spans(self):
        """Completed spans, oldest first (the retained window)."""
        if self._head == 0:
            return list(self._ring)
        return self._ring[self._head:] + self._ring[:self._head]

    def spans_for(self, phase=None, track=None):
        return [s for s in self.spans
                if (phase is None or s.phase == phase)
                and (track is None or s.track == track)]

    def open_spans(self):
        """Still-open spans across all tracks (outermost first)."""
        out = []
        for track in sorted(self._open):
            out.extend(self._open[track])
        return out

    def flush_open(self, time_ns):
        """Close every open span at ``time_ns`` (end-of-run truncation
        so an export never loses in-flight protocol legs)."""
        for track in sorted(self._open):
            stack = self._open[track]
            while stack:
                self._finish(time_ns, stack.pop(), {'truncated': True},
                             record=False)
        self._open.clear()

    def clear(self):
        self._ring = []
        self._head = 0
        self._open.clear()
        self.dropped = 0

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return ('<SpanRecorder %s %d spans (%d dropped)>'
                % ('on' if self.enabled else 'off', len(self._ring),
                   self.dropped))
