#!/usr/bin/env python3
"""Multi-threaded server latency under interference (paper Section 5.3).

Runs the SPECjbb-like closed-loop server against a rising number of CPU
hogs, with and without IRS, and prints throughput plus the latency
distribution. The effect to look for: vanilla tail latency jumps by one
hypervisor slice (~30 ms) whenever a warehouse thread's vCPU is
preempted mid-transaction; IRS migrates the thread instead, so the tail
collapses toward the service time.

Run:  python examples/server_latency.py
"""

from repro.simkernel.units import MS, SEC
from repro.experiments import build_scenario, InterferenceSpec, apply_strategy
from repro.workloads import SpecJbbWorkload


def run(strategy, n_hogs, measure_s=2):
    scenario = build_scenario(
        seed=0, interference=InterferenceSpec('hogs', width=n_hogs))
    kernels = [scenario.fg_kernel] if strategy == 'irs' else ()
    apply_strategy(scenario.machine, strategy, irs_kernels=kernels)
    server = SpecJbbWorkload(scenario.sim, scenario.fg_kernel).install()

    sim = scenario.sim
    sim.run_until(300 * MS)                      # warm up
    server.latency.samples.clear()
    server.completed = 0
    server.started_at = sim.now
    sim.run_until(sim.now + measure_s * SEC)
    return server


def main():
    print('SPECjbb-like server: 4 warehouses on a 4-vCPU VM')
    print('%-8s %-8s %10s %10s %10s %10s'
          % ('hogs', 'sched', 'req/s', 'p50 (ms)', 'p99 (ms)', 'max (ms)'))
    for n_hogs in (1, 2, 4):
        for strategy in ('vanilla', 'irs'):
            server = run(strategy, n_hogs)
            lat = server.latency
            print('%-8d %-8s %10.0f %10.2f %10.2f %10.2f'
                  % (n_hogs, strategy, server.throughput(),
                     lat.p50() / MS, lat.p99() / MS, lat.max() / MS))
    print()
    print('Watch the p99 column: IRS removes the ~30 ms scheduling-slice')
    print('stalls for light interference; with every vCPU contended the')
    print('effect fades, matching Figure 8 of the paper.')


if __name__ == '__main__':
    main()
