#!/usr/bin/env python3
"""Scalability study with the sweep API (paper Section 5.5 territory).

Uses :class:`repro.experiments.Sweep` to reproduce the two Section 5.5
trends interactively:

1. IRS's gain shrinks as more of the VM's vCPUs are interfered
   (Figure 10) — fewer interference-free vCPUs to migrate onto;
2. the gain *grows* as more VMs stack on each interfered pCPU
   (Figure 11) — every added VM adds a full scheduling delay that the
   migration skips.

Run:  python examples/scalability_study.py
"""

from repro.experiments import InterferenceSpec, Sweep


def width_sweep():
    print('How many vCPUs are interfered? (blackscholes, IRS vs vanilla)')
    sweep = Sweep('blackscholes', base=dict(scale=0.4))
    for width in (1, 2, 4):
        spec = InterferenceSpec('hogs', width)
        result = sweep.over(
            'strategy', ['vanilla', 'irs'],
            apply=lambda kw, s, spec=spec: kw.update(strategy=s,
                                                     interference=spec),
            title='width=%d' % width)
        vanilla = result.notes['vanilla']
        irs = result.notes['irs']
        print('  %d-inter: vanilla %6.0f ms   IRS %6.0f ms   (%+.0f%%)'
              % (width, vanilla.makespan_ns / 1e6, irs.makespan_ns / 1e6,
                 irs.improvement_over(vanilla)))
    print()


def depth_sweep():
    print('How many VMs stack on the interfered pCPU? (1-inter)')
    sweep = Sweep('blackscholes', base=dict(scale=0.4))
    for n_vms in (1, 2, 3):
        spec = InterferenceSpec('hogs', 1, n_vms=n_vms)
        result = sweep.over(
            'strategy', ['vanilla', 'irs'],
            apply=lambda kw, s, spec=spec: kw.update(strategy=s,
                                                     interference=spec),
            title='depth=%d' % n_vms)
        vanilla = result.notes['vanilla']
        irs = result.notes['irs']
        print('  %d VM%s:   vanilla %6.0f ms   IRS %6.0f ms   (%+.0f%%)'
              % (n_vms, 's' if n_vms > 1 else ' ',
                 vanilla.makespan_ns / 1e6, irs.makespan_ns / 1e6,
                 irs.improvement_over(vanilla)))
    print()


def main():
    width_sweep()
    depth_sweep()
    print('Trend 1: more interfered vCPUs -> smaller IRS gain.')
    print('Trend 2: deeper contention per pCPU -> larger IRS gain.')
    print('Both match Section 5.5 of the paper.')


if __name__ == '__main__':
    main()
