#!/usr/bin/env python3
"""Quickstart: see lock-holder preemption happen, then watch IRS fix it.

Builds the smallest interesting machine — a 4-pCPU host running a
4-vCPU parallel VM next to a CPU-hog VM that steals half of pCPU 0 —
and runs the same barrier-synchronized program under the vanilla
credit scheduler and under IRS.

Run:  python examples/quickstart.py
"""

from repro import MS, SEC, GuestKernel, Machine, Simulator, VM, install_irs
from repro.workloads import Barrier, BarrierWait, Compute, cpu_hog


def run_once(use_irs):
    sim = Simulator(seed=1)
    machine = Machine(sim, n_pcpus=4)

    # The parallel VM: one vCPU per pCPU, like the paper's testbed.
    parallel_vm = VM('parallel', 4, sim)
    machine.add_vm(parallel_vm, pinning=[0, 1, 2, 3])
    guest = GuestKernel(sim, parallel_vm, machine)

    # The interfering VM: a single CPU hog sharing pCPU 0.
    hog_vm = VM('interference', 1, sim)
    machine.add_vm(hog_vm, pinning=[0])
    hog_guest = GuestKernel(sim, hog_vm, machine)
    hog_guest.spawn('hog', cpu_hog(10 * MS))

    if use_irs:
        install_irs(machine, [guest])

    # A blocking barrier workload: 4 threads, 20 phases of 30 ms each.
    barrier = Barrier(4, mode='block')
    finished = []

    def worker():
        for _ in range(20):
            yield Compute(30 * MS)
            yield BarrierWait(barrier)

    for i in range(4):
        guest.spawn('worker%d' % i, worker(), gcpu_index=i,
                    on_exit=lambda task, now: finished.append(now))

    machine.start()
    sim.run_until(60 * SEC)
    assert len(finished) == 4, 'workload did not finish'
    makespan_ms = max(finished) / MS

    run_ns, steal_ns, _ = parallel_vm.total_runstate(sim.now)
    return makespan_ms, run_ns / MS, sim.trace.counters


def main():
    vanilla_ms, vanilla_cpu, _ = run_once(use_irs=False)
    irs_ms, irs_cpu, counters = run_once(use_irs=True)

    print('Blocking barrier workload, 1 CPU hog sharing pCPU 0')
    print('---------------------------------------------------')
    print('vanilla Xen/Linux : %7.1f ms makespan  (%.0f ms CPU used)'
          % (vanilla_ms, vanilla_cpu))
    print('IRS               : %7.1f ms makespan  (%.0f ms CPU used)'
          % (irs_ms, irs_cpu))
    print('improvement       : %+.1f%%'
          % ((vanilla_ms / irs_ms - 1.0) * 100.0))
    print()
    print('IRS activity: %d scheduler activations, %d task migrations'
          % (counters['irs.sa_sent'], counters['irs.migrations']))


if __name__ == '__main__':
    main()
