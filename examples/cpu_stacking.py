#!/usr/bin/env python3
"""CPU stacking: what happens when nothing is pinned (paper Section 5.6).

With vCPUs free to float, the hypervisor's VM-oblivious balancer and
the deceptive idleness of blocking workloads conspire to stack sibling
vCPUs on the same pCPUs, destroying parallelism. This example measures
how often the parallel VM's vCPUs are co-located, how much of the
machine it can actually use, and how each strategy copes.

Run:  python examples/cpu_stacking.py
"""

from repro.simkernel.units import MS, SEC
from repro.experiments import (
    InterferenceSpec,
    build_scenario,
    apply_strategy,
    run_parallel,
)
from repro.workloads import ParallelWorkload, get_profile


def measure_stacking(strategy):
    """Fraction of time >= 2 sibling vCPUs share a pCPU, and the mean
    number of foreground vCPUs actually executing."""
    scenario = build_scenario(seed=0, pinned=False,
                              interference=InterferenceSpec('hogs', 4))
    kernels = [scenario.fg_kernel] if strategy == 'irs' else ()
    apply_strategy(scenario.machine, strategy, irs_kernels=kernels)
    workload = ParallelWorkload(scenario.sim, scenario.fg_kernel,
                                get_profile('streamcluster'),
                                scale=0.3).install()
    sim = scenario.sim
    samples = {'total': 0, 'stacked': 0, 'running': 0}

    def sample():
        homes = {}
        for vcpu in scenario.fg_vm.vcpus:
            homes.setdefault(vcpu.pcpu.index, 0)
            homes[vcpu.pcpu.index] += 1
            if vcpu.is_running:
                samples['running'] += 1
        samples['total'] += 1
        if max(homes.values()) >= 2:
            samples['stacked'] += 1
        sim.after(5 * MS, sample)

    sample()
    while not workload.is_done and sim.now < 60 * SEC:
        sim.run_until(sim.now + 100 * MS)
    return (workload.makespan_ns() / MS,
            samples['stacked'] / samples['total'],
            samples['running'] / samples['total'])


def main():
    pinned = run_parallel('streamcluster', 'vanilla',
                          InterferenceSpec('hogs', 4), scale=0.3)
    print('Reference (pinned 1:1): %.0f ms'
          % (pinned.makespan_ns / MS))
    print()
    print('%-11s %12s %18s %16s'
          % ('strategy', 'makespan', 'stacked fraction', 'mean vCPUs live'))
    for strategy in ('vanilla', 'ple', 'relaxed_co', 'irs'):
        span, stacked, running = measure_stacking(strategy)
        print('%-11s %9.0f ms %17.0f%% %16.2f'
              % (strategy, span, stacked * 100, running))
    print()
    print('Unpinned vanilla runs slower than pinned because sibling')
    print('vCPUs spend most of the run co-located (stacked); IRS keeps')
    print('work flowing to whichever vCPUs are actually running.')


if __name__ == '__main__':
    main()
