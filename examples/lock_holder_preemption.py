#!/usr/bin/env python3
"""Anatomy of a lock-holder preemption, step by step.

This example instruments a mutex-based workload to show the LHP chain
the paper describes: the hypervisor deschedules a vCPU whose thread
holds a mutex; every other thread piles up on the lock; nothing moves
until the vCPU's next slice. It then prints how the four scheduling
strategies (vanilla / PLE / relaxed-co / IRS) fare on the same program.

Run:  python examples/lock_holder_preemption.py
"""

from repro import MS, SEC, US, Simulator
from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.strategies import ALL_STRATEGIES
from repro.hypervisor import Machine, VM
from repro.guestos import GuestKernel
from repro.core import install_irs
from repro.workloads import Acquire, Compute, Mutex, Release, cpu_hog


def show_lhp_event():
    """Run a small scenario and report the worst lock-wait episodes."""
    sim = Simulator(seed=3)
    machine = Machine(sim, n_pcpus=2)
    vm = VM('parallel', 2, sim)
    machine.add_vm(vm, pinning=[0, 1])
    guest = GuestKernel(sim, vm, machine)
    hog_vm = VM('hog', 1, sim)
    machine.add_vm(hog_vm, pinning=[0])
    GuestKernel(sim, hog_vm, machine).spawn('hog', cpu_hog(10 * MS))

    lock = Mutex('shared')
    waits = []

    def locker(n):
        for _ in range(n):
            yield Compute(2 * MS)
            t0 = sim.now
            yield Acquire(lock)
            waits.append(sim.now - t0)
            yield Compute(200 * US)
            yield Release(lock)

    guest.spawn('holder-side', locker(200), gcpu_index=0)
    guest.spawn('waiter-side', locker(200), gcpu_index=1)
    machine.start()
    sim.run_until(30 * SEC)

    waits.sort()
    long_waits = [w for w in waits if w > 5 * MS]
    print('Lock acquisitions: %d' % len(waits))
    print('  median wait : %8.3f ms' % (waits[len(waits) // 2] / MS))
    print('  worst wait  : %8.3f ms  <- one hypervisor slice: the '
          'holder was descheduled' % (waits[-1] / MS))
    print('  waits > 5ms : %d (each is an LHP/LWP episode)'
          % len(long_waits))
    print()


def compare_strategies():
    """x264-like point-to-point locking under every strategy."""
    print('x264 (mutex workload) with 1 interfering hog:')
    baseline = None
    for strategy in ALL_STRATEGIES:
        result = run_parallel('x264', strategy,
                              InterferenceSpec('hogs', 1), scale=0.5)
        span_ms = result.makespan_ns / MS
        if strategy == 'vanilla':
            baseline = span_ms
            print('  %-11s %8.1f ms' % (strategy, span_ms))
        else:
            print('  %-11s %8.1f ms  (%+.1f%%)'
                  % (strategy, span_ms, (baseline / span_ms - 1) * 100))


def main():
    show_lhp_event()
    compare_strategies()


if __name__ == '__main__':
    main()
