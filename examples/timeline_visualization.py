#!/usr/bin/env python3
"""Watch a scheduler activation happen, frame by frame.

Renders ASCII runstate timelines (one row per vCPU: ``#`` running,
``.`` preempted-waiting, blank blocked) for the same contended barrier
workload under vanilla scheduling and under IRS. Vanilla shows the
signature LHP pattern — the parallel VM's uncontended vCPUs going blank
(idle) whenever the contended vCPU is preempted — while under IRS the
work hops to a running vCPU and the blanks disappear.

Run:  python examples/timeline_visualization.py
"""

from repro import MS, SEC, GuestKernel, Machine, Simulator, VM, install_irs
from repro.metrics import TimelineRecorder
from repro.workloads import Barrier, BarrierWait, Compute, cpu_hog


def run(use_irs):
    sim = Simulator(seed=5)
    machine = Machine(sim, n_pcpus=2)
    vm = VM('par', 2, sim)
    machine.add_vm(vm, pinning=[0, 1])
    guest = GuestKernel(sim, vm, machine)
    hog_vm = VM('hog', 1, sim)
    machine.add_vm(hog_vm, pinning=[0])
    GuestKernel(sim, hog_vm, machine).spawn('hog', cpu_hog(10 * MS))
    if use_irs:
        install_irs(machine, [guest])

    barrier = Barrier(2, mode='block')

    def worker():
        for _ in range(12):
            yield Compute(25 * MS)
            yield BarrierWait(barrier)

    for i in range(2):
        guest.spawn('w%d' % i, worker(), gcpu_index=i)
    machine.start()

    recorder = TimelineRecorder(sim, machine, period_ns=2 * MS).start()
    sim.run_until(800 * MS)
    return recorder, vm


def main():
    for use_irs, label in ((False, 'VANILLA'), (True, 'IRS')):
        recorder, vm = run(use_irs)
        print('=== %s ===' % label)
        print(recorder.render(width=76,
                              vcpus=['par.v0', 'par.v1', 'hog.v0']))
        for name in ('par.v0', 'par.v1'):
            occ = recorder.occupancy(name)
            print('%s: running %3.0f%%  preempted %3.0f%%  blocked %3.0f%%'
                  % (name, occ.get('running', 0) * 100,
                     occ.get('runnable', 0) * 100,
                     occ.get('blocked', 0) * 100))
        print()


if __name__ == '__main__':
    main()
