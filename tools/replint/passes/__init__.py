"""Built-in repro-lint passes. Importing this package registers all of
them with the framework's pass registry."""

from . import determinism      # noqa: F401
from . import layering         # noqa: F401
from . import protocol         # noqa: F401
from . import rng              # noqa: F401
from . import taxonomy         # noqa: F401
