"""determinism pass: no wall clocks, no global RNG, no hash-order leaks.

The simulation's contract is bit-reproducibility: same seed, same
bytes (DESIGN.md; the chaos/traffic determinism gates in CI). Three
statically-detectable families break it:

* **wall-clock reads** — ``time.time``/``monotonic``/``perf_counter``/
  ``datetime.now`` etc. inside ``src/repro`` leak host time into
  simulation state. (Wall-clock *profiling* of the pipeline itself is
  legitimate and carries a suppression with its justification.)
* **global-RNG draws** — module-level ``random.random()``/``randint``/
  ``choice``/``shuffle``/``sample`` share one process-wide generator:
  any new caller perturbs every other consumer's draws. ``random.Random``
  *construction* discipline is the separate ``rng-discipline`` pass.
* **hash-order iteration** — iterating a ``set``/``frozenset`` into an
  ordering-sensitive sink (``min``/``max``/``list``/``tuple``/
  ``enumerate``/``join``, a list comprehension, or a loop body that
  builds a list) depends on string-hash randomization, exactly the
  fig5 costop-set bug class. Membership tests and order-insensitive
  folds over sets are fine; so is dict iteration (insertion-ordered).
  Wrap the sink's input in ``sorted(...)`` to fix. ``sorted(..., key=id)``
  (and ``min``/``max`` keyed on ``id``) is flagged too: CPython object
  addresses differ run to run.
"""

import ast

from ..framework import Finding, call_name, register_pass

PASS = 'determinism'

#: Callee dotted names that read the host clock.
WALL_CLOCKS = frozenset((
    'time.time', 'time.time_ns', 'time.monotonic', 'time.monotonic_ns',
    'time.perf_counter', 'time.perf_counter_ns', 'time.process_time',
    'time.process_time_ns',
    'datetime.now', 'datetime.utcnow', 'datetime.today',
    'datetime.datetime.now', 'datetime.datetime.utcnow',
    'datetime.datetime.today', 'datetime.date.today', 'date.today',
))

#: Module-level ``random.*`` functions (the shared global generator).
GLOBAL_RNG = frozenset((
    'random', 'randint', 'randrange', 'uniform', 'choice', 'choices',
    'shuffle', 'sample', 'expovariate', 'gauss', 'normalvariate',
    'betavariate', 'triangular', 'seed', 'getrandbits', 'paretovariate',
))

#: Builtin sinks whose output order follows their input's iteration
#: order (``sorted`` is the fix, not a sink).
ORDER_SINKS = frozenset(('min', 'max', 'list', 'tuple', 'enumerate',
                         'iter', 'reversed'))


def _is_set_expr(node, local_sets):
    """True when ``node`` is statically known to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ('set', 'frozenset'):
            return True
        # set.union/intersection/difference/symmetric_difference chains
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in ('union', 'intersection',
                                       'difference',
                                       'symmetric_difference')
                and _is_set_expr(node.func.value, local_sets)):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, local_sets)
                or _is_set_expr(node.right, local_sets))
    if isinstance(node, ast.Name):
        return node.id in local_sets
    return False


def _local_set_names(scope):
    """Names assigned a set expression anywhere in ``scope`` (one
    function body or the module). One-pass flow-insensitive: good
    enough to catch ``s = set(...) ... for x in s``."""
    names = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (isinstance(node, ast.AugAssign)
                and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                         ast.BitXor))
                and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, names)):
            names.add(node.target.id)
    return names


def _loop_builds_list(loop):
    """True when a ``for`` body appends/extends or yields — i.e. the
    iteration order becomes data."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ('append', 'extend', 'insert')):
            return True
    return False


def _scopes(tree):
    """Yield (scope_node, local_set_names) for the module and each
    function, so set-name tracking respects function boundaries."""
    yield tree, _local_set_names(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, _local_set_names(node)


def _walk_scope(scope):
    """Walk ``scope`` without descending into nested functions (each
    nested function is its own scope entry)."""
    stack = [scope]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            yield child
            stack.append(child)


def _check_order_sensitive(source, scope, local_sets):
    for node in _walk_scope(scope):
        if isinstance(node, ast.For) and _is_set_expr(node.iter, local_sets):
            if _loop_builds_list(node):
                yield Finding(
                    PASS, source.rel, node.lineno, 'set-iteration',
                    'loop over a set builds ordered output; iterate '
                    'sorted(...) instead (hash-order nondeterminism)')
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                if _is_set_expr(gen.iter, local_sets):
                    yield Finding(
                        PASS, source.rel, node.lineno, 'set-iteration',
                        'list comprehension over a set; wrap the '
                        'iterable in sorted(...) '
                        '(hash-order nondeterminism)')
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in ORDER_SINKS and node.args and _is_set_expr(
                    node.args[0], local_sets):
                yield Finding(
                    PASS, source.rel, node.lineno, 'set-iteration',
                    '%s() over a set is hash-ordered; pass '
                    'sorted(...) instead' % name)
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == 'join' and node.args
                    and _is_set_expr(node.args[0], local_sets)):
                yield Finding(
                    PASS, source.rel, node.lineno, 'set-iteration',
                    'str.join over a set is hash-ordered; pass '
                    'sorted(...) instead')
            if name in ('sorted', 'min', 'max') or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == 'sort'):
                for kw in node.keywords:
                    if (kw.arg == 'key' and isinstance(kw.value, ast.Name)
                            and kw.value.id == 'id'):
                        yield Finding(
                            PASS, source.rel, node.lineno, 'id-ordering',
                            'ordering keyed on id(): object addresses '
                            'change run to run; key on a stable field')


@register_pass(PASS, 'wall clocks, global RNG, hash-order iteration')
def run(project):
    for source in project.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in WALL_CLOCKS:
                yield Finding(
                    PASS, source.rel, node.lineno,
                    'wallclock:%s' % name,
                    '%s() reads the host clock inside the simulator; '
                    'use sim.now (suppress only for pipeline '
                    'profiling/UX, with a justification)' % name)
            elif (name is not None and name.startswith('random.')
                    and name.split('.', 1)[1] in GLOBAL_RNG):
                yield Finding(
                    PASS, source.rel, node.lineno,
                    'global-rng:%s' % name,
                    '%s() draws from the process-global generator; '
                    'draw from sim.rng.stream(<name>) instead' % name)
        for scope, local_sets in _scopes(source.tree):
            yield from _check_order_sensitive(source, scope, local_sets)
