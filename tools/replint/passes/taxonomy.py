"""taxonomy-drift pass: emitted names must be declared in a registry.

Three vocabularies are declared in ``repro.obs`` and consumed by every
report, exporter, and CI determinism gate:

* **span phases** — the ``PHASE_*`` constants of ``obs/phases.py``;
* **event kinds** — the ``EVENT_*`` constants of ``obs/eventlog.py``;
* **metric names** — ``DECLARED_METRICS`` / ``DECLARED_METRIC_FAMILIES``
  in ``obs/histograms.py`` (full counter/gauge/histogram names, plus
  the short per-scope family names used through ``ScopedRegistry``).

A string that reaches an emission sink (``spans.begin/instant/
end_phase``, ``EventLog.append``, ``trace.count``/``add_time``,
``registry.counter/gauge/histogram``) without being declared is
*taxonomy drift*: the name silently falls out of every registry-driven
report — exactly how the fig5 costop metrics and the profiles.py
cross-contamination went unnoticed. The pass resolves names through
module-level constants and ``PHASE_*``/``EVENT_*`` imports; genuinely
dynamic names (format strings, variables) are outside its scope and
are skipped, not guessed at.

Histograms may also be registered under a declared span phase (span
durations feed the histogram of the same name), and span *markers*
mirroring a declared event kind are allowed (the cluster health
timeline re-emits lifecycle kinds as instants).
"""

import ast

from ..framework import Finding, call_name, module_constants, register_pass

PASS = 'taxonomy-drift'

PHASES_FILE = 'repro/obs/phases.py'
EVENTLOG_FILE = 'repro/obs/eventlog.py'
HISTOGRAMS_FILE = 'repro/obs/histograms.py'

SPAN_METHODS = frozenset(('begin', 'instant', 'end_phase'))
METRIC_METHODS = frozenset(('counter', 'gauge', 'histogram'))


def _registry_constants(project, rel, prefix):
    """``{name: value}`` of ``prefix``-named string constants declared
    at module level in ``rel`` (e.g. every ``PHASE_*`` of phases.py)."""
    source = project.file(rel)
    if source is None:
        return {}
    return {name: value
            for name, value in module_constants(source.tree).items()
            if name.startswith(prefix) and isinstance(value, str)}


def _declared_metrics(project):
    """The two metric-name sets declared beside the MetricsRegistry."""
    source = project.file(HISTOGRAMS_FILE)
    if source is None:
        return set(), set()
    consts = module_constants(source.tree)
    full = set(consts.get('DECLARED_METRICS') or ())
    families = set(consts.get('DECLARED_METRIC_FAMILIES') or ())
    return full, families


class _Resolver:
    """Resolve an emission-site argument to a string, through local
    module constants and the shared ``PHASE_*``/``EVENT_*`` vocabulary
    (both ``from ... import PHASE_X`` and ``eventlog.EVENT_X`` forms).
    Returns None for genuinely dynamic expressions."""

    def __init__(self, source, shared):
        self.consts = module_constants(source.tree)
        self.shared = shared          # name -> declared value

    def resolve(self, node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            value = self.consts.get(node.id, self.shared.get(node.id))
            return value if isinstance(value, str) else None
        if isinstance(node, ast.Attribute):
            value = self.shared.get(node.attr)
            return value if isinstance(value, str) else None
        return None


@register_pass(PASS, 'emitted event kinds / span phases / metric names '
                     'must be declared in the obs registries')
def run(project):
    phases = set(_registry_constants(project, PHASES_FILE,
                                     'PHASE_').values())
    kinds = set(_registry_constants(project, EVENTLOG_FILE,
                                    'EVENT_').values())
    metrics, families = _declared_metrics(project)
    if not phases and not kinds and not metrics:
        return                        # no registries in this tree
    shared = {}
    shared.update(_registry_constants(project, PHASES_FILE, 'PHASE_'))
    shared.update(_registry_constants(project, EVENTLOG_FILE, 'EVENT_'))

    metric_ok = metrics | families | phases | kinds
    span_ok = phases | kinds

    for source in project.files:
        if source.rel in (PHASES_FILE, EVENTLOG_FILE, HISTOGRAMS_FILE):
            continue
        resolver = _Resolver(source, shared)
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            chain = call_name(node) or ''
            if method in SPAN_METHODS and len(node.args) >= 2 \
                    and ('spans.' + method) in chain:
                value = resolver.resolve(node.args[1])
                if value is not None and value not in span_ok:
                    yield Finding(
                        PASS, source.rel, node.lineno,
                        'phase:%s' % value,
                        'span phase %r is not declared in '
                        'obs/phases.py (or as an event kind); add it '
                        'to the taxonomy' % value)
            elif method == 'append' and len(node.args) >= 2:
                value = resolver.resolve(node.args[1])
                if value is not None and value not in kinds:
                    yield Finding(
                        PASS, source.rel, node.lineno,
                        'kind:%s' % value,
                        'event kind %r is not declared in '
                        'obs/eventlog.py; add an EVENT_* constant'
                        % value)
            elif method in METRIC_METHODS and len(node.args) == 1:
                value = resolver.resolve(node.args[0])
                if value is not None and value not in metric_ok:
                    yield Finding(
                        PASS, source.rel, node.lineno,
                        'metric:%s' % value,
                        'metric name %r is not declared in '
                        'obs/histograms.py (DECLARED_METRICS / '
                        'DECLARED_METRIC_FAMILIES)' % value)
            elif method in ('count', 'add_time') and node.args \
                    and 'trace.' in chain:
                value = resolver.resolve(node.args[0])
                if value is not None and value not in metric_ok:
                    yield Finding(
                        PASS, source.rel, node.lineno,
                        'metric:%s' % value,
                        'counter name %r is not declared in '
                        'obs/histograms.py DECLARED_METRICS' % value)
