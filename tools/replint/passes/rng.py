"""rng-discipline pass: every generator flows through the named-stream
registry.

:class:`repro.simkernel.rng.RngRegistry` derives one ``random.Random``
per *named stream* from the experiment seed, so adding a consumer of
randomness never perturbs the draws of existing consumers. That
guarantee only holds if nobody constructs a private ``random.Random``
on the side: a raw construction is either unseeded (nondeterministic)
or seeded ad hoc (its draws silently shift when call sites move).

Rules, everywhere in ``src/repro`` except the registry itself:

* no ``random.Random(...)`` / ``random.SystemRandom(...)`` calls —
  obtain a stream via ``sim.rng.stream('component.purpose')``;
* no ``import random`` / ``from random import ...`` at module level —
  there is nothing to legitimately import once construction is
  centralized (type references included: name streams, not classes).
"""

import ast

from ..framework import Finding, call_name, register_pass

PASS = 'rng-discipline'

#: The one module allowed to touch ``random`` directly.
ALLOWED = 'repro/simkernel/rng.py'

CONSTRUCTORS = frozenset(('random.Random', 'random.SystemRandom',
                          'Random', 'SystemRandom'))


@register_pass(PASS, 'random.Random construction must use the '
                     'simkernel named-stream registry')
def run(project):
    for source in project.files:
        if source.rel == ALLOWED:
            continue
        imports_random = False
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == 'random' or
                       alias.name.startswith('random.')
                       for alias in node.names):
                    imports_random = True
                    yield Finding(
                        PASS, source.rel, node.lineno, 'import-random',
                        "'import random' outside the simkernel rng "
                        'registry; draw from sim.rng.stream(<name>)')
            elif isinstance(node, ast.ImportFrom):
                if node.module == 'random' and node.level == 0:
                    imports_random = True
                    yield Finding(
                        PASS, source.rel, node.lineno, 'import-random',
                        "'from random import ...' outside the simkernel "
                        'rng registry; draw from sim.rng.stream(<name>)')
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in ('random.Random', 'random.SystemRandom') or (
                    imports_random and name in ('Random', 'SystemRandom')):
                yield Finding(
                    PASS, source.rel, node.lineno,
                    'raw-random-ctor',
                    '%s(...) constructs a generator outside the '
                    'named-stream registry; use '
                    "sim.rng.stream('component.purpose') so draws "
                    'stay seed-pure' % name)
