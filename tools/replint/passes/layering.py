"""layering pass: no module-level upward imports between packages.

The codebase is layered (DESIGN.md §7, "Layering and module map")::

    obs < simkernel < metrics < workloads < {hypervisor, guestos}
        < faults < core < experiments < cluster < traffic

A package may import (at module level) only from packages at its own
rank or below. ``hypervisor`` and ``guestos`` share a rank: the
substrate is one layer split across the virtualization boundary, and
the two reference each other by design. The ``experiments <-> cluster``
back-reference is lazy (inside functions) precisely so the module
graph stays acyclic — this pass checks *module-level* imports only, so
a regression that hoists such an import to the top of a module fails
the lint.

This is the framework port of ``tools/check_layering.py``; the old
entry point remains as a thin shim over the functions here, so both
``python tools/check_layering.py`` and the pytest suite that imports
it keep working.
"""

import ast
from pathlib import Path

from ..framework import Finding, register_pass

PASS = 'layering'

TOP_PACKAGE = 'repro'

#: package -> rank; lower ranks must not import from higher ones.
RANKS = {
    'obs': 0,
    'simkernel': 1,
    'metrics': 2,
    'workloads': 3,
    'hypervisor': 4,
    'guestos': 4,
    'faults': 5,
    'core': 6,
    'experiments': 7,
    'cluster': 8,
    'traffic': 9,
}


def iter_module_level_imports(tree):
    """Yield Import/ImportFrom nodes reachable without entering a
    function body (class bodies run at import time and count)."""
    stack = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child
            else:
                stack.append(child)


def resolve_package(node, module_parts):
    """The repro subpackage an import node refers to, or None for
    stdlib / third-party / same-package-relative imports.

    ``module_parts`` is the dotted path of the importing module as a
    list, e.g. ``['repro', 'core', 'sender']``.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split('.')
            if parts[0] == TOP_PACKAGE and len(parts) > 1:
                return parts[1]
        return None
    # ImportFrom: resolve relative levels against the importing module.
    if node.level == 0:
        parts = (node.module or '').split('.')
        if parts and parts[0] == TOP_PACKAGE and len(parts) > 1:
            return parts[1]
        return None
    base = module_parts[:-node.level]
    if node.module:
        base = base + node.module.split('.')
    if len(base) > 1 and base[0] == TOP_PACKAGE:
        return base[1]
    return None


def check_tree(tree, module_parts):
    """Violations for one parsed module as ``(lineno, key, message)``
    tuples; ``module_parts`` as for :func:`resolve_package`."""
    if module_parts[0] != TOP_PACKAGE or len(module_parts) < 2:
        return []
    package = module_parts[1]
    if package == '__init__':
        return []                    # the top package only re-exports
    rank = RANKS.get(package)
    if rank is None:
        return [(1, 'unranked:%s' % package,
                 'package %r has no layering rank; add it to '
                 'tools/replint/passes/layering.py' % package)]
    violations = []
    for node in iter_module_level_imports(tree):
        target = resolve_package(node, module_parts)
        if target is None or target == package:
            continue
        target_rank = RANKS.get(target)
        if target_rank is None:
            violations.append(
                (node.lineno, 'unranked-target:%s' % target,
                 'imports unranked package %r; add it to '
                 'tools/replint/passes/layering.py' % target))
        elif target_rank > rank:
            violations.append(
                (node.lineno, 'upward:%s->%s' % (package, target),
                 'upward import: %s (rank %d) -> %s (rank %d); move '
                 'the import inside a function or fix the layering'
                 % (package, rank, target, target_rank)))
    return violations


def _module_parts(rel):
    parts = list(Path(rel).with_suffix('').parts)
    return parts


def check_file(path, src_root):
    """Return a list of violation strings for one source file (the
    legacy ``check_layering.py`` interface)."""
    path = Path(path)
    rel = path.relative_to(src_root)
    module_parts = _module_parts(rel)
    if module_parts[0] != TOP_PACKAGE or len(module_parts) < 2:
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    return ['%s:%d: %s' % (rel, lineno, message)
            for lineno, _key, message in check_tree(tree, module_parts)]


def run_strings(src_root):
    """All violations under ``src_root`` as legacy strings (what
    ``tools/check_layering.py`` prints, one per line)."""
    src_root = Path(src_root)
    violations = []
    for path in sorted((src_root / TOP_PACKAGE).rglob('*.py')):
        violations.extend(check_file(path, src_root))
    return violations


@register_pass(PASS, 'no module-level upward imports between the '
                     'layered repro packages')
def run(project):
    for source in project.files:
        parts = _module_parts(source.rel)
        for lineno, key, message in check_tree(source.tree, parts):
            yield Finding(PASS, source.rel, lineno, key, message)
