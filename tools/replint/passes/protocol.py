"""protocol-exhaustiveness pass: the SA transition table is total.

``repro/core/protocol.py`` declares the per-vCPU SA state machine:
``SA_STATES``, ``SA_EDGES``, the legal table ``LEGAL_TRANSITIONS``,
and the *declared-illegal* table ``ILLEGAL_TRANSITIONS``. Illegal
edges are recorded at runtime rather than raised, so nothing ever
crashes on a missing entry — which is precisely why totality must be
checked statically: a new edge constant added without classifying all
six states against it silently becomes "illegal by omission", and the
sanitizer can no longer distinguish a deliberate prohibition from an
unconsidered case.

The pass extracts both tables from the AST (no import of the module
under analysis) and checks:

* every ``SA_*`` state constant is listed in ``SA_STATES``, every
  ``EDGE_*`` constant in ``SA_EDGES`` (drift guard for the tuples);
* every ``(state, edge)`` pair in ``SA_STATES x SA_EDGES`` appears in
  exactly one of the two tables — no omissions, no contradictions;
* no table entry references an undeclared state or edge.
"""

import ast

from ..framework import Finding, module_constants, register_pass

PASS = 'protocol-exhaustiveness'

PROTOCOL_FILE = 'repro/core/protocol.py'


def _line_of(tree, name, default=1):
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.lineno
    return default


@register_pass(PASS, 'every (state, edge) pair is a declared-legal or '
                     'declared-illegal SA protocol transition')
def run(project):
    source = project.file(PROTOCOL_FILE)
    if source is None:
        return
    consts = module_constants(source.tree)
    rel = source.rel

    states = consts.get('SA_STATES')
    edges = consts.get('SA_EDGES')
    legal = consts.get('LEGAL_TRANSITIONS')
    illegal = consts.get('ILLEGAL_TRANSITIONS')

    missing = [name for name, value in (
        ('SA_STATES', states), ('SA_EDGES', edges),
        ('LEGAL_TRANSITIONS', legal), ('ILLEGAL_TRANSITIONS', illegal),
    ) if value is None]
    if missing:
        for name in missing:
            yield Finding(
                PASS, rel, 1, 'missing-table:%s' % name,
                '%s is not declared (or not statically resolvable) in '
                'core/protocol.py' % name)
        return

    states = tuple(states)
    edges = tuple(edges)
    legal_pairs = set(legal.keys())
    illegal_pairs = set(tuple(p) for p in illegal)

    # Tuple-membership drift: a constant defined but left out of the
    # enumerations would make the product check silently too small.
    for name, value in sorted(consts.items()):
        if name.startswith('SA_') and isinstance(value, str) \
                and value not in states:
            yield Finding(
                PASS, rel, _line_of(source.tree, name),
                'unlisted-state:%s' % value,
                'state constant %s=%r is not listed in SA_STATES'
                % (name, value))
        elif name.startswith('EDGE_') and isinstance(value, str) \
                and value not in edges:
            yield Finding(
                PASS, rel, _line_of(source.tree, name),
                'unlisted-edge:%s' % value,
                'edge constant %s=%r is not listed in SA_EDGES'
                % (name, value))

    legal_line = _line_of(source.tree, 'LEGAL_TRANSITIONS')
    illegal_line = _line_of(source.tree, 'ILLEGAL_TRANSITIONS')

    for table_name, line, pairs in (
            ('LEGAL_TRANSITIONS', legal_line, sorted(legal_pairs)),
            ('ILLEGAL_TRANSITIONS', illegal_line, sorted(illegal_pairs))):
        for state, edge in pairs:
            if state not in states:
                yield Finding(
                    PASS, rel, line, 'unknown-state:%s' % state,
                    '%s references undeclared state %r'
                    % (table_name, state))
            if edge not in edges:
                yield Finding(
                    PASS, rel, line, 'unknown-edge:%s' % edge,
                    '%s references undeclared edge %r'
                    % (table_name, edge))

    # Legal targets must be declared states too.
    for (state, edge), target in sorted(legal.items()):
        if target not in states:
            yield Finding(
                PASS, rel, legal_line, 'unknown-target:%s' % target,
                'LEGAL_TRANSITIONS maps (%s, %s) to undeclared state %r'
                % (state, edge, target))

    for state in states:
        for edge in edges:
            pair = (state, edge)
            in_legal = pair in legal_pairs
            in_illegal = pair in illegal_pairs
            if in_legal and in_illegal:
                yield Finding(
                    PASS, rel, illegal_line,
                    'contradiction:%s:%s' % pair,
                    '(%s, %s) is declared both legal and illegal'
                    % pair)
            elif not in_legal and not in_illegal:
                yield Finding(
                    PASS, rel, legal_line,
                    'unclassified:%s:%s' % pair,
                    '(%s, %s) is in neither LEGAL_TRANSITIONS nor '
                    'ILLEGAL_TRANSITIONS; classify the pair explicitly'
                    % pair)
