"""repro-lint: AST-based static analysis for the reproduction's core
contracts — determinism, RNG discipline, taxonomy integrity, protocol
exhaustiveness, and layering.

Run it over the tree::

    python -m tools.replint                  # human-readable, exit 1 on findings
    python -m tools.replint --format json    # machine-readable
    python -m tools.replint --passes determinism,layering

See ``docs/static-analysis.md`` for the pass catalogue, the
suppression/baseline workflow, and how to add a pass.
"""

from .framework import (          # noqa: F401
    PASSES,
    Finding,
    Project,
    SourceFile,
    apply_baseline,
    load_baseline,
    register_pass,
    run_passes,
    write_baseline,
)
from . import passes              # noqa: F401  (registers the built-ins)

__all__ = [
    'PASSES', 'Finding', 'Project', 'SourceFile', 'apply_baseline',
    'load_baseline', 'register_pass', 'run_passes', 'write_baseline',
]
