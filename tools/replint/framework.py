"""repro-lint core: findings, the pass registry, suppressions, baseline.

The framework is deliberately small. A *pass* is a function registered
under a name that takes a :class:`Project` (parsed ASTs plus source
text for every file under ``src/repro``) and yields :class:`Finding`
objects. The runner applies two escape hatches before a finding counts
against the build:

* **suppression comments** — ``# replint: disable=<pass>[,<pass>]`` on
  the offending line (or on a standalone comment line directly above
  it) silences named passes for that line; ``disable=all`` silences
  every pass. Suppressions are for sites that are *deliberately*
  outside a rule (e.g. wall-clock reads in the CLI's elapsed-time
  display) and should carry a justification in the same comment.
* **the baseline file** — a checked-in JSON list of grandfathered
  findings (``tools/replint/baseline.json``). A finding matches a
  baseline entry on its stable fingerprint ``(pass, file, key)`` —
  never on line numbers, which drift. Baseline entries require a
  ``why`` justification; stale entries (matching nothing) are reported
  so the file shrinks as debt is paid down.

Passes should derive ``key`` from *what* is wrong (the offending name,
the rule violated), not *where*, so findings stay pinned across
unrelated edits to the same file.
"""

import ast
import json
import re
from pathlib import Path

#: pass name -> (function, one-line description)
PASSES = {}

SUPPRESS_RE = re.compile(r'#\s*replint:\s*disable=([\w\-,]+)')


def register_pass(name, description):
    """Decorator: register ``fn(project) -> iterable[Finding]``."""
    def deco(fn):
        if name in PASSES:
            raise ValueError('duplicate pass %r' % name)
        PASSES[name] = (fn, description)
        return fn
    return deco


class Finding:
    """One rule violation at a source location."""

    __slots__ = ('pass_name', 'path', 'line', 'key', 'message',
                 'suppressed', 'baselined')

    def __init__(self, pass_name, path, line, key, message):
        self.pass_name = pass_name
        self.path = str(path)        # repo-relative, '/'-separated
        self.line = line
        self.key = key               # stable fingerprint component
        self.message = message
        self.suppressed = False
        self.baselined = False

    @property
    def fingerprint(self):
        return (self.pass_name, self.path, self.key)

    @property
    def active(self):
        """Counts against the build (not suppressed, not baselined)."""
        return not (self.suppressed or self.baselined)

    def to_dict(self):
        return {
            'pass': self.pass_name,
            'file': self.path,
            'line': self.line,
            'key': self.key,
            'message': self.message,
            'suppressed': self.suppressed,
            'baselined': self.baselined,
        }

    def render(self):
        return '%s:%d: [%s] %s' % (self.path, self.line,
                                   self.pass_name, self.message)

    def __repr__(self):
        return '<Finding %s %s:%d %s>' % (self.pass_name, self.path,
                                          self.line, self.key)


class SourceFile:
    """One parsed source file plus its per-line suppression table."""

    def __init__(self, path, rel):
        self.path = Path(path)
        self.rel = str(rel).replace('\\', '/')
        self.text = self.path.read_text()
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self):
        """``{line_number: {pass names}}`` (1-based), where a
        standalone suppression comment also covers the next line."""
        table = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if not match:
                continue
            names = {p.strip() for p in match.group(1).split(',')
                     if p.strip()}
            table.setdefault(lineno, set()).update(names)
            if line.lstrip().startswith('#'):
                # Standalone comment: applies to the line below too.
                table.setdefault(lineno + 1, set()).update(names)
        return table

    def is_suppressed(self, pass_name, lineno):
        names = self.suppressions.get(lineno)
        return bool(names) and (pass_name in names or 'all' in names)

    def __repr__(self):
        return '<SourceFile %s>' % self.rel


class Project:
    """Every python file under ``src_root/repro``, parsed once."""

    def __init__(self, src_root):
        self.src_root = Path(src_root)
        self.files = []
        top = self.src_root / 'repro'
        for path in sorted(top.rglob('*.py')):
            rel = path.relative_to(self.src_root)
            self.files.append(SourceFile(path, rel))
        self.by_rel = {f.rel: f for f in self.files}

    def file(self, rel):
        """The :class:`SourceFile` at repo-src-relative ``rel``
        (e.g. ``'repro/obs/phases.py'``), or None."""
        return self.by_rel.get(rel)

    def __repr__(self):
        return '<Project %s: %d files>' % (self.src_root, len(self.files))


# ----------------------------------------------------------------------
# Shared AST helpers (used by several passes)
# ----------------------------------------------------------------------

def module_constants(tree):
    """``{name: value}`` of module-level ``NAME = <literal>`` bindings.

    Resolves plain string/number constants and tuples/lists/sets/dicts
    /frozensets built from them or from already-resolved names — enough
    to extract the obs taxonomies and the protocol transition tables
    without importing the module under analysis.
    """
    consts = {}

    def resolve(node):
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name) and node.id in consts:
            return consts[node.id]
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return tuple(resolve(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return {resolve(k): resolve(v)
                    for k, v in zip(node.keys, node.values)}
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == 'frozenset' and len(node.args) == 1):
            value = resolve(node.args[0])
            if isinstance(value, (tuple, dict)):
                return tuple(value)
            return value
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, right = resolve(node.left), resolve(node.right)
            if isinstance(left, tuple) and isinstance(right, tuple):
                return left + right
        raise ValueError('unresolvable')

    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and isinstance(node.target, ast.Name)):
            targets = [node.target]
        if not targets:
            continue
        try:
            value = resolve(node.value)
        except ValueError:
            continue
        for target in targets:
            consts[target.id] = value
    return consts


def call_name(node):
    """Dotted name of a call's callee: ``'time.time'``, ``'sorted'``,
    ``'self.sim.trace.count'`` — or None for computed callees."""
    parts = []
    cur = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    elif not parts:
        return None
    return '.'.join(reversed(parts))


def walk_with_suppression(source, pass_name):
    """Yield every AST node in ``source`` not suppressed for
    ``pass_name`` at its line."""
    for node in ast.walk(source.tree):
        lineno = getattr(node, 'lineno', None)
        if lineno is not None and source.is_suppressed(pass_name, lineno):
            continue
        yield node


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def load_baseline(path):
    """Baseline entries from ``path`` (missing file = empty baseline).
    Each entry needs ``pass``/``file``/``key``/``why``."""
    path = Path(path)
    if not path.exists():
        return []
    entries = json.loads(path.read_text() or '[]')
    for entry in entries:
        for field in ('pass', 'file', 'key', 'why'):
            if field not in entry:
                raise ValueError('baseline entry %r missing %r'
                                 % (entry, field))
    return entries


def write_baseline(path, findings):
    """Write the active ``findings`` as a fresh baseline (the operator
    must then fill in each ``why``)."""
    entries = [{'pass': f.pass_name, 'file': f.path, 'key': f.key,
                'why': 'TODO: justify or fix'} for f in findings]
    entries.sort(key=lambda e: (e['file'], e['pass'], e['key']))
    Path(path).write_text(json.dumps(entries, indent=2, sort_keys=True)
                          + '\n')
    return entries


def apply_baseline(findings, entries):
    """Mark findings matching a baseline fingerprint; returns the list
    of stale entries (grandfathered debt that no longer exists)."""
    fingerprints = {}
    for entry in entries:
        fingerprints[(entry['pass'], entry['file'], entry['key'])] = entry
    used = set()
    for finding in findings:
        if finding.fingerprint in fingerprints:
            finding.baselined = True
            used.add(finding.fingerprint)
    return [entry for key, entry in fingerprints.items() if key not in used]


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def run_passes(src_root, pass_names=None, baseline_path=None):
    """Run ``pass_names`` (default: all registered, sorted) over
    ``src_root`` and return ``(findings, stale_baseline_entries)``.

    Suppression comments and the baseline are already applied: check
    ``finding.active`` for what should fail the build.
    """
    project = Project(src_root)
    if pass_names is None:
        pass_names = sorted(PASSES)
    findings = []
    for name in pass_names:
        if name not in PASSES:
            raise ValueError('unknown pass %r (have: %s)'
                             % (name, ', '.join(sorted(PASSES))))
        fn, _ = PASSES[name]
        for finding in fn(project):
            source = project.by_rel.get(finding.path)
            if source is not None and source.is_suppressed(
                    finding.pass_name, finding.line):
                finding.suppressed = True
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.pass_name, f.key))
    stale = []
    if baseline_path is not None:
        stale = apply_baseline(findings, load_baseline(baseline_path))
    return findings, stale
