"""CLI for repro-lint: ``python -m tools.replint``.

Exit status 0 when every finding is suppressed or baselined, 1 when
active findings remain (CI fails on those), 2 on usage errors.
"""

import argparse
import json
import sys
from pathlib import Path

from . import PASSES, run_passes, write_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_SRC = REPO_ROOT / 'src'
DEFAULT_BASELINE = Path(__file__).resolve().parent / 'baseline.json'


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog='python -m tools.replint',
        description='repro-lint: determinism / RNG / taxonomy / '
                    'protocol / layering static analysis')
    parser.add_argument('--src', default=str(DEFAULT_SRC),
                        help='source root containing the repro package '
                             '(default: <repo>/src)')
    parser.add_argument('--baseline', default=str(DEFAULT_BASELINE),
                        help='baseline JSON of grandfathered findings '
                             '(default: tools/replint/baseline.json)')
    parser.add_argument('--no-baseline', action='store_true',
                        help='ignore the baseline file (report '
                             'everything)')
    parser.add_argument('--passes', default=None, metavar='P1,P2',
                        help='comma-separated subset of passes to run '
                             '(default: all)')
    parser.add_argument('--format', choices=('text', 'json'),
                        default='text', help='output format')
    parser.add_argument('--list-passes', action='store_true',
                        help='list registered passes and exit')
    parser.add_argument('--write-baseline', action='store_true',
                        help='grandfather the current active findings '
                             'into the baseline file and exit 0 (each '
                             'entry then needs its "why" filled in)')
    args = parser.parse_args(argv)

    if args.list_passes:
        for name in sorted(PASSES):
            print('%-24s %s' % (name, PASSES[name][1]))
        return 0

    pass_names = None
    if args.passes:
        pass_names = [p.strip() for p in args.passes.split(',') if p.strip()]
    baseline_path = None if args.no_baseline else args.baseline
    try:
        findings, stale = run_passes(args.src, pass_names=pass_names,
                                     baseline_path=baseline_path)
    except ValueError as exc:
        print('replint: %s' % exc, file=sys.stderr)
        return 2

    active = [f for f in findings if f.active]

    if args.write_baseline:
        entries = write_baseline(args.baseline, active)
        print('replint: wrote %d baseline entr%s to %s (fill in each '
              '"why")' % (len(entries),
                          'y' if len(entries) == 1 else 'ies',
                          args.baseline))
        return 0

    if args.format == 'json':
        payload = {
            'passes': sorted(PASSES) if pass_names is None else pass_names,
            'findings': [f.to_dict() for f in findings],
            'stale_baseline': stale,
            'summary': {
                'total': len(findings),
                'active': len(active),
                'suppressed': sum(f.suppressed for f in findings),
                'baselined': sum(f.baselined for f in findings),
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in active:
            print(finding.render(), file=sys.stderr)
        for entry in stale:
            print('replint: stale baseline entry %s/%s/%s (%s) — the '
                  'finding no longer exists; remove it'
                  % (entry['pass'], entry['file'], entry['key'],
                     entry['why']), file=sys.stderr)
        quiet = len(findings) - len(active)
        if active:
            print('replint: %d active finding(s) (%d suppressed/'
                  'baselined)' % (len(active), quiet), file=sys.stderr)
        else:
            print('replint: OK (%d finding(s) suppressed or baselined)'
                  % quiet)
    return 1 if active else 0


if __name__ == '__main__':
    sys.exit(main())
