#!/usr/bin/env python3
"""Layering lint: fail on upward imports between repro packages.

Thin compatibility shim: the implementation now lives in the
repro-lint framework as the ``layering`` pass
(``tools/replint/passes/layering.py``) so it runs alongside the
determinism/RNG/taxonomy/protocol passes under ``python -m
tools.replint``. This entry point keeps the historical interface —
same CLI, same exit codes, same one-line-per-violation stderr output —
for CI scripts and tests that call it directly.

Usage::

    python tools/check_layering.py [--src SRC_DIR]

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.replint.passes.layering import (     # noqa: E402
    RANKS,
    TOP_PACKAGE,
    check_file,
    iter_module_level_imports,
    resolve_package,
    run_strings,
)

__all__ = ['RANKS', 'TOP_PACKAGE', 'check_file',
           'iter_module_level_imports', 'resolve_package', 'run', 'main']


def run(src_root):
    """All violations under ``src_root`` as strings (legacy API)."""
    return run_strings(src_root)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument('--src', default=None,
                        help='source root containing the repro package '
                             '(default: <repo>/src)')
    args = parser.parse_args(argv)
    src = args.src or Path(__file__).resolve().parent.parent / 'src'
    violations = run(src)
    for line in violations:
        print(line, file=sys.stderr)
    if violations:
        print('layering: %d violation(s)' % len(violations),
              file=sys.stderr)
        return 1
    print('layering: OK')
    return 0


if __name__ == '__main__':
    sys.exit(main())
