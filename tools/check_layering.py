#!/usr/bin/env python3
"""Layering lint: fail on upward imports between repro packages.

The codebase is layered (see DESIGN.md, "Layering and module map")::

    obs < simkernel < metrics < workloads < {hypervisor, guestos}
        < faults < core < experiments < cluster < traffic

A package may import (at module level) only from packages at its own
rank or below. ``hypervisor`` and ``guestos`` share a rank: the
substrate is one layer split across the virtualization boundary, and
the two reference each other by design. The ``experiments <-> cluster``
back-reference is lazy (inside functions) precisely so the module
graph stays acyclic — this tool checks *module-level* imports only, so
a regression that hoists such an import to the top of a module fails
the lint.

Usage::

    python tools/check_layering.py [--src SRC_DIR]

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

import argparse
import ast
import sys
from pathlib import Path

TOP_PACKAGE = 'repro'

#: package -> rank; lower ranks must not import from higher ones.
RANKS = {
    'obs': 0,
    'simkernel': 1,
    'metrics': 2,
    'workloads': 3,
    'hypervisor': 4,
    'guestos': 4,
    'faults': 5,
    'core': 6,
    'experiments': 7,
    'cluster': 8,
    'traffic': 9,
}


def iter_module_level_imports(tree):
    """Yield Import/ImportFrom nodes reachable without entering a
    function body (class bodies run at import time and count)."""
    stack = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child
            else:
                stack.append(child)


def resolve_package(node, module_parts):
    """The repro subpackage an import node refers to, or None for
    stdlib / third-party / same-package-relative imports.

    ``module_parts`` is the dotted path of the importing module as a
    list, e.g. ``['repro', 'core', 'sender']``.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split('.')
            if parts[0] == TOP_PACKAGE and len(parts) > 1:
                return parts[1]
        return None
    # ImportFrom: resolve relative levels against the importing module.
    if node.level == 0:
        parts = (node.module or '').split('.')
        if parts and parts[0] == TOP_PACKAGE and len(parts) > 1:
            return parts[1]
        return None
    base = module_parts[:-node.level]
    if node.module:
        base = base + node.module.split('.')
    if len(base) > 1 and base[0] == TOP_PACKAGE:
        return base[1]
    return None


def check_file(path, src_root):
    """Return a list of violation strings for one source file."""
    rel = path.relative_to(src_root)
    module_parts = list(rel.with_suffix('').parts)
    if module_parts[-1] == '__init__':
        module_parts = module_parts[:-1] + ['__init__']
    if module_parts[0] != TOP_PACKAGE or len(module_parts) < 2:
        return []
    package = module_parts[1]
    if package == '__init__':
        return []                    # the top package only re-exports
    rank = RANKS.get(package)
    if rank is None:
        return ['%s: package %r has no layering rank; add it to '
                'tools/check_layering.py' % (rel, package)]
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in iter_module_level_imports(tree):
        target = resolve_package(node, module_parts)
        if target is None or target == package:
            continue
        target_rank = RANKS.get(target)
        if target_rank is None:
            violations.append(
                '%s:%d: imports unranked package %r; add it to '
                'tools/check_layering.py' % (rel, node.lineno, target))
        elif target_rank > rank:
            violations.append(
                '%s:%d: upward import: %s (rank %d) -> %s (rank %d); '
                'move the import inside a function or fix the layering'
                % (rel, node.lineno, package, rank, target, target_rank))
    return violations


def run(src_root):
    src_root = Path(src_root)
    violations = []
    for path in sorted((src_root / TOP_PACKAGE).rglob('*.py')):
        violations.extend(check_file(path, src_root))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument('--src', default=None,
                        help='source root containing the repro package '
                             '(default: <repo>/src)')
    args = parser.parse_args(argv)
    src = args.src or Path(__file__).resolve().parent.parent / 'src'
    violations = run(src)
    for line in violations:
        print(line, file=sys.stderr)
    if violations:
        print('layering: %d violation(s)' % len(violations),
              file=sys.stderr)
        return 1
    print('layering: OK')
    return 0


if __name__ == '__main__':
    sys.exit(main())
