"""Repository tooling (static analysis, lint entry points)."""
