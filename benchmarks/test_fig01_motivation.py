"""Figure 1: LHP/LWP motivation — slowdown and migration latency."""

from repro.experiments.figures import fig1a, fig1b


def test_fig1a_slowdown(run_figure, quick):
    """Figure 1(a): blocking/spinning apps slow >1.5x under one
    interferer; the work-stealing app stays near 1x."""
    result = run_figure(fig1a, quick=quick)
    assert result.notes['fluidanimate'] > 1.5
    assert result.notes['UA'] > 1.5
    assert result.notes['raytrace'] < 1.35


def test_fig1b_migration_latency(run_figure, quick):
    """Figure 1(b): migration latency climbs ~one scheduling slice per
    co-located VM (paper: 1 / 26.4 / 53.2 / 79.8 ms)."""
    result = run_figure(fig1b, quick=quick)
    assert result.notes['alone'] < 2
    assert result.notes['alone'] < result.notes['1VM'] < result.notes['3VM']
