"""Observability overhead budget (pytest -m obs).

Two guarantees the instrumentation must keep:

* **Determinism** — arming spans and timeline sampling must not change
  what the simulation computes (same makespan, same SA protocol
  traffic). Observation that perturbs the experiment is worthless.
* **Disabled cost < 2%** — with observability off (the default), every
  probe is one attribute test. The budget check multiplies the number
  of probe-site executions a quick fig5 cell performs by the measured
  per-call cost of a disabled probe and requires the total to stay
  under 2% of the run's wall time, i.e. of its event throughput.
"""

import json
import time

import pytest

from repro.cluster.scenario import run_consolidation
from repro.experiments.harness import ObservabilityConfig, run_parallel
from repro.experiments.topology import InterferenceSpec
from repro.obs.spans import SpanRecorder

pytestmark = pytest.mark.obs

RUN_KWARGS = dict(strategy='irs', interference=InterferenceSpec('hogs', 1),
                  seed=0, scale=0.5)

#: Probe call sites executed per SA round (offer, vIRQ begin/end,
#: upcall, deschedule, ack begin/end, offer close, migrate begin/end)
#: plus slack for retries and DP/preempt-fire probes.
PROBES_PER_SA_ROUND = 16


def test_observability_does_not_perturb_the_run():
    base = run_parallel('streamcluster', **RUN_KWARGS)
    observed = run_parallel('streamcluster', observe=True, **RUN_KWARGS)
    assert base.makespan_ns == observed.makespan_ns
    for counter in ('irs.sa_sent', 'irs.sa_acked', 'hv.preemptions',
                    'hv.wakes'):
        assert (base.metrics.counters.get(counter, 0)
                == observed.metrics.counters.get(counter, 0)), counter
    # And the observed run actually observed something.
    assert observed.metrics.registry.get('sa.offer').count > 0
    assert observed.timeline is not None
    assert observed.timeline.samples


def test_disabled_probe_overhead_under_two_percent():
    started = time.perf_counter()
    result = run_parallel('streamcluster', **RUN_KWARGS)
    wall = time.perf_counter() - started

    # Per-call cost of a probe with observability off: the guard the
    # instrumented code runs (one attribute test) plus the no-op entry.
    spans = SpanRecorder(enabled=False)
    calls = 1_000_000
    t0 = time.perf_counter()
    for __ in range(calls):
        if spans.enabled:
            spans.begin(0, 'p', 't')
    per_call = (time.perf_counter() - t0) / calls

    counters = result.metrics.counters
    sa_rounds = (counters.get('irs.sa_sent', 0)
                 + counters.get('irs.sa_retries', 0)
                 + counters.get('dp.deferrals', 0)
                 + counters.get('hv.preemptions', 0))
    probe_calls = PROBES_PER_SA_ROUND * sa_rounds
    assert probe_calls > 0, 'run exercised no probe sites'

    overhead = probe_calls * per_call
    fraction = overhead / wall
    assert fraction < 0.02, (
        'disabled probes cost %.3f%% of the run (%d probe executions, '
        '%.0f ns each, %.2fs wall)'
        % (fraction * 100.0, probe_calls, per_call * 1e9, wall))


# ----------------------------------------------------------------------
# Cluster probes: same two guarantees for the cluster control plane.
# ----------------------------------------------------------------------

CLUSTER_KWARGS = dict(strategy='irs', placement='first_fit', seed=0,
                      faults='cluster-chaos')

#: Probe call sites per control-plane event: the span/instant probe
#: itself, the event-log append, the scoped-metric update, and slack
#: for paired begin/end migration spans.
CLUSTER_PROBES_PER_EVENT = 4


def test_cluster_observability_does_not_perturb_the_run():
    base = run_consolidation(**CLUSTER_KWARGS)
    observed = run_consolidation(observe=ObservabilityConfig(),
                                 **CLUSTER_KWARGS)
    assert (json.dumps(base.summary(), sort_keys=True)
            == json.dumps(observed.summary(), sort_keys=True))


def test_cluster_disabled_probe_overhead_under_two_percent():
    started = time.perf_counter()
    result = run_consolidation(**CLUSTER_KWARGS)
    wall = time.perf_counter() - started

    spans = SpanRecorder(enabled=False)
    calls = 1_000_000
    t0 = time.perf_counter()
    for __ in range(calls):
        if spans.enabled:
            spans.begin(0, 'p', 't')
    per_call = (time.perf_counter() - t0) / calls

    # Every control-plane transition the chaos run produced is a
    # probe-site execution (the health event log records them all).
    probe_calls = CLUSTER_PROBES_PER_EVENT * len(result.events)
    assert probe_calls > 0, 'chaos run exercised no cluster probe sites'

    overhead = probe_calls * per_call
    fraction = overhead / wall
    assert fraction < 0.02, (
        'disabled cluster probes cost %.3f%% of the run (%d probe '
        'executions, %.0f ns each, %.2fs wall)'
        % (fraction * 100.0, probe_calls, per_call * 1e9, wall))
