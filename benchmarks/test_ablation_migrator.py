"""Ablation: migrator target-selection policy (Algorithm 2).

Compares the paper's idle-first + rt_avg search against weaker
policies: plain least-loaded, guest-load-only (ignoring steal time —
exactly the blindness rt_avg exists to fix), and random placement.
"""

from repro.core import IRSConfig
from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.reporting import format_table

POLICIES = ('idle_first', 'least_loaded', 'guest_load', 'random')


def test_migrator_policy(benchmark, capsys, quick):
    def ablation():
        spec = InterferenceSpec('hogs', 2)
        base = run_parallel('streamcluster', 'vanilla', spec, scale=0.5)
        rows = []
        gains = {}
        for policy in POLICIES:
            config = IRSConfig(migrator_policy=policy)
            result = run_parallel('streamcluster', 'irs', spec, scale=0.5,
                                  irs_config=config)
            gain = (base.makespan_ns / result.makespan_ns - 1) * 100
            gains[policy] = gain
            rows.append([policy, '%.0f' % (result.makespan_ns / 1e6),
                         '%+.1f%%' % gain])
        table = format_table(
            ['policy', 'makespan (ms)', 'vs vanilla'],
            rows, title='Ablation: migrator policy (streamcluster, 2 hogs)')
        return gains, table

    gains, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    # Every policy beats vanilla: the win comes mostly from unsticking
    # the task at all (the SA mechanism), not from placement finesse.
    for policy, gain in gains.items():
        assert gain > 0, '%s lost to vanilla' % policy
    # The paper's policy is at worst a whisker from the best.
    assert gains['idle_first'] >= max(gains.values()) - 10
