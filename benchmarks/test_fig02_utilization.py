"""Figure 2: CPU utilization relative to fair share under interference."""

from repro.experiments.figures import fig2


def test_fig2_utilization(run_figure, quick):
    """Blocking apps fall well short of their fair share; raytrace's
    user-level work stealing keeps it near 1.0."""
    result = run_figure(fig2, quick=quick)
    blocking = [v for k, v in result.notes.items() if k != 'raytrace']
    assert sum(b < 0.9 for b in blocking) >= len(blocking) // 2
    assert result.notes['raytrace'] > 0.9
