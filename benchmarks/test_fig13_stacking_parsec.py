"""Figure 13: PARSEC under CPU stacking (deceptive idleness)."""

from repro.experiments.figures import fig13

QUICK_APPS = ['streamcluster', 'blackscholes', 'canneal']


def test_fig13_stacking_parsec(run_figure, quick):
    apps = QUICK_APPS if quick else None
    interferers = ('hogs',) if quick else None
    kwargs = {'quick': quick, 'apps': apps}
    if interferers:
        kwargs['interferers'] = interferers
    result = run_figure(fig13, **kwargs)
    notes = result.notes
    # IRS proactively pushes work off preempted vCPUs and should beat
    # relaxed-co's average for blocking workloads under stacking.
    irs = [v for k, v in notes.items() if k[2] == 'irs' and v is not None]
    rco = [v for k, v in notes.items() if k[2] == 'relaxed_co'
           and v is not None]
    assert irs and rco
    assert sum(irs) / len(irs) >= sum(rco) / len(rco) - 5
