"""Ablation: the ping-pong-avoiding wakeup rule (Section 3.3, Figure 4).

Without the rule, a task woken onto a vCPU occupied by an IRS-migrated
intruder is migrated away, typically back to the vCPU the intruder came
from — a migration ping-pong that trashes cache locality. The rule lets
the waker preempt the tagged intruder in place.
"""

from repro.core import IRSConfig
from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.reporting import format_table


def _run(rule_on, app, seed=0):
    config = IRSConfig(wakeup_preempt_tagged=rule_on)
    return run_parallel(app, 'irs', InterferenceSpec('hogs', 1),
                        seed=seed, scale=0.5, irs_config=config)


def _total_migrations(result):
    return sum(t.migrations for t in result.workload.tasks)


def test_pingpong_rule(benchmark, capsys, quick):
    def ablation():
        rows = []
        data = {}
        for app in ('fluidanimate', 'streamcluster', 'bodytrack'):
            with_rule = _run(True, app)
            without = _run(False, app)
            data[app] = (with_rule, without)
            rows.append([app,
                         '%.0f' % (with_rule.makespan_ns / 1e6),
                         _total_migrations(with_rule),
                         '%.0f' % (without.makespan_ns / 1e6),
                         _total_migrations(without)])
        table = format_table(
            ['app', 'rule-on (ms)', 'migrations', 'rule-off (ms)',
             'migrations'],
            rows, title='Ablation: IRS wakeup rule (Figure 4)')
        return data, table

    data, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    # The rule consistently wins on makespan (locality preserved); raw
    # migration counts are not comparable across the two modes because
    # the rule trades wake-time migrations for later balancer pulls.
    for app, (with_rule, without) in data.items():
        assert with_rule.makespan_ns <= without.makespan_ns * 1.02
    wins = sum(1 for w, wo in data.values()
               if w.makespan_ns < wo.makespan_ns)
    assert wins >= 2
