"""Extension: pull-based IRS (the paper's Section 6 future work).

Compares push-based IRS (scheduler activations), pull-based IRS (idle
vCPUs steal frozen tasks off preempted siblings — no hypervisor change
at all), and the combination, across blocking and spinning workloads.
"""

from repro.core import install_irs, install_pull_irs
from repro.experiments import InterferenceSpec, build_scenario
from repro.experiments.reporting import format_table
from repro.simkernel.units import MS, SEC
from repro.workloads import ParallelWorkload, get_profile

MODES = ('vanilla', 'push', 'pull', 'both')


def _run(app, mode, seed=0):
    scenario = build_scenario(seed=seed,
                              interference=InterferenceSpec('hogs', 1))
    if mode in ('push', 'both'):
        install_irs(scenario.machine, [scenario.fg_kernel])
    if mode in ('pull', 'both'):
        install_pull_irs(scenario.machine, [scenario.fg_kernel])
    workload = ParallelWorkload(scenario.sim, scenario.fg_kernel,
                                get_profile(app), scale=0.5).install()
    sim = scenario.sim
    while not workload.is_done and sim.now < 240 * SEC:
        sim.run_until(sim.now + 50 * MS)
    assert workload.is_done
    return workload.makespan_ns()


def test_pull_vs_push_irs(benchmark, capsys, quick):
    def ablation():
        rows = []
        spans = {}
        for app in ('streamcluster', 'UA'):
            spans[app] = {mode: _run(app, mode) for mode in MODES}
            base = spans[app]['vanilla']
            rows.append([app] + ['%+.0f%%' % ((base / spans[app][m] - 1) * 100)
                                 for m in MODES[1:]])
        table = format_table(['app', 'push', 'pull', 'push+pull'], rows,
                             title='Extension: push vs pull IRS (1 hog)')
        return spans, table

    spans, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    for app in spans:
        base = spans[app]['vanilla']
        # Push wins for blocking (immediate rescue) and pull helps too.
        assert spans[app]['push'] < base
        # Pull requires idle vCPUs, so it only helps blocking apps;
        # spinning apps never idle and pull alone changes nothing.
        if app == 'streamcluster':
            assert spans[app]['pull'] < base * 0.95
        # The combination is never worse than push alone (within noise).
        assert spans[app]['both'] <= spans[app]['push'] * 1.05
