"""Figure 8: server throughput and latency improvement under IRS.

Substitution note: the paper reports mean new-order latency for
SPECjbb; in our substrate the effect concentrates in the stall tail, so
the driver reports p99 for both servers (see EXPERIMENTS.md).
"""

from repro.experiments.figures import fig8


def test_fig8_server(run_figure, quick):
    result = run_figure(fig8, quick=quick)
    notes = result.notes
    jbb_thr, jbb_lat = notes[('specjbb', 1)]
    # SPECjbb tail latency improves a lot under light interference...
    assert jbb_lat > 20
    # ...without hurting throughput.
    assert jbb_thr > -5
    # ab barely changes: 512 threads already spread the interference
    # (Section 5.3's explanation).
    ab_thr, __ = notes[('ab', 1)]
    assert abs(ab_thr) < 10
