"""Figure 7: weighted speedup of co-located PARSEC pairs."""

from repro.experiments.figures import fig7

QUICK_APPS = ['blackscholes', 'streamcluster', 'canneal', 'raytrace']


def test_fig7_weighted_speedup(run_figure, quick):
    apps = QUICK_APPS if quick else None
    backgrounds = ('fluidanimate',) if quick else ('fluidanimate',
                                                   'streamcluster')
    result = run_figure(fig7, quick=quick, apps=apps,
                        backgrounds=backgrounds)
    notes = result.notes
    # IRS lifts system efficiency for synchronization-heavy foregrounds.
    assert notes[('fluidanimate', 'streamcluster', 1, 'irs')] > 105
    # And never collapses it at 4-inter (within ~±15% of parity).
    val = notes[('fluidanimate', 'streamcluster', 4, 'irs')]
    assert val is None or val > 85
