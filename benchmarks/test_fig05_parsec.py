"""Figure 5: PARSEC (blocking) improvement over vanilla for PLE,
relaxed co-scheduling, and IRS."""

from repro.experiments.figures import fig5

QUICK_APPS = ['blackscholes', 'streamcluster', 'fluidanimate', 'canneal',
              'dedup', 'raytrace', 'x264', 'bodytrack']


def test_fig5_parsec_grid(run_figure, quick):
    apps = QUICK_APPS if quick else None
    interferers = ['hogs'] if quick else None
    result = run_figure(fig5, quick=quick, apps=apps,
                        interferers=interferers)
    notes = result.notes
    # IRS delivers large 1-inter gains for synchronization-heavy apps...
    assert notes[('hogs', 'streamcluster', 1, 'irs')] > 20
    assert notes[('hogs', 'blackscholes', 1, 'irs')] > 20
    # ...marginal ones for pipeline / work-stealing apps...
    assert abs(notes[('hogs', 'dedup', 1, 'irs')]) < 15
    assert abs(notes[('hogs', 'raytrace', 1, 'irs')]) < 15
    # ...and the gain fades at 4-inter.
    assert (notes[('hogs', 'streamcluster', 4, 'irs')]
            < notes[('hogs', 'streamcluster', 1, 'irs')])
    # IRS beats the other strategies for blocking workloads.
    for app in ('streamcluster', 'blackscholes'):
        irs = notes[('hogs', app, 1, 'irs')]
        assert irs >= notes[('hogs', app, 1, 'ple')]
        assert irs >= notes[('hogs', app, 1, 'relaxed_co')]
