"""Figure 12: NPB under CPU stacking (unpinned vCPUs).

Known divergence (see EXPERIMENTS.md): in the paper, unpinned vanilla
NPB collapses under vCPU stacking, so every strategy shows large
improvements. In our substrate, pure-spin vCPUs generate almost no
hypervisor placement events, so the unpinned vanilla baseline stays
close to the pinned one and the improvements are compressed; IRS's
evacuation/wake churn can even show modest losses. The assertions below
pin the shapes that do reproduce.
"""

from repro.experiments.figures import fig12

QUICK_APPS = ['CG', 'MG', 'UA']


def test_fig12_stacking_npb(run_figure, quick):
    apps = QUICK_APPS if quick else None
    interferers = ('hogs',) if quick else None
    kwargs = {'quick': quick, 'apps': apps}
    if interferers:
        kwargs['interferers'] = interferers
    result = run_figure(fig12, **kwargs)
    notes = result.notes

    def values(strategy):
        return [v for k, v in notes.items()
                if k[2] == strategy and v is not None]

    # No strategy collapses the workload (paper: all are viable here).
    for strategy in ('ple', 'relaxed_co', 'irs'):
        vals = values(strategy)
        assert vals
        assert min(vals) > -35
    # PLE is no longer harmful once vCPUs float (contrast with the
    # pinned Figure 6 runs, where it can hurt MG).
    assert sum(values('ple')) / len(values('ple')) >= -5
