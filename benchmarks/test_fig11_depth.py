"""Figure 11: IRS gain vs number of stacked interfering VMs."""

from repro.experiments.figures import fig11


def test_fig11_contention_depth(run_figure, quick):
    apps = ('blackscholes', 'x264') if quick else None
    kwargs = {'quick': quick}
    if apps:
        kwargs['apps'] = apps
    result = run_figure(fig11, **kwargs)
    notes = result.notes
    # IRS stays useful in highly consolidated settings: positive gain
    # even with 3 VMs stacked per interfered pCPU.
    assert notes[('blackscholes', 1, 3)] > 0
    # Deeper contention tends to increase the gain (Section 5.5).
    assert notes[('blackscholes', 1, 3)] >= notes[('blackscholes', 1, 1)] - 10
