"""Ablation: SA processing-delay sensitivity (Sections 3.1 / 4.1).

The hypervisor delays each preemption until the guest acknowledges; the
paper measures 20-26 us and argues that is negligible against 30 ms
slices. This sweep inflates the handler cost to find where the argument
breaks down, motivating the hard limit of Section 4.1.
"""

from repro.core import IRSConfig
from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.reporting import format_table
from repro.simkernel.units import MS, US

DELAYS_US = (23, 200, 1000, 5000)


def test_sa_delay_sensitivity(benchmark, capsys, quick):
    def ablation():
        spec = InterferenceSpec('hogs', 1)
        base = run_parallel('streamcluster', 'vanilla', spec, scale=0.5)
        rows = []
        gains = {}
        utilizations = {}
        for delay_us in DELAYS_US:
            config = IRSConfig(sa_handler_min_ns=delay_us * US,
                               sa_handler_max_ns=delay_us * US,
                               sa_hard_limit_ns=max(10 * delay_us, 200) * US)
            result = run_parallel('streamcluster', 'irs', spec, scale=0.5,
                                  irs_config=config)
            gain = (base.makespan_ns / result.makespan_ns - 1) * 100
            gains[delay_us] = gain
            utilizations[delay_us] = result.utilization
            rows.append(['%d us' % delay_us,
                         '%.0f' % (result.makespan_ns / 1e6),
                         '%+.1f%%' % gain,
                         '%.3f' % result.utilization])
        table = format_table(
            ['SA delay', 'makespan (ms)', 'vs vanilla', 'util/fair-share'],
            rows, title='Ablation: SA processing delay sweep')
        return gains, utilizations, table

    gains, utilizations, table = benchmark.pedantic(ablation, rounds=1,
                                                    iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    # At the measured 20-26 us the delay is free.
    assert gains[23] > 20
    # Even a 1 ms handler (40x the measured cost) keeps IRS profitable
    # against 30 ms slices...
    assert gains[1000] > 10
    # ...and the gain decreases with the delay.
    assert gains[23] >= gains[5000]
    # The danger of long delays is fairness, not foreground speed: the
    # delayed preemptions keep the pCPU away from the competing VM, so
    # foreground utilization creeps UP with the handler cost. This is
    # exactly why Section 4.1 imposes a hard limit.
    assert utilizations[5000] >= utilizations[23] - 0.02
