"""Section 3.1: SA processing delay profile (paper: 20-26 us)."""

from repro.experiments.figures import sa_overhead


def test_sa_overhead_profile(run_figure, quick):
    result = run_figure(sa_overhead, quick=quick)
    assert 20 <= result.notes['mean_us'] <= 26
    assert result.notes['min_us'] >= 20
    assert result.notes['max_us'] <= 26
    assert result.notes['count'] > 0
