"""Section 3.1: SA processing delay profile (paper: 20-26 us).

Two views of the same quantity: the sender-side mean profile
(``sa_overhead``) and the span-probe latency distribution
(``sa_latency``), which must put the whole offer->ack percentile curve
inside the paper's band - a mean alone would hide a bimodal or
long-tailed delay.
"""

from repro.experiments.figures import sa_latency, sa_overhead


def test_sa_overhead_profile(run_figure, quick):
    result = run_figure(sa_overhead, quick=quick)
    assert 20 <= result.notes['mean_us'] <= 26
    assert result.notes['min_us'] >= 20
    assert result.notes['max_us'] <= 26
    assert result.notes['count'] > 0


def test_sa_delay_distribution(run_figure, quick):
    result = run_figure(sa_latency, quick=quick)
    offer = result.notes['sa.offer']
    assert offer['count'] > 0
    # The full distribution, not just the mean, sits in the band.
    assert 20 <= offer['min_us'] <= 26
    assert 20 <= offer['p50_us'] <= 26
    assert 20 <= offer['p90_us'] <= 26
    assert 20 <= offer['p99_us'] <= 26
    assert 20 <= offer['max_us'] <= 26
    # The upcall handler dominates the delay; delivery legs are cheap.
    upcall = result.notes['sa.upcall']
    assert upcall['p50_us'] <= offer['p50_us']
    assert 20 <= upcall['p50_us'] <= 26
