"""Figure 6: NPB (spinning) improvement over vanilla."""

from repro.experiments.figures import fig6

QUICK_APPS = ['CG', 'EP', 'MG', 'SP', 'UA']


def test_fig6_npb_grid(run_figure, quick):
    apps = QUICK_APPS if quick else None
    interferers = ['hogs'] if quick else None
    result = run_figure(fig6, quick=quick, apps=apps,
                        interferers=interferers)
    notes = result.notes
    # IRS helps spinning workloads substantially at 1-inter.
    assert notes[('hogs', 'UA', 1, 'irs')] > 20
    assert notes[('hogs', 'MG', 1, 'irs')] > 15
    # The gain diminishes as interference widens (Section 5.2).
    assert (notes[('hogs', 'UA', 4, 'irs')]
            < notes[('hogs', 'UA', 1, 'irs')])
    # PLE / relaxed-co perform poorly for some fine-grained spinners
    # (the paper names CG, IS, MG, SP).
    assert notes[('hogs', 'MG', 1, 'ple')] < notes[('hogs', 'MG', 1, 'irs')]
