"""Ablation: hypervisor time-slice length.

The LHP stall is one scheduler slice long (30 ms in Xen, 6 ms in KVM,
50 ms in VMware — Section 3.1), so the *tail latency* a preemption
inflicts tracks the slice directly. This sweep reproduces that: vanilla
p99 grows with the slice while IRS keeps it near the service time; for
throughput-bound parallel runs the slice matters far less (the
contended vCPU's 50% bandwidth dominates).
"""

from repro.experiments.reporting import format_table
from repro.experiments.strategies import apply_strategy
from repro.experiments.topology import InterferenceSpec
from repro.guestos import GuestKernel
from repro.hypervisor import CreditConfig, Machine, VM
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC
from repro.workloads import SpecJbbWorkload, cpu_hog

SLICES_MS = (6, 30, 90)


def _run(slice_ms, strategy, seed=0):
    sim = Simulator(seed=seed)
    tick_ns = min(10 * MS, (slice_ms * MS) // 3)
    config = CreditConfig(tslice_ns=slice_ms * MS, tick_ns=tick_ns,
                          accounting_ns=max(30 * MS, slice_ms * MS))
    machine = Machine(sim, n_pcpus=4, credit_config=config)
    vm = VM('fg', 4, sim)
    machine.add_vm(vm, pinning=[0, 1, 2, 3])
    kernel = GuestKernel(sim, vm, machine)
    hog_vm = VM('hog', 1, sim)
    machine.add_vm(hog_vm, pinning=[0])
    GuestKernel(sim, hog_vm, machine).spawn('hog', cpu_hog(10 * MS))
    apply_strategy(machine, strategy,
                   irs_kernels=[kernel] if strategy == 'irs' else ())
    machine.start()
    server = SpecJbbWorkload(sim, kernel).install()
    sim.run_until(500 * MS)
    server.latency.reset()
    server.completed = 0
    server.started_at = sim.now
    sim.run_until(sim.now + 3 * SEC)
    return server.latency


def test_slice_length_sets_the_stall_tail(benchmark, capsys, quick):
    def ablation():
        rows = []
        stats = {}
        for slice_ms in SLICES_MS:
            vanilla = _run(slice_ms, 'vanilla')
            irs = _run(slice_ms, 'irs')
            stats[slice_ms] = (vanilla.p99(), vanilla.max(),
                               irs.p99(), irs.max())
            rows.append(['%d ms' % slice_ms,
                         '%.1f' % (vanilla.p99() / 1e6),
                         '%.1f' % (vanilla.max() / 1e6),
                         '%.1f' % (irs.p99() / 1e6),
                         '%.1f' % (irs.max() / 1e6)])
        table = format_table(
            ['slice', 'vanilla p99', 'vanilla max', 'IRS p99', 'IRS max'],
            rows,
            title='Ablation: slice length vs SPECjbb latency, ms (1 hog)')
        return stats, table

    stats, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    # The vanilla worst-case stall tracks the slice length.
    assert stats[90][1] > stats[6][1] * 2.5
    assert stats[30][1] > 28 * MS
    # At the Xen-like 30 ms slice, IRS collapses the p99 tail...
    assert stats[30][2] < stats[30][0] * 0.6
    # ...and at 90 ms it caps the worst stall far below the slice.
    assert stats[90][3] < stats[90][1] * 0.6
