"""Section 5.4: IRS does not compromise inter-VM fairness."""

from repro.experiments.figures import fairness_check


def test_fairness(run_figure, quick):
    result = run_figure(fairness_check, quick=quick)
    notes = result.notes
    for app in ('streamcluster', 'UA'):
        # IRS improves utilization over vanilla...
        assert notes[(app, 'irs')] >= notes[(app, 'vanilla')] - 0.05
        # ...but never exceeds the fair share.
        assert notes[(app, 'irs')] <= 1.1
