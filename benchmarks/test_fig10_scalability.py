"""Figure 10: IRS gain vs number of interfered vCPUs (8-vCPU VMs)."""

from repro.experiments.figures import fig10


def test_fig10_scalability(run_figure, quick):
    apps = ('blackscholes', 'MG') if quick else None
    kwargs = {'quick': quick}
    if apps:
        kwargs['apps'] = apps
    result = run_figure(fig10, **kwargs)
    notes = result.notes
    # Gains diminish as more vCPUs are interfered (Section 5.5 obs. 1).
    assert (notes[('blackscholes', 'hogs', 1)]
            > notes[('blackscholes', 'hogs', 8)])
    assert notes[('blackscholes', 'hogs', 1)] > 15
    # Group (barrier) synchronization benefits at least as much as the
    # spinning fine-grained app (obs. 2).
    assert notes[('blackscholes', 'hogs', 1)] > 0
    assert notes[('MG', 'hogs', 1)] > 0
