"""Resilience under an unreliable SA channel (fault campaigns).

The claim: IRS *with graceful degradation* keeps its interference
resilience even when 10-50 % of SA upcalls are lost — every Figure 5
workload still completes no slower than vanilla — while the undefended
protocol measurably regresses, and a failing migrator strands tasks
outright once the defense layer is switched off.
"""

import pytest

from repro.core import IRSConfig
from repro.experiments.harness import run_parallel
from repro.experiments.topology import InterferenceSpec
from repro.faults import get_campaign

from test_fig05_parsec import QUICK_APPS

SEC = 1_000_000_000
HOGS_1 = InterferenceSpec('hogs', width=1)
LOSS_RATES = (10, 30, 50)

# IRS is roughly break-even for the pipeline / work-stealing apps even
# fault-free (Figure 5: dedup/raytrace within a few percent of
# vanilla), so "no worse than vanilla" carries that same small margin.
NO_WORSE_SLACK = 1.05

_vanilla_cache = {}


def _run(app, strategy, scale, **kwargs):
    kwargs.setdefault('timeout_ns', 30 * SEC)
    return run_parallel(app, strategy, interference=HOGS_1, seed=0,
                        scale=scale, **kwargs)


def _vanilla_makespan(app, scale):
    if app not in _vanilla_cache:
        result = _run(app, 'vanilla', scale)
        assert result.completed
        _vanilla_cache[app] = result.makespan_ns
    return _vanilla_cache[app]


@pytest.mark.parametrize('pct', LOSS_RATES)
def test_irs_with_degradation_never_worse_than_vanilla(pct, quick):
    """10-50 % SA-upcall loss: defended IRS completes every Figure 5
    workload with runtime <= vanilla (modulo the fault-free margin)."""
    scale = 0.3 if quick else 0.5
    plan = get_campaign('sa-loss-%d' % pct)
    injected = 0
    for app in QUICK_APPS:
        faulted = _run(app, 'irs', scale, fault_plan=plan)
        assert faulted.completed, '%s stalled under %d%% SA loss' % (app, pct)
        vanilla_ns = _vanilla_makespan(app, scale)
        assert faulted.makespan_ns <= vanilla_ns * NO_WORSE_SLACK, (
            '%s under %d%% SA loss: irs %.1fms vs vanilla %.1fms'
            % (app, pct, faulted.makespan_ns / 1e6, vanilla_ns / 1e6))
        injected += faulted.metrics.fault_counters.get('faults.injected', 0)
    # The campaign actually bit: upcalls were dropped somewhere. (At
    # 10 % the quick profile sees too few offers to guarantee a hit.)
    if pct >= 30:
        assert injected > 0


def test_undefended_irs_regresses_under_sa_loss(quick):
    """The ablation that motivates the defense layer: same 30 % loss
    campaign, degradation off — grace windows burn on every lost
    upcall and the makespan visibly regresses."""
    scale = 0.3 if quick else 0.5
    plan = get_campaign('sa-loss-30')
    defended = _run('streamcluster', 'irs', scale, fault_plan=plan)
    undefended = _run('streamcluster', 'irs', scale, fault_plan=plan,
                      irs_config=IRSConfig(degradation_enabled=False))
    assert defended.completed and undefended.completed
    # Without retries every lost upcall becomes a timed-out offer.
    assert undefended.metrics.counters.get('irs.sa_timeouts', 0) > 0
    assert undefended.metrics.counters.get('irs.sa_retries', 0) == 0
    assert defended.metrics.counters.get('irs.sa_retries', 0) > 0
    assert undefended.makespan_ns > defended.makespan_ns


def test_undefended_migrator_strands_tasks(quick):
    """A failing migrator without the requeue defense leaves a task in
    TASK_MIGRATING limbo forever: the workload never finishes. The
    defended run shrugs it off."""
    scale = 0.3 if quick else 0.5
    plan = get_campaign('flaky-migrator-80')
    stranded = _run('streamcluster', 'irs', scale, fault_plan=plan,
                    irs_config=IRSConfig(degradation_enabled=False),
                    timeout_ns=5 * SEC)
    assert not stranded.completed
    assert stranded.metrics.counters.get('irs.migrator_stranded', 0) > 0
    recovered = _run('streamcluster', 'irs', scale, fault_plan=plan)
    assert recovered.completed
    assert recovered.metrics.counters.get('irs.migrator_recoveries', 0) > 0
