"""Extension baseline: delay-preemption (Uhlig et al., Section 2.2).

The guest asks the hypervisor not to preempt a vCPU while a thread
holds a lock. The paper argues such lock-passing approaches are
limited: they shrink the LHP window but do nothing about the load
imbalance a preempted vCPU causes. This bench shows both halves:
delay-preemption only moves the needle when critical sections are long
(and then runs into its deferral budget), while IRS wins regardless.
"""

from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.reporting import format_table
from repro.simkernel.units import MS, US
from repro.workloads import get_profile, profile_variant

# A canneal variant with deliberately long critical sections: the
# regime delay-preemption was designed for.
LOCKY = profile_variant(get_profile('canneal'), phase_ns=4 * MS,
                        critical_ns=1 * MS)


def test_delay_preemption(benchmark, capsys, quick):
    def ablation():
        spec = InterferenceSpec('hogs', 1)
        rows = []
        out = {}
        for app, profile in (('x264', None), ('canneal-locky', LOCKY)):
            base = run_parallel(app if profile is None else 'canneal',
                                'vanilla', spec, scale=0.5, profile=profile)
            row = [app]
            for strategy in ('delay_preempt', 'irs'):
                result = run_parallel(
                    app if profile is None else 'canneal', strategy, spec,
                    scale=0.5, profile=profile)
                gain = (base.makespan_ns / result.makespan_ns - 1) * 100
                out[(app, strategy)] = gain
                row.append('%+.1f%%' % gain)
            deferrals = result.scenario.sim.trace.counters['dp.deferrals']
            row.append(deferrals)
            rows.append(row)
        table = format_table(
            ['workload', 'delay_preempt', 'irs', '(dp deferrals)'],
            rows, title='Extension: delay-preemption vs IRS (1 hog)')
        return out, table

    out, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    # Delay-preemption is statistically inert in both regimes (short
    # sections rarely coincide with preemptions; long sections blow the
    # deferral budget) — a seed sweep puts its mean effect at ~0%.
    assert abs(out[('x264', 'delay_preempt')]) < 10
    assert abs(out[('canneal-locky', 'delay_preempt')]) < 12
    # IRS dominates in both regimes (the paper's core claim: the win is
    # load balancing, not LHP-window shrinking).
    for app in ('x264', 'canneal-locky'):
        assert out[(app, 'irs')] > out[(app, 'delay_preempt')] + 10
