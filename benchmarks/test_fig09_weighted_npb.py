"""Figure 9: weighted speedup of co-located NPB pairs."""

from repro.experiments.figures import fig9

QUICK_APPS = ['CG', 'MG', 'UA']


def test_fig9_weighted_speedup(run_figure, quick):
    apps = QUICK_APPS if quick else None
    backgrounds = ('LU',) if quick else ('LU', 'UA')
    result = run_figure(fig9, quick=quick, apps=apps,
                        backgrounds=backgrounds)
    notes = result.notes
    assert notes[('LU', 'CG', 1, 'irs')] > 100
    val = notes[('LU', 'UA', 4, 'irs')]
    assert val is None or val > 85
