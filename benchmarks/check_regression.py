"""Perf-regression gate over the pipeline timing baseline.

Compares a fresh :mod:`benchmarks.runtime_baseline` measurement (or a
saved ``--fresh`` file) against the checked-in ``BENCH_runtimes.json``
and exits non-zero when any figure timing regressed past the
tolerance. The comparison is deliberately coarse — wall time on shared
CI machines is noisy — so the default tolerance is wide and timings
below ``--min-seconds`` (warm-cache passes measured in microseconds)
are skipped entirely: they are dominated by scheduler jitter, not by
the code.

Not collected by pytest (no ``test_`` prefix); run directly::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --warn-only
    PYTHONPATH=src python benchmarks/check_regression.py \\
        --fresh new.json --tolerance 0.25

CI runs it with ``--warn-only``: the report lands in the log without a
noisy runner failing the build; release branches can drop the flag.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), '..', 'src'))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), '..'))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, 'BENCH_runtimes.json')

#: Timings shorter than this many seconds carry no signal.
DEFAULT_MIN_SECONDS = 0.05

#: Allowed slowdown before a timing counts as a regression (0.5 = 50%).
DEFAULT_TOLERANCE = 0.5


def compare(baseline_figures, fresh_figures, tolerance,
            min_seconds=DEFAULT_MIN_SECONDS):
    """Regressions of ``fresh_figures`` against ``baseline_figures``.

    Both arguments are ``{figure: {timing_key: seconds}}`` maps (the
    ``figures`` object of ``BENCH_runtimes.json``). Returns a list of
    ``(figure, key, baseline_s, fresh_s, ratio)`` tuples for every
    timing where ``fresh > baseline * (1 + tolerance)``; figures or
    keys present on only one side are ignored (new figures are not
    regressions, removed ones have nothing to regress).
    """
    regressions = []
    for figure in sorted(set(baseline_figures) & set(fresh_figures)):
        base_entry = baseline_figures[figure]
        fresh_entry = fresh_figures[figure]
        for key in sorted(set(base_entry) & set(fresh_entry)):
            base = base_entry[key]
            fresh = fresh_entry[key]
            if not isinstance(base, (int, float)) or base < min_seconds:
                continue
            if fresh > base * (1.0 + tolerance):
                regressions.append((figure, key, base, fresh, fresh / base))
    return regressions


def _load_figures(path):
    with open(path) as handle:
        payload = json.load(handle)
    figures = payload.get('figures')
    if not isinstance(figures, dict):
        raise SystemExit('%s: no "figures" object (not a '
                         'runtime_baseline.py output?)' % path)
    return figures


def _measure_fresh(jobs):
    """Run the baseline harness in-process; returns its figures map
    without touching BENCH_runtimes.json."""
    import runtime_baseline
    return runtime_baseline.measure(jobs)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument('--baseline', default=DEFAULT_BASELINE,
                        metavar='FILE',
                        help='checked-in timing baseline '
                             '(default: %(default)s)')
    parser.add_argument('--fresh', metavar='FILE',
                        help='pre-measured timings to gate; when '
                             'omitted, runtime_baseline.py is run '
                             'in-process for a fresh measurement')
    parser.add_argument('--tolerance', type=float,
                        default=DEFAULT_TOLERANCE, metavar='FRACTION',
                        help='allowed slowdown before failing, as a '
                             'fraction of the baseline (default: '
                             '%(default)s = +50%%)')
    parser.add_argument('--min-seconds', type=float, dest='min_seconds',
                        default=DEFAULT_MIN_SECONDS, metavar='SECONDS',
                        help='skip baseline timings shorter than this '
                             '(noise floor; default: %(default)s)')
    parser.add_argument('--jobs', type=int,
                        default=min(4, os.cpu_count() or 1),
                        help='worker count for the fresh measurement')
    parser.add_argument('--warn-only', action='store_true',
                        dest='warn_only',
                        help='report regressions but exit 0 (CI mode)')
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error('--tolerance must be >= 0, got %g' % args.tolerance)

    baseline = _load_figures(args.baseline)
    if args.fresh:
        fresh = _load_figures(args.fresh)
    else:
        print('measuring fresh timings (jobs=%d)...' % args.jobs)
        fresh = _measure_fresh(args.jobs)

    regressions = compare(baseline, fresh, args.tolerance,
                          min_seconds=args.min_seconds)
    checked = sum(
        1 for figure in set(baseline) & set(fresh)
        for key in set(baseline[figure]) & set(fresh[figure])
        if isinstance(baseline[figure][key], (int, float))
        and baseline[figure][key] >= args.min_seconds)
    if not regressions:
        print('perf gate: OK — %d timings within +%.0f%% of baseline'
              % (checked, args.tolerance * 100))
        return 0
    print('perf gate: %d of %d timings regressed past +%.0f%%:'
          % (len(regressions), checked, args.tolerance * 100))
    for figure, key, base, fresh_s, ratio in regressions:
        print('  %-24s %-14s %.4fs -> %.4fs (%.2fx)'
              % (figure, key, base, fresh_s, ratio))
    if args.warn_only:
        print('(--warn-only: not failing the build)')
        return 0
    return 1


if __name__ == '__main__':
    raise SystemExit(main())
