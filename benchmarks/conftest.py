"""Benchmark harness configuration.

Each benchmark regenerates one table/figure from the paper and prints
the same rows/series the paper reports. ``REPRO_BENCH_FULL=1`` switches
from the quick profile (1 seed, reduced workload scale) to the full one
(3 seeds, full scale).
"""

import os

import pytest

FULL = os.environ.get('REPRO_BENCH_FULL', '') not in ('', '0')


@pytest.fixture
def quick():
    return not FULL


@pytest.fixture
def run_figure(benchmark, capsys):
    """Run a figure driver exactly once under pytest-benchmark and
    print its table."""
    def runner(figure_fn, **kwargs):
        result = benchmark.pedantic(figure_fn, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.table())
            print()
        return result
    return runner
