"""Extension baseline: balance scheduling (Sukwong & Kim, ref [30]).

Placement-based probabilistic co-scheduling: sibling vCPUs are kept on
distinct pCPUs. The paper's Section 2.1 critique is that this prevents
CPU stacking but not LHP/LWP. Both halves are measured here under the
unpinned 4-hog stacking scenario and the 1-hog interference scenario.
"""

from repro.experiments import InterferenceSpec, run_parallel
from repro.experiments.reporting import format_table


def test_balance_scheduling(benchmark, capsys, quick):
    def ablation():
        rows = []
        out = {}
        for label, width in (('stacking (4 hogs)', 4),
                             ('interference (1 hog)', 1)):
            spec = InterferenceSpec('hogs', width)
            vanilla = run_parallel('streamcluster', 'vanilla', spec,
                                   scale=0.3, pinned=False)
            balanced = run_parallel('streamcluster', 'balance_sched',
                                    spec, scale=0.3, pinned=False)
            irs = run_parallel('streamcluster', 'irs', spec, scale=0.3,
                               pinned=False)
            bs_gain = (vanilla.makespan_ns / balanced.makespan_ns - 1) * 100
            irs_gain = (vanilla.makespan_ns / irs.makespan_ns - 1) * 100
            out[label] = (bs_gain, irs_gain)
            rows.append([label, '%.0f' % (vanilla.makespan_ns / 1e6),
                         '%+.1f%%' % bs_gain, '%+.1f%%' % irs_gain])
        table = format_table(
            ['scenario', 'vanilla (ms)', 'balance_sched', 'irs'],
            rows, title='Extension: balance scheduling vs IRS '
                        '(streamcluster, unpinned)')
        return out, table

    out, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
        print()
    # Balance scheduling repairs stacking (its design goal)...
    assert out['stacking (4 hogs)'][0] >= -2
    # ...but does not touch LHP: IRS stays clearly ahead in both
    # scenarios (Section 2.1's critique).
    for label in out:
        assert out[label][1] > out[label][0] + 5
