"""Timing harness for the run-spec pipeline: serial vs --jobs vs cache.

Times each quick figure three ways — SerialExecutor, ParallelRunner,
and a second cached pass — and writes ``BENCH_runtimes.json`` at the
repo root so the wall-time trajectory of the pipeline is tracked in
version control.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/runtime_baseline.py [--jobs N]
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), '..', 'src'))

from repro.experiments import (            # noqa: E402
    ParallelRunner,
    ResultCache,
    SerialExecutor,
    pipeline_counters,
    set_default_cache,
    set_default_executor,
)
from repro.experiments.figures import (    # noqa: E402
    cluster_consolidation,
    cluster_resilience,
    fig1a,
    fig10,
    sa_overhead,
    traffic_slo,
)

FIGURES = {
    'fig1a': lambda: fig1a(quick=True),
    'fig10-quick': lambda: fig10(quick=True),
    'sa_overhead': lambda: sa_overhead(quick=True),
    'cluster-consolidation': lambda: cluster_consolidation(quick=True),
    'cluster-resilience': lambda: cluster_resilience(quick=True),
    'traffic-slo': lambda: traffic_slo(quick=True),
}

#: One-shot actions per iteration of the dispatch microbenchmark
#: program (Acquire + Release; the Compute is charged by the timer
#: path, not the dispatch table).
DISPATCH_ITERATIONS = 50_000


def _timed(driver):
    start = time.perf_counter()
    driver()
    return round(time.perf_counter() - start, 4)


def measure_dispatch(iterations=DISPATCH_ITERATIONS):
    """Time the guest kernel's action-dispatch hot path
    (``repro.guestos.interp.ActionInterpreter``): one task chewing
    through uncontended lock/unlock pairs separated by short computes.
    Returns a ``BENCH_runtimes.json`` figure entry keyed on seconds and
    nanoseconds-per-one-shot-action."""
    from repro.guestos import GuestKernel
    from repro.hypervisor import Machine, VM
    from repro.simkernel import Simulator
    from repro.simkernel.units import SEC, US
    from repro.workloads import Acquire, Compute, Mutex, Release

    sim = Simulator(seed=0)
    machine = Machine(sim, n_pcpus=1)
    vm = VM('bench', 1, sim)
    machine.add_vm(vm, pinning=[0])
    kernel = GuestKernel(sim, vm, machine)
    lock = Mutex('m')

    def program():
        for __ in range(iterations):
            yield Acquire(lock)
            yield Release(lock)
            yield Compute(1 * US)

    kernel.spawn('dispatch', program(), gcpu_index=0)
    machine.start()
    start = time.perf_counter()
    sim.run_until(1000 * SEC)
    wall = time.perf_counter() - start
    one_shot_actions = iterations * 2
    return {
        'dispatch_s': round(wall, 4),
        'ns_per_action': round(wall * 1e9 / one_shot_actions, 1),
    }


#: Samples and interleaved percentile queries for the latency
#: microbenchmark — the record/query mix a live SLO tracker produces.
PERCENTILE_SAMPLES = 100_000
PERCENTILE_QUERY_EVERY = 1_000


def measure_percentiles(samples=PERCENTILE_SAMPLES,
                        query_every=PERCENTILE_QUERY_EVERY):
    """Time :class:`repro.metrics.LatencyRecorder` under the serving
    plane's access pattern: a long append stream with periodic p50/p99
    queries (SLO snapshots), where the cached sorted view only pays for
    re-sorting when the sample set actually changed."""
    from repro.metrics import LatencyRecorder

    rec = LatencyRecorder()
    start = time.perf_counter()
    for i in range(samples):
        rec.record((i * 2654435761) % 1_000_000)
        if i % query_every == 0:
            rec.p50()
            rec.p99()
    wall = time.perf_counter() - start
    return {
        'percentiles_s': round(wall, 4),
        'ns_per_sample': round(wall * 1e9 / samples, 1),
    }


#: Wall-time budget for one full repro-lint sweep (all five passes over
#: ``src/repro``). The lint gates CI ahead of the test suite, so it must
#: stay a few seconds at most; breaching this is a hard error here.
REPLINT_BUDGET_S = 5.0


def measure_replint(budget_s=REPLINT_BUDGET_S):
    """Time one full ``tools.replint`` sweep — all registered passes
    over ``src/repro`` with the checked-in baseline applied — and fail
    if it exceeds the CI fail-first budget or reports active findings."""
    repo_root = os.path.join(os.path.dirname(__file__), '..')
    if os.path.abspath(repo_root) not in (os.path.abspath(p)
                                          for p in sys.path):
        sys.path.insert(0, repo_root)
    from tools.replint import run_passes

    src_root = os.path.join(repo_root, 'src')
    baseline = os.path.join(repo_root, 'tools', 'replint', 'baseline.json')
    start = time.perf_counter()
    findings, _ = run_passes(src_root, baseline_path=baseline)
    wall = time.perf_counter() - start
    active = [f for f in findings if f.active]
    if active:
        raise AssertionError(
            'replint found %d active finding(s) during benchmarking'
            % len(active))
    if wall > budget_s:
        raise AssertionError(
            'replint sweep took %.2fs, over the %.1fs budget'
            % (wall, budget_s))
    return {
        'replint_s': round(wall, 4),
        'budget_s': budget_s,
        'findings_total': len(findings),
    }


def measure(jobs):
    results = {}
    for name, driver in FIGURES.items():
        entry = {}
        set_default_cache(None)
        set_default_executor(SerialExecutor())
        entry['serial_s'] = _timed(driver)
        set_default_executor(ParallelRunner(jobs=jobs))
        entry[f'jobs{jobs}_s'] = _timed(driver)
        with tempfile.TemporaryDirectory() as tmp:
            set_default_executor(None)
            set_default_cache(ResultCache(root=tmp))
            entry['cache_cold_s'] = _timed(driver)
            before = pipeline_counters()
            entry['cache_warm_s'] = _timed(driver)
            after = pipeline_counters()
            dispatched = (after.get('executor.dispatched', 0)
                          - before.get('executor.dispatched', 0))
            if dispatched:
                raise AssertionError(
                    f'{name}: warm cache pass dispatched {dispatched} runs')
        set_default_cache(None)
        set_default_executor(None)
        results[name] = entry
        print(f'{name}: {entry}')
    results['action-dispatch'] = measure_dispatch()
    print(f"action-dispatch: {results['action-dispatch']}")
    results['latency-percentiles'] = measure_percentiles()
    print(f"latency-percentiles: {results['latency-percentiles']}")
    results['replint'] = measure_replint()
    print(f"replint: {results['replint']}")
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--jobs', type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument('--out', default=os.path.join(
        os.path.dirname(__file__), '..', 'BENCH_runtimes.json'))
    args = parser.parse_args(argv)

    payload = {
        'harness': 'benchmarks/runtime_baseline.py',
        'python': platform.python_version(),
        'cpu_count': os.cpu_count(),
        'jobs': args.jobs,
        'figures': measure(args.jobs),
    }
    with open(args.out, 'w') as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write('\n')
    print(f'wrote {os.path.abspath(args.out)}')
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
