"""Unit tests for the hypervisor vCPU balancer and the guest load
balancer's decision logic."""

from repro.guestos.balancer import GuestBalancer
from repro.hypervisor import Machine, VM
from repro.hypervisor.balancer import HypervisorBalancer
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute, Sleep, cpu_hog

from conftest import build_machine, build_vm


class TestHypervisorWakePlacement:
    def _machine(self, n_pcpus=4):
        sim = Simulator(seed=1)
        machine = Machine(sim, n_pcpus)
        machine.enable_unpinned_balancing()
        vm = VM('vm', n_pcpus, sim)
        machine.add_vm(vm)
        return sim, machine, vm

    def test_prefers_least_loaded_snapshot(self):
        sim, machine, vm = self._machine()
        balancer = machine.hv_balancer
        # Fill pcpu 0..2 with fake load by inserting runnable vCPUs.
        for i in range(3):
            vcpu = vm.vcpus[i]
            vcpu.set_runstate('runnable', 0)
            machine.pcpus[i].insert_vcpu(vcpu)
        pick = balancer.pick_pcpu_for_wake(vm.vcpus[3])
        assert pick is machine.pcpus[3]

    def test_tie_break_prefers_home(self):
        sim, machine, vm = self._machine()
        balancer = machine.hv_balancer
        vcpu = vm.vcpus[2]
        vcpu.pcpu = machine.pcpus[2]
        pick = balancer.pick_pcpu_for_wake(vcpu)
        assert pick is machine.pcpus[2]

    def test_snapshot_staleness_collides_simultaneous_wakes(self):
        """Two wakes inside one snapshot window see the same loads and
        pick the same pCPU — the stacking race of Section 5.6."""
        sim, machine, vm = self._machine()
        balancer = machine.hv_balancer
        # Make pCPU 0 the unique least-loaded before the snapshot.
        for i in (1, 2, 3):
            vcpu = vm.vcpus[i]
            vcpu.set_runstate('runnable', 0)
            machine.pcpus[i].insert_vcpu(vcpu)
        extra_vm = VM('extra', 2, sim)
        machine.add_vm(extra_vm)
        first = balancer.pick_pcpu_for_wake(extra_vm.vcpus[0])
        assert first is machine.pcpus[0]
        # Occupy it for real; within the same stale snapshot the second
        # wake still lands there.
        occupant = extra_vm.vcpus[0]
        occupant.set_runstate('runnable', 0)
        first.insert_vcpu(occupant)
        second = balancer.pick_pcpu_for_wake(extra_vm.vcpus[1])
        assert second is first

    def test_snapshot_refreshes_after_interval(self):
        sim, machine, vm = self._machine()
        balancer = machine.hv_balancer
        first = balancer.pick_pcpu_for_wake(vm.vcpus[0])
        other = vm.vcpus[1]
        other.set_runstate('runnable', 0)
        first.insert_vcpu(other)
        sim.now = balancer.snapshot_interval_ns + 1
        second = balancer.pick_pcpu_for_wake(vm.vcpus[2])
        assert second is not first


class TestHypervisorRebalance:
    def test_rebalance_spreads_queued_vcpus(self):
        sim = Simulator(seed=2)
        machine = Machine(sim, 2)
        machine.enable_unpinned_balancing()
        vm = VM('vm', 3, sim)
        machine.add_vm(vm)
        for vcpu in vm.vcpus:
            vcpu.set_runstate('runnable', 0)
            machine.pcpus[0].insert_vcpu(vcpu)
        moved = machine.hv_balancer.periodic_rebalance()
        assert moved >= 1
        # The moved vCPU is either queued on or already running on the
        # idler pCPU (the tickle dispatches it immediately).
        assert (machine.pcpus[1].nr_runnable >= 1
                or machine.pcpus[1].current is not None)

    def test_balanced_queues_untouched(self):
        sim = Simulator(seed=3)
        machine = Machine(sim, 2)
        machine.enable_unpinned_balancing()
        vm = VM('vm', 2, sim)
        machine.add_vm(vm)
        for i, vcpu in enumerate(vm.vcpus):
            vcpu.set_runstate('runnable', 0)
            machine.pcpus[i].insert_vcpu(vcpu)
        assert machine.hv_balancer.periodic_rebalance() == 0

    def test_pinned_vcpus_never_moved(self):
        sim = Simulator(seed=4)
        machine = Machine(sim, 2)
        machine.enable_unpinned_balancing()
        vm = VM('vm', 3, sim)
        machine.add_vm(vm, pinning=[0, 0, 0])
        for vcpu in vm.vcpus:
            vcpu.set_runstate('runnable', 0)
            machine.pcpus[0].insert_vcpu(vcpu)
        assert machine.hv_balancer.periodic_rebalance() == 0
        assert machine.pcpus[1].nr_runnable == 0


class TestGuestWakeBalancing:
    def _kernel(self, sim, n=2):
        machine = build_machine(sim, n)
        vm, kernel = build_vm(sim, machine, n_vcpus=n,
                              pinning=list(range(n)))
        machine.start()
        return machine, kernel

    def test_wake_stays_on_idle_prev_cpu(self, sim):
        machine, kernel = self._kernel(sim)

        def napper():
            for __ in range(5):
                yield Compute(1 * MS)
                yield Sleep(3 * MS)
        task = kernel.spawn('n', napper(), gcpu_index=1)
        sim.run_until(100 * MS)
        assert task.migrations == 0

    def test_wake_moves_to_idle_sibling_when_prev_busy(self, sim):
        machine, kernel = self._kernel(sim)
        kernel.spawn('busy', cpu_hog(10 * MS), gcpu_index=0)
        sleeper_done = []

        def one_nap():
            yield Compute(100_000)
            yield Sleep(5 * MS)
            yield Compute(1 * MS)
        task = kernel.spawn('napper', one_nap(), gcpu_index=0,
                            on_exit=lambda t, now: sleeper_done.append(now))
        sim.run_until(200 * MS)
        # On wake, gcpu0 runs the hog; the napper lands on idle gcpu1.
        assert sleeper_done
        assert task.gcpu is kernel.gcpus[1]

    def _napper_vs_intruder(self, sim, rule_on):
        """A sleeper whose home gcpu1 is occupied by a tagged intruder
        when it wakes; gcpu0 idles throughout."""
        machine, kernel = self._kernel(sim)
        kernel.balancer.irs_wake_rule = rule_on

        def one_nap():
            yield Compute(100_000)
            yield Sleep(5 * MS)
            yield Compute(1 * MS)
        task = kernel.spawn('napper', one_nap(), gcpu_index=1)
        sim.run_until(1 * MS)                  # napper now asleep
        intruder = kernel.spawn('intruder', cpu_hog(10 * MS), gcpu_index=1)
        intruder.irs_tag = True
        sim.run_until(3 * MS)
        assert kernel.gcpus[1].current is intruder
        sim.run_until(8 * MS)                  # past the wake
        return task, kernel

    def test_irs_wake_rule_preempts_tagged_intruder(self, sim):
        task, kernel = self._napper_vs_intruder(sim, rule_on=True)
        # The rule keeps the waker home, preempting the intruder.
        assert task.gcpu is kernel.gcpus[1]

    def test_vanilla_wake_migrates_away_from_busy_home(self, sim):
        task, kernel = self._napper_vs_intruder(sim, rule_on=False)
        # Stock behaviour: woken onto the idle sibling instead.
        assert task.gcpu is kernel.gcpus[0]


class TestGuestPullEligibility:
    def test_cache_hot_tasks_skipped_by_periodic(self, sim):
        machine = build_machine(sim, 1)
        vm, kernel = build_vm(sim, machine, pinning=[0])
        machine.start()
        balancer = kernel.balancer
        task = kernel.spawn('t', cpu_hog(10 * MS))
        sim.run_until(2 * MS)
        task.last_descheduled = sim.now
        assert not balancer._pullable(task, sim.now)
        assert balancer._pullable(
            task, sim.now + kernel.policy.config.cache_hot_ns)
