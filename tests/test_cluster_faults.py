"""Tests for cluster fault tolerance: host-crash recovery and parking,
migration rollback and the per-VM circuit breaker, quarantine draining,
the deterministic chaos campaigns, and the parallel runner's wall-clock
watchdog. The acceptance invariants live here: seeded chaos runs are
bit-identical, aborts leak no reservations, and every orphaned VM is
either re-placed or explicitly parked — never lost."""

import json
import os
import time

import pytest

from repro.cluster import (
    HOST_FAILED,
    HOST_UP,
    Cluster,
    HostSpec,
    RebalanceDaemon,
    VmRequest,
    run_consolidation,
)
from repro.experiments import cluster_spec, run_specs
from repro.experiments.executor import ParallelRunner, RunError
from repro.faults import (
    CAMPAIGNS,
    FaultPlan,
    FaultSpec,
    get_campaign,
    parse_fault_plan,
)
from repro.simkernel import Simulator, install_sanitizer
from repro.simkernel.units import MS, SEC

CLUSTER_CAMPAIGNS = ('host-flap-15', 'host-degrade-20',
                     'migration-storm-40', 'capacity-crunch-8',
                     'cluster-chaos')


def _specs(n=3, n_pcpus=4, capacity=None):
    return [HostSpec('h%d' % i, n_pcpus=n_pcpus, capacity_vcpus=capacity)
            for i in range(n)]


def _cluster(sim, n=3, capacity=None, rebalance=None, fault_plan=None,
             policy='first_fit'):
    cluster = Cluster(sim, _specs(n, capacity=capacity), policy=policy,
                      rebalance=rebalance, fault_plan=fault_plan)
    cluster.start()
    return cluster


def _hog(name, n_vcpus=2):
    return VmRequest(name, n_vcpus=n_vcpus, workload='hogs')


class TestFaultSpecs:
    def test_host_kinds_registered(self):
        spec = FaultSpec('host_crash', 0.1, host='h0', down_ns=100 * MS)
        assert spec.matches_host('h0')
        assert not spec.matches_host('h1')
        assert FaultSpec('host_degrade', 0.1).matches_host('anything')

    def test_down_ns_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec('host_crash', 0.1, down_ns=0)

    def test_cluster_campaigns_resolve(self):
        for name in CLUSTER_CAMPAIGNS:
            plan = get_campaign(name)
            assert plan.specs
            assert name in CAMPAIGNS

    def test_campaign_accepts_underscores_and_parametrics(self):
        assert get_campaign('cluster_chaos').name == 'cluster-chaos'
        assert get_campaign('host_flap_30').specs[0].probability == 0.30
        merged = parse_fault_plan('host-flap-10,migration-storm-20')
        assert len(merged.specs) == 2

    def test_unknown_campaign_raises(self):
        with pytest.raises(ValueError):
            get_campaign('host-meltdown-50')


class TestHostCrashRecovery:
    def test_orphans_replaced_on_surviving_hosts(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        h0 = cluster.submit(_hog('vm0'))
        assert h0 is cluster.hosts[0]
        sim.run_until(50 * MS)
        vm = h0.resident_vms[0]
        cluster.crash_host(h0, down_ns=300 * MS)
        assert h0.state == HOST_FAILED
        assert not h0.resident_vms
        # Re-placed synchronously: capacity existed on h1.
        assert cluster.host_of(vm) is cluster.hosts[1]
        assert cluster.recovery.replaced == 1
        assert sim.trace.counters['cluster.recoveries'] == 1
        # The hogs keep running on the new host.
        before = sum(v.snapshot_accounting(sim.now)[0] for v in vm.vcpus)
        sim.run_until(sim.now + 100 * MS)
        after = sum(v.snapshot_accounting(sim.now)[0] for v in vm.vcpus)
        assert after > before

    def test_crashed_host_reboots_empty_and_accepting(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        h0 = cluster.submit(_hog('vm0'))
        sim.run_until(50 * MS)
        cluster.crash_host(h0, down_ns=200 * MS)
        assert not h0.accepting
        sim.run_until(50 * MS + 200 * MS + 1)
        assert h0.state == HOST_UP
        assert h0.accepting
        assert not h0.resident_vms
        assert h0.crashes == 1

    def test_no_capacity_parks_then_unparks_on_recovery(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=1)
        host = cluster.submit(_hog('vm0'))
        sim.run_until(50 * MS)
        vm = host.resident_vms[0]
        cluster.crash_host(host, down_ns=400 * MS)
        # max_attempts=4 with 25ms doubling backoff exhausts by 175ms.
        sim.run_until(50 * MS + 200 * MS)
        assert vm in cluster.recovery.parked
        assert cluster.recovery.parks == 1
        assert sim.trace.counters['cluster.parked'] == 1
        assert sim.trace.counters['cluster.recovery_retries'] == 3
        # The host returns; the parking lot drains back onto it.
        sim.run_until(50 * MS + 400 * MS + 1)
        assert not cluster.recovery.parked
        assert cluster.host_of(vm) is host
        assert sim.trace.counters['cluster.unparked'] == 1

    def test_crash_is_idempotent(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        h0 = cluster.submit(_hog('vm0'))
        sim.run_until(50 * MS)
        cluster.crash_host(h0)
        cluster.crash_host(h0)
        assert h0.crashes == 1
        assert sim.trace.counters['cluster.host_crashes'] == 1


class TestMigrationRollback:
    def _in_flight(self, sim, cluster):
        source = cluster.submit(_hog('vm0'))
        sim.run_until(50 * MS)
        vm = source.resident_vms[0]
        target = cluster.hosts[1]
        record = cluster.migration.migrate(vm, source, target)
        assert record is not None
        return vm, source, target, record

    def test_abort_rolls_back_to_source(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        vm, source, target, record = self._in_flight(sim, cluster)
        assert target.reserved_vcpus == 2
        assert cluster.migration.abort(vm, reason='fault', retry=False)
        assert cluster.host_of(vm) is source
        assert target.reserved_vcpus == 0
        assert record.aborted_ns == sim.now
        assert record.abort_reason == 'fault'
        assert record.completed_ns is None
        # The cancelled resume must never fire.
        sim.run_until(record.started_ns + record.transfer_ns + 1)
        assert cluster.host_of(vm) is source
        assert vm not in cluster.migration.in_flight

    def test_injected_abort_strikes_mid_transfer(self):
        sim = Simulator(seed=0)
        plan = FaultPlan('storm', [FaultSpec('migration_abort', 1.0)])
        cluster = _cluster(sim, n=2, fault_plan=plan)
        vm, source, target, record = self._in_flight(sim, cluster)
        sim.run_until(record.started_ns + record.transfer_ns + 1)
        assert record.aborted_ns is not None
        assert record.started_ns < record.aborted_ns \
            < record.started_ns + record.transfer_ns
        assert cluster.host_of(vm) is source
        assert target.reserved_vcpus == 0
        assert sim.trace.counters['cluster.migration_rollbacks'] >= 1

    def test_breaker_trips_after_repeated_aborts(self):
        sim = Simulator(seed=0)
        plan = FaultPlan('storm', [FaultSpec('migration_abort', 1.0)])
        cluster = _cluster(sim, n=2, fault_plan=plan)
        vm, source, target, __ = self._in_flight(sim, cluster)
        # Every attempt (initial + backed-off retries) aborts; after
        # breaker_threshold consecutive failures the VM is barred.
        sim.run_until(2 * SEC)
        engine = cluster.migration
        assert sim.trace.counters['cluster.migration_breaker_trips'] >= 1
        assert engine._failures[vm] >= engine.breaker_threshold
        assert cluster.host_of(vm) is source
        # While the bar window is open, migrate() refuses the VM.
        engine._breaker_until[vm] = sim.now + 1 * SEC
        assert engine.breaker_open(vm)
        assert engine.migrate(vm, source, target) is None
        assert sim.trace.counters['cluster.migration_breaker_refusals'] >= 1
        # Once it lapses, the next migrate() is the half-open probe.
        engine._breaker_until[vm] = sim.now
        assert not engine.breaker_open(vm)
        assert vm not in engine._breaker_until

    def test_completed_migration_closes_breaker(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        vm, source, target, record = self._in_flight(sim, cluster)
        cluster.migration._failures[vm] = 2
        sim.run_until(record.started_ns + record.transfer_ns + 1)
        assert record.completed_ns is not None
        assert vm not in cluster.migration._failures

    def test_target_crash_rolls_back_without_retry(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        vm, source, target, record = self._in_flight(sim, cluster)
        cluster.crash_host(target, down_ns=1 * SEC)
        assert cluster.host_of(vm) is source
        assert target.reserved_vcpus == 0
        assert record.abort_reason == 'target_crash'
        # No retry is scheduled at the dead target.
        n_records = len(cluster.migration.records)
        sim.run_until(sim.now + 500 * MS)
        assert len(cluster.migration.records) == n_records

    def test_source_crash_after_handoff_adopts_on_target(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        vm, source, target, record = self._in_flight(sim, cluster)
        # The hand-off already happened: the source dying must not kill
        # the outbound flight.
        cluster.crash_host(source, down_ns=1 * SEC)
        assert vm in cluster.migration.in_flight
        sim.run_until(record.started_ns + record.transfer_ns + 1)
        assert record.completed_ns is not None
        assert cluster.host_of(vm) is target

    def test_source_crash_then_abort_orphans_into_recovery(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=3)
        vm, source, target, record = self._in_flight(sim, cluster)
        cluster.crash_host(source, down_ns=1 * SEC)
        # Now the transfer itself dies: nowhere to roll back to, so the
        # recovery controller re-places the VM.
        assert cluster.migration.abort(vm, reason='fault')
        assert sim.trace.counters['cluster.migration_orphans'] == 1
        assert target.reserved_vcpus == 0
        assert cluster.host_of(vm) is not None
        assert cluster.host_of(vm) is not source

    def test_double_submit_rejected_without_corruption(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        first = cluster.submit(_hog('vm0'))
        assert first is not None
        again = cluster.submit(_hog('vm0'))
        assert again is None
        assert sim.trace.counters['cluster.duplicate_submits'] == 1
        assert cluster.admission.rejected == 1
        # The original VM is untouched: still resident, one kernel,
        # exactly one residency.
        assert len(cluster.kernels) == 1
        assert len(first.resident_vms) == 1
        assert sum(len(h.resident_vms) for h in cluster.hosts) == 1
        # Still rejected while the first VM is mid-migration or parked.
        vm = first.resident_vms[0]
        sim.run_until(50 * MS)
        cluster.migration.migrate(vm, first, cluster.hosts[1])
        assert cluster.submit(_hog('vm0')) is None


class TestQuarantine:
    def test_watchdog_quarantines_and_rearms(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        h0 = cluster.hosts[0]
        cluster.degrade_host(h0, down_ns=300 * MS)
        sim.run_until(100 * MS)
        assert h0.quarantined
        assert not h0.accepting
        assert sim.trace.counters['cluster.quarantines'] == 1
        # New placements route around the quarantined host.
        placed = cluster.submit(_hog('vm0'))
        assert placed is cluster.hosts[1]
        sim.run_until(500 * MS)
        assert h0.state == HOST_UP
        assert not h0.quarantined
        assert h0.accepting
        assert sim.trace.counters['cluster.quarantine_rearms'] == 1

    def test_daemon_drains_quarantined_host(self):
        sim = Simulator(seed=0)
        daemon = RebalanceDaemon()
        cluster = _cluster(sim, n=2, rebalance=daemon)
        h0 = cluster.submit(_hog('vm0'))
        assert h0 is cluster.hosts[0]
        sim.run_until(50 * MS)
        cluster.degrade_host(h0, down_ns=2 * SEC)
        sim.run_until(1 * SEC)
        assert sim.trace.counters['cluster.drain_migrations'] >= 1
        assert not h0.resident_vms
        assert cluster.host_of(cluster.hosts[1].resident_vms[0]) \
            is cluster.hosts[1]

    def test_cooldown_dict_stays_bounded(self):
        sim = Simulator(seed=0)
        daemon = RebalanceDaemon(vm_cooldown_ns=100 * MS)
        cluster = _cluster(sim, n=2, rebalance=daemon)
        cluster.submit(_hog('vm0'))
        daemon._last_moved['ghost-vm'] = sim.now
        sim.run_until(daemon.check_period_ns + daemon.vm_cooldown_ns + 1)
        # The expired entry was pruned on a later check tick.
        assert 'ghost-vm' not in daemon._last_moved


class TestWallTimeoutWatchdog:
    def _specs(self, apps):
        return [cluster_spec(seed=i).replace(app=app)
                for i, app in enumerate(apps)]

    def test_hung_worker_retried_then_fails(self):
        runner = ParallelRunner(jobs=1, wall_timeout=0.5)
        runner._worker = _hang_worker
        spec = self._specs(['hang'])[0]
        started = time.time()
        with pytest.raises(RunError) as excinfo:
            runner.map([spec])
        assert excinfo.value.spec is spec
        assert 'wall time' in str(excinfo.value)
        # One retry: two timeout windows, not one and not three.
        assert 0.9 < time.time() - started < 10.0

    def test_timed_out_spec_retried_once_and_recovers(self, tmp_path):
        marker = str(tmp_path / 'attempted')
        runner = ParallelRunner(jobs=2, wall_timeout=2.0)
        runner._worker = _flaky_worker
        specs = self._specs([marker, 'fast'])
        outcomes = runner.map(specs)
        # First attempt hung and was killed; the retry succeeded, and
        # the batch result keeps submission order.
        assert outcomes == ['ok:%s' % marker, 'ok:fast']

    def test_prompt_workers_unaffected(self):
        runner = ParallelRunner(jobs=2, wall_timeout=30.0)
        runner._worker = _echo_worker
        specs = self._specs(['a', 'b', 'c'])
        assert runner.map(specs) == ['a', 'b', 'c']

    def test_rejects_bad_wall_timeout(self):
        with pytest.raises(ValueError):
            ParallelRunner(wall_timeout=0)


def _hang_worker(spec):
    time.sleep(600)


def _echo_worker(spec):
    return spec.app


def _flaky_worker(spec):
    """Hang on the first attempt of a marker-path spec, succeed after."""
    if spec.app != 'fast':
        if not os.path.exists(spec.app):
            with open(spec.app, 'w'):
                pass
            time.sleep(600)
    return 'ok:%s' % spec.app


@pytest.mark.chaos
class TestChaosCampaigns:
    def _run(self, faults, seed=0, placement='interference_aware'):
        result = run_consolidation(strategy='irs', placement=placement,
                                   seed=seed, measure_ns=500 * MS,
                                   faults=faults)
        return json.dumps(result.summary(), sort_keys=True)

    def test_cluster_chaos_bit_identical(self):
        assert self._run('cluster-chaos', seed=3) == \
            self._run('cluster-chaos', seed=3)

    def test_host_flap_bit_identical(self):
        assert self._run('host-flap-15', seed=1) == \
            self._run('host-flap-15', seed=1)

    def test_chaos_exercises_recovery_plane(self):
        result = run_consolidation(strategy='irs', placement='first_fit',
                                   seed=1, faults='cluster-chaos')
        counters = result.counters
        assert result.host_crashes >= 1
        assert counters.get('faults.host_crash', 0) >= 1
        # Orphan episodes ended re-placed (or explicitly parked) —
        # nothing lost, and the ledger counters surfaced in the summary.
        assert result.recovered >= 1
        assert counters.get('cluster.recoveries', 0) == result.recovered

    def test_every_campaign_sanitizer_clean(self, monkeypatch):
        original = Simulator.__init__

        def sanitized(self, *args, **kwargs):
            original(self, *args, **kwargs)
            install_sanitizer(self)

        monkeypatch.setattr(Simulator, '__init__', sanitized)
        for campaign in CLUSTER_CAMPAIGNS:
            result = run_consolidation(strategy='irs',
                                       placement='first_fit', seed=2,
                                       measure_ns=400 * MS,
                                       faults=campaign)
            assert result.throughput >= 0.0

    def test_spec_pipeline_carries_faults(self):
        spec = cluster_spec(strategy='irs', placement='first_fit', seed=0,
                            faults='host-flap-15')
        twin = cluster_spec(strategy='irs', placement='first_fit', seed=0,
                            faults='host-flap-15')
        assert spec == twin
        assert spec.cache_token() == twin.cache_token()
        assert spec != cluster_spec(strategy='irs', placement='first_fit',
                                    seed=0)
        outcome = run_specs([spec], cache=None)[0]
        assert outcome.cluster['faults'] == 'host-flap-15'
        assert outcome.cluster['counters'].get('faults.injected', 0) >= 1
