"""Unit tests for the Simulator driver."""

import pytest

from repro.simkernel import LivelockError, SimulationError, Simulator


class TestScheduling:
    def test_after_fires_at_offset(self):
        sim = Simulator()
        fired = []
        sim.after(100, lambda: fired.append(sim.now))
        sim.run_until(1000)
        assert fired == [100]

    def test_at_fires_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.at(250, lambda: fired.append(sim.now))
        sim.run_until(1000)
        assert fired == [250]

    def test_call_soon_fires_at_current_time(self):
        sim = Simulator()
        fired = []
        sim.after(50, lambda: sim.call_soon(lambda: fired.append(sim.now)))
        sim.run_until(1000)
        assert fired == [50]

    def test_at_in_past_raises(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run_until(100)
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)


class TestRunning:
    def test_run_until_advances_clock_to_end(self):
        sim = Simulator()
        sim.run_until(500)
        assert sim.now == 500

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        fired = []
        sim.after(600, lambda: fired.append(True))
        sim.run_until(500)
        assert fired == []
        assert sim.pending_events == 1

    def test_run_until_fires_boundary_event(self):
        sim = Simulator()
        fired = []
        sim.after(500, lambda: fired.append(True))
        sim.run_until(500)
        assert fired == [True]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.after(10, lambda: (fired.append(1), sim.stop()))
        sim.after(20, lambda: fired.append(2))
        sim.run_until(100)
        assert fired == [1]
        # A later run picks the remaining event up.
        sim.run_until(100)
        assert fired == [1, 2]

    def test_run_until_idle_drains_queue(self):
        sim = Simulator()
        fired = []
        for t in (5, 10, 15):
            sim.at(t, lambda: fired.append(sim.now))
        count = sim.run_until_idle()
        assert count == 3
        assert fired == [5, 10, 15]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.after(1, rearm)
        sim.after(1, rearm)
        with pytest.raises(SimulationError):
            sim.run_until(10**9, max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(10):
            sim.at(t, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 10

    def test_events_fire_in_causal_order(self):
        sim = Simulator()
        log = []

        def first():
            log.append(('first', sim.now))
            sim.after(5, second)

        def second():
            log.append(('second', sim.now))
        sim.after(10, first)
        sim.run_until_idle()
        assert log == [('first', 10), ('second', 15)]

    def test_livelock_error_summarizes_pending_events(self):
        sim = Simulator()

        def rearm():
            sim.after(1, rearm)

        def far_future():
            pass
        sim.after(1, rearm)
        sim.at(10**9, far_future)
        with pytest.raises(LivelockError) as err:
            sim.run_until(10**12, max_events=100)
        exc = err.value
        assert isinstance(exc, SimulationError)
        assert exc.limit == 100
        assert exc.pending == 2
        # Deadline summary in firing order, naming the callbacks.
        assert len(exc.next_events) == 2
        first_time, first_name = exc.next_events[0]
        assert first_time == sim.now + 1
        assert 'rearm' in first_name
        assert 'far_future' in exc.next_events[1][1]
        message = str(exc)
        assert '2 events still pending' in message
        assert 'rearm' in message

    def test_livelock_error_from_run_until_idle(self):
        sim = Simulator()

        def rearm():
            sim.after(1, rearm)
        sim.after(1, rearm)
        with pytest.raises(LivelockError) as err:
            sim.run_until_idle(max_events=50)
        assert 'while draining' in str(err.value)
        assert err.value.pending == 1

    def test_livelock_summary_is_bounded(self):
        sim = Simulator()

        def rearm():
            sim.after(1, rearm)
        sim.after(1, rearm)
        for t in range(100, 120):
            sim.at(t * 1000, lambda: None)
        with pytest.raises(LivelockError) as err:
            sim.run_until(10**9, max_events=10)
        assert err.value.pending == 21
        assert len(err.value.next_events) == LivelockError.SUMMARY_DEPTH

    def test_clock_never_goes_backwards(self):
        sim = Simulator(seed=7)
        stamps = []
        for t in (3, 1, 2, 1, 5):
            sim.at(t, lambda: stamps.append(sim.now))
        sim.run_until_idle()
        assert stamps == sorted(stamps)
