"""Unit tests for the pCPU runqueue container."""

from repro.hypervisor.pcpu import PCpu
from repro.hypervisor.vcpu import PRI_BOOST, PRI_OVER, PRI_UNDER
from repro.hypervisor.vm import VM
from repro.simkernel import Simulator


def make_vcpus(n, priorities=None):
    sim = Simulator()
    vm = VM('vm', n, sim)
    if priorities:
        for vcpu, pri in zip(vm.vcpus, priorities):
            vcpu.priority = pri
    return vm.vcpus


class TestInsertOrdering:
    def test_fifo_within_priority(self):
        pcpu = PCpu(0)
        a, b = make_vcpus(2, [PRI_UNDER, PRI_UNDER])
        pcpu.insert_vcpu(a)
        pcpu.insert_vcpu(b)
        assert pcpu.runq == [a, b]

    def test_higher_priority_ahead(self):
        pcpu = PCpu(0)
        over, boost = make_vcpus(2, [PRI_OVER, PRI_BOOST])
        pcpu.insert_vcpu(over)
        pcpu.insert_vcpu(boost)
        assert pcpu.runq == [boost, over]

    def test_insert_head_jumps_own_class(self):
        pcpu = PCpu(0)
        a, b, c = make_vcpus(3, [PRI_UNDER, PRI_UNDER, PRI_UNDER])
        pcpu.insert_vcpu(a)
        pcpu.insert_vcpu(b)
        pcpu.insert_vcpu_head(c)
        assert pcpu.runq == [c, a, b]

    def test_insert_head_respects_higher_class(self):
        pcpu = PCpu(0)
        boost, under = make_vcpus(2, [PRI_BOOST, PRI_UNDER])
        pcpu.insert_vcpu(boost)
        pcpu.insert_vcpu_head(under)
        assert pcpu.runq == [boost, under]

    def test_insert_sets_pcpu_backref(self):
        pcpu = PCpu(3)
        (vcpu,) = make_vcpus(1)
        pcpu.insert_vcpu(vcpu)
        assert vcpu.pcpu is pcpu


class TestRemovalAndPeek:
    def test_peek_best_returns_head(self):
        pcpu = PCpu(0)
        a, b = make_vcpus(2, [PRI_OVER, PRI_UNDER])
        pcpu.insert_vcpu(a)
        pcpu.insert_vcpu(b)
        assert pcpu.peek_best() is b

    def test_peek_empty_none(self):
        assert PCpu(0).peek_best() is None

    def test_remove(self):
        pcpu = PCpu(0)
        a, b = make_vcpus(2)
        pcpu.insert_vcpu(a)
        pcpu.insert_vcpu(b)
        pcpu.remove_vcpu(a)
        assert pcpu.runq == [b]

    def test_load_counts_current_and_queue(self):
        pcpu = PCpu(0)
        a, b = make_vcpus(2)
        pcpu.insert_vcpu(a)
        assert pcpu.load == 1
        pcpu.current = b
        assert pcpu.load == 2
        assert pcpu.nr_runnable == 1


class TestBusyAccounting:
    def test_busy_interval_accumulates(self):
        pcpu = PCpu(0)
        pcpu.mark_busy(100)
        pcpu.mark_idle(250)
        assert pcpu.busy_ns == 150

    def test_mark_busy_idempotent(self):
        pcpu = PCpu(0)
        pcpu.mark_busy(100)
        pcpu.mark_busy(120)  # should not reset the interval start
        pcpu.mark_idle(200)
        assert pcpu.busy_ns == 100

    def test_mark_idle_without_busy_is_noop(self):
        pcpu = PCpu(0)
        pcpu.mark_idle(500)
        assert pcpu.busy_ns == 0

    def test_snapshot_includes_open_interval(self):
        pcpu = PCpu(0)
        pcpu.mark_busy(0)
        assert pcpu.snapshot_busy(80) == 80
        pcpu.mark_idle(100)
        assert pcpu.snapshot_busy(120) == 100
