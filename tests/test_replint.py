"""Tests for the repro-lint static analysis framework (``tools/replint``).

Each pass gets fixture snippets (positive and negative), plus the
framework-level contracts: suppression comments, the baseline
round-trip, JSON output, and a clean run over the real tree.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.replint import (                      # noqa: E402
    PASSES,
    apply_baseline,
    load_baseline,
    run_passes,
    write_baseline,
)

ALL_PASSES = ('determinism', 'layering', 'protocol-exhaustiveness',
              'rng-discipline', 'taxonomy-drift')


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` under a src root; returns the root."""
    src = tmp_path / 'src'
    for rel, text in files.items():
        path = src / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return src


def lint(tmp_path, files, passes):
    src = make_tree(tmp_path, files)
    findings, _ = run_passes(src, pass_names=list(passes))
    return [f for f in findings if f.active]


class TestFramework:
    def test_all_five_passes_registered(self):
        assert tuple(sorted(PASSES)) == ALL_PASSES

    def test_unknown_pass_rejected(self, tmp_path):
        make_tree(tmp_path, {'repro/obs/mod.py': 'x = 1\n'})
        try:
            run_passes(tmp_path / 'src', pass_names=['nope'])
        except ValueError as exc:
            assert 'unknown pass' in str(exc)
        else:
            raise AssertionError('expected ValueError')

    def test_findings_sorted_and_located(self, tmp_path):
        active = lint(tmp_path, {'repro/obs/mod.py': (
            'import time\n'
            'a = time.time()\n'
            'b = time.monotonic()\n')}, ['determinism'])
        assert [f.line for f in active] == [2, 3]
        assert active[0].path == 'repro/obs/mod.py'
        assert 'repro/obs/mod.py:2' in active[0].render()


class TestDeterminismPass:
    def _lint(self, tmp_path, source):
        return lint(tmp_path, {'repro/simkernel/mod.py': source},
                    ['determinism'])

    def test_wall_clock_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'import time\n'
            'def f():\n'
            '    return time.time()\n'))
        assert len(active) == 1
        assert active[0].key == 'wallclock:time.time'

    def test_datetime_now_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'from datetime import datetime\n'
            'stamp = datetime.now()\n'))
        assert [f.key for f in active] == ['wallclock:datetime.now']

    def test_sim_clock_clean(self, tmp_path):
        assert self._lint(tmp_path, (
            'def f(sim):\n'
            '    return sim.now\n')) == []

    def test_global_rng_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'import random\n'
            'def f():\n'
            '    return random.randint(0, 10)\n'))
        assert any(f.key == 'global-rng:random.randint' for f in active)

    def test_min_over_set_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def f(names):\n'
            '    pool = set(names)\n'
            '    return min(pool)\n'))
        assert [f.key for f in active] == ['set-iteration']

    def test_min_over_sorted_set_clean(self, tmp_path):
        assert self._lint(tmp_path, (
            'def f(names):\n'
            '    pool = set(names)\n'
            '    return min(sorted(pool))\n')) == []

    def test_list_comprehension_over_set_literal_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            "def f():\n"
            "    return [n for n in {'a', 'b'}]\n"))
        assert [f.key for f in active] == ['set-iteration']

    def test_set_difference_into_list_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def f(a, b):\n'
            '    gone = set(a) - set(b)\n'
            '    return list(gone)\n'))
        assert [f.key for f in active] == ['set-iteration']

    def test_loop_building_list_from_set_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def f(items):\n'
            '    seen = set(items)\n'
            '    out = []\n'
            '    for item in seen:\n'
            '        out.append(item)\n'
            '    return out\n'))
        assert [f.key for f in active] == ['set-iteration']

    def test_membership_only_loop_clean(self, tmp_path):
        assert self._lint(tmp_path, (
            'def f(items, flags):\n'
            '    seen = set(items)\n'
            '    total = 0\n'
            '    for item in seen:\n'
            '        total += flags[item]\n'
            '    return total\n')) == []

    def test_dict_iteration_clean(self, tmp_path):
        # Dicts are insertion-ordered; only sets are hash-ordered.
        assert self._lint(tmp_path, (
            'def f(table):\n'
            '    return [v for v in table.values()]\n')) == []

    def test_sort_keyed_on_id_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def f(tasks):\n'
            '    return sorted(tasks, key=id)\n'))
        assert [f.key for f in active] == ['id-ordering']


class TestRngDisciplinePass:
    def test_raw_construction_flagged(self, tmp_path):
        active = lint(tmp_path, {'repro/workloads/mod.py': (
            'import random\n'
            'rng = random.Random(7)\n')}, ['rng-discipline'])
        assert {f.key for f in active} == {'import-random',
                                           'raw-random-ctor'}

    def test_from_import_construction_flagged(self, tmp_path):
        active = lint(tmp_path, {'repro/faults/mod.py': (
            'from random import Random\n'
            'rng = Random()\n')}, ['rng-discipline'])
        assert {f.key for f in active} == {'import-random',
                                           'raw-random-ctor'}

    def test_registry_module_exempt(self, tmp_path):
        assert lint(tmp_path, {'repro/simkernel/rng.py': (
            'import random\n'
            'def stream(seed):\n'
            '    return random.Random(seed)\n')}, ['rng-discipline']) == []

    def test_named_stream_usage_clean(self, tmp_path):
        assert lint(tmp_path, {'repro/faults/mod.py': (
            'def draw(sim):\n'
            "    return sim.rng.stream('faults.flip').random()\n")},
            ['rng-discipline']) == []


REGISTRY_FIXTURE = {
    'repro/obs/phases.py': (
        "PHASE_OFFER = 'sa.offer'\n"
        "PHASE_VIRQ = 'sa.virq'\n"),
    'repro/obs/eventlog.py': (
        "EVENT_PLACE = 'vm.place'\n"
        "EVENT_CRASH = 'host.crash'\n"),
    'repro/obs/histograms.py': (
        "DECLARED_METRICS = frozenset(('hv.wakes', 'irs.sa_sent'))\n"
        "DECLARED_METRIC_FAMILIES = frozenset(('placements',))\n"),
}


class TestTaxonomyDriftPass:
    def _lint(self, tmp_path, source, rel='repro/core/mod.py'):
        files = dict(REGISTRY_FIXTURE)
        files[rel] = source
        return lint(tmp_path, files, ['taxonomy-drift'])

    def test_declared_phase_clean(self, tmp_path):
        assert self._lint(tmp_path, (
            'from ..obs.phases import PHASE_OFFER\n'
            'def probe(spans, now, vcpu):\n'
            '    spans.begin(now, PHASE_OFFER, vcpu)\n')) == []

    def test_undeclared_phase_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def probe(spans, now, vcpu):\n'
            "    spans.begin(now, 'sa.wormhole', vcpu)\n"))
        assert [f.key for f in active] == ['phase:sa.wormhole']

    def test_phase_valued_instant_accepts_event_kinds(self, tmp_path):
        # Health markers mirror the event-kind vocabulary by design.
        assert self._lint(tmp_path, (
            'from ..obs import eventlog\n'
            'def mark(spans, now):\n'
            "    spans.instant(now, eventlog.EVENT_CRASH, 'track')\n")) == []

    def test_undeclared_event_kind_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def emit(log, now):\n'
            "    log.append(now, 'vm.teleported', vm='v0')\n"))
        assert [f.key for f in active] == ['kind:vm.teleported']

    def test_declared_event_kind_clean(self, tmp_path):
        assert self._lint(tmp_path, (
            'from ..obs import eventlog\n'
            'def emit(log, now):\n'
            "    log.append(now, eventlog.EVENT_PLACE, vm='v0')\n")) == []

    def test_undeclared_counter_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def tick(sim):\n'
            "    sim.trace.count('hv.wormholes')\n"))
        assert [f.key for f in active] == ['metric:hv.wormholes']

    def test_declared_counter_and_family_clean(self, tmp_path):
        assert self._lint(tmp_path, (
            'def tick(sim, scope):\n'
            "    sim.trace.count('hv.wakes')\n"
            "    scope.counter('placements').inc()\n")) == []

    def test_undeclared_registry_metric_flagged(self, tmp_path):
        active = self._lint(tmp_path, (
            'def snap(registry):\n'
            "    registry.gauge('mystery_depth').set(3)\n"))
        assert [f.key for f in active] == ['metric:mystery_depth']

    def test_dynamic_names_skipped(self, tmp_path):
        assert self._lint(tmp_path, (
            'def snap(registry, name):\n'
            '    registry.counter(name).inc()\n'
            "    registry.counter('host.%s.x' % name)\n")) == []

    def test_local_constant_resolved(self, tmp_path):
        active = self._lint(tmp_path, (
            "MY_KIND = 'vm.undeclared'\n"
            'def emit(log, now):\n'
            '    log.append(now, MY_KIND)\n'))
        assert [f.key for f in active] == ['kind:vm.undeclared']

    def test_single_arg_append_is_not_an_event(self, tmp_path):
        assert self._lint(tmp_path, (
            'def collect(rows):\n'
            "    rows.append('vm.teleported')\n")) == []


PROTOCOL_OK = (
    "SA_A = 'a'\n"
    "SA_B = 'b'\n"
    "SA_STATES = (SA_A, SA_B)\n"
    "EDGE_GO = 'go'\n"
    "EDGE_STOP = 'stop'\n"
    "SA_EDGES = (EDGE_GO, EDGE_STOP)\n"
    'LEGAL_TRANSITIONS = {\n'
    '    (SA_A, EDGE_GO): SA_B,\n'
    '    (SA_B, EDGE_STOP): SA_A,\n'
    '}\n'
    'ILLEGAL_TRANSITIONS = frozenset((\n'
    '    (SA_A, EDGE_STOP),\n'
    '    (SA_B, EDGE_GO),\n'
    '))\n')


class TestProtocolExhaustivenessPass:
    def _lint(self, tmp_path, source):
        return lint(tmp_path, {'repro/core/protocol.py': source},
                    ['protocol-exhaustiveness'])

    def test_total_table_clean(self, tmp_path):
        assert self._lint(tmp_path, PROTOCOL_OK) == []

    def test_unclassified_pair_flagged(self, tmp_path):
        broken = PROTOCOL_OK.replace('    (SA_B, EDGE_GO),\n', '')
        active = self._lint(tmp_path, broken)
        assert [f.key for f in active] == ['unclassified:b:go']

    def test_contradiction_flagged(self, tmp_path):
        broken = PROTOCOL_OK.replace(
            '    (SA_A, EDGE_STOP),\n',
            '    (SA_A, EDGE_STOP),\n    (SA_A, EDGE_GO),\n')
        active = self._lint(tmp_path, broken)
        assert [f.key for f in active] == ['contradiction:a:go']

    def test_unlisted_edge_constant_flagged(self, tmp_path):
        broken = PROTOCOL_OK + "EDGE_WARP = 'warp'\n"
        active = self._lint(tmp_path, broken)
        # The stray edge is itself a finding, and nothing classifies
        # the states against it.
        keys = {f.key for f in active}
        assert 'unlisted-edge:warp' in keys

    def test_missing_tables_flagged(self, tmp_path):
        active = self._lint(tmp_path, "SA_STATES = ('a',)\n")
        keys = {f.key for f in active}
        assert 'missing-table:SA_EDGES' in keys
        assert 'missing-table:ILLEGAL_TRANSITIONS' in keys

    def test_real_protocol_module_is_total(self):
        findings, _ = run_passes(REPO_ROOT / 'src',
                                 pass_names=['protocol-exhaustiveness'])
        assert [f for f in findings if f.active] == []


class TestLayeringPass:
    def test_upward_import_flagged(self, tmp_path):
        active = lint(tmp_path, {'repro/simkernel/mod.py':
                                 'from repro.core import x\n'},
                      ['layering'])
        assert [f.key for f in active] == ['upward:simkernel->core']

    def test_lazy_import_clean(self, tmp_path):
        assert lint(tmp_path, {'repro/simkernel/mod.py': (
            'def build():\n'
            '    from repro.cluster import Cluster\n'
            '    return Cluster\n')}, ['layering']) == []


class TestSuppression:
    def test_same_line_suppression(self, tmp_path):
        active = lint(tmp_path, {'repro/obs/mod.py': (
            'import time\n'
            'a = time.time()  # replint: disable=determinism\n')},
            ['determinism'])
        assert active == []

    def test_standalone_line_above_suppression(self, tmp_path):
        active = lint(tmp_path, {'repro/obs/mod.py': (
            'import time\n'
            '# wall-clock on purpose  # replint: disable=determinism\n'
            'a = time.time()\n')}, ['determinism'])
        assert active == []

    def test_disable_all(self, tmp_path):
        active = lint(tmp_path, {'repro/obs/mod.py': (
            'import time\n'
            'a = time.time()  # replint: disable=all\n')},
            ['determinism'])
        assert active == []

    def test_wrong_pass_name_does_not_suppress(self, tmp_path):
        active = lint(tmp_path, {'repro/obs/mod.py': (
            'import time\n'
            'a = time.time()  # replint: disable=layering\n')},
            ['determinism'])
        assert len(active) == 1

    def test_suppressed_findings_still_reported_inactive(self, tmp_path):
        src = make_tree(tmp_path, {'repro/obs/mod.py': (
            'import time\n'
            'a = time.time()  # replint: disable=determinism\n')})
        findings, _ = run_passes(src, pass_names=['determinism'])
        assert len(findings) == 1
        assert findings[0].suppressed and not findings[0].active


class TestBaselineRoundTrip:
    FILES = {'repro/obs/mod.py': (
        'import time\n'
        'a = time.time()\n')}

    def test_round_trip(self, tmp_path):
        src = make_tree(tmp_path, self.FILES)
        findings, _ = run_passes(src, pass_names=['determinism'])
        active = [f for f in findings if f.active]
        assert len(active) == 1

        baseline = tmp_path / 'baseline.json'
        write_baseline(baseline, active)
        entries = load_baseline(baseline)
        assert len(entries) == 1 and entries[0]['why']

        findings, stale = run_passes(src, pass_names=['determinism'],
                                     baseline_path=baseline)
        assert stale == []
        assert [f for f in findings if f.active] == []
        assert findings[0].baselined

    def test_baseline_pins_by_key_not_line(self, tmp_path):
        src = make_tree(tmp_path, self.FILES)
        findings, _ = run_passes(src, pass_names=['determinism'])
        baseline = tmp_path / 'baseline.json'
        write_baseline(baseline, findings)
        # Shift the finding two lines down: still baselined.
        (src / 'repro/obs/mod.py').write_text(
            'import time\n\n\na = time.time()\n')
        findings, stale = run_passes(src, pass_names=['determinism'],
                                     baseline_path=baseline)
        assert stale == []
        assert [f for f in findings if f.active] == []

    def test_stale_entry_reported(self, tmp_path):
        src = make_tree(tmp_path, {'repro/obs/mod.py': 'a = 1\n'})
        entries = [{'pass': 'determinism', 'file': 'repro/obs/mod.py',
                    'key': 'wallclock:time.time', 'why': 'gone now'}]
        findings = []
        stale = apply_baseline(findings, entries)
        assert stale == entries

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / 'baseline.json'
        path.write_text(json.dumps([{'pass': 'determinism'}]))
        try:
            load_baseline(path)
        except ValueError as exc:
            assert 'missing' in str(exc)
        else:
            raise AssertionError('expected ValueError')


class TestRealTreeAndCli:
    def test_real_tree_has_no_active_findings(self):
        findings, stale = run_passes(
            REPO_ROOT / 'src',
            baseline_path=REPO_ROOT / 'tools' / 'replint' / 'baseline.json')
        assert stale == []
        assert [f.render() for f in findings if f.active] == []

    def test_cli_json_output(self):
        proc = subprocess.run(
            [sys.executable, '-m', 'tools.replint', '--format', 'json'],
            cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert sorted(payload['passes']) == list(ALL_PASSES)
        assert payload['summary']['active'] == 0
        for finding in payload['findings']:
            assert finding['suppressed'] or finding['baselined']

    def test_cli_exits_nonzero_on_injected_finding(self, tmp_path):
        src = make_tree(tmp_path, {'repro/obs/mod.py': (
            'import random\n'
            'rng = random.Random()\n')})
        proc = subprocess.run(
            [sys.executable, '-m', 'tools.replint', '--src', str(src),
             '--no-baseline'],
            cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 1
        assert 'repro/obs/mod.py:2' in proc.stderr

    def test_cli_list_passes(self):
        proc = subprocess.run(
            [sys.executable, '-m', 'tools.replint', '--list-passes'],
            cwd=REPO_ROOT, capture_output=True, text=True)
        assert proc.returncode == 0
        for name in ALL_PASSES:
            assert name in proc.stdout
