"""Tests for the open-loop (Poisson arrival) server workload."""

from repro.simkernel.units import MS, SEC
from repro.workloads import OpenLoopServerWorkload

from conftest import single_vm_machine


class TestOpenLoopServer:
    def _run(self, sim, arrivals_per_sec=500, measure_s=2, **kw):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        server = OpenLoopServerWorkload(sim, kernel,
                                        arrivals_per_sec=arrivals_per_sec,
                                        **kw).install()
        sim.run_until(300 * MS)
        server.reset_measurement()
        sim.run_until(sim.now + measure_s * SEC)
        return server

    def test_throughput_tracks_arrival_rate(self, sim):
        server = self._run(sim, arrivals_per_sec=500)
        assert 425 <= server.throughput() <= 575

    def test_latency_above_service_time(self, sim):
        server = self._run(sim, arrivals_per_sec=500, service_ns=2 * MS)
        assert server.latency.p50() >= 1 * MS

    def test_saturation_inflates_latency(self, sim):
        """Arrivals beyond capacity back the queue up."""
        light = self._run(sim, arrivals_per_sec=200, service_ns=2 * MS)
        from repro.simkernel import Simulator
        sim2 = Simulator(seed=42)
        heavy = self._run(sim2, arrivals_per_sec=3000, service_ns=2 * MS)
        assert heavy.latency.p99() > 3 * light.latency.p99()

    def test_worker_count_defaults_to_vcpus(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        server = OpenLoopServerWorkload(sim, kernel).install()
        # 4 workers + 1 arrival generator.
        assert len(server.tasks) == 5

    def test_drops_counted_when_queue_full(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=1, n_vcpus=1)
        server = OpenLoopServerWorkload(sim, kernel, n_workers=1,
                                        arrivals_per_sec=5000,
                                        service_ns=5 * MS,
                                        queue_capacity=4).install()
        sim.run_until(2 * SEC)
        assert server.dropped > 0
