"""Shared test fixtures and builders.

Set ``REPRO_SANITIZER=1`` to run any test selection with the runtime
scheduler sanitizer (:mod:`repro.simkernel.sanitizer`) hooked into
every simulator at every event — the ``pytest -m sanitizer`` job does
exactly that for the whole suite.
"""

import os

import pytest

from repro.guestos import GuestKernel
from repro.hypervisor import Machine, VM
from repro.simkernel import Simulator, install_sanitizer
from repro.simkernel.units import MS, SEC

SANITIZE = os.environ.get('REPRO_SANITIZER', '') not in ('', '0')


@pytest.fixture(autouse=SANITIZE)
def _runtime_sanitizer(monkeypatch):
    """With REPRO_SANITIZER=1, every Simulator a test builds gets a
    raise-mode sanitizer checking invariants after each event."""
    original = Simulator.__init__

    def sanitized(self, *args, **kwargs):
        original(self, *args, **kwargs)
        install_sanitizer(self)

    monkeypatch.setattr(Simulator, '__init__', sanitized)
    yield


@pytest.fixture
def sim():
    return Simulator(seed=42)


def build_machine(sim, n_pcpus=1):
    return Machine(sim, n_pcpus=n_pcpus)


def build_vm(sim, machine, name='vm', n_vcpus=1, pinning=None):
    vm = VM(name, n_vcpus, sim)
    machine.add_vm(vm, pinning=pinning)
    kernel = GuestKernel(sim, vm, machine)
    return vm, kernel


def single_vm_machine(sim, n_pcpus=1, n_vcpus=1, pinning=None):
    """One machine, one VM pinned 1:1 by default."""
    machine = build_machine(sim, n_pcpus)
    if pinning is None and n_vcpus <= n_pcpus:
        pinning = list(range(n_vcpus))
    vm, kernel = build_vm(sim, machine, n_vcpus=n_vcpus, pinning=pinning)
    machine.start()
    return machine, vm, kernel


def run_for(sim, duration_ns):
    sim.run_until(sim.now + duration_ns)


__all__ = ['build_machine', 'build_vm', 'single_vm_machine', 'run_for',
           'MS', 'SEC']
