"""Shared test fixtures and builders."""

import pytest

from repro.guestos import GuestKernel
from repro.hypervisor import Machine, VM
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC


@pytest.fixture
def sim():
    return Simulator(seed=42)


def build_machine(sim, n_pcpus=1):
    return Machine(sim, n_pcpus=n_pcpus)


def build_vm(sim, machine, name='vm', n_vcpus=1, pinning=None):
    vm = VM(name, n_vcpus, sim)
    machine.add_vm(vm, pinning=pinning)
    kernel = GuestKernel(sim, vm, machine)
    return vm, kernel


def single_vm_machine(sim, n_pcpus=1, n_vcpus=1, pinning=None):
    """One machine, one VM pinned 1:1 by default."""
    machine = build_machine(sim, n_pcpus)
    if pinning is None and n_vcpus <= n_pcpus:
        pinning = list(range(n_vcpus))
    vm, kernel = build_vm(sim, machine, n_vcpus=n_vcpus, pinning=pinning)
    machine.start()
    return machine, vm, kernel


def run_for(sim, duration_ns):
    sim.run_until(sim.now + duration_ns)


__all__ = ['build_machine', 'build_vm', 'single_vm_machine', 'run_for',
           'MS', 'SEC']
