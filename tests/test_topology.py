"""Tests for scenario construction: pinning maps, interference shapes,
and the unpinned (stacking) mode."""

import pytest

from repro.experiments import InterferenceSpec, NO_INTERFERENCE
from repro.experiments.topology import build_scenario


def _pinning(vm):
    return [vcpu.pinned_pcpu.index if vcpu.pinned_pcpu is not None else None
            for vcpu in vm.vcpus]


class TestForegroundPinning:
    def test_one_vcpu_per_pcpu(self):
        scenario = build_scenario(n_pcpus=4, fg_vcpus=4)
        assert _pinning(scenario.fg_vm) == [0, 1, 2, 3]

    def test_narrow_fg_uses_low_pcpus(self):
        scenario = build_scenario(n_pcpus=4, fg_vcpus=2)
        assert _pinning(scenario.fg_vm) == [0, 1]

    def test_unpinned_leaves_no_pins(self):
        scenario = build_scenario(n_pcpus=4, fg_vcpus=4, pinned=False)
        assert _pinning(scenario.fg_vm) == [None] * 4
        assert scenario.machine.hv_balancer is not None


class TestInterferencePinning:
    def test_k_inter_overlaps_low_pcpus(self):
        # 2-inter: the interfering VM's vCPUs share pCPUs 0..1 with the
        # foreground's first two vCPUs (the paper's k-inter layout).
        scenario = build_scenario(
            n_pcpus=4, fg_vcpus=4,
            interference=InterferenceSpec('hogs', 2))
        (bg,) = [k.vm for k in scenario.bg_kernels]
        assert _pinning(bg) == [0, 1]
        assert _pinning(scenario.fg_vm)[:2] == [0, 1]

    def test_stacked_vms_share_the_same_pcpus(self):
        scenario = build_scenario(
            n_pcpus=4, fg_vcpus=4,
            interference=InterferenceSpec('hogs', 1, n_vms=3))
        maps = [_pinning(k.vm) for k in scenario.bg_kernels]
        assert maps == [[0], [0], [0]]

    def test_no_interference_builds_no_bg(self):
        scenario = build_scenario(interference=NO_INTERFERENCE)
        assert scenario.bg_kernels == []
        assert scenario.bg_workloads == []
        assert len(scenario.machine.vms) == 1

    def test_hog_workload_width(self):
        scenario = build_scenario(
            interference=InterferenceSpec('hogs', 2, n_vms=2))
        assert [w.count for w in scenario.bg_workloads] == [2, 2]
        # Installed: each bg VM has its hog tasks spawned already.
        assert all(len(w.tasks) == 2 for w in scenario.bg_workloads)


class TestInterferenceSpecValidation:
    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            InterferenceSpec('hogs', -1)

    def test_rejects_zero_vms(self):
        with pytest.raises(ValueError):
            InterferenceSpec('hogs', 1, n_vms=0)
