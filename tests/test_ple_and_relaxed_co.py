"""Behavioural tests for the PLE and relaxed co-scheduling strategies."""

import pytest

from repro.hypervisor import Machine, StrategyDescriptor
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import Acquire, Compute, Release, SpinLock

from conftest import build_vm


def hog():
    while True:
        yield Compute(10 * MS)


class TestPle:
    def _spin_scenario(self, ple):
        """Two tasks of one VM contend a spinlock on vCPUs pinned to
        the same... no: the spinner shares a pCPU with a hog VM, so a
        PLE yield hands the CPU to the hog."""
        sim = Simulator(seed=1)
        machine = Machine(sim, n_pcpus=2)
        if ple:
            machine.attach_strategies(StrategyDescriptor(ple=True))
        vm, kernel = build_vm(sim, machine, 'par', n_vcpus=2,
                              pinning=[0, 1])
        __, hk = build_vm(sim, machine, 'hog', n_vcpus=1, pinning=[1])
        lock = SpinLock('l')

        def holder():
            while True:
                yield Acquire(lock)
                yield Compute(20 * MS)
                yield Release(lock)
                yield Compute(100 * US)

        def waiter():
            while True:
                yield Acquire(lock)
                yield Compute(100 * US)
                yield Release(lock)
        kernel.spawn('holder', holder(), gcpu_index=0)
        kernel.spawn('waiter', waiter(), gcpu_index=1)
        hk.spawn('hog', hog(), gcpu_index=0)
        machine.start()
        sim.run_until(1 * SEC)
        return sim, machine

    def test_ple_detects_spin_and_yields(self):
        sim, machine = self._spin_scenario(ple=True)
        assert sim.trace.counters['ple.exits'] > 5

    def test_no_ple_no_exits(self):
        sim, machine = self._spin_scenario(ple=False)
        assert sim.trace.counters['ple.exits'] == 0

    def test_ple_gives_cycles_to_competitor(self):
        """The hog sharing with the spinner gets more CPU when PLE
        stops the futile spinning."""
        __, machine_no = self._spin_scenario(ple=False)
        sim_no = machine_no.sim
        hog_no = machine_no.vms[1].total_runstate(sim_no.now)[0]
        __, machine_ple = self._spin_scenario(ple=True)
        sim_ple = machine_ple.sim
        hog_ple = machine_ple.vms[1].total_runstate(sim_ple.now)[0]
        assert hog_ple > hog_no

    def test_short_spin_does_not_trigger(self):
        sim = Simulator(seed=2)
        machine = Machine(sim, n_pcpus=1)
        machine.attach_strategies(
            StrategyDescriptor(ple=True, ple_window_ns=50 * US))
        vm, kernel = build_vm(sim, machine, 'par', pinning=[0])
        lock = SpinLock('l')

        def quick():
            while True:
                yield Acquire(lock)
                yield Compute(10 * US)
                yield Release(lock)
        kernel.spawn('q', quick())
        machine.start()
        sim.run_until(200 * MS)
        assert sim.trace.counters['ple.exits'] == 0


class TestRelaxedCo:
    def _skewed_vm(self, relaxed):
        """A 2-vCPU VM whose vCPU1 shares a pCPU with a hog: vCPU1
        accrues skew; relaxed-co should boost it at the leader's
        expense."""
        sim = Simulator(seed=3)
        machine = Machine(sim, n_pcpus=2)
        if relaxed:
            machine.attach_strategies(
                StrategyDescriptor(relaxed_co=True))
        vm, kernel = build_vm(sim, machine, 'par', n_vcpus=2,
                              pinning=[0, 1])
        __, hk = build_vm(sim, machine, 'hog', n_vcpus=1, pinning=[1])
        for i in range(2):
            kernel.spawn('w%d' % i, hog(), gcpu_index=i)
        hk.spawn('hog', hog(), gcpu_index=0)
        machine.start()
        sim.run_until(2 * SEC)
        return sim, machine, vm

    def test_switches_happen_under_skew(self):
        sim, machine, vm = self._skewed_vm(relaxed=True)
        assert sim.trace.counters['relaxedco.switches'] > 0

    def test_no_switches_without_strategy(self):
        sim, machine, vm = self._skewed_vm(relaxed=False)
        assert sim.trace.counters['relaxedco.switches'] == 0

    def test_reduces_sibling_skew(self):
        __, __, vm_plain = self._skewed_vm(relaxed=False)
        __, machine, vm_rco = self._skewed_vm(relaxed=True)

        def skew(vm, now):
            runs = [v.snapshot_accounting(now)[0] for v in vm.vcpus]
            return max(runs) - min(runs)
        plain_skew = skew(vm_plain, 2 * SEC)
        rco_skew = skew(vm_rco, 2 * SEC)
        assert rco_skew < plain_skew

    def test_single_vcpu_vm_ignored(self):
        sim = Simulator(seed=4)
        machine = Machine(sim, n_pcpus=1)
        machine.attach_strategies(StrategyDescriptor(relaxed_co=True))
        __, kernel = build_vm(sim, machine, 'uni', pinning=[0])
        __, hk = build_vm(sim, machine, 'hog', pinning=[0])
        kernel.spawn('w', hog())
        hk.spawn('h', hog())
        machine.start()
        sim.run_until(1 * SEC)
        assert sim.trace.counters['relaxedco.switches'] == 0


class TestDeprecatedShims:
    """The enable_* shims still work but route through the descriptor
    API and announce their deprecation."""

    def _machine(self):
        sim = Simulator(seed=9)
        return Machine(sim, n_pcpus=2)

    def test_enable_ple_warns_and_attaches(self):
        machine = self._machine()
        with pytest.warns(DeprecationWarning):
            monitor = machine.enable_ple()
        assert machine.ple is monitor is not None

    def test_enable_relaxed_co_warns_and_attaches(self):
        machine = self._machine()
        with pytest.warns(DeprecationWarning):
            monitor = machine.enable_relaxed_co()
        assert machine.relaxed_co is monitor is not None

    def test_enable_balance_scheduling_warns_and_wraps(self):
        from repro.hypervisor import enable_balance_scheduling
        from repro.hypervisor.balance_sched import BalanceScheduler
        machine = self._machine()
        with pytest.warns(DeprecationWarning):
            wrapper = enable_balance_scheduling(machine)
        assert isinstance(wrapper, BalanceScheduler)
        assert machine.hv_balancer is wrapper
