"""Unit tests for the cancellable event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.simkernel.events import Event, EventQueue


def make_queue():
    return EventQueue()


class TestScheduleAndPop:
    def test_pop_empty_returns_none(self):
        q = make_queue()
        assert q.pop() is None

    def test_single_event_pops(self):
        q = make_queue()
        q.schedule(10, lambda: None)
        event = q.pop()
        assert event.time == 10
        assert event.fired

    def test_events_pop_in_time_order(self):
        q = make_queue()
        q.schedule(30, lambda: None)
        q.schedule(10, lambda: None)
        q.schedule(20, lambda: None)
        times = [q.pop().time for __ in range(3)]
        assert times == [10, 20, 30]

    def test_ties_pop_in_schedule_order(self):
        q = make_queue()
        order = []
        first = q.schedule(5, order.append, 'first')
        second = q.schedule(5, order.append, 'second')
        assert q.pop() is first
        assert q.pop() is second

    def test_negative_time_rejected(self):
        q = make_queue()
        with pytest.raises(ValueError):
            q.schedule(-1, lambda: None)

    def test_zero_time_allowed(self):
        q = make_queue()
        q.schedule(0, lambda: None)
        assert q.pop().time == 0

    def test_callback_args_preserved(self):
        q = make_queue()
        q.schedule(1, lambda a, b: None, 'x', 'y')
        event = q.pop()
        assert event.args == ('x', 'y')


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        q = make_queue()
        event = q.schedule(10, lambda: None)
        event.cancel()
        assert q.pop() is None

    def test_cancel_is_idempotent(self):
        q = make_queue()
        event = q.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        assert len(q) == 0

    def test_cancel_after_fire_is_noop(self):
        q = make_queue()
        event = q.schedule(10, lambda: None)
        fired = q.pop()
        fired.cancel()
        assert fired.fired

    def test_cancel_middle_event_preserves_others(self):
        q = make_queue()
        q.schedule(1, lambda: None)
        middle = q.schedule(2, lambda: None)
        q.schedule(3, lambda: None)
        middle.cancel()
        assert [q.pop().time for __ in range(2)] == [1, 3]

    def test_len_counts_live_events_only(self):
        q = make_queue()
        keep = q.schedule(1, lambda: None)
        drop = q.schedule(2, lambda: None)
        assert len(q) == 2
        drop.cancel()
        assert len(q) == 1
        assert bool(q)
        q.pop()
        assert len(q) == 0
        assert not q
        assert keep.fired


class TestPeek:
    def test_peek_time_empty(self):
        assert make_queue().peek_time() is None

    def test_peek_time_skips_cancelled(self):
        q = make_queue()
        head = q.schedule(1, lambda: None)
        q.schedule(7, lambda: None)
        head.cancel()
        assert q.peek_time() == 7

    def test_peek_does_not_remove(self):
        q = make_queue()
        q.schedule(3, lambda: None)
        assert q.peek_time() == 3
        assert q.peek_time() == 3
        assert len(q) == 1


class TestClear:
    def test_clear_drops_everything(self):
        q = make_queue()
        for t in range(5):
            q.schedule(t, lambda: None)
        q.clear()
        assert len(q) == 0
        assert q.pop() is None


class TestEventRepr:
    def test_repr_states(self):
        q = make_queue()
        event = q.schedule(5, lambda: None)
        assert 'pending' in repr(event)
        event.cancel()
        assert 'cancelled' in repr(event)
        fresh = q.schedule(6, lambda: None)
        q.pop()  # pops `fresh` (5 was cancelled)
        assert 'fired' in repr(fresh)

    def test_pending_property(self):
        q = make_queue()
        event = q.schedule(5, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=200))
    def test_pop_order_is_sorted_by_time(self, times):
        q = make_queue()
        for t in times:
            q.schedule(t, lambda: None)
        popped = []
        while True:
            event = q.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(times)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.booleans()),
                    min_size=1, max_size=100))
    def test_cancelled_subset_never_pops(self, spec):
        q = make_queue()
        live = []
        for t, keep in spec:
            event = q.schedule(t, lambda: None)
            if keep:
                live.append(t)
            else:
                event.cancel()
        popped = []
        while True:
            event = q.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(live)
