"""Tests for benchmark profiles, the workload driver, programs,
servers, and hogs."""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import (
    ALL_PROFILES,
    ApacheBenchWorkload,
    HogWorkload,
    NPB,
    ParallelWorkload,
    PARSEC,
    SpecJbbWorkload,
    get_profile,
    profile_variant,
)
from repro.workloads.suites import (
    KIND_BARRIER,
    KIND_PIPELINE,
    KIND_WORKSTEAL,
    MODE_BLOCK,
    MODE_SPIN,
)

from conftest import single_vm_machine


class TestProfiles:
    def test_all_parsec_present(self):
        expected = {'blackscholes', 'bodytrack', 'canneal', 'dedup',
                    'facesim', 'ferret', 'fluidanimate', 'raytrace',
                    'streamcluster', 'swaptions', 'vips', 'x264'}
        assert set(PARSEC) == expected

    def test_all_npb_present(self):
        expected = {'BT', 'CG', 'EP', 'FT', 'IS', 'LU', 'MG', 'SP', 'UA'}
        assert set(NPB) == expected

    def test_parsec_is_blocking(self):
        assert all(p.mode == MODE_BLOCK for p in PARSEC.values())

    def test_npb_spins_except_ep(self):
        for name, profile in NPB.items():
            if name == 'EP':
                assert profile.mode == MODE_BLOCK
            else:
                assert profile.mode == MODE_SPIN

    def test_spinning_profiles_have_region_boundaries(self):
        for name, profile in NPB.items():
            if profile.mode == MODE_SPIN:
                assert profile.region_every > 0

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile('doom3')

    def test_variant_overrides(self):
        mg = get_profile('MG')
        blocking_mg = profile_variant(mg, mode=MODE_BLOCK)
        assert blocking_mg.mode == MODE_BLOCK
        assert blocking_mg.phase_ns == mg.phase_ns
        assert mg.mode == MODE_SPIN          # original untouched

    def test_raytrace_is_work_stealing(self):
        assert get_profile('raytrace').kind == KIND_WORKSTEAL

    def test_pipeline_profiles(self):
        assert get_profile('dedup').stages == 4
        assert get_profile('ferret').stages == 5


class TestParallelWorkloadRuns:
    def _run(self, sim, name, scale=0.05, n_vcpus=4, timeout=30 * SEC):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=n_vcpus,
                                                n_vcpus=n_vcpus)
        workload = ParallelWorkload(sim, kernel, get_profile(name),
                                    scale=scale).install()
        sim.run_until(timeout)
        return workload

    @pytest.mark.parametrize('name', sorted(ALL_PROFILES))
    def test_every_profile_completes_uncontended(self, sim, name):
        workload = self._run(sim, name)
        assert workload.is_done, '%s never finished' % name
        assert workload.makespan_ns() > 0

    def test_progress_events_count(self, sim):
        workload = self._run(sim, 'streamcluster', scale=0.1)
        assert workload.progress_events > 0
        assert workload.progress_rate(workload.done_at) > 0

    def test_repeat_mode_never_finishes(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        workload = ParallelWorkload(sim, kernel, get_profile('streamcluster'),
                                    repeat=True, scale=0.05).install()
        sim.run_until(2 * SEC)
        assert not workload.is_done
        assert workload.progress_events > 10

    def test_repeat_rejected_for_worksteal(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        workload = ParallelWorkload(sim, kernel, get_profile('raytrace'),
                                    repeat=True)
        with pytest.raises(ValueError):
            workload.install()

    def test_repeat_rejected_for_pipeline(self, sim):
        machine, vm, kernel = single_vm_machine(sim)
        workload = ParallelWorkload(sim, kernel, get_profile('dedup'),
                                    repeat=True)
        with pytest.raises(ValueError):
            workload.install()

    def test_pipeline_spawns_stage_grid(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        workload = ParallelWorkload(sim, kernel, get_profile('dedup'),
                                    scale=0.02).install()
        assert len(workload.tasks) == 4 * 4  # stages x threads
        sim.run_until(30 * SEC)
        assert workload.is_done                # stop tokens propagate

    def test_worksteal_balances_across_threads(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        workload = ParallelWorkload(sim, kernel, get_profile('raytrace'),
                                    scale=0.1).install()
        sim.run_until(30 * SEC)
        assert workload.is_done
        times = [t.cpu_ns for t in workload.tasks]
        assert max(times) < 2 * (sum(times) / len(times))

    def test_scale_shrinks_work(self, sim):
        small = self._run(sim, 'blackscholes', scale=0.05)
        sim2 = Simulator(seed=42)
        large = Simulator(seed=42)
        machine, vm, kernel = single_vm_machine(large, n_pcpus=4, n_vcpus=4)
        big = ParallelWorkload(large, kernel, get_profile('blackscholes'),
                               scale=0.2).install()
        large.run_until(60 * SEC)
        assert big.is_done
        assert big.makespan_ns() > small.makespan_ns()


class TestServers:
    def test_specjbb_measures_throughput_and_latency(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        server = SpecJbbWorkload(sim, kernel).install()
        sim.run_until(2 * SEC)
        assert server.completed > 100
        assert server.throughput() > 100
        summary = server.latency.summary()
        assert 0 < summary['p50'] <= summary['p99']

    def test_specjbb_warehouses_default_to_vcpus(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        server = SpecJbbWorkload(sim, kernel).install()
        assert len(server.tasks) == 4

    def test_ab_many_threads(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        server = ApacheBenchWorkload(sim, kernel, n_threads=64).install()
        sim.run_until(2 * SEC)
        assert len(server.tasks) == 64
        assert server.completed > 100
        # With 64 threads on 2 vCPUs, latency >> service time.
        assert server.latency.p50() > 10 * MS

    def test_specjbb_lock_contention_counted(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=4, n_vcpus=4)
        server = SpecJbbWorkload(sim, kernel).install()
        sim.run_until(2 * SEC)
        # Every completed transaction acquired the order lock at least
        # once (in-flight transactions may add a few more).
        assert server.order_lock.total_acquires >= server.completed


class TestHogs:
    def test_hogs_consume_cpu(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        hogs = HogWorkload(sim, kernel, count=2).install()
        sim.run_until(1 * SEC)
        assert hogs.consumed_ns() > 1.9 * SEC

    def test_hog_count(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        hogs = HogWorkload(sim, kernel, count=3).install()
        assert len(hogs.tasks) == 3
