"""Tests for the cluster layer: hosts, placement policies, admission,
live migration, rebalance hysteresis, and the ClusterSpec pipeline
integration. The conftest sanitizer fixture validates scheduler
invariants after every test."""

import json

import pytest

from repro.cluster import (
    Cluster,
    HostSpec,
    MigrationCostModel,
    RebalanceDaemon,
    VmRequest,
    make_policy,
    run_consolidation,
)
from repro.experiments import ClusterSpec, SpecError, cluster_spec
from repro.hypervisor import RUNSTATE_OFFLINE
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC


def _specs(n=3, strategy='vanilla', n_pcpus=4, capacity=None):
    return [HostSpec('h%d' % i, n_pcpus=n_pcpus, strategy=strategy,
                     capacity_vcpus=capacity) for i in range(n)]


def _cluster(sim, n=3, policy='first_fit', capacity=None, rebalance=None,
             strategy='vanilla'):
    cluster = Cluster(sim, _specs(n, strategy=strategy, capacity=capacity),
                      policy=policy, rebalance=rebalance)
    cluster.start()
    return cluster


class TestHostSpec:
    def test_defaults(self):
        spec = HostSpec('h0')
        assert spec.capacity_vcpus == 8      # 2x overcommit on 4 pCPUs

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            HostSpec('h0', strategy='magic')


class TestPlacementPolicies:
    def test_first_fit_packs_low_indexes(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, policy='first_fit')
        hosts = [cluster.submit(VmRequest('vm%d' % i, n_vcpus=2,
                                          workload='hogs'))
                 for i in range(4)]
        assert [h.name for h in hosts] == ['h0', 'h0', 'h0', 'h0']

    def test_least_loaded_spreads(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, policy='least_loaded')
        hosts = [cluster.submit(VmRequest('vm%d' % i, n_vcpus=2,
                                          workload='hogs'))
                 for i in range(3)]
        assert sorted(h.name for h in hosts) == ['h0', 'h1', 'h2']

    def test_interference_aware_avoids_hot_host(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, policy='interference_aware')
        # Saturate h0 with hogs (8 vCPUs on 4 pCPUs -> heavy steal),
        # then let the monitors observe a few windows.
        for i in range(4):
            req = VmRequest('hog%d' % i, n_vcpus=2, workload='hogs')
            host = cluster.hosts[0]
            # Force-place on h0 regardless of policy.
            from repro.guestos import GuestKernel
            from repro.hypervisor import VM
            vm = VM(req.name, n_vcpus=2, sim=sim)
            vm.working_set_mb = 64
            host.place_vm(vm)
            kernel = GuestKernel(sim, vm, host.machine)
            from repro.workloads import HogWorkload
            HogWorkload(sim, kernel, count=2, name='%s.h' % req.name
                        ).install()
            cluster.migration.note_placed(vm)
        sim.run_until(300 * MS)
        assert cluster.hosts[0].interference_score() > \
            cluster.hosts[1].interference_score()
        placed = cluster.submit(VmRequest('srv', n_vcpus=2))
        assert placed.name != 'h0'

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy('random')

    def test_policy_instance_passthrough(self):
        policy = make_policy('first_fit')
        assert make_policy(policy) is policy


class TestAdmission:
    def test_rejects_when_cluster_full(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2, capacity=4)
        for i in range(4):
            assert cluster.submit(VmRequest('vm%d' % i, n_vcpus=2,
                                            workload='hogs')) is not None
        rejected = cluster.submit(VmRequest('late', n_vcpus=2,
                                            workload='hogs'))
        assert rejected is None
        assert cluster.admission.rejected == 1
        assert cluster.admission.rejections == ['late']
        assert cluster.admission.admitted == 4

    def test_rejection_ledger_is_ring_bounded(self):
        from repro.cluster.admission import AdmissionController
        sim = Simulator(seed=0)
        admission = AdmissionController(max_rejections=3)
        for i in range(5):
            admission.reject(VmRequest('vm%d' % i, workload='hogs'), sim)
        assert admission.rejected == 5
        assert admission.rejections_dropped == 2
        # Ring keeps the newest entries, in arrival order.
        assert admission.rejections == ['vm2', 'vm3', 'vm4']

    def test_rejection_ring_validates_capacity(self):
        from repro.cluster.admission import AdmissionController
        with pytest.raises(ValueError):
            AdmissionController(max_rejections=0)

    def test_capacity_counts_migration_reservations(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2, capacity=4)
        vm_host = cluster.submit(VmRequest('vm0', n_vcpus=2,
                                           workload='hogs'))
        sim.run_until(50 * MS)
        vm = vm_host.resident_vms[0]
        target = cluster.hosts[1]
        record = cluster.migration.migrate(vm, vm_host, target)
        assert record is not None
        # Mid-flight, the target holds a reservation.
        assert target.reserved_vcpus == 2
        assert target.used_vcpus == 2
        assert not target.has_capacity(4)


class TestMigration:
    def test_cost_model_formula(self):
        model = MigrationCostModel(base_downtime_ns=2 * MS,
                                   link_mb_per_s=10_000,
                                   dirty_mb_per_cpu_s=64,
                                   dirty_window_ns=1 * SEC)
        # No dirtying: base + 100 MB / 10 GB/s = 2 ms + 10 ms.
        assert model.transfer_ns(100, 0, 2) == 2 * MS + 10 * MS
        # Half a second of run time dirties 32 MB.
        assert model.dirtied_mb(SEC // 2, 2) == 32
        # The dirty window caps the charge at n_vcpus * window.
        assert model.dirtied_mb(100 * SEC, 2) == 128

    def test_vm_never_on_two_hosts(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        source = cluster.submit(VmRequest('vm0', n_vcpus=2,
                                          workload='hogs'))
        sim.run_until(100 * MS)
        vm = source.resident_vms[0]
        target = cluster.hosts[1]
        record = cluster.migration.migrate(vm, source, target)
        assert record is not None
        # In flight: resident nowhere, every vCPU offline and detached.
        assert cluster.host_of(vm) is None
        for vcpu in vm.vcpus:
            assert vcpu.runstate == RUNSTATE_OFFLINE
            assert vcpu.pcpu is None
        sim.run_until(record.started_ns + record.transfer_ns + 1)
        assert cluster.host_of(vm) is target
        assert record.completed_ns == record.started_ns + record.transfer_ns
        # The hogs resume running on the new host.
        resumed_at = sim.now
        run_before = sum(v.snapshot_accounting(sim.now)[0]
                         for v in vm.vcpus)
        sim.run_until(resumed_at + 100 * MS)
        run_after = sum(v.snapshot_accounting(sim.now)[0]
                        for v in vm.vcpus)
        assert run_after > run_before

    def test_migrate_refuses_in_flight_and_full_target(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=3, capacity=2)
        source = cluster.submit(VmRequest('vm0', n_vcpus=2,
                                          workload='hogs'))
        blocker = cluster.submit(VmRequest('vm1', n_vcpus=2,
                                           workload='hogs'))
        sim.run_until(50 * MS)
        vm = source.resident_vms[0]
        assert cluster.migration.migrate(vm, source, source) is None
        assert cluster.migration.migrate(vm, source, blocker) is None
        target = cluster.hosts[2]
        assert cluster.migration.migrate(vm, source, target) is not None
        # Second migrate while in flight is refused.
        assert cluster.migration.migrate(vm, source, target) is None

    def test_migration_cost_accounts_dirty_run(self):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=2)
        source = cluster.submit(VmRequest('vm0', n_vcpus=2,
                                          workload='hogs',
                                          working_set_mb=100))
        sim.run_until(500 * MS)
        vm = source.resident_vms[0]
        record = cluster.migration.migrate(vm, source, cluster.hosts[1])
        # 2 hog vCPUs ran ~0.5 s each -> ~1 CPU-s -> ~64 MB dirty on
        # top of the 100 MB working set; transfer must exceed the
        # clean-VM cost and match the model exactly.
        model = cluster.migration.cost_model
        assert record.transfer_ns > model.transfer_ns(100, 0, 2)
        dirty_run = sum(v.snapshot_accounting(record.started_ns)[0]
                        for v in vm.vcpus)
        assert record.transfer_ns == model.transfer_ns(100, dirty_run, 2)

    def test_migration_deterministic(self):
        def run_once():
            result = run_consolidation(strategy='vanilla',
                                       placement='first_fit', seed=0,
                                       measure_ns=500 * MS)
            return json.dumps(result.summary(), sort_keys=True)
        assert run_once() == run_once()


class TestRebalanceDaemon:
    def _hot_cluster(self, daemon):
        sim = Simulator(seed=0)
        cluster = _cluster(sim, n=3, rebalance=daemon)
        # 3 hog VMs packed on h0: 6 vCPUs on 4 pCPUs -> steal ~0.5.
        for i in range(3):
            cluster.submit(VmRequest('hog%d' % i, n_vcpus=2,
                                     workload='hogs'))
        return sim, cluster

    def test_trips_and_evicts_hot_host(self):
        daemon = RebalanceDaemon(high_threshold=0.3, low_threshold=0.1)
        sim, cluster = self._hot_cluster(daemon)
        sim.run_until(1 * SEC)
        assert sim.trace.counters['cluster.rebalance_trips'] >= 1
        assert len(cluster.migration.records) >= 1
        # Load ends up spread: no host holds all three VMs.
        assert max(len(h.resident_vms) for h in cluster.hosts) < 3

    def test_rearms_below_low_threshold(self):
        daemon = RebalanceDaemon(high_threshold=0.3, low_threshold=0.1)
        sim, cluster = self._hot_cluster(daemon)
        sim.run_until(2 * SEC)
        # Once spread (1 VM per host), no host steals: the trip set
        # drains and the migrations stop.
        assert not daemon.tripped
        assert sim.trace.counters['cluster.rebalance_rearms'] >= 1
        moved = len(cluster.migration.records)
        sim.run_until(3 * SEC)
        assert len(cluster.migration.records) == moved

    def test_quiet_cluster_never_trips(self):
        sim = Simulator(seed=0)
        daemon = RebalanceDaemon()
        cluster = _cluster(sim, n=3, policy='least_loaded',
                           rebalance=daemon)
        for i in range(3):
            cluster.submit(VmRequest('hog%d' % i, n_vcpus=2,
                                     workload='hogs'))
        sim.run_until(1 * SEC)
        assert sim.trace.counters['cluster.rebalance_trips'] == 0
        assert not cluster.migration.records

    def test_cooldown_limits_churn(self):
        daemon = RebalanceDaemon(high_threshold=0.05, low_threshold=0.01,
                                 min_gain=0.0, vm_cooldown_ns=10 * SEC)
        sim, cluster = self._hot_cluster(daemon)
        sim.run_until(2 * SEC)
        # Every VM can move at most once inside the cooldown horizon.
        assert len(cluster.migration.records) <= 3


class TestConsolidationScenario:
    def test_interference_aware_beats_first_fit(self):
        outcomes = {}
        for strategy in ('vanilla', 'irs'):
            for placement in ('first_fit', 'interference_aware'):
                result = run_consolidation(strategy=strategy,
                                           placement=placement, seed=0)
                outcomes[(strategy, placement)] = result
        for strategy in ('vanilla', 'irs'):
            aware = outcomes[(strategy, 'interference_aware')]
            packed = outcomes[(strategy, 'first_fit')]
            assert aware.latency_summary['p99'] < \
                packed.latency_summary['p99']
            assert aware.migrations <= packed.migrations

    def test_irs_guests_see_activations_under_contention(self):
        result = run_consolidation(strategy='irs', placement='first_fit',
                                   seed=0, measure_ns=500 * MS)
        assert result.throughput > 0
        assert result.latency_summary['count'] > 0


class TestClusterSpec:
    def test_factory_and_token(self):
        spec = cluster_spec(strategy='irs', placement='interference_aware',
                            seed=2)
        assert isinstance(spec, ClusterSpec)
        assert spec.kind == 'cluster'
        base = cluster_spec().cache_token()
        assert spec.cache_token() != base
        assert cluster_spec().cache_token() == base
        for changed in (cluster_spec(n_hosts=5),
                        cluster_spec(rebalance=False),
                        cluster_spec(placement='least_loaded')):
            assert changed.cache_token() != base

    def test_validation(self):
        with pytest.raises(SpecError):
            cluster_spec(placement='random')
        with pytest.raises(SpecError):
            cluster_spec(n_hosts=0)
        with pytest.raises(SpecError):
            # kind='cluster' on the base class (no cluster fields).
            from repro.experiments import RunSpec
            RunSpec(app='x', kind='cluster')

    def test_picklable(self):
        import pickle
        spec = cluster_spec(strategy='irs')
        assert pickle.loads(pickle.dumps(spec)) == spec
