"""Integration tests for the LHP/LWP lock pathologies themselves.

These pin down the micro-mechanics the paper's Section 1-2 describes:
what exactly happens when a lock holder or a ticket-lock waiter loses
its vCPU, and how the two spinlock fairness disciplines differ under
preemption.
"""

from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import (
    Acquire,
    Compute,
    Mark,
    Mutex,
    Release,
    SpinLock,
    cpu_hog,
)

from conftest import build_machine, build_vm


def contended_quad(sim, seed_kernel=True):
    """4 pCPUs, fg VM with 4 vCPUs, one hog sharing pCPU 0."""
    machine = build_machine(sim, 4)
    fg_vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=4,
                             pinning=[0, 1, 2, 3])
    __, hk = build_vm(sim, machine, 'hog', pinning=[0])
    hk.spawn('hog', cpu_hog(10 * MS))
    machine.start()
    return machine, fg_vm, kernel


class TestLockHolderPreemption:
    def test_holder_preemption_stalls_all_waiters(self):
        """The defining LHP event: waiters observe a wait roughly equal
        to the hypervisor scheduling delay, far beyond the critical
        section length."""
        sim = Simulator(seed=21)
        machine, vm, kernel = contended_quad(sim)
        lock = Mutex()
        waits = []

        def locker(n):
            for __ in range(n):
                yield Compute(1 * MS)
                started = [None]
                yield Mark(lambda t, now, s=started: s.__setitem__(0, now))
                yield Acquire(lock)
                yield Mark(lambda t, now, s=started:
                           waits.append(now - s[0]))
                yield Compute(100 * US)
                yield Release(lock)
        for i in range(4):
            kernel.spawn('w%d' % i, locker(400), gcpu_index=i)
        sim.run_until(10 * SEC)
        long_waits = [w for w in waits if w > 10 * MS]
        # LHP episodes occurred...
        assert long_waits
        # ...and their magnitude is slice-scale, not section-scale.
        assert max(long_waits) > 20 * MS

    def test_no_interference_no_long_waits(self):
        sim = Simulator(seed=22)
        machine = build_machine(sim, 4)
        vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=4,
                              pinning=[0, 1, 2, 3])
        machine.start()
        lock = Mutex()
        waits = []

        def locker(n):
            for __ in range(n):
                yield Compute(1 * MS)
                started = [None]
                yield Mark(lambda t, now, s=started: s.__setitem__(0, now))
                yield Acquire(lock)
                yield Mark(lambda t, now, s=started:
                           waits.append(now - s[0]))
                yield Compute(100 * US)
                yield Release(lock)
        for i in range(4):
            kernel.spawn('w%d' % i, locker(300), gcpu_index=i)
        sim.run_until(10 * SEC)
        assert waits
        assert max(waits) < 5 * MS


class TestTicketLockAmplification:
    """Fair (ticket) spinlocks hand the lock to preempted waiters,
    turning one preemption into a convoy — the LWP amplifier the
    pvspinlock literature targets."""

    def _run(self, fair, seed):
        """Lock-heavy loop (the regime where a frozen ticket holder
        convoys everyone): short compute, long critical section."""
        sim = Simulator(seed=seed)
        machine, vm, kernel = contended_quad(sim)
        lock = SpinLock('l', fair=fair)
        done = []

        def locker(n):
            for __ in range(n):
                yield Compute(200 * US)
                yield Acquire(lock)
                yield Compute(500 * US)
                yield Release(lock)
        for i in range(4):
            kernel.spawn('w%d' % i, locker(300), gcpu_index=i,
                         on_exit=lambda t, now: done.append(now))
        sim.run_until(120 * SEC)
        assert len(done) == 4
        return max(done)

    def test_unfair_lock_beats_ticket_lock_under_preemption(self):
        ticket = self._run(fair=True, seed=31)
        unfair = self._run(fair=False, seed=31)
        # The ticket discipline grants the lock to frozen waiters and
        # convoys; test-and-set lets a running waiter win the race.
        assert unfair < ticket * 0.8

    def test_ticket_lock_convoys_are_slice_scale(self):
        """The ticket run's excess over the serialized critical path is
        made of scheduling-slice stalls."""
        ticket = self._run(fair=True, seed=32)
        # Serialized critical sections alone: 4 x 300 x 0.5ms = 600ms.
        # The convoy stalls push well beyond that.
        assert ticket > 900 * MS


class TestWeightedVMs:
    def test_irs_respects_weights(self):
        """A double-weight foreground VM keeps its 2:1 CPU advantage
        whether or not IRS is active."""
        from repro.core import install_irs
        from repro.guestos import GuestKernel
        from repro.hypervisor import Machine, VM

        def run(irs):
            sim = Simulator(seed=33)
            machine = Machine(sim, 1)
            heavy = VM('heavy', 1, sim, weight=512)
            light = VM('light', 1, sim, weight=256)
            machine.add_vm(heavy, pinning=[0])
            machine.add_vm(light, pinning=[0])
            hk = GuestKernel(sim, heavy, machine)
            lk = GuestKernel(sim, light, machine)
            if irs:
                install_irs(machine, [hk])
            hk.spawn('h', cpu_hog(10 * MS))
            lk.spawn('l', cpu_hog(10 * MS))
            machine.start()
            sim.run_until(3 * SEC)
            return (heavy.total_runstate(sim.now)[0],
                    light.total_runstate(sim.now)[0])
        plain = run(False)
        with_irs = run(True)
        for heavy_run, light_run in (plain, with_irs):
            assert heavy_run > light_run * 1.3
        # IRS changes the heavy VM's share by at most a few percent.
        assert abs(with_irs[0] - plain[0]) < 0.1 * plain[0]
