"""Time-conservation properties of the two-level scheduler.

CPU time is neither created nor destroyed: what tasks are charged must
equal what their vCPUs actually ran (minus bounded kernel overheads),
and vCPU runstate buckets must tile wall-clock time exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.core import install_irs
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import (
    Acquire,
    Barrier,
    BarrierWait,
    Compute,
    Mutex,
    Release,
    cpu_hog,
)

from conftest import build_machine, build_vm


def build(seed, strategy, workload_kind, n_pcpus=2):
    sim = Simulator(seed=seed)
    machine = build_machine(sim, n_pcpus)
    vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=n_pcpus,
                          pinning=list(range(n_pcpus)))
    __, hk = build_vm(sim, machine, 'hog', pinning=[0])
    hk.spawn('hog', cpu_hog(7 * MS))
    if strategy == 'irs':
        install_irs(machine, [kernel])

    if workload_kind == 'barrier':
        barrier = Barrier(n_pcpus, mode='block')

        def body():
            for __ in range(50):
                yield Compute(2 * MS)
                yield BarrierWait(barrier)
    elif workload_kind == 'mutex':
        lock = Mutex()

        def body():
            for __ in range(50):
                yield Compute(1 * MS)
                yield Acquire(lock)
                yield Compute(100 * US)
                yield Release(lock)
    else:
        def body():
            yield Compute(200 * MS)

    for i in range(n_pcpus):
        kernel.spawn('w%d' % i, body(), gcpu_index=i)
    machine.start()
    return sim, machine, vm, kernel


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=500),
       st.sampled_from(['vanilla', 'irs']),
       st.sampled_from(['barrier', 'mutex', 'compute']))
def test_task_cpu_equals_vcpu_run_time(seed, strategy, kind):
    """Sum of task charges == sum of vCPU run time, within the bounded
    kernel overheads (SA handlers, idle transitions)."""
    sim, machine, vm, kernel = build(seed, strategy, kind)
    sim.run_until(2 * SEC)
    task_cpu = sum(t.cpu_ns for t in kernel.tasks)
    vcpu_run = vm.total_runstate(sim.now)[0]
    overhead = vcpu_run - task_cpu
    assert overhead >= 0, 'tasks charged more than their vCPUs ran'
    # SA handlers cost 20-26us each; allow a generous envelope for
    # them plus dispatch-instant slivers.
    sa_count = sim.trace.counters.get('irs.sa_sent', 0)
    assert overhead <= sa_count * 30 * US + 1 * MS


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=500),
       st.sampled_from(['vanilla', 'irs']))
def test_runstates_tile_wall_clock(seed, strategy):
    """run + steal + blocked == elapsed, exactly, for every vCPU."""
    sim, machine, vm, kernel = build(seed, strategy, 'barrier')
    sim.run_until(1 * SEC)
    for machine_vm in machine.vms:
        for vcpu in machine_vm.vcpus:
            run, steal, blocked = vcpu.snapshot_accounting(sim.now)
            assert run + steal + blocked == sim.now


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_pcpu_busy_equals_vcpu_run(seed):
    """Machine-level: total pCPU busy time == total vCPU run time."""
    sim, machine, vm, kernel = build(seed, 'vanilla', 'mutex')
    sim.run_until(1 * SEC)
    pcpu_busy = sum(p.snapshot_busy(sim.now) for p in machine.pcpus)
    vcpu_run = sum(v.snapshot_accounting(sim.now)[0]
                   for m in machine.vms for v in m.vcpus)
    assert pcpu_busy == vcpu_run
