"""Scheduler invariants checked over randomized scenarios.

Hypothesis drives scenario parameters; after (and during) each run the
structural invariants of the two-level scheduler must hold:

* a pCPU runs at most one vCPU, and a running vCPU is on no runqueue;
* a vCPU belongs to exactly one pCPU runqueue when runnable;
* a task is current on at most one guest CPU and queued on at most one
  runqueue, never both;
* no task is lost: every spawned task is current, queued, sleeping,
  migrating, or exited;
* CPU time is conserved: per-pCPU busy time never exceeds wall time.
"""

from hypothesis import given, settings, strategies as st

from repro.core import install_irs
from repro.faults import FaultInjector, FaultSpec
from repro.hypervisor import StrategyDescriptor
from repro.simkernel import install_sanitizer
from repro.guestos.task import (
    TASK_EXITED,
    TASK_MIGRATING,
    TASK_READY,
    TASK_RUNNING,
    TASK_SLEEPING,
)
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import (
    Acquire,
    Barrier,
    BarrierWait,
    Compute,
    Mutex,
    Release,
    Sleep,
    SpinLock,
)

from conftest import build_machine, build_vm


def check_hypervisor_invariants(machine):
    seen = set()
    for pcpu in machine.pcpus:
        if pcpu.current is not None:
            assert pcpu.current.is_running or pcpu.preempt_deferred
            assert pcpu.current not in pcpu.runq
            assert pcpu.current not in seen
            seen.add(pcpu.current)
        for vcpu in pcpu.runq:
            assert vcpu.is_runnable, '%r queued but %s' % (vcpu,
                                                           vcpu.runstate)
            assert vcpu not in seen
            seen.add(vcpu)


def check_guest_invariants(kernel):
    current_tasks = set()
    queued_tasks = set()
    for gcpu in kernel.gcpus:
        if gcpu.current is not None:
            assert gcpu.current.state == TASK_RUNNING
            assert gcpu.current not in current_tasks
            current_tasks.add(gcpu.current)
        for task in gcpu.rq.tasks():
            assert task.state == TASK_READY
            assert task not in queued_tasks
            queued_tasks.add(task)
    assert not (current_tasks & queued_tasks)
    for task in kernel.tasks:
        assert task.state in (TASK_RUNNING, TASK_READY, TASK_SLEEPING,
                              TASK_MIGRATING, TASK_EXITED)
        if task.state == TASK_RUNNING:
            assert task in current_tasks
        if task.state == TASK_READY:
            assert task in queued_tasks


def check_time_conservation(machine, elapsed_ns):
    now = machine.sim.now
    for pcpu in machine.pcpus:
        assert 0 <= pcpu.snapshot_busy(now) <= elapsed_ns + 1
    for vm in machine.vms:
        run, steal, blocked = vm.total_runstate(now)
        assert run >= 0 and steal >= 0 and blocked >= 0


def build_random_scenario(seed, n_pcpus, strategy, sync_kind, n_hogs):
    sim = Simulator(seed=seed)
    machine = build_machine(sim, n_pcpus)
    fg_vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=n_pcpus,
                             pinning=list(range(n_pcpus)))
    bg_kernels = []
    if n_hogs:
        __, hk = build_vm(sim, machine, 'bg', n_vcpus=n_hogs,
                          pinning=list(range(n_hogs)))
        bg_kernels.append(hk)

    if strategy == 'irs':
        install_irs(machine, [kernel])
    elif strategy == 'ple':
        machine.attach_strategies(StrategyDescriptor(ple=True))
    elif strategy == 'relaxed_co':
        machine.attach_strategies(StrategyDescriptor(relaxed_co=True))

    if sync_kind == 'mutex':
        lock = Mutex()
    elif sync_kind == 'spin':
        lock = SpinLock()
    barrier = Barrier(n_pcpus, mode='block')

    def worker(i):
        for __ in range(30):
            yield Compute(1 * MS + i * 100 * US)
            if sync_kind in ('mutex', 'spin'):
                yield Acquire(lock)
                yield Compute(50 * US)
                yield Release(lock)
            elif sync_kind == 'barrier':
                yield BarrierWait(barrier)
            else:
                yield Sleep(500 * US)

    for i in range(n_pcpus):
        kernel.spawn('w%d' % i, worker(i), gcpu_index=i)
    for hk in bg_kernels:
        def hog():
            while True:
                yield Compute(7 * MS)
        for i in range(n_hogs):
            hk.spawn('hog%d' % i, hog(), gcpu_index=i)
    machine.start()
    return sim, machine, kernel


SCENARIO = st.tuples(
    st.integers(min_value=0, max_value=10_000),          # seed
    st.integers(min_value=1, max_value=4),               # pcpus
    st.sampled_from(['vanilla', 'ple', 'relaxed_co', 'irs']),
    st.sampled_from(['mutex', 'spin', 'barrier', 'sleep']),
    st.integers(min_value=0, max_value=2),               # hogs
)


@settings(max_examples=25, deadline=None)
@given(SCENARIO)
def test_invariants_hold_over_random_scenarios(params):
    seed, n_pcpus, strategy, sync_kind, n_hogs = params
    n_hogs = min(n_hogs, n_pcpus)
    sim, machine, kernel = build_random_scenario(
        seed, n_pcpus, strategy, sync_kind, n_hogs)
    for step in range(20):
        sim.run_until(sim.now + 25 * MS, max_events=2_000_000)
        check_hypervisor_invariants(machine)
        check_guest_invariants(kernel)
        check_time_conservation(machine, sim.now)


FAULTED_SCENARIO = st.tuples(
    st.integers(min_value=0, max_value=10_000),          # seed
    st.integers(min_value=2, max_value=4),               # pcpus
    st.sampled_from(['vanilla', 'irs']),
    st.sampled_from(['mutex', 'barrier', 'sleep']),
    st.integers(min_value=10, max_value=50),             # fault % rate
)


@settings(max_examples=15, deadline=None)
@given(FAULTED_SCENARIO)
def test_faulted_virqs_preserve_invariants(params):
    """Injected vIRQ drops, reorders, and duplicates never corrupt the
    scheduler's structural invariants — under VANILLA (where the fault
    plane is a no-op control: no vIRQ traffic exists) and under IRS
    (where every SA upcall crosses it). Checked both by the runtime
    sanitizer at every event and by the end-state asserts."""
    seed, n_pcpus, strategy, sync_kind, pct = params
    sim, machine, kernel = build_random_scenario(
        seed, n_pcpus, strategy, sync_kind, n_hogs=1)
    rate = pct / 100.0
    FaultInjector(sim, [FaultSpec('virq_drop', rate),
                        FaultSpec('virq_reorder', rate),
                        FaultSpec('virq_dup', rate)]).attach(machine)
    sanitizer = install_sanitizer(sim, mode='collect', machines=[machine])
    for __ in range(10):
        sim.run_until(sim.now + 25 * MS, max_events=2_000_000)
        check_hypervisor_invariants(machine)
        check_guest_invariants(kernel)
        check_time_conservation(machine, sim.now)
    assert not sanitizer.violations, sanitizer.report()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_determinism_bitwise(seed):
    """Two runs with the same seed produce identical traces."""
    def run():
        sim, machine, kernel = build_random_scenario(
            seed, 2, 'irs', 'barrier', 1)
        sim.run_until(1 * SEC)
        return (sim.events_processed,
                tuple(sorted(sim.trace.counters.items())),
                tuple(t.cpu_ns for t in kernel.tasks))
    assert run() == run()


def test_workload_drains_and_machine_quiesces():
    """After all finite tasks exit, only housekeeping events remain and
    VM run time stops growing."""
    sim, machine, kernel = build_random_scenario(7, 2, 'vanilla',
                                                 'barrier', 0)
    sim.run_until(30 * SEC)
    assert all(t.state == TASK_EXITED for t in kernel.tasks)
    run_before = machine.vms[0].total_runstate(sim.now)[0]
    sim.run_until(sim.now + 1 * SEC)
    run_after = machine.vms[0].total_runstate(sim.now)[0]
    assert run_after == run_before
