"""Integration tests asserting the paper's headline behaviours.

Each test pins down a *shape* claim from the evaluation — who wins,
roughly by how much, and where the effect disappears — on reduced-scale
workloads so the suite stays fast.
"""

import pytest

from repro.experiments import (
    InterferenceSpec,
    NO_INTERFERENCE,
    run_parallel,
    run_server,
)

SCALE = 0.25


def improvement(app, strategy, width=1, interferer='hogs', **kw):
    base = run_parallel(app, 'vanilla',
                        InterferenceSpec(interferer, width), scale=SCALE,
                        **kw)
    strat = run_parallel(app, strategy,
                         InterferenceSpec(interferer, width), scale=SCALE,
                         **kw)
    return (base.makespan_ns / strat.makespan_ns - 1.0) * 100.0


class TestMotivation:
    """Figure 1(a) / Figure 2 claims."""

    def test_blocking_app_suffers_under_interference(self):
        alone = run_parallel('fluidanimate', 'vanilla', NO_INTERFERENCE,
                             scale=SCALE)
        inter = run_parallel('fluidanimate', 'vanilla',
                             InterferenceSpec('hogs', 1), scale=SCALE)
        assert inter.makespan_ns > 1.5 * alone.makespan_ns

    def test_work_stealing_app_is_resilient(self):
        alone = run_parallel('raytrace', 'vanilla', NO_INTERFERENCE,
                             scale=SCALE)
        inter = run_parallel('raytrace', 'vanilla',
                             InterferenceSpec('hogs', 1), scale=SCALE)
        assert inter.makespan_ns < 1.35 * alone.makespan_ns

    def test_blocking_app_underuses_fair_share(self):
        result = run_parallel('streamcluster', 'vanilla',
                              InterferenceSpec('hogs', 1), scale=SCALE)
        assert result.utilization < 0.85

    def test_work_stealing_app_uses_fair_share(self):
        result = run_parallel('raytrace', 'vanilla',
                              InterferenceSpec('hogs', 1), scale=SCALE)
        assert result.utilization > 0.9

    def test_irs_restores_utilization(self):
        result = run_parallel('streamcluster', 'irs',
                              InterferenceSpec('hogs', 1), scale=SCALE)
        assert result.utilization > 0.9


class TestFigure5And6:
    """Strategy-comparison claims."""

    def test_irs_helps_blocking_workload(self):
        assert improvement('streamcluster', 'irs') > 20

    def test_irs_helps_spinning_workload(self):
        assert improvement('MG', 'irs') > 15

    def test_irs_beats_ple_and_relaxed_co_blocking(self):
        irs = improvement('streamcluster', 'irs')
        ple = improvement('streamcluster', 'ple')
        rco = improvement('streamcluster', 'relaxed_co')
        assert irs > ple
        assert irs > rco

    def test_irs_marginal_for_pipeline_apps(self):
        """dedup/ferret have many threads per vCPU; Linux already
        balances them (Section 5.2)."""
        assert abs(improvement('dedup', 'irs')) < 15

    def test_irs_marginal_for_work_stealing(self):
        assert abs(improvement('raytrace', 'irs')) < 10

    def test_gain_shrinks_with_interference_width(self):
        one = improvement('streamcluster', 'irs', width=1)
        four = improvement('streamcluster', 'irs', width=4)
        assert one > four

    def test_real_interferers_also_helped(self):
        gain = improvement('blackscholes', 'irs', interferer='streamcluster')
        assert gain > 10


class TestFigure8:
    def test_specjbb_latency_improves(self):
        base = run_server('specjbb', 'vanilla', n_hogs=2, measure_ns=10**9)
        irs = run_server('specjbb', 'irs', n_hogs=2, measure_ns=10**9)
        assert irs.latency_summary['mean'] < base.latency_summary['mean']

    def test_specjbb_throughput_not_hurt(self):
        base = run_server('specjbb', 'vanilla', n_hogs=2, measure_ns=10**9)
        irs = run_server('specjbb', 'irs', n_hogs=2, measure_ns=10**9)
        assert irs.throughput > base.throughput * 0.97


class TestFigure11:
    def test_gain_grows_with_contention_depth(self):
        """More VMs stacked on the interfered pCPU -> bigger IRS win
        (Section 5.5: 'more useful in a highly consolidated
        scenario')."""
        shallow = improvement('blackscholes', 'irs', width=1)
        deep_base = run_parallel('blackscholes', 'vanilla',
                                 InterferenceSpec('hogs', 1, n_vms=3),
                                 scale=SCALE)
        deep_irs = run_parallel('blackscholes', 'irs',
                                InterferenceSpec('hogs', 1, n_vms=3),
                                scale=SCALE)
        deep = (deep_base.makespan_ns / deep_irs.makespan_ns - 1) * 100
        assert deep > 0
        assert deep > shallow * 0.8   # at least comparable, usually more


class TestFairness:
    def test_irs_respects_fair_share(self):
        result = run_parallel('UA', 'irs', InterferenceSpec('hogs', 4),
                              scale=SCALE)
        assert result.utilization <= 1.1

    def test_background_not_starved_by_irs(self):
        base = run_parallel('streamcluster', 'vanilla',
                            InterferenceSpec('fluidanimate', 4),
                            scale=SCALE)
        irs = run_parallel('streamcluster', 'irs',
                           InterferenceSpec('fluidanimate', 4),
                           scale=SCALE)
        # Background progress under IRS within ~25% of vanilla.
        assert irs.bg_rates[0] > base.bg_rates[0] * 0.75


class TestSaOverheadProfile:
    def test_sa_delay_in_band(self):
        result = run_parallel('streamcluster', 'irs',
                              InterferenceSpec('hogs', 2), scale=SCALE)
        sender = result.scenario.machine.sa_sender
        assert sender.delay_samples_ns
        mean = sum(sender.delay_samples_ns) / len(sender.delay_samples_ns)
        assert 20_000 <= mean <= 26_000       # 20-26 us, Section 3.1
        assert sender.timed_out == 0
