"""Tests for the parameter-sweep utility."""

from repro.experiments import InterferenceSpec, Sweep
from repro.experiments.sweeps import SweepPoint


class TestSweepPoint:
    def test_aggregates(self):
        point = SweepPoint('x', [100, 200], [0.5, 0.7])
        assert point.makespan_ns == 150
        assert abs(point.utilization - 0.6) < 1e-9

    def test_timeouts_skipped(self):
        point = SweepPoint('x', [None, 200], [0.5, 0.7])
        assert point.makespan_ns == 200

    def test_all_timeouts(self):
        point = SweepPoint('x', [None], [0.1])
        assert point.makespan_ns is None
        assert point.improvement_over(SweepPoint('y', [100], [0.1])) is None

    def test_empty_point_does_not_raise(self):
        # statistics.fmean raises on empty input; an empty point must
        # degrade to None the way makespan_ns does.
        point = SweepPoint('x', [], [])
        assert point.makespan_ns is None
        assert point.utilization is None
        other = SweepPoint('y', [100], [0.5])
        assert point.improvement_over(other) is None
        assert other.improvement_over(point) is None

    def test_none_utilizations_filtered(self):
        point = SweepPoint('x', [100, 200], [None, 0.5])
        assert point.utilization == 0.5

    def test_improvement_sign(self):
        fast = SweepPoint('fast', [100], [1.0])
        slow = SweepPoint('slow', [200], [1.0])
        assert fast.improvement_over(slow) == 100.0
        assert slow.improvement_over(fast) == -50.0


class TestSweep:
    def test_strategy_sweep(self):
        sweep = Sweep('streamcluster',
                      base=dict(scale=0.15,
                                interference=InterferenceSpec('hogs', 1)))
        result = sweep.strategies(strategies=('vanilla', 'irs'))
        assert len(result.rows) == 2
        irs = result.notes['irs']
        vanilla = result.notes['vanilla']
        assert irs.improvement_over(vanilla) > 10

    def test_custom_dimension_with_apply(self):
        sweep = Sweep('blackscholes', base=dict(scale=0.1,
                                                strategy='vanilla'))

        def set_width(kwargs, width):
            kwargs['interference'] = InterferenceSpec('hogs', width)
        result = sweep.over('width', [0, 1], apply=lambda kw, w: (
            kw.update(interference=InterferenceSpec('hogs', w))
            if w else None))
        assert result.notes[1].makespan_ns > result.notes[0].makespan_ns

    def test_direct_kwarg_dimension(self):
        # Four threads on two vs four vCPUs: an embarrassingly parallel
        # app halves its makespan with the extra cores.
        sweep = Sweep('swaptions', base=dict(scale=0.1, n_threads=4))
        result = sweep.over('fg_vcpus', [2, 4])
        assert (result.notes[4].makespan_ns
                < result.notes[2].makespan_ns * 0.7)

    def test_table_renders(self):
        sweep = Sweep('swaptions', base=dict(scale=0.05))
        result = sweep.over('scale', [0.05], apply=lambda kw, s: None)
        assert 'Sweep: swaptions' in result.table()
