"""Tests for the reader-writer lock, both the pure state machine and
its scheduler behaviour."""

from repro.guestos.task import Task
from repro.simkernel.units import MS, SEC, US
from repro.workloads import (
    AcquireRead,
    AcquireWrite,
    Compute,
    Mark,
    ReleaseRead,
    ReleaseWrite,
    RwLock,
    cpu_hog,
)
from repro.workloads.sync import ACQUIRED, WAIT

from conftest import build_machine, build_vm, single_vm_machine


def task(name='t'):
    return Task(name, iter(()))


class TestRwLockStateMachine:
    def test_concurrent_readers(self):
        lock = RwLock()
        a, b = task('a'), task('b')
        assert lock.acquire_read(a) == ACQUIRED
        assert lock.acquire_read(b) == ACQUIRED
        assert lock.readers == {a, b}

    def test_writer_excludes_readers(self):
        lock = RwLock()
        w, r = task('w'), task('r')
        assert lock.acquire_write(w) == ACQUIRED
        assert lock.acquire_read(r) == WAIT

    def test_readers_exclude_writer(self):
        lock = RwLock()
        r, w = task('r'), task('w')
        lock.acquire_read(r)
        assert lock.acquire_write(w) == WAIT

    def test_writer_preference_blocks_new_readers(self):
        lock = RwLock()
        r1, w, r2 = task('r1'), task('w'), task('r2')
        lock.acquire_read(r1)
        lock.acquire_write(w)               # queued
        assert lock.acquire_read(r2) == WAIT

    def test_last_reader_wakes_writer(self):
        lock = RwLock()
        r1, r2, w = task('r1'), task('r2'), task('w')
        lock.acquire_read(r1)
        lock.acquire_read(r2)
        lock.acquire_write(w)
        assert lock.release_read(r1) == []
        assert lock.release_read(r2) == [w]
        assert lock.writer is w

    def test_writer_release_wakes_all_readers(self):
        lock = RwLock()
        w, r1, r2 = task('w'), task('r1'), task('r2')
        lock.acquire_write(w)
        lock.acquire_read(r1)
        lock.acquire_read(r2)
        woken = lock.release_write(w)
        assert set(woken) == {r1, r2}
        assert lock.readers == {r1, r2}

    def test_writer_release_prefers_next_writer(self):
        lock = RwLock()
        w1, w2, r = task('w1'), task('w2'), task('r')
        lock.acquire_write(w1)
        lock.acquire_write(w2)
        lock.acquire_read(r)
        assert lock.release_write(w1) == [w2]
        assert lock.writer is w2
        assert r in lock.read_waiters

    def test_bad_releases_raise(self):
        import pytest
        lock = RwLock()
        with pytest.raises(RuntimeError):
            lock.release_read(task('x'))
        with pytest.raises(RuntimeError):
            lock.release_write(task('y'))


class TestRwLockScheduling:
    def test_readers_run_concurrently(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        lock = RwLock()
        done = []

        def reader():
            yield AcquireRead(lock)
            yield Compute(20 * MS)
            yield ReleaseRead(lock)
        for i in range(2):
            kernel.spawn('r%d' % i, reader(), gcpu_index=i,
                         on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        # Both finish at ~20 ms: the reads overlapped.
        assert len(done) == 2
        assert max(done) < 25 * MS

    def test_writer_serializes(self, sim):
        machine, vm, kernel = single_vm_machine(sim, n_pcpus=2, n_vcpus=2)
        lock = RwLock()
        done = []

        def writer():
            yield AcquireWrite(lock)
            yield Compute(20 * MS)
            yield ReleaseWrite(lock)
        for i in range(2):
            kernel.spawn('w%d' % i, writer(), gcpu_index=i,
                         on_exit=lambda t, now: done.append(now))
        sim.run_until(1 * SEC)
        assert len(done) == 2
        assert max(done) >= 40 * MS          # strictly serialized

    def test_preempted_writer_stalls_readers(self, sim):
        """The rwlock LHP variant: the writer's vCPU shares a pCPU with
        a hog; when it is preempted mid-write, every reader waits a
        scheduling slice."""
        machine = build_machine(sim, 2)
        vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=2,
                              pinning=[0, 1])
        __, hk = build_vm(sim, machine, 'hog', pinning=[0])
        hk.spawn('hog', cpu_hog(10 * MS))
        machine.start()
        lock = RwLock()
        waits = []

        def writer():
            while True:
                # Holds longer than one 30 ms slice: a mid-hold
                # preemption is guaranteed once credits drain.
                yield AcquireWrite(lock)
                yield Compute(50 * MS)
                yield ReleaseWrite(lock)
                yield Compute(1 * MS)

        def reader():
            for __ in range(60):
                started = [None]
                yield Mark(lambda t, now, s=started: s.__setitem__(0, now))
                yield AcquireRead(lock)
                yield Mark(lambda t, now, s=started:
                           waits.append(now - s[0]))
                yield Compute(500 * US)
                yield ReleaseRead(lock)
                yield Compute(500 * US)
        kernel.spawn('writer', writer(), gcpu_index=0)
        kernel.spawn('reader', reader(), gcpu_index=1)
        sim.run_until(30 * SEC)
        assert waits
        # Baseline wait is the 50 ms hold; preemption stretches some
        # acquisitions by additional slice-scale stalls.
        assert max(waits) > 75 * MS
