"""Schema tests for the Chrome trace-event exporter."""

from repro.metrics import TimelineSample
from repro.obs.exporters import (
    FLOW_NAME,
    PID_CLUSTER_BASE,
    PID_GUEST,
    PID_HYPERVISOR,
    PID_SA,
    chrome_trace_events,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanRecorder
from repro.simkernel.units import MS


class _Pcpu:
    def __init__(self, index):
        self.index = index


class _Vcpu:
    def __init__(self, name):
        self.name = name


class _Vm:
    def __init__(self, vcpu_names):
        self.vcpus = [_Vcpu(n) for n in vcpu_names]


class _Machine:
    def __init__(self, n_pcpus, vcpu_names):
        self.pcpus = [_Pcpu(i) for i in range(n_pcpus)]
        self.vms = [_Vm(vcpu_names)]


class _Timeline:
    def __init__(self, samples):
        self.samples = samples


def sample(t, states, tasks, homes):
    return TimelineSample(t, states, tasks, homes)


def small_timeline():
    """Two vCPUs trading one pCPU over three samples."""
    machine = _Machine(1, ['a.v0', 'b.v0'])
    samples = [
        sample(0, {'a.v0': 'running', 'b.v0': 'runnable'},
               {'a.v0': 'hog', 'b.v0': None}, {'a.v0': 0, 'b.v0': 0}),
        sample(1 * MS, {'a.v0': 'runnable', 'b.v0': 'running'},
               {'a.v0': None, 'b.v0': 'hog2'}, {'a.v0': 0, 'b.v0': 0}),
        sample(2 * MS, {'a.v0': 'runnable', 'b.v0': 'running'},
               {'a.v0': None, 'b.v0': 'hog2'}, {'a.v0': 0, 'b.v0': 0}),
    ]
    return machine, _Timeline(samples)


def sa_spans():
    r = SpanRecorder(enabled=True)
    offer = r.begin(1000, 'sa.offer', 'fg.v0', vm='fg')
    r.begin(1000, 'sa.virq', 'fg.v0')
    r.end_phase(3000, 'sa.virq', 'fg.v0')
    r.begin(3000, 'sa.upcall', 'fg.v0')
    r.instant(24_000, 'sa.deschedule', 'fg.v0', op='yield')
    r.end_phase(24_000, 'sa.upcall', 'fg.v0')
    r.end(24_000, offer, outcome='acked')
    return r


class TestSchema:
    def test_metadata_only_document_valid(self):
        events = chrome_trace_events()
        assert events
        assert validate_chrome_trace(events) == []
        assert all(e['ph'] == 'M' for e in events)

    def test_timeline_tracks(self):
        machine, timeline = small_timeline()
        events = chrome_trace_events(machine=machine, timeline=timeline)
        assert validate_chrome_trace(events) == []
        hv = [e for e in events if e['pid'] == PID_HYPERVISOR
              and e['ph'] == 'X']
        assert [e['name'] for e in hv] == ['a.v0', 'b.v0']
        guest = [e for e in events if e['pid'] == PID_GUEST
                 and e['ph'] == 'X']
        assert {e['name'] for e in guest} == {'hog', 'hog2'}

    def test_span_tracks_nest(self):
        events = chrome_trace_events(spans=sa_spans())
        assert validate_chrome_trace(events) == []
        sa = [e for e in events if e['pid'] == PID_SA and e['ph'] != 'M']
        # Balanced pairs for offer/virq/upcall, one X for the instant.
        assert sum(1 for e in sa if e['ph'] == 'B') == 3
        assert sum(1 for e in sa if e['ph'] == 'E') == 3
        assert sum(1 for e in sa if e['ph'] == 'X') == 1
        # ts is microseconds.
        begin_offer = next(e for e in sa if e['ph'] == 'B'
                           and e['name'] == 'sa.offer')
        assert begin_offer['ts'] == 1.0
        # Begin-time and end-time details merge into one args dict.
        assert begin_offer['args'] == {'vm': 'fg', 'outcome': 'acked'}

    def test_required_keys_everywhere(self):
        machine, timeline = small_timeline()
        events = chrome_trace_events(machine=machine, timeline=timeline,
                                     spans=sa_spans())
        for event in events:
            for key in ('ph', 'ts', 'pid', 'tid'):
                assert key in event

    def test_monotone_ts_per_track(self):
        events = chrome_trace_events(spans=sa_spans())
        last = {}
        for event in events:
            if event['ph'] == 'M':
                continue
            track = (event['pid'], event['tid'])
            assert event['ts'] >= last.get(track, 0.0)
            last[track] = event['ts']


class TestValidator:
    def test_flags_missing_keys(self):
        problems = validate_chrome_trace([{'ph': 'B', 'ts': 0.0}])
        assert any('missing' in p for p in problems)

    def test_flags_unbalanced_begin(self):
        events = [{'name': 'x', 'ph': 'B', 'ts': 0.0, 'pid': 1, 'tid': 0}]
        problems = validate_chrome_trace(events)
        assert any('unbalanced' in p for p in problems)

    def test_flags_interleaved_end(self):
        events = [
            {'name': 'a', 'ph': 'B', 'ts': 0.0, 'pid': 1, 'tid': 0},
            {'name': 'b', 'ph': 'B', 'ts': 1.0, 'pid': 1, 'tid': 0},
            {'name': 'a', 'ph': 'E', 'ts': 2.0, 'pid': 1, 'tid': 0},
            {'name': 'b', 'ph': 'E', 'ts': 3.0, 'pid': 1, 'tid': 0},
        ]
        problems = validate_chrome_trace(events)
        assert any('interleaves' in p for p in problems)

    def test_flags_backwards_ts(self):
        events = [
            {'name': 'a', 'ph': 'X', 'ts': 5.0, 'dur': 1.0,
             'pid': 1, 'tid': 0},
            {'name': 'b', 'ph': 'X', 'ts': 2.0, 'dur': 1.0,
             'pid': 1, 'tid': 0},
        ]
        problems = validate_chrome_trace(events)
        assert any('backwards' in p for p in problems)

    def test_flags_x_without_dur(self):
        events = [{'name': 'a', 'ph': 'X', 'ts': 0.0, 'pid': 1, 'tid': 0}]
        problems = validate_chrome_trace(events)
        assert any('without dur' in p for p in problems)


def cluster_spans():
    """One live migration host0 -> host1 (flow-stitched) plus health
    instants on the source host."""
    r = SpanRecorder(enabled=True)
    r.instant(5_000, 'host.crash', 'cluster/host0/health', orphans=2)
    mig = r.begin(10_000, 'cluster.migrate', 'cluster/host0/mig:vm0',
                  flow='start', flow_id=1, vm='vm0', target='host1')
    r.end(40_000, mig, outcome='done')
    r.instant(40_000, 'cluster.migrate_in', 'cluster/host1/mig:vm0',
              flow='end', flow_id=1, source='host0')
    r.instant(60_000, 'host.recover', 'cluster/host0/health')
    return r


class TestClusterTracks:
    def test_cluster_trace_validates(self):
        events = chrome_trace_events(spans=cluster_spans())
        assert validate_chrome_trace(events) == []

    def test_per_host_process_groups(self):
        events = chrome_trace_events(spans=cluster_spans())
        names = {e['pid']: e['args']['name'] for e in events
                 if e['ph'] == 'M' and e['name'] == 'process_name'
                 and e['pid'] >= PID_CLUSTER_BASE}
        assert names == {PID_CLUSTER_BASE: 'host:host0',
                         PID_CLUSTER_BASE + 1: 'host:host1'}
        threads = {(e['pid'], e['args']['name']) for e in events
                   if e['ph'] == 'M' and e['name'] == 'thread_name'
                   and e['pid'] >= PID_CLUSTER_BASE}
        assert threads == {(PID_CLUSTER_BASE, 'health'),
                           (PID_CLUSTER_BASE, 'mig:vm0'),
                           (PID_CLUSTER_BASE + 1, 'mig:vm0')}

    def test_migration_renders_as_complete_slice(self):
        events = chrome_trace_events(spans=cluster_spans())
        mig = [e for e in events if e.get('name') == 'cluster.migrate']
        assert len(mig) == 1
        assert mig[0]['ph'] == 'X'
        assert mig[0]['ts'] == 10.0 and mig[0]['dur'] == 30.0
        assert mig[0]['args']['vm'] == 'vm0'
        # Cluster spans never use B/E — overlapping migrations on one
        # host would interleave.
        assert not any(e['ph'] in ('B', 'E') for e in events
                       if e.get('pid', 0) >= PID_CLUSTER_BASE)

    def test_flow_events_stitch_source_to_target(self):
        events = chrome_trace_events(spans=cluster_spans())
        start = next(e for e in events if e['ph'] == 's')
        end = next(e for e in events if e['ph'] == 'f')
        assert start['name'] == end['name'] == FLOW_NAME
        assert start['id'] == end['id'] == 1
        assert start['pid'] == PID_CLUSTER_BASE            # host0
        assert end['pid'] == PID_CLUSTER_BASE + 1          # host1
        assert end['bp'] == 'e'
        # The flow-end's carrier is a slice (zero-duration X), not an
        # instant, so the viewer has something to bind the arrow to.
        carrier = [e for e in events
                   if e.get('name') == 'cluster.migrate_in']
        assert carrier and carrier[0]['ph'] == 'X'

    def test_flowless_zero_duration_becomes_instant(self):
        events = chrome_trace_events(spans=cluster_spans())
        instants = [e for e in events if e['ph'] == 'i']
        assert {e['name'] for e in instants} == {'host.crash',
                                                'host.recover'}
        assert all(e['s'] == 't' for e in instants)

    def test_sa_and_cluster_tracks_coexist(self):
        spans = sa_spans()
        spans.instant(5_000, 'host.crash', 'cluster/host0/health')
        events = chrome_trace_events(spans=spans)
        assert validate_chrome_trace(events) == []
        assert any(e['pid'] == PID_SA for e in events if e['ph'] != 'M')
        assert any(e['pid'] == PID_CLUSTER_BASE for e in events
                   if e['ph'] != 'M')


class TestFlowValidation:
    def test_flow_event_requires_id(self):
        events = [{'name': 'flow', 'ph': 's', 'ts': 0.0,
                   'pid': 1, 'tid': 0}]
        problems = validate_chrome_trace(events)
        assert any('id' in p for p in problems)

    def test_flow_end_without_start_flagged(self):
        events = [{'name': 'flow', 'ph': 'f', 'bp': 'e', 'ts': 0.0,
                   'pid': 1, 'tid': 0, 'id': 7}]
        problems = validate_chrome_trace(events)
        assert any('start' in p for p in problems)

    def test_flow_end_may_precede_start_in_file_order(self):
        # Hosts are grouped in file order, so a migration from a
        # later-sorted host emits its 'f' before the 's'.
        events = [
            {'name': 'flow', 'ph': 'f', 'bp': 'e', 'ts': 5.0,
             'pid': 10, 'tid': 0, 'id': 7},
            {'name': 'flow', 'ph': 's', 'ts': 1.0,
             'pid': 11, 'tid': 0, 'id': 7},
        ]
        assert validate_chrome_trace(events) == []


class TestRoundTrip:
    def test_write_flushes_open_spans(self, tmp_path):
        machine, timeline = small_timeline()
        spans = sa_spans()
        spans.begin(30_000, 'sa.offer', 'fg.v1')       # still in flight
        path = tmp_path / 'trace.json'
        count = write_chrome_trace(str(path), machine=machine,
                                   timeline=timeline, spans=spans,
                                   now_ns=40_000)
        events = load_chrome_trace(str(path))
        assert len(events) == count
        assert validate_chrome_trace(events) == []
        truncated = [e for e in events
                     if e.get('args', {}).get('truncated')]
        assert len(truncated) == 1
