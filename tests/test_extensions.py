"""Tests for the extension modules: pull-based IRS (Section 6 future
work), delay-preemption (Uhlig et al.), and migrator policy ablations."""

import pytest

from repro.core import IRSConfig, install_irs, install_pull_irs
from repro.hypervisor.delayed_preempt import install_delayed_preemption
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC, US
from repro.workloads import Acquire, Compute, Mutex, Release, cpu_hog

from conftest import build_machine, build_vm


def contended_pair(sim, config=None):
    """2 pCPUs; fg VM with 2 vCPUs; a hog sharing pCPU 0."""
    machine = build_machine(sim, 2)
    fg_vm, fg_kernel = build_vm(sim, machine, 'fg', n_vcpus=2,
                                pinning=[0, 1])
    __, hog_kernel = build_vm(sim, machine, 'hog', pinning=[0])
    hog_kernel.spawn('hog', cpu_hog(10 * MS))
    machine.start()
    return machine, fg_vm, fg_kernel


class TestPullIrs:
    def test_idle_vcpu_steals_frozen_task(self, sim):
        machine, vm, kernel = contended_pair(sim)
        migrators = install_pull_irs(machine, [kernel])
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        # gcpu1 idles; when vCPU0 gets preempted, gcpu1's idle path
        # should pull the frozen worker over.
        sim.run_until(500 * MS)
        assert migrators[0].pulls > 0
        assert worker.cpu_ns > 300 * MS   # near-full speed despite hog

    def test_no_pull_when_siblings_running(self, sim):
        machine, vm, kernel = contended_pair(sim)
        migrators = install_pull_irs(machine, [kernel])
        kernel.spawn('w0', cpu_hog(10 * MS), gcpu_index=0)
        kernel.spawn('w1', cpu_hog(10 * MS), gcpu_index=1)
        sim.run_until(300 * MS)
        # gcpu1 never idles, so the pull path never triggers.
        assert migrators[0].pulls == 0

    def test_pulled_task_tagged(self, sim):
        machine, vm, kernel = contended_pair(sim)
        install_pull_irs(machine, [kernel])
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        sim.run_until(500 * MS)
        assert worker.irs_tag

    def test_tagging_can_be_disabled(self, sim):
        machine, vm, kernel = contended_pair(sim)
        install_pull_irs(machine, [kernel], tag_tasks=False)
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        sim.run_until(500 * MS)
        assert worker.migrations > 0
        assert not worker.irs_tag

    def test_composes_with_push_irs(self, sim):
        machine, vm, kernel = contended_pair(sim)
        install_irs(machine, [kernel])
        install_pull_irs(machine, [kernel])
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        sim.run_until(500 * MS)
        assert worker.cpu_ns > 300 * MS


class TestDelayedPreemption:
    def _locked_scenario(self, sim, hold_ns, window_ns=100 * US,
                         max_extension_ns=1 * MS):
        machine, vm, kernel = contended_pair(sim)
        manager = install_delayed_preemption(
            machine, [kernel], window_ns=window_ns,
            max_extension_ns=max_extension_ns)
        lock = Mutex()

        def locker():
            while True:
                yield Acquire(lock)
                yield Compute(hold_ns)
                yield Release(lock)
                yield Compute(hold_ns // 4)
        kernel.spawn('locker', locker(), gcpu_index=0)
        machine.start()
        return machine, manager

    def test_deferrals_fire_for_long_holders(self, sim):
        machine, manager = self._locked_scenario(sim, hold_ns=20 * MS)
        sim.run_until(2 * SEC)
        assert manager.deferrals > 0

    def test_budget_bounds_extension(self, sim):
        machine, manager = self._locked_scenario(
            sim, hold_ns=50 * MS, max_extension_ns=300 * US)
        sim.run_until(2 * SEC)
        # Long sections exhaust the budget; the preemption proceeds.
        assert manager.budget_exhaustions > 0
        # Fairness is preserved within the budget.
        hog_run = machine.vms[1].total_runstate(sim.now)[0]
        assert hog_run > 700 * MS

    def test_release_triggers_parked_preemption(self, sim):
        machine, manager = self._locked_scenario(
            sim, hold_ns=5 * MS, max_extension_ns=30 * MS,
            window_ns=10 * MS)
        sim.run_until(2 * SEC)
        assert manager.deferrals > 0
        # The machine stays healthy (both VMs progressed).
        for vm in machine.vms:
            assert vm.total_runstate(sim.now)[0] > 300 * MS

    def test_no_locks_no_deferrals(self, sim):
        machine, vm, kernel = contended_pair(sim)
        manager = install_delayed_preemption(machine, [kernel])
        kernel.spawn('plain', cpu_hog(10 * MS), gcpu_index=0)
        sim.run_until(500 * MS)
        assert manager.deferrals == 0

    def test_strategy_name_resolves(self):
        from repro.experiments import run_parallel, InterferenceSpec
        result = run_parallel('x264', 'delay_preempt',
                              InterferenceSpec('hogs', 1), scale=0.1)
        assert result.completed


class TestMigratorPolicies:
    @pytest.mark.parametrize('policy', IRSConfig.MIGRATOR_POLICIES)
    def test_every_policy_functions(self, policy):
        from repro.experiments import run_parallel, InterferenceSpec
        config = IRSConfig(migrator_policy=policy)
        result = run_parallel('streamcluster', 'irs',
                              InterferenceSpec('hogs', 1), scale=0.15,
                              irs_config=config)
        assert result.completed
        counters = result.scenario.sim.trace.counters
        assert counters['irs.migrations'] > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            IRSConfig(migrator_policy='teleport')

    def test_idle_first_short_circuits(self, sim):
        """With an idle sibling, idle_first picks it regardless of the
        load ordering of running vCPUs."""
        machine, vm, kernel = contended_pair(sim)
        install_irs(machine, [kernel])
        worker = kernel.spawn('w', cpu_hog(10 * MS), gcpu_index=0)
        sim.run_until(300 * MS)
        # The worker ends up on the idle gcpu1 after the first SA.
        assert worker.gcpu is kernel.gcpus[1]
