"""Cluster observability plane: per-host metric scope isolation, the
always-on health event log and its byte-deterministic JSONL export, the
cluster-health residency reconstruction, flow-stitched Perfetto traces,
and the exposition snapshot of a cluster run."""

import json

from repro.cluster import Cluster, HostSpec, VmRequest, run_consolidation
from repro.experiments.harness import ObservabilityConfig
from repro.obs.eventlog import (
    EVENT_HOST_CRASH,
    EVENT_MIGRATION_START,
    EVENT_ORPHANED,
    EVENT_PLACE,
    EVENT_RECOVERED,
    read_jsonl,
    residency_timeline,
    vm_names,
)
from repro.obs.exporters import (
    PID_CLUSTER_BASE,
    load_chrome_trace,
    validate_chrome_trace,
)
from repro.simkernel import Simulator
from repro.simkernel.units import MS

CHAOS_KWARGS = dict(strategy='irs', placement='first_fit', seed=0,
                    faults='cluster-chaos')


def _chaos_run(**overrides):
    kwargs = dict(CHAOS_KWARGS)
    kwargs.update(overrides)
    return run_consolidation(**kwargs)


class TestScopedHostMetrics:
    """Satellite: each host publishes into its own counter scope, so
    per-host monitors cannot cross-contaminate."""

    def test_hosts_get_distinct_scopes(self):
        sim = Simulator(seed=0)
        cluster = Cluster(sim, [HostSpec('h0', n_pcpus=2),
                                HostSpec('h1', n_pcpus=2)])
        h0, h1 = cluster.hosts
        h0.metrics.counter('placements').inc(3)
        registry = sim.trace.metrics
        assert registry.get('host.h0.placements').value == 3
        # The other host's scope is untouched — not even created.
        assert registry.get('host.h1.placements') is None
        h1.metrics.counter('placements').inc()
        assert registry.get('host.h0.placements').value == 3
        assert registry.get('host.h1.placements').value == 1

    def test_scope_labels_carry_the_host_name(self):
        sim = Simulator(seed=0)
        cluster = Cluster(sim, [HostSpec('h0', n_pcpus=2)])
        cluster.hosts[0].metrics.counter('placements').inc()
        family, labels = sim.trace.metrics.metric_meta(
            'host.h0.placements')
        assert family == 'placements'
        assert labels == {'host': 'h0'}

    def test_per_host_placements_sum_to_cluster_total(self):
        sim = Simulator(seed=0)
        cluster = Cluster(sim, [HostSpec('h0', n_pcpus=4),
                                HostSpec('h1', n_pcpus=4)])
        cluster.start()
        for i in range(3):
            sim.at(10 * MS + i * 10 * MS, cluster.submit,
                   VmRequest('vm%d' % i, n_vcpus=2, workload='hogs'))
        sim.run_until(200 * MS)
        registry = sim.trace.metrics
        total = sum(registry.get('host.%s.placements' % host.name).value
                    for host in cluster.hosts
                    if registry.get('host.%s.placements' % host.name))
        assert total == 3

    def test_monitor_windows_per_host(self):
        result = _chaos_run()
        # The scoped monitor gauges are per-run state, but the event
        # log records every control-plane decision with its host; the
        # same chaos run must involve more than one host.
        hosts = {e['host'] for e in result.events
                 if e['kind'] == EVENT_PLACE}
        assert len(hosts) > 1


class TestHealthEventLog:
    def test_event_log_always_on(self):
        result = _chaos_run()
        assert result.events, 'no events recorded without observe='
        assert result.event_counts.get(EVENT_PLACE, 0) > 0
        assert result.event_counts.get(EVENT_HOST_CRASH, 0) > 0

    def test_place_events_carry_policy_scores(self):
        result = _chaos_run()
        place = next(e for e in result.events
                     if e['kind'] == EVENT_PLACE)
        assert place['policy'] == 'first_fit'
        assert isinstance(place['scores'], dict)
        assert place['host'] in place['scores']

    def test_migration_events_carry_flow_ids(self):
        result = _chaos_run()
        starts = [e for e in result.events
                  if e['kind'] == EVENT_MIGRATION_START]
        assert starts
        flows = [e['flow'] for e in starts]
        assert all(isinstance(f, int) for f in flows)
        assert len(set(flows)) == len(flows), 'flow ids must be unique'

    def test_jsonl_byte_identical_across_same_seed_runs(self, tmp_path):
        """Satellite: the chaos determinism gate for the event log."""
        paths = []
        for i in range(2):
            path = tmp_path / ('events%d.jsonl' % i)
            _chaos_run(observe=ObservabilityConfig(
                spans=False, events_out=str(path)))
            paths.append(path)
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        assert first, 'export produced an empty log'

    def test_summary_is_deterministic(self):
        one = _chaos_run().summary()
        two = _chaos_run().summary()
        assert (json.dumps(one, sort_keys=True)
                == json.dumps(two, sort_keys=True))

    def test_drop_counters_surface_in_summary(self):
        summary = _chaos_run().summary()
        assert 'span_drops' in summary
        assert 'trace_drops' in summary


class TestResidencyReconstruction:
    """Acceptance: a crashed VM's full timeline (place -> crash ->
    orphan -> re-place) reconstructed from the JSONL file alone."""

    def test_crashed_vm_timeline_from_jsonl_alone(self, tmp_path):
        path = tmp_path / 'events.jsonl'
        result = _chaos_run(observe=ObservabilityConfig(
            spans=False, events_out=str(path)))
        assert result.event_counts.get(EVENT_HOST_CRASH, 0) > 0
        events = read_jsonl(str(path))

        recovered_vms = [e['vm'] for e in events
                         if e['kind'] == EVENT_RECOVERED]
        assert recovered_vms, 'chaos run recovered no VM'
        vm = recovered_vms[0]
        steps = [s['step'] for s in residency_timeline(events, vm)]
        assert steps[0] == 'place'
        assert 'orphaned' in steps
        assert 'recovered' in steps
        assert steps.index('orphaned') < steps.index('recovered')
        # Every step names a host except the host-less markers.
        for step in residency_timeline(events, vm):
            if step['step'] in ('place', 'orphaned', 'recovered',
                                'migrate_out', 'migrate_in', 'rollback'):
                assert step['host'] is not None

    def test_every_vm_is_accounted_for(self):
        result = _chaos_run()
        submitted = {e['vm'] for e in result.events
                     if e['kind'] in (EVENT_PLACE, 'vm.reject')}
        assert submitted == set(vm_names(result.events))

    def test_orphan_recovery_shares_flow_with_events(self):
        result = _chaos_run()
        orphaned = [e for e in result.events
                    if e['kind'] == EVENT_ORPHANED
                    and e.get('flow') is not None]
        recovered = [e for e in result.events
                     if e['kind'] == EVENT_RECOVERED
                     and e.get('flow') is not None]
        assert orphaned
        # Every flow-carrying recovery closes a flow an orphan opened.
        opened = {e['flow'] for e in orphaned}
        for event in recovered:
            assert event['flow'] in opened


class TestClusterTraceExport:
    def test_chaos_trace_validates_with_flows(self, tmp_path):
        path = tmp_path / 'trace.json'
        _chaos_run(observe=ObservabilityConfig(
            trace_out=str(path), timeline=False))
        events = load_chrome_trace(str(path))
        assert validate_chrome_trace(events) == []
        # Per-host process groups.
        names = {e['args']['name'] for e in events
                 if e['ph'] == 'M' and e['name'] == 'process_name'
                 and e['pid'] >= PID_CLUSTER_BASE}
        assert {'host:host0', 'host:host1'} <= names
        # At least one migration stitched source -> target.
        starts = [e for e in events if e['ph'] == 's']
        ends = [e for e in events if e['ph'] == 'f']
        assert starts and ends
        assert {e['id'] for e in ends} <= {e['id'] for e in starts}
        # Flow ends bind to the enclosing slice's end.
        assert all(e['bp'] == 'e' for e in ends)

    def test_metrics_exposition_export(self, tmp_path):
        path = tmp_path / 'metrics.prom'
        _chaos_run(observe=ObservabilityConfig(
            spans=False, metrics_out=str(path)))
        text = path.read_text()
        assert '# TYPE repro_placements_total counter' in text
        assert 'repro_placements_total{host="host0"}' in text

    def test_spans_do_not_perturb_the_summary(self):
        base = _chaos_run()
        observed = _chaos_run(observe=ObservabilityConfig(timeline=False))
        assert (json.dumps(base.summary(), sort_keys=True)
                == json.dumps(observed.summary(), sort_keys=True))
