"""Tests for the metrics layer."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    LatencyRecorder,
    RunMetrics,
    improvement_percent,
    speedup,
    utilization_vs_fair_share,
    weighted_speedup,
)
from repro.simkernel.units import MS, SEC
from repro.workloads import Compute

from conftest import build_machine, build_vm


class TestLatencyRecorder:
    def test_empty_recorder(self):
        rec = LatencyRecorder()
        assert rec.count == 0
        assert rec.mean() == 0.0
        assert rec.p99() == 0.0
        assert rec.max() == 0.0

    def test_single_sample(self):
        rec = LatencyRecorder()
        rec.record(500)
        assert rec.mean() == 500
        assert rec.percentile(0) == 500
        assert rec.percentile(100) == 500

    def test_percentile_interpolation(self):
        rec = LatencyRecorder()
        for v in (0, 100):
            rec.record(v)
        assert rec.percentile(50) == 50

    def test_sorted_view_invalidated_by_record(self):
        rec = LatencyRecorder()
        rec.record(100)
        assert rec.p99() == 100
        rec.record(50)                    # after a cached query
        assert rec.percentile(0) == 50
        assert rec.max() == 100

    def test_sorted_view_invalidated_by_extend_and_reset(self):
        rec = LatencyRecorder()
        rec.extend([30, 10, 20])
        assert rec.p50() == 20
        rec.extend([5])
        assert rec.percentile(0) == 5
        rec.reset()
        assert rec.count == 0
        assert rec.p99() == 0.0

    def test_cached_percentiles_match_fresh_recorder(self):
        cached = LatencyRecorder()
        for v in (9, 3, 7, 1, 5):
            cached.record(v)
            cached.p50()                  # query between every mutation
        fresh = LatencyRecorder()
        fresh.extend([9, 3, 7, 1, 5])
        for p in (0, 25, 50, 75, 99, 100):
            assert cached.percentile(p) == fresh.percentile(p)
        assert cached.summary() == fresh.summary()

    def test_p50_of_uniform(self):
        rec = LatencyRecorder()
        for v in range(101):
            rec.record(v)
        assert rec.p50() == 50
        assert rec.p99() == 99

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_bad_percentile_rejected(self):
        rec = LatencyRecorder()
        rec.record(1)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record(10)
        summary = rec.summary()
        assert set(summary) == {'count', 'mean', 'p50', 'p99', 'max'}

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1))
    def test_percentiles_bounded_by_extremes(self, values):
        rec = LatencyRecorder()
        for v in values:
            rec.record(v)
        for p in (0, 25, 50, 75, 99, 100):
            assert min(values) <= rec.percentile(p) <= max(values)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=2))
    def test_percentiles_monotone(self, values):
        rec = LatencyRecorder()
        for v in values:
            rec.record(v)
        ps = [rec.percentile(p) for p in (10, 30, 50, 70, 90)]
        assert ps == sorted(ps)


class TestFairnessMetrics:
    def test_improvement_positive_when_faster(self):
        assert improvement_percent(200, 100) == 100.0

    def test_improvement_negative_when_slower(self):
        assert improvement_percent(100, 200) == -50.0

    def test_improvement_zero_at_parity(self):
        assert improvement_percent(100, 100) == 0.0

    def test_speedup_time_metric(self):
        assert speedup(200, 100) == 2.0

    def test_speedup_rate_metric(self):
        assert speedup(100, 200, higher_is_better=True) == 2.0

    def test_weighted_speedup(self):
        assert weighted_speedup(1.4, 1.0) == pytest.approx(120.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            improvement_percent(100, 0)
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestUtilizationAndRunMetrics:
    def _contended(self, sim):
        machine = build_machine(sim, 1)
        vm_a, k_a = build_vm(sim, machine, 'a', pinning=[0])
        vm_b, k_b = build_vm(sim, machine, 'b', pinning=[0])

        def hog():
            while True:
                yield Compute(10 * MS)
        k_a.spawn('ha', hog())
        k_b.spawn('hb', hog())
        machine.start()
        sim.run_until(1 * SEC)
        return machine, vm_a, [k_a, k_b]

    def test_fair_share_utilization_near_one(self, sim):
        machine, vm_a, kernels = self._contended(sim)
        util = utilization_vs_fair_share(vm_a, machine, 1 * SEC)
        assert 0.9 < util < 1.1

    def test_run_metrics_snapshot(self, sim):
        machine, vm_a, kernels = self._contended(sim)
        metrics = RunMetrics(machine, kernels, 1 * SEC)
        assert set(metrics.vms) == {'a', 'b'}
        assert metrics.machine_utilization() > 0.99
        assert 0.4 < metrics.vm_utilization('a') < 0.6
        assert metrics.tasks['ha'].cpu_ns > 400 * MS

    def test_task_turnaround(self, sim):
        machine = build_machine(sim, 1)
        vm, kernel = build_vm(sim, machine, 'vm', pinning=[0])
        kernel.spawn('t', iter([Compute(5 * MS)]))
        machine.start()
        sim.run_until(1 * SEC)
        metrics = RunMetrics(machine, [kernel], 1 * SEC)
        assert metrics.tasks['t'].turnaround_ns == 5 * MS

    def test_elapsed_must_be_positive(self, sim):
        machine = build_machine(sim, 1)
        vm, kernel = build_vm(sim, machine, 'vm', pinning=[0])
        with pytest.raises(ValueError):
            utilization_vs_fair_share(vm, machine, 0)
