"""Unit tests for deterministic named random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.simkernel.rng import RngRegistry


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngRegistry(seed=5)
        b = RngRegistry(seed=5)
        assert ([a.stream('x').random() for __ in range(10)] ==
                [b.stream('x').random() for __ in range(10)])

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1)
        b = RngRegistry(seed=2)
        assert (a.stream('x').random() != b.stream('x').random())

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        a = RngRegistry(seed=9)
        b = RngRegistry(seed=9)
        # Interleave an extra stream in `a` only.
        a.stream('noise').random()
        assert a.stream('x').random() == b.stream('x').random()

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=0)
        assert reg.stream('s') is reg.stream('s')


class TestUniform:
    def test_uniform_in_range(self):
        reg = RngRegistry(seed=3)
        for __ in range(100):
            v = reg.uniform_ns('u', 10, 20)
            assert 10 <= v <= 20

    def test_uniform_degenerate_range(self):
        reg = RngRegistry(seed=3)
        assert reg.uniform_ns('u', 7, 7) == 7

    def test_uniform_empty_range_raises(self):
        reg = RngRegistry(seed=3)
        with pytest.raises(ValueError):
            reg.uniform_ns('u', 20, 10)


class TestExponential:
    def test_exponential_positive(self):
        reg = RngRegistry(seed=4)
        for __ in range(100):
            assert reg.exponential_ns('e', 1000) >= 1

    def test_exponential_cap(self):
        reg = RngRegistry(seed=4)
        for __ in range(200):
            assert reg.exponential_ns('e', 1000, cap_ns=1500) <= 1500

    def test_exponential_mean_roughly_right(self):
        reg = RngRegistry(seed=4)
        draws = [reg.exponential_ns('e', 10_000) for __ in range(3000)]
        mean = sum(draws) / len(draws)
        assert 8_000 < mean < 12_000

    def test_exponential_bad_mean_raises(self):
        reg = RngRegistry(seed=4)
        with pytest.raises(ValueError):
            reg.exponential_ns('e', 0)


class TestJitter:
    def test_jitter_within_fraction(self):
        reg = RngRegistry(seed=5)
        for __ in range(100):
            v = reg.jittered_ns('j', 1000, 0.1)
            assert 900 <= v <= 1100

    def test_jitter_zero_spread_returns_base(self):
        reg = RngRegistry(seed=5)
        assert reg.jittered_ns('j', 5, 0.1) == 5

    def test_jitter_bad_base_raises(self):
        reg = RngRegistry(seed=5)
        with pytest.raises(ValueError):
            reg.jittered_ns('j', 0)

    @given(st.integers(min_value=100, max_value=10**9),
           st.floats(min_value=0.0, max_value=0.5))
    def test_jitter_bounds_property(self, base, fraction):
        reg = RngRegistry(seed=11)
        v = reg.jittered_ns('p', base, fraction)
        spread = int(base * fraction)
        assert base - spread <= v <= base + spread
