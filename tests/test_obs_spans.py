"""Unit tests for the span recorder (nesting, ring bound, histograms)."""

import pytest

from repro.obs.histograms import MetricsRegistry
from repro.obs.spans import SpanRecorder


def recorder(**kwargs):
    kwargs.setdefault('enabled', True)
    return SpanRecorder(**kwargs)


class TestDisabled:
    def test_all_entry_points_are_noops(self):
        r = SpanRecorder(enabled=False)
        assert r.begin(0, 'p', 't') is None
        assert r.end_phase(1, 'p', 't') is None
        assert r.instant(1, 'p', 't') is None
        r.end(1, None)
        assert r.spans == []

    def test_end_of_disabled_begin_handle_is_noop(self):
        r = recorder()
        r.enabled = False
        handle = r.begin(0, 'p', 't')
        r.enabled = True
        r.end(5, handle)
        assert r.spans == []


class TestNesting:
    def test_begin_end(self):
        r = recorder()
        span = r.begin(10, 'sa.offer', 'fg.v0', vm='fg')
        r.end(35, span, outcome='acked')
        done = r.spans
        assert len(done) == 1
        assert done[0].duration_ns == 25
        assert done[0].depth == 0
        assert done[0].detail == {'vm': 'fg', 'outcome': 'acked'}

    def test_children_get_depth(self):
        r = recorder()
        outer = r.begin(0, 'outer', 't')
        inner = r.begin(1, 'inner', 't')
        assert inner.depth == 1
        r.end(2, inner)
        r.end(3, outer)
        assert [s.phase for s in r.spans] == ['inner', 'outer']

    def test_parent_close_closes_open_children(self):
        r = recorder()
        outer = r.begin(0, 'outer', 't')
        r.begin(1, 'child', 't')
        r.end(9, outer)
        child = r.spans_for(phase='child')[0]
        assert child.end_ns == 9
        assert r.open_spans() == []

    def test_double_end_is_noop(self):
        r = recorder()
        span = r.begin(0, 'p', 't')
        r.end(1, span)
        r.end(2, span)
        assert len(r.spans) == 1

    def test_end_phase_matches_innermost(self):
        r = recorder()
        r.begin(0, 'p', 't', which='outer')
        r.begin(1, 'p', 't', which='inner')
        closed = r.end_phase(2, 'p', 't')
        assert closed.detail['which'] == 'inner'

    def test_end_phase_no_match(self):
        r = recorder()
        r.begin(0, 'a', 't')
        assert r.end_phase(1, 'b', 't') is None
        assert r.end_phase(1, 'a', 'other-track') is None

    def test_tracks_are_independent(self):
        r = recorder()
        r.begin(0, 'p', 'v0')
        r.begin(1, 'p', 'v1')
        r.end_phase(2, 'p', 'v0')
        assert len(r.open_spans()) == 1
        assert r.open_spans()[0].track == 'v1'

    def test_instant_is_zero_duration(self):
        r = recorder()
        span = r.instant(5, 'sa.preempt_fire', 'v0', block=True)
        assert span.duration_ns == 0
        assert r.spans_for(phase='sa.preempt_fire')[0].detail == {
            'block': True}


class TestRingBound:
    def test_capacity_enforced(self):
        r = recorder(max_spans=3)
        for i in range(5):
            r.instant(i, 'p', 't')
        assert len(r.spans) == 3
        assert r.dropped == 2
        # Oldest first, newest retained.
        assert [s.begin_ns for s in r.spans] == [2, 3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_spans=0)

    def test_clear(self):
        r = recorder(max_spans=2)
        for i in range(4):
            r.instant(i, 'p', 't')
        r.begin(9, 'p', 't')
        r.clear()
        assert r.spans == []
        assert r.dropped == 0
        assert r.open_spans() == []


class TestHistogramFeed:
    def test_durations_feed_phase_histogram(self):
        reg = MetricsRegistry()
        r = recorder(registry=reg)
        span = r.begin(0, 'sa.offer', 't')
        r.end(23_000, span)
        assert reg.histogram('sa.offer').count == 1
        assert reg.histogram('sa.offer').max == 23_000

    def test_flush_open_truncates_without_recording(self):
        reg = MetricsRegistry()
        r = recorder(registry=reg)
        r.begin(0, 'sa.offer', 't')
        r.flush_open(1_000_000)
        spans = r.spans
        assert len(spans) == 1
        assert spans[0].detail == {'truncated': True}
        # A run-boundary truncation is not a protocol latency sample.
        metric = reg.get('sa.offer')
        assert metric is None or metric.count == 0
        assert r.open_spans() == []
