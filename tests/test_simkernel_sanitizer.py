"""Unit tests for the runtime scheduler sanitizer."""

import pytest

from repro.simkernel import (
    Sanitizer,
    SanitizerError,
    Simulator,
    install_sanitizer,
)
from repro.simkernel.units import MS, SEC

from conftest import build_machine, build_vm
from repro.workloads import Compute


def hog():
    while True:
        yield Compute(5 * MS)


def sanitized_machine(mode='raise', interval=1):
    sim = Simulator(seed=3)
    sanitizer = install_sanitizer(sim, interval=interval, mode=mode)
    machine = build_machine(sim, 2)
    __, kernel = build_vm(sim, machine, 'fg', n_vcpus=2, pinning=[0, 1])
    return sim, sanitizer, machine, kernel


class TestWiring:
    def test_machine_attaches_itself(self):
        sim, sanitizer, machine, __ = sanitized_machine()
        assert machine in sanitizer.machines

    def test_interval_and_mode_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Sanitizer(sim, interval=0)
        with pytest.raises(ValueError):
            Sanitizer(sim, mode='whatever')

    def test_uninstall_detaches_hook(self):
        sim, sanitizer, machine, kernel = sanitized_machine()
        machine.start()
        sim.run_until(10 * MS)
        checks = sanitizer.checks
        sanitizer.uninstall()
        assert sim.sanitizer is None
        sim.run_until(20 * MS)
        assert sanitizer.checks == checks

    def test_reinstall_replaces_and_keeps_machines(self):
        sim, first, machine, __ = sanitized_machine()
        second = install_sanitizer(sim, mode='collect')
        assert sim.sanitizer is second
        assert machine in second.machines

    def test_interval_spaces_checks(self):
        sim = Simulator()
        sanitizer = install_sanitizer(sim, interval=10)
        for t in range(25):
            sim.at(t, lambda: None)
        sim.run_until_idle()
        assert sanitizer.checks == 2


class TestCleanRuns:
    def test_busy_machine_reports_no_violations(self):
        sim, sanitizer, machine, kernel = sanitized_machine()
        kernel.spawn('a', hog(), gcpu_index=0)
        kernel.spawn('b', hog(), gcpu_index=0)
        kernel.spawn('c', hog(), gcpu_index=1)
        machine.start()
        sim.run_until(1 * SEC)
        assert sanitizer.checks > 0
        assert not sanitizer.violations
        sanitizer.assert_clean()
        assert 'no violations' in sanitizer.report()
        assert sim.trace.counters['sanitizer.checks'] == sanitizer.checks


class TestCatchesCorruption:
    def _double_dispatch(self, kernel):
        """The intentional bug: one task current on two guest CPUs."""
        task = kernel.gcpus[0].current
        kernel.gcpus[1].current = task
        return task

    def test_double_dispatch_raises_naming_the_event(self):
        sim, sanitizer, machine, kernel = sanitized_machine()
        kernel.spawn('a', hog(), gcpu_index=0)
        kernel.spawn('b', hog(), gcpu_index=1)
        machine.start()
        sim.run_until(10 * MS)
        task = self._double_dispatch(kernel)
        with pytest.raises(SanitizerError) as err:
            sim.run_until(sim.now + 10 * MS)
        violation = err.value.violation
        assert violation.invariant == 'one_task_per_vcpu'
        assert 'double dispatch' in violation.message
        assert task.name in violation.message
        # The report names the event whose processing exposed the bug.
        assert violation.event != '<initial state>'
        assert 'breaking event' in err.value.violation.format()

    def test_collect_mode_accumulates_report(self):
        sim, sanitizer, machine, kernel = sanitized_machine(mode='collect')
        kernel.spawn('a', hog(), gcpu_index=0)
        kernel.spawn('b', hog(), gcpu_index=1)
        machine.start()
        sim.run_until(10 * MS)
        self._double_dispatch(kernel)
        sim.run_until(sim.now + 1 * MS)
        assert sanitizer.violations
        assert 'violation(s)' in sanitizer.report()
        with pytest.raises(SanitizerError):
            sanitizer.assert_clean()

    def test_queued_and_running_task_detected(self):
        sim, sanitizer, machine, kernel = sanitized_machine(mode='collect')
        kernel.spawn('a', hog(), gcpu_index=0)
        kernel.spawn('b', hog(), gcpu_index=0)
        machine.start()
        sim.run_until(10 * MS)
        gcpu = kernel.gcpus[0]
        task = gcpu.current                    # corrupt: current re-queued
        gcpu.rq._entries.append((task.vruntime, task.tid, task))
        sanitizer.check_now()
        assert any(v.invariant in ('one_task_per_vcpu',
                                   'no_task_queued_and_running')
                   for v in sanitizer.violations)

    def test_clock_regression_detected(self):
        sim = Simulator()
        sanitizer = install_sanitizer(sim, mode='collect')
        sim.run_until(100)
        sanitizer._last_now = 500                # as if time had been there
        sanitizer.check_now()
        assert any(v.invariant == 'clock_monotonic'
                   for v in sanitizer.violations)
