"""Tests for the balance-scheduling baseline (paper ref [30])."""

from repro.experiments import InterferenceSpec, run_parallel
from repro.hypervisor import Machine, StrategyDescriptor, VM
from repro.metrics import TimelineRecorder
from repro.simkernel import Simulator
from repro.simkernel.units import MS, SEC
from repro.workloads import ParallelWorkload, cpu_hog, get_profile

from conftest import build_vm


class TestPlacementConstraint:
    def test_siblings_never_stack(self):
        """With balance scheduling the co-location fraction of sibling
        vCPUs drops to (near) zero even unpinned."""
        sim = Simulator(seed=1)
        machine = Machine(sim, 4)
        machine.attach_strategies(
            StrategyDescriptor(unpinned=True, balance_sched=True))
        vm, kernel = build_vm(sim, machine, 'fg', n_vcpus=4)
        __, hk = build_vm(sim, machine, 'bg', n_vcpus=4)
        for i in range(4):
            hk.spawn('hog%d' % i, cpu_hog(10 * MS), gcpu_index=i)
        machine.start()
        workload = ParallelWorkload(sim, kernel,
                                    get_profile('streamcluster'),
                                    scale=0.2).install()
        recorder = TimelineRecorder(sim, machine, period_ns=5 * MS).start()
        while not workload.is_done and sim.now < 30 * SEC:
            sim.run_until(sim.now + 100 * MS)
        assert workload.is_done
        assert recorder.colocation_fraction(vm) < 0.05

    def test_veto_counter_tracks_interventions(self):
        result = run_parallel('streamcluster', 'balance_sched',
                              InterferenceSpec('hogs', 4), scale=0.2,
                              pinned=False)
        assert result.completed


class TestPaperCritique:
    def test_balance_sched_fixes_stacking(self):
        """Unpinned: spreading siblings recovers the pinned baseline."""
        vanilla = run_parallel('streamcluster', 'vanilla',
                               InterferenceSpec('hogs', 4), scale=0.2,
                               pinned=False)
        balanced = run_parallel('streamcluster', 'balance_sched',
                                InterferenceSpec('hogs', 4), scale=0.2,
                                pinned=False)
        assert balanced.makespan_ns <= vanilla.makespan_ns

    def test_balance_sched_does_not_fix_lhp(self):
        """Section 2.1's critique: with siblings already spread (the
        pinned-equivalent placement), LHP persists — balance scheduling
        gains nothing like IRS's improvement."""
        vanilla = run_parallel('streamcluster', 'vanilla',
                               InterferenceSpec('hogs', 1), scale=0.3,
                               pinned=False)
        balanced = run_parallel('streamcluster', 'balance_sched',
                                InterferenceSpec('hogs', 1), scale=0.3,
                                pinned=False)
        irs = run_parallel('streamcluster', 'irs',
                           InterferenceSpec('hogs', 1), scale=0.3)
        bs_gain = vanilla.makespan_ns / balanced.makespan_ns - 1
        irs_gain = vanilla.makespan_ns / irs.makespan_ns - 1
        assert irs_gain > bs_gain + 0.15
