"""Unit tests for CFS policy, rt_avg tracking, and timers."""

import pytest

from repro.guestos.cfs import CfsConfig, CfsPolicy
from repro.guestos.loadavg import RtAvgTracker
from repro.guestos.runqueue import RunQueue
from repro.guestos.task import TASK_READY, Task
from repro.hypervisor.vcpu import (
    RUNSTATE_BLOCKED,
    RUNSTATE_RUNNABLE,
    RUNSTATE_RUNNING,
)
from repro.hypervisor.vm import VM
from repro.simkernel import Simulator
from repro.simkernel.units import MS, US


def make_task(vruntime=0, name='t'):
    task = Task(name, iter(()))
    task.vruntime = vruntime
    task.state = TASK_READY
    return task


class TestSlices:
    def test_slice_splits_latency(self):
        policy = CfsPolicy(CfsConfig(sched_latency_ns=6 * MS,
                                     min_granularity_ns=750 * US))
        assert policy.slice_ns(1) == 6 * MS
        assert policy.slice_ns(2) == 3 * MS
        assert policy.slice_ns(4) == 1500 * US

    def test_slice_floor_is_min_granularity(self):
        policy = CfsPolicy()
        assert policy.slice_ns(100) == policy.config.min_granularity_ns

    def test_slice_zero_runners(self):
        policy = CfsPolicy()
        assert policy.slice_ns(0) == policy.config.sched_latency_ns


class TestWakeupPreemption:
    def test_preempts_when_far_behind(self):
        policy = CfsPolicy()
        current = make_task(vruntime=10 * MS)
        woken = make_task(vruntime=1 * MS)
        assert policy.should_preempt_on_wake(current, woken)

    def test_no_preempt_when_close(self):
        policy = CfsPolicy()
        current = make_task(vruntime=2 * MS)
        woken = make_task(vruntime=int(1.5 * MS))
        assert not policy.should_preempt_on_wake(current, woken)

    def test_idle_current_always_preempted(self):
        policy = CfsPolicy()
        assert policy.should_preempt_on_wake(None, make_task())


class TestWakingPlacement:
    def test_sleeper_vruntime_floored(self):
        policy = CfsPolicy()
        rq = RunQueue(gcpu=None)
        rq.min_vruntime = 100 * MS
        stale = make_task(vruntime=0)
        placed = policy.place_waking_vruntime(stale, rq)
        assert placed == 100 * MS - policy.config.sched_latency_ns

    def test_recent_sleeper_keeps_vruntime(self):
        policy = CfsPolicy()
        rq = RunQueue(gcpu=None)
        rq.min_vruntime = 10 * MS
        fresh = make_task(vruntime=9 * MS)
        assert policy.place_waking_vruntime(fresh, rq) == 9 * MS


class TestTickResched:
    def test_resched_after_slice_exhausted(self):
        policy = CfsPolicy()
        rq = RunQueue(gcpu=None)
        rq.enqueue(make_task(vruntime=0, name='waiting'))
        current = make_task(vruntime=1 * MS, name='cur')
        current.stint_ns = 10 * MS
        assert policy.should_resched_at_tick(current, rq)

    def test_no_resched_with_empty_queue(self):
        policy = CfsPolicy()
        rq = RunQueue(gcpu=None)
        current = make_task()
        current.stint_ns = 100 * MS
        assert not policy.should_resched_at_tick(current, rq)

    def test_no_resched_fresh_stint(self):
        policy = CfsPolicy()
        rq = RunQueue(gcpu=None)
        rq.enqueue(make_task(vruntime=10 * MS))
        current = make_task(vruntime=0)
        current.stint_ns = 0
        assert not policy.should_resched_at_tick(current, rq)


class TestRtAvg:
    def _tracker(self):
        sim = Simulator()
        vm = VM('vm', 1, sim)
        vcpu = vm.vcpus[0]
        vcpu.set_runstate(RUNSTATE_BLOCKED, 0)
        return sim, vcpu, RtAvgTracker(vcpu, sim)

    def test_idle_vcpu_stays_near_zero(self):
        sim, vcpu, tracker = self._tracker()
        sim.now = 100 * MS
        assert tracker.update() < 0.01

    def test_busy_vcpu_approaches_one(self):
        sim, vcpu, tracker = self._tracker()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        sim.now = 200 * MS
        assert tracker.update() > 0.9

    def test_steal_counts_as_busy(self):
        """rt_avg folds in steal time — the property the migrator and
        wake balancing rely on (Section 3.3)."""
        sim, vcpu, tracker = self._tracker()
        vcpu.set_runstate(RUNSTATE_RUNNABLE, 0)
        sim.now = 200 * MS
        assert tracker.update() > 0.9

    def test_decay_after_going_idle(self):
        sim, vcpu, tracker = self._tracker()
        vcpu.set_runstate(RUNSTATE_RUNNING, 0)
        sim.now = 100 * MS
        busy = tracker.update()
        vcpu.set_runstate(RUNSTATE_BLOCKED, sim.now)
        sim.now = 300 * MS
        assert tracker.update() < busy / 2

    def test_update_at_same_time_is_stable(self):
        sim, vcpu, tracker = self._tracker()
        sim.now = 50 * MS
        first = tracker.update()
        assert tracker.update() == first


class TestTimers:
    def test_sleep_fires_once(self):
        from repro.guestos.timers import TimerService
        sim = Simulator()
        woken = []

        class KernelStub:
            def wake_task(self, task):
                woken.append((task, sim.now))
        svc = TimerService(sim, KernelStub())
        task = make_task()
        svc.arm_sleep(task, 5 * MS)
        assert svc.pending == 1
        sim.run_until_idle()
        assert woken == [(task, 5 * MS)]
        assert svc.pending == 0

    def test_cancel_prevents_fire(self):
        from repro.guestos.timers import TimerService
        sim = Simulator()
        woken = []

        class KernelStub:
            def wake_task(self, task):
                woken.append(task)
        svc = TimerService(sim, KernelStub())
        task = make_task()
        svc.arm_sleep(task, 5 * MS)
        svc.cancel(task)
        sim.run_until_idle()
        assert woken == []

    def test_double_arm_raises(self):
        from repro.guestos.timers import TimerService
        sim = Simulator()
        svc = TimerService(sim, None)
        task = make_task()
        svc.arm_sleep(task, 5 * MS)
        with pytest.raises(RuntimeError):
            svc.arm_sleep(task, 5 * MS)
